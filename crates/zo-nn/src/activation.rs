//! Stateless activation layers (GELU, ReLU).

use zo_tensor::{ops, Tensor};

/// Which nonlinearity to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// GELU (tanh approximation), the transformer default.
    Gelu,
    /// ReLU.
    Relu,
}

/// Saved forward input for the backward pass.
#[derive(Debug, Clone)]
pub struct ActivationCache {
    /// The forward input.
    pub x: Tensor,
}

impl Activation {
    /// Applies the nonlinearity elementwise.
    pub fn forward(&self, x: &Tensor) -> (Tensor, ActivationCache) {
        let mut y = x.clone();
        match self {
            Activation::Gelu => {
                for v in y.data_mut() {
                    *v = ops::gelu(*v);
                }
            }
            Activation::Relu => {
                for v in y.data_mut() {
                    *v = ops::relu(*v);
                }
            }
        }
        (y, ActivationCache { x: x.clone() })
    }

    /// Chain rule through the nonlinearity.
    pub fn backward(&self, cache: &ActivationCache, dy: &Tensor) -> Tensor {
        let mut dx = dy.clone();
        let grads = cache.x.data();
        match self {
            Activation::Gelu => {
                for (d, x) in dx.data_mut().iter_mut().zip(grads) {
                    *d *= ops::gelu_grad(*x);
                }
            }
            Activation::Relu => {
                for (d, x) in dx.data_mut().iter_mut().zip(grads) {
                    *d *= ops::relu_grad(*x);
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zo_tensor::Init;

    #[test]
    fn relu_forward_backward() {
        let x = Tensor::from_rows(&[&[-1.0, 2.0]]).unwrap();
        let (y, cache) = Activation::Relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0]);
        let dy = Tensor::from_rows(&[&[1.0, 1.0]]).unwrap();
        let dx = Activation::Relu.backward(&cache, &dy);
        assert_eq!(dx.data(), &[0.0, 1.0]);
    }

    #[test]
    fn gelu_backward_matches_finite_difference() {
        let mut init = Init::new(4);
        let x = init.normal_tensor(2, 5, 1.0);
        let (_, cache) = Activation::Gelu.forward(&x);
        let dy = Tensor::full(2, 5, 1.0);
        let dx = Activation::Gelu.backward(&cache, &dy);
        let h = 1e-3;
        for r in 0..2 {
            for j in 0..5 {
                let mut xp = x.clone();
                xp.set(r, j, x.get(r, j).unwrap() + h).unwrap();
                let mut xm = x.clone();
                xm.set(r, j, x.get(r, j).unwrap() - h).unwrap();
                let (yp, _) = Activation::Gelu.forward(&xp);
                let (ym, _) = Activation::Gelu.forward(&xm);
                let fd =
                    (yp.data().iter().sum::<f32>() - ym.data().iter().sum::<f32>()) / (2.0 * h);
                assert!((dx.get(r, j).unwrap() - fd).abs() < 1e-2);
            }
        }
    }
}
