//! Activation checkpointing: trade recompute for activation memory.
//!
//! The paper trains every workload with activation checkpointing ("We use
//! activation checkpoint to reduce activation memory", Fig. 2 caption), so
//! the real-execution substrate supports it too: a checkpointed block
//! stores only its *input* during the forward pass and re-runs the block's
//! forward during backward to rebuild the intermediate state.
//!
//! This is the real mechanism (not an accounting trick): the block-level
//! caches are dropped at forward time and regenerated on demand, which the
//! tests verify both for gradient correctness and for the memory effect.

use zo_tensor::{Tensor, TensorError};

use crate::block::{BlockCache, TransformerBlock};

/// A transformer block wrapped with activation checkpointing.
///
/// Forward stores only the input tensor; backward recomputes the block's
/// forward to obtain the caches, then runs the normal backward. Gradients
/// are identical to the non-checkpointed path because the forward is
/// deterministic.
#[derive(Debug, Clone)]
pub struct CheckpointedBlock {
    /// The wrapped block.
    pub block: TransformerBlock,
}

/// The only state a checkpointed forward keeps: the block input.
#[derive(Debug, Clone)]
pub struct CheckpointCache {
    /// The saved block input (the "checkpoint").
    pub input: Tensor,
    batch: usize,
    seq: usize,
}

impl CheckpointCache {
    /// Bytes held by this checkpoint.
    pub fn bytes(&self) -> usize {
        self.input.len() * core::mem::size_of::<f32>()
    }
}

impl CheckpointedBlock {
    /// Wraps a block.
    pub fn new(block: TransformerBlock) -> CheckpointedBlock {
        CheckpointedBlock { block }
    }

    /// Forward pass that stores only the input.
    pub fn forward(
        &self,
        x: &Tensor,
        batch: usize,
        seq: usize,
    ) -> Result<(Tensor, CheckpointCache), TensorError> {
        let (y, full_cache) = self.block.forward(x, batch, seq)?;
        // The full cache (attention probabilities, linear inputs, …) is
        // dropped here; only the input checkpoint survives.
        drop(full_cache);
        Ok((
            y,
            CheckpointCache {
                input: x.clone(),
                batch,
                seq,
            },
        ))
    }

    /// Backward pass: recompute forward from the checkpoint, then backward.
    pub fn backward(
        &mut self,
        cache: &CheckpointCache,
        dy: &Tensor,
    ) -> Result<Tensor, TensorError> {
        let (_, full_cache): (Tensor, BlockCache) =
            self.block.forward(&cache.input, cache.batch, cache.seq)?;
        self.block.backward(&full_cache, dy)
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.block.num_params()
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.block.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zo_tensor::Init;

    fn block(seed: u64) -> TransformerBlock {
        let mut init = Init::new(seed);
        TransformerBlock::new(8, 2, &mut init)
    }

    #[test]
    fn checkpointed_output_matches_plain() {
        let plain = block(3);
        let ckpt = CheckpointedBlock::new(block(3));
        let mut rng = Init::new(4);
        let x = rng.normal_tensor(6, 8, 1.0);
        let (y_plain, _) = plain.forward(&x, 2, 3).unwrap();
        let (y_ckpt, _) = ckpt.forward(&x, 2, 3).unwrap();
        assert_eq!(y_plain, y_ckpt);
    }

    #[test]
    fn checkpointed_gradients_match_plain_exactly() {
        // Recompute must reproduce the same caches, hence the same grads.
        let mut plain = block(5);
        let mut ckpt = CheckpointedBlock::new(block(5));
        let mut rng = Init::new(6);
        let x = rng.normal_tensor(4, 8, 0.9);
        let dy = rng.normal_tensor(4, 8, 1.0);

        let (_, cache_p) = plain.forward(&x, 2, 2).unwrap();
        let dx_plain = plain.backward(&cache_p, &dy).unwrap();

        let (_, cache_c) = ckpt.forward(&x, 2, 2).unwrap();
        let dx_ckpt = ckpt.backward(&cache_c, &dy).unwrap();

        assert_eq!(dx_plain, dx_ckpt);
        assert_eq!(plain.mlp.fc1.dw, ckpt.block.mlp.fc1.dw);
        assert_eq!(plain.attn.wq.dw, ckpt.block.attn.wq.dw);
        assert_eq!(plain.ln1.dgamma, ckpt.block.ln1.dgamma);
    }

    #[test]
    fn checkpoint_stores_only_the_input() {
        let ckpt = CheckpointedBlock::new(block(7));
        let mut rng = Init::new(8);
        let x = rng.normal_tensor(4, 8, 1.0);
        let (_, cache) = ckpt.forward(&x, 2, 2).unwrap();
        // The cache is exactly one copy of the input, nothing else.
        assert_eq!(cache.input, x);
        assert_eq!(cache.bytes(), x.len() * 4);
    }

    #[test]
    fn double_backward_recomputes_cleanly() {
        // Running backward twice from the same checkpoint accumulates
        // exactly 2x the gradients (recompute is deterministic).
        let mut ckpt = CheckpointedBlock::new(block(9));
        let mut rng = Init::new(10);
        let x = rng.normal_tensor(2, 8, 1.0);
        let dy = rng.normal_tensor(2, 8, 1.0);
        let (_, cache) = ckpt.forward(&x, 1, 2).unwrap();
        ckpt.backward(&cache, &dy).unwrap();
        let once = ckpt.block.mlp.fc1.dw.clone();
        ckpt.backward(&cache, &dy).unwrap();
        for (twice, one) in ckpt.block.mlp.fc1.dw.data().iter().zip(once.data()) {
            assert!((twice - 2.0 * one).abs() < 1e-5);
        }
    }
}
