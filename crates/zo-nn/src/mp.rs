//! Real tensor-slicing model parallelism (Megatron-style), executable on
//! thread ranks.
//!
//! The paper's multi-GPU section composes ZeRO-Offload with "tensor-slicing
//! based model parallelism frameworks such as Megatron-LM". These layers
//! are that substrate, for real: a column-parallel linear splits the weight
//! matrix by output columns across the MP group, a row-parallel linear by
//! input rows, and the canonical Megatron MLP pattern
//! `column → activation → row` needs exactly one all-reduce in forward and
//! one in backward — which the equivalence tests verify against a serial
//! MLP, bit for bit up to reduction order.
//!
//! Column shards use [`partition_range`] so every crate agrees on shard
//! boundaries.

use zo_collectives::{partition_range, Communicator};
use zo_tensor::{Init, Tensor, TensorError};

use crate::linear::{Linear, LinearCache};

/// A linear layer whose weight is split by output columns across the MP
/// group; the forward output is all-gathered to full width.
pub struct ColumnParallelLinear {
    /// This rank's weight shard `(fan_in, local_out)` and bias shard.
    pub local: Linear,
    comm: Communicator,
    fan_out: usize,
}

/// Saved state for [`ColumnParallelLinear::backward`].
pub struct ColumnParallelCache {
    inner: LinearCache,
    rows: usize,
}

/// Gathers per-rank column blocks into a full `(rows, total_cols)` tensor.
///
/// Works by gathering the transposed (column-major) flats — per-rank
/// blocks stay contiguous there — then concatenating in rank order.
fn all_gather_cols(
    comm: &Communicator,
    local: &Tensor,
    total_cols: usize,
) -> Result<Tensor, TensorError> {
    let rows = local.rows();
    let t = local.transposed(); // (local_cols, rows), flat = column-major.
    let blocks = comm.all_gather_var(t.data());
    let mut full_t_flat = Vec::with_capacity(total_cols * rows);
    for b in blocks {
        full_t_flat.extend_from_slice(&b);
    }
    let full_t = Tensor::from_vec(total_cols, rows, full_t_flat)?;
    Ok(full_t.transposed())
}

impl ColumnParallelLinear {
    /// Creates this rank's shard of a `(fan_in, fan_out)` layer.
    ///
    /// All ranks must pass the same seed: the full weight matrix is drawn
    /// identically everywhere, then each rank keeps its column shard —
    /// so an MP group of any size starts from the same full layer.
    pub fn new(
        fan_in: usize,
        fan_out: usize,
        seed: u64,
        comm: Communicator,
    ) -> ColumnParallelLinear {
        let mut init = Init::new(seed);
        let full = Linear::new(fan_in, fan_out, &mut init);
        let range = partition_range(fan_out, comm.world(), comm.rank());
        let mut local = Linear::new(fan_in, range.len(), &mut Init::new(0));
        local.w = full.w.slice_cols(range.clone());
        local.b = full.b[range].to_vec();
        local.zero_grads();
        ColumnParallelLinear {
            local,
            comm,
            fan_out,
        }
    }

    /// Full output width.
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// The MP group endpoint this layer issues collectives on.
    pub fn comm(&self) -> &Communicator {
        &self.comm
    }

    /// This rank's output column range.
    pub fn local_range(&self) -> core::ops::Range<usize> {
        partition_range(self.fan_out, self.comm.world(), self.comm.rank())
    }

    /// Forward: local GEMM then column all-gather.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, ColumnParallelCache), TensorError> {
        let (y_local, inner) = self.local.forward(x)?;
        let y = all_gather_cols(&self.comm, &y_local, self.fan_out)?;
        Ok((
            y,
            ColumnParallelCache {
                inner,
                rows: x.rows(),
            },
        ))
    }

    /// Backward from the full-width `dy`: local grads accumulate; the
    /// partial input gradients are summed across the group.
    pub fn backward(
        &mut self,
        cache: &ColumnParallelCache,
        dy: &Tensor,
    ) -> Result<Tensor, TensorError> {
        if dy.rows() != cache.rows || dy.cols() != self.fan_out {
            return Err(TensorError::ShapeMismatch {
                op: "column parallel backward",
                lhs: (cache.rows, self.fan_out),
                rhs: dy.shape(),
            });
        }
        let dy_local = dy.slice_cols(self.local_range());
        let mut dx = self.local.backward(&cache.inner, &dy_local)?;
        // Each rank's dx covers only its columns' contribution: sum them.
        self.comm.all_reduce_sum(dx.data_mut());
        Ok(dx)
    }
}

/// A linear layer whose weight is split by input rows; each rank consumes
/// its slice of the input and partial outputs are all-reduced.
///
/// Bias-free, as in Megatron's row-parallel layers (a bias would be added
/// once after the reduction, outside the shard).
pub struct RowParallelLinear {
    /// This rank's weight shard `(local_in, fan_out)`.
    pub local: Linear,
    comm: Communicator,
    fan_in: usize,
}

/// Saved state for [`RowParallelLinear::backward`].
pub struct RowParallelCache {
    inner: LinearCache,
}

impl RowParallelLinear {
    /// Creates this rank's shard of a `(fan_in, fan_out)` layer (same-seed
    /// rule as [`ColumnParallelLinear::new`]).
    pub fn new(fan_in: usize, fan_out: usize, seed: u64, comm: Communicator) -> RowParallelLinear {
        let mut init = Init::new(seed);
        let full = Linear::new(fan_in, fan_out, &mut init);
        let range = partition_range(fan_in, comm.world(), comm.rank());
        let mut local = Linear::new(range.len(), fan_out, &mut Init::new(0));
        for (lr, fr) in range.clone().enumerate() {
            local.w.row_mut(lr).copy_from_slice(full.w.row(fr));
        }
        local.b = vec![0.0; fan_out];
        local.zero_grads();
        RowParallelLinear {
            local,
            comm,
            fan_in,
        }
    }

    /// Full input width.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// This rank's input row range.
    pub fn local_range(&self) -> core::ops::Range<usize> {
        partition_range(self.fan_in, self.comm.world(), self.comm.rank())
    }

    /// Forward from the full-width input: slice, local GEMM, all-reduce.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, RowParallelCache), TensorError> {
        if x.cols() != self.fan_in {
            return Err(TensorError::ShapeMismatch {
                op: "row parallel forward",
                lhs: (x.rows(), self.fan_in),
                rhs: x.shape(),
            });
        }
        let x_local = x.slice_cols(self.local_range());
        let (mut y, inner) = self.local.forward(&x_local)?;
        self.comm.all_reduce_sum(y.data_mut());
        Ok((y, RowParallelCache { inner }))
    }

    /// Backward: local grads accumulate; returns the gradient for this
    /// rank's input slice scattered into a full-width tensor (other
    /// columns zero), so callers can sum slices across ranks if needed.
    pub fn backward(
        &mut self,
        cache: &RowParallelCache,
        dy: &Tensor,
    ) -> Result<Tensor, TensorError> {
        let dx_local = self.local.backward(&cache.inner, dy)?;
        let mut dx = Tensor::zeros(dy.rows(), self.fan_in);
        let range = self.local_range();
        for r in 0..dx.rows() {
            dx.row_mut(r)[range.clone()].copy_from_slice(dx_local.row(r));
        }
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    fn run_group<T: Send>(
        world: usize,
        f: impl Fn(Communicator) -> T + Send + Sync + Clone,
    ) -> Vec<T> {
        let comms = Communicator::group(world);
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|c| {
                    let f = f.clone();
                    scope.spawn(move || f(c))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank"))
                .collect()
        })
    }

    fn serial_linear(fan_in: usize, fan_out: usize, seed: u64) -> Linear {
        Linear::new(fan_in, fan_out, &mut Init::new(seed))
    }

    fn input(rows: usize, cols: usize) -> Tensor {
        Init::new(55).normal_tensor(rows, cols, 1.0)
    }

    #[test]
    fn column_parallel_forward_matches_serial() {
        let (fi, fo, rows) = (6, 10, 4);
        let x = input(rows, fi);
        let serial = serial_linear(fi, fo, 42);
        let (want, _) = serial.forward(&x).unwrap();
        for world in [1usize, 2, 3] {
            let x = x.clone();
            let got = run_group(world, move |comm| {
                let layer = ColumnParallelLinear::new(fi, fo, 42, comm);
                layer.forward(&x).unwrap().0
            });
            for y in got {
                for (a, b) in y.data().iter().zip(want.data()) {
                    assert!((a - b).abs() < 1e-5, "world={world}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn column_parallel_backward_matches_serial() {
        let (fi, fo, rows) = (5, 8, 3);
        let x = input(rows, fi);
        let dy = Init::new(66).normal_tensor(rows, fo, 1.0);
        let mut serial = serial_linear(fi, fo, 7);
        let (_, cache) = serial.forward(&x).unwrap();
        let want_dx = serial.backward(&cache, &dy).unwrap();

        let world = 2;
        let x2 = x.clone();
        let dy2 = dy.clone();
        let results = run_group(world, move |comm| {
            let mut layer = ColumnParallelLinear::new(fi, fo, 7, comm);
            let range = layer.local_range();
            let (_, cache) = layer.forward(&x2).unwrap();
            let dx = layer.backward(&cache, &dy2).unwrap();
            (dx, range, layer.local.dw.clone(), layer.local.db.clone())
        });
        for (dx, range, dw_local, db_local) in results {
            for (a, b) in dx.data().iter().zip(want_dx.data()) {
                assert!((a - b).abs() < 1e-5, "dx {a} vs {b}");
            }
            // The local weight grad block equals the serial grad's columns.
            for r in 0..fi {
                for (lc, fc) in range.clone().enumerate() {
                    let got = dw_local.get(r, lc).unwrap();
                    let want = serial.dw.get(r, fc).unwrap();
                    assert!((got - want).abs() < 1e-5);
                }
            }
            for (lc, fc) in range.clone().enumerate() {
                assert!((db_local[lc] - serial.db[fc]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn row_parallel_matches_serial_without_bias() {
        let (fi, fo, rows) = (9, 4, 3);
        let x = input(rows, fi);
        let mut serial = serial_linear(fi, fo, 13);
        serial.b = vec![0.0; fo]; // Row-parallel layers are bias-free.
        let (want_y, cache) = serial.forward(&x).unwrap();
        let dy = Init::new(31).normal_tensor(rows, fo, 1.0);
        let want_dx = serial.backward(&cache, &dy).unwrap();

        let world = 3;
        let x2 = x.clone();
        let dy2 = dy.clone();
        let results = run_group(world, move |comm| {
            let mut layer = RowParallelLinear::new(fi, fo, 13, comm);
            let (y, cache) = layer.forward(&x2).unwrap();
            let dx = layer.backward(&cache, &dy2).unwrap();
            (y, dx)
        });
        // Forward identical on every rank; dx slices sum to the serial dx.
        let mut dx_sum = Tensor::zeros(rows, fi);
        for (y, dx) in &results {
            for (a, b) in y.data().iter().zip(want_y.data()) {
                assert!((a - b).abs() < 1e-5, "y {a} vs {b}");
            }
            zo_tensor::ops::add_assign(dx_sum.data_mut(), dx.data()).unwrap();
        }
        for (a, b) in dx_sum.data().iter().zip(want_dx.data()) {
            assert!((a - b).abs() < 1e-5, "dx {a} vs {b}");
        }
    }

    #[test]
    fn megatron_mlp_pattern_matches_serial() {
        // column-parallel(h, 4h) → GELU → row-parallel(4h, h): the output
        // of the column layer feeds the row layer WITHOUT gathering (each
        // rank keeps its slice) in real Megatron; here we verify the
        // gathered-equivalent end-to-end output matches a serial MLP.
        let (h, rows) = (6, 4);
        let x = input(rows, h);
        let fc1 = serial_linear(h, 4 * h, 1);
        let mut fc2 = serial_linear(4 * h, h, 2);
        fc2.b = vec![0.0; h];
        let (h1, _) = fc1.forward(&x).unwrap();
        let (a1, _) = Activation::Gelu.forward(&h1);
        let (want, _) = fc2.forward(&a1).unwrap();

        let x2 = x.clone();
        let outs = run_group(2, move |comm| {
            let col = ColumnParallelLinear::new(h, 4 * h, 1, comm);
            // Reuse the same communicator group for the row layer by
            // rebuilding it on the gathered activations.
            let (h1, _) = col.forward(&x2).unwrap();
            let (a1, _) = Activation::Gelu.forward(&h1);
            let row = RowParallelLinear::new(4 * h, h, 2, col.comm().clone());
            row.forward(&a1).unwrap().0
        });
        for y in outs {
            for (a, b) in y.data().iter().zip(want.data()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }
}
