//! Inverted dropout with seeded, reproducible masks.
//!
//! GPT-2 and BERT both train with dropout; the engines need it to be
//! exactly reproducible from a seed so that offload-vs-baseline runs stay
//! bit-comparable (the mask stream is part of the training trajectory).

use zo_tensor::{Init, Tensor};

/// Inverted dropout: kept activations are scaled by `1/(1-p)` at train
/// time so evaluation needs no rescaling.
pub struct Dropout {
    p: f32,
    rng: Init,
    training: bool,
}

/// The mask saved for backward.
#[derive(Debug, Clone)]
pub struct DropoutCache {
    /// Per-element multiplier (0 or 1/(1-p)); empty in eval mode.
    pub mask: Vec<f32>,
}

impl Dropout {
    /// Creates dropout with drop probability `p` and a mask seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Dropout {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        Dropout {
            p,
            rng: Init::new(seed),
            training: true,
        }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Switches between train (masking) and eval (identity) behaviour.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether masks are applied.
    pub fn training(&self) -> bool {
        self.training
    }

    /// Applies dropout, drawing a fresh mask from the seeded stream.
    pub fn forward(&mut self, x: &Tensor) -> (Tensor, DropoutCache) {
        if !self.training || self.p == 0.0 {
            return (x.clone(), DropoutCache { mask: Vec::new() });
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut y = x.clone();
        let mut mask = Vec::with_capacity(x.len());
        for v in y.data_mut() {
            let m = if self.rng.uniform(0.0, 1.0) < self.p {
                0.0
            } else {
                scale
            };
            mask.push(m);
            *v *= m;
        }
        (y, DropoutCache { mask })
    }

    /// Backward: the same mask gates the gradient.
    pub fn backward(&self, cache: &DropoutCache, dy: &Tensor) -> Tensor {
        if cache.mask.is_empty() {
            return dy.clone();
        }
        let mut dx = dy.clone();
        for (d, m) in dx.data_mut().iter_mut().zip(&cache.mask) {
            *d *= *m;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        d.set_training(false);
        let x = Tensor::full(3, 4, 2.0);
        let (y, cache) = d.forward(&x);
        assert_eq!(y, x);
        let dy = Tensor::full(3, 4, 1.0);
        assert_eq!(d.backward(&cache, &dy), dy);
    }

    #[test]
    fn p_zero_is_identity_in_training() {
        let mut d = Dropout::new(0.0, 1);
        let x = Tensor::full(2, 2, 3.0);
        let (y, _) = d.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn masks_are_reproducible_from_seed() {
        let mut a = Dropout::new(0.3, 7);
        let mut b = Dropout::new(0.3, 7);
        let x = Tensor::full(8, 8, 1.0);
        assert_eq!(a.forward(&x).0, b.forward(&x).0);
        // Second draw differs from the first but still matches across
        // instances (a stream, not a fixed mask).
        let ya2 = a.forward(&x).0;
        let yb2 = b.forward(&x).0;
        assert_eq!(ya2, yb2);
    }

    #[test]
    fn expected_value_preserved() {
        // Inverted scaling: E[y] = x. Check the empirical mean over a
        // large tensor.
        let mut d = Dropout::new(0.4, 3);
        let x = Tensor::full(100, 100, 1.0);
        let (y, cache) = d.forward(&x);
        let mean: f64 = y.data().iter().map(|v| *v as f64).sum::<f64>() / y.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Kept elements carry exactly 1/(1-p).
        for (&v, &m) in y.data().iter().zip(&cache.mask) {
            assert!(v == 0.0 || (v - 1.0 / 0.6).abs() < 1e-6);
            assert!(m == 0.0 || (m - 1.0 / 0.6).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.5, 9);
        let x = Tensor::full(4, 4, 1.0);
        let (y, cache) = d.forward(&x);
        let dy = Tensor::full(4, 4, 1.0);
        let dx = d.backward(&cache, &dy);
        // Gradient flows exactly where activations flowed.
        for (yv, dv) in y.data().iter().zip(dx.data()) {
            assert_eq!(*yv == 0.0, *dv == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "p must be")]
    fn p_one_rejected() {
        Dropout::new(1.0, 0);
    }
}
