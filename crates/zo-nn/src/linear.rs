//! Fully connected layer with manual backward.
//!
//! All three matmuls (forward `x·W`, weight-grad `xᵀ·dy`, input-grad
//! `dy·Wᵀ`) go through the parallel [`zo_tensor::matmul`] kernels, which
//! partition output rows across the shared worker pool with bit-identical
//! results at any thread count — fwd/bwd throughput scales with cores
//! without any scheduling code here.

use zo_tensor::{matmul, ops, Init, Tensor, TensorError};

/// A dense layer `y = x·W + b` with gradient accumulation.
///
/// Gradients accumulate across calls to [`Linear::backward`] (micro-batch
/// gradient accumulation, as the paper's throughput runs use) until
/// [`Linear::zero_grads`] is called.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weights, `(fan_in, fan_out)`.
    pub w: Tensor,
    /// Bias, `fan_out`.
    pub b: Vec<f32>,
    /// Weight gradients.
    pub dw: Tensor,
    /// Bias gradients.
    pub db: Vec<f32>,
}

/// Saved forward state needed by the backward pass.
#[derive(Debug, Clone)]
pub struct LinearCache {
    /// The forward input.
    pub x: Tensor,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    pub fn new(fan_in: usize, fan_out: usize, init: &mut Init) -> Linear {
        Linear {
            w: init.xavier(fan_in, fan_out),
            b: vec![0.0; fan_out],
            dw: Tensor::zeros(fan_in, fan_out),
            db: vec![0.0; fan_out],
        }
    }

    /// Input dimension.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// Total parameter count (weights + bias).
    pub fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass: `y = x·W + b`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, LinearCache), TensorError> {
        let mut y = matmul(x, &self.w)?;
        for r in 0..y.rows() {
            ops::add_assign(y.row_mut(r), &self.b)?;
        }
        Ok((y, LinearCache { x: x.clone() }))
    }

    /// Backward pass: accumulates `dW += xᵀ·dy`, `db += Σ dy`, returns
    /// `dx = dy·Wᵀ`.
    pub fn backward(&mut self, cache: &LinearCache, dy: &Tensor) -> Result<Tensor, TensorError> {
        zo_tensor::matmul::matmul_at_b_acc(&cache.x, dy, &mut self.dw)?;
        for r in 0..dy.rows() {
            ops::add_assign(&mut self.db, dy.row(r))?;
        }
        zo_tensor::matmul::matmul_a_bt(dy, &self.w)
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.dw.fill_zero();
        self.db.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut init = Init::new(1);
        let mut layer = Linear::new(2, 3, &mut init);
        layer.w = Tensor::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, -1.0]]).unwrap();
        layer.b = vec![0.5, -0.5, 0.0];
        let x = Tensor::from_rows(&[&[1.0, 2.0]]).unwrap();
        let (y, _) = layer.forward(&x).unwrap();
        assert_eq!(y.data(), &[1.5, 1.5, 0.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut init = Init::new(7);
        let mut layer = Linear::new(3, 2, &mut init);
        let x = init.normal_tensor(4, 3, 1.0);
        // Loss = sum(y), so dy = ones.
        let (y0, cache) = layer.forward(&x).unwrap();
        let dy = Tensor::full(4, 2, 1.0);
        let dx = layer.backward(&cache, &dy).unwrap();

        let h = 1e-3;
        // Check dW[0][1] and db[1] and dx[2][0] by central difference.
        let base_sum: f32 = y0.data().iter().sum();
        let _ = base_sum;
        let probe = |layer: &mut Linear, x: &Tensor| -> f32 {
            let (y, _) = layer.forward(x).unwrap();
            y.data().iter().sum()
        };
        let orig = layer.w.get(0, 1).unwrap();
        layer.w.set(0, 1, orig + h).unwrap();
        let up = probe(&mut layer, &x);
        layer.w.set(0, 1, orig - h).unwrap();
        let down = probe(&mut layer, &x);
        layer.w.set(0, 1, orig).unwrap();
        let fd = (up - down) / (2.0 * h);
        assert!(
            (layer.dw.get(0, 1).unwrap() - fd).abs() < 1e-2,
            "dW mismatch"
        );

        let origb = layer.b[1];
        layer.b[1] = origb + h;
        let upb = probe(&mut layer, &x);
        layer.b[1] = origb - h;
        let downb = probe(&mut layer, &x);
        layer.b[1] = origb;
        let fdb = (upb - downb) / (2.0 * h);
        assert!((layer.db[1] - fdb).abs() < 1e-2, "db mismatch");

        let mut x2 = x.clone();
        let origx = x2.get(2, 0).unwrap();
        x2.set(2, 0, origx + h).unwrap();
        let upx = probe(&mut layer, &x2);
        x2.set(2, 0, origx - h).unwrap();
        let downx = probe(&mut layer, &x2);
        let fdx = (upx - downx) / (2.0 * h);
        assert!((dx.get(2, 0).unwrap() - fdx).abs() < 1e-2, "dx mismatch");
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut init = Init::new(3);
        let mut layer = Linear::new(2, 2, &mut init);
        let x = Tensor::from_rows(&[&[1.0, 1.0]]).unwrap();
        let dy = Tensor::from_rows(&[&[1.0, 1.0]]).unwrap();
        let (_, cache) = layer.forward(&x).unwrap();
        layer.backward(&cache, &dy).unwrap();
        let once = layer.dw.clone();
        layer.backward(&cache, &dy).unwrap();
        for (a, b) in layer.dw.data().iter().zip(once.data()) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
        layer.zero_grads();
        assert!(layer.dw.data().iter().all(|&v| v == 0.0));
        assert!(layer.db.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shape_errors_propagate() {
        let mut init = Init::new(5);
        let layer = Linear::new(3, 2, &mut init);
        let bad = Tensor::zeros(1, 4);
        assert!(layer.forward(&bad).is_err());
    }
}
