//! The pre-LN transformer block (attention + MLP with residuals).

use zo_tensor::{ops, Init, Tensor, TensorError};

use crate::activation::{Activation, ActivationCache};
use crate::attention::{AttentionCache, CausalSelfAttention};
use crate::layernorm::{LayerNorm, LayerNormCache};
use crate::linear::{Linear, LinearCache};

/// The 4×-expansion feed-forward network of a transformer block.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Expansion projection `(h, 4h)`.
    pub fc1: Linear,
    /// Contraction projection `(4h, h)`.
    pub fc2: Linear,
    act: Activation,
}

/// Saved forward state of the MLP.
#[derive(Debug, Clone)]
pub struct MlpCache {
    c1: LinearCache,
    ca: ActivationCache,
    c2: LinearCache,
}

impl Mlp {
    /// Creates the MLP for hidden size `h` with GELU.
    pub fn new(hidden: usize, init: &mut Init) -> Mlp {
        Mlp {
            fc1: Linear::new(hidden, 4 * hidden, init),
            fc2: Linear::new(4 * hidden, hidden, init),
            act: Activation::Gelu,
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.fc1.num_params() + self.fc2.num_params()
    }

    /// Forward pass.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, MlpCache), TensorError> {
        let (h1, c1) = self.fc1.forward(x)?;
        let (a, ca) = self.act.forward(&h1);
        let (y, c2) = self.fc2.forward(&a)?;
        Ok((y, MlpCache { c1, ca, c2 }))
    }

    /// Backward pass.
    pub fn backward(&mut self, cache: &MlpCache, dy: &Tensor) -> Result<Tensor, TensorError> {
        let da = self.fc2.backward(&cache.c2, dy)?;
        let dh1 = self.act.backward(&cache.ca, &da);
        self.fc1.backward(&cache.c1, &dh1)
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.fc1.zero_grads();
        self.fc2.zero_grads();
    }
}

/// One pre-LN transformer block: `x + attn(ln1(x))`, then `x + mlp(ln2(x))`.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    /// Attention sub-layer norm.
    pub ln1: LayerNorm,
    /// Self-attention.
    pub attn: CausalSelfAttention,
    /// MLP sub-layer norm.
    pub ln2: LayerNorm,
    /// Feed-forward network.
    pub mlp: Mlp,
}

/// Saved forward state of a block.
#[derive(Debug, Clone)]
pub struct BlockCache {
    cl1: LayerNormCache,
    cattn: AttentionCache,
    cl2: LayerNormCache,
    cmlp: MlpCache,
}

impl TransformerBlock {
    /// Creates a block for `hidden` features and `heads` attention heads.
    pub fn new(hidden: usize, heads: usize, init: &mut Init) -> TransformerBlock {
        TransformerBlock {
            ln1: LayerNorm::new(hidden, init),
            attn: CausalSelfAttention::new(hidden, heads, init),
            ln2: LayerNorm::new(hidden, init),
            mlp: Mlp::new(hidden, init),
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.ln1.num_params()
            + self.attn.num_params()
            + self.ln2.num_params()
            + self.mlp.num_params()
    }

    /// Forward pass over `(batch*seq, hidden)` activations.
    pub fn forward(
        &self,
        x: &Tensor,
        batch: usize,
        seq: usize,
    ) -> Result<(Tensor, BlockCache), TensorError> {
        let (n1, cl1) = self.ln1.forward(x)?;
        let (a, cattn) = self.attn.forward(&n1, batch, seq)?;
        let mut mid = x.clone();
        ops::add_assign(mid.data_mut(), a.data())?;
        let (n2, cl2) = self.ln2.forward(&mid)?;
        let (m, cmlp) = self.mlp.forward(&n2)?;
        let mut out = mid;
        ops::add_assign(out.data_mut(), m.data())?;
        Ok((
            out,
            BlockCache {
                cl1,
                cattn,
                cl2,
                cmlp,
            },
        ))
    }

    /// Backward pass; accumulates all sub-layer grads, returns `dx`.
    pub fn backward(&mut self, cache: &BlockCache, dy: &Tensor) -> Result<Tensor, TensorError> {
        // out = mid + mlp(ln2(mid)): residual splits the gradient.
        let dm = self.mlp.backward(&cache.cmlp, dy)?;
        let dn2 = self.ln2.backward(&cache.cl2, &dm)?;
        let mut dmid = dy.clone();
        ops::add_assign(dmid.data_mut(), dn2.data())?;
        // mid = x + attn(ln1(x)).
        let da = self.attn.backward(&cache.cattn, &dmid)?;
        let dn1 = self.ln1.backward(&cache.cl1, &da)?;
        let mut dx = dmid;
        ops::add_assign(dx.data_mut(), dn1.data())?;
        Ok(dx)
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.ln1.zero_grads();
        self.attn.zero_grads();
        self.ln2.zero_grads();
        self.mlp.zero_grads();
    }

    /// Visits every `(param, grad)` slice pair of this block, in the same
    /// canonical order `GptModel` uses. Lets engines page a single block's
    /// parameters in and out (the L2L layer-streaming baseline).
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.ln1.gamma, &mut self.ln1.dgamma);
        f(&mut self.ln1.beta, &mut self.ln1.dbeta);
        for lin in [
            &mut self.attn.wq,
            &mut self.attn.wk,
            &mut self.attn.wv,
            &mut self.attn.wo,
        ] {
            f(lin.w.data_mut(), lin.dw.data_mut());
            f(&mut lin.b, &mut lin.db);
        }
        f(&mut self.ln2.gamma, &mut self.ln2.dgamma);
        f(&mut self.ln2.beta, &mut self.ln2.dbeta);
        for lin in [&mut self.mlp.fc1, &mut self.mlp.fc2] {
            f(lin.w.data_mut(), lin.dw.data_mut());
            f(&mut lin.b, &mut lin.db);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_count_matches_formula() {
        // 12h² + 13h per block (attention 4h²+4h, MLP 8h²+5h, two LNs 4h).
        let mut init = Init::new(1);
        let h = 16;
        let block = TransformerBlock::new(h, 2, &mut init);
        assert_eq!(block.num_params(), 12 * h * h + 13 * h);
    }

    #[test]
    fn forward_shapes_preserved() {
        let mut init = Init::new(2);
        let block = TransformerBlock::new(8, 2, &mut init);
        let x = init.normal_tensor(6, 8, 1.0);
        let (y, _) = block.forward(&x, 2, 3).unwrap();
        assert_eq!(y.shape(), (6, 8));
    }

    #[test]
    fn block_gradient_check() {
        let mut init = Init::new(3);
        let mut block = TransformerBlock::new(4, 1, &mut init);
        let mut rng = Init::new(4);
        let x = rng.normal_tensor(4, 4, 0.7); // batch=2, seq=2
        let loss = |b: &TransformerBlock, x: &Tensor| -> f32 {
            let (y, _) = b.forward(x, 2, 2).unwrap();
            y.data()
                .iter()
                .enumerate()
                .map(|(i, v)| v * (0.2 + 0.03 * i as f32))
                .sum()
        };
        let (_, cache) = block.forward(&x, 2, 2).unwrap();
        let mut dy = Tensor::zeros(4, 4);
        for i in 0..dy.len() {
            dy.data_mut()[i] = 0.2 + 0.03 * i as f32;
        }
        let dx = block.backward(&cache, &dy).unwrap();
        let h = 1e-3;
        for r in 0..4 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c).unwrap() + h).unwrap();
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c).unwrap() - h).unwrap();
                let fd = (loss(&block, &xp) - loss(&block, &xm)) / (2.0 * h);
                let got = dx.get(r, c).unwrap();
                assert!((got - fd).abs() < 3e-2, "dx[{r}][{c}] {got} vs {fd}");
            }
        }
        // A parameter gradient deep inside the MLP.
        let got = block.mlp.fc1.dw.get(0, 0).unwrap();
        let orig = block.mlp.fc1.w.get(0, 0).unwrap();
        block.mlp.fc1.w.set(0, 0, orig + h).unwrap();
        let up = loss(&block, &x);
        block.mlp.fc1.w.set(0, 0, orig - h).unwrap();
        let down = loss(&block, &x);
        block.mlp.fc1.w.set(0, 0, orig).unwrap();
        let fd = (up - down) / (2.0 * h);
        assert!((got - fd).abs() < 3e-2, "fc1.dw {got} vs {fd}");
    }

    #[test]
    fn visit_params_covers_num_params() {
        let mut init = Init::new(9);
        let mut block = TransformerBlock::new(8, 2, &mut init);
        let mut total = 0;
        block.visit_params_mut(&mut |p, g| {
            assert_eq!(p.len(), g.len());
            total += p.len();
        });
        assert_eq!(total, block.num_params());
    }

    #[test]
    fn zero_grads_clears_everything() {
        let mut init = Init::new(5);
        let mut block = TransformerBlock::new(4, 2, &mut init);
        let x = init.normal_tensor(2, 4, 1.0);
        let (_, cache) = block.forward(&x, 1, 2).unwrap();
        let dy = Tensor::full(2, 4, 1.0);
        block.backward(&cache, &dy).unwrap();
        assert!(block.mlp.fc1.dw.data().iter().any(|&v| v != 0.0));
        block.zero_grads();
        assert!(block.mlp.fc1.dw.data().iter().all(|&v| v == 0.0));
        assert!(block.attn.wq.dw.data().iter().all(|&v| v == 0.0));
        assert!(block.ln1.dgamma.iter().all(|&v| v == 0.0));
    }
}
