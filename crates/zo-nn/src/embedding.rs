//! Token and position embeddings with manual backward.
//!
//! The backward scatter-add parallelizes over contiguous **table-row
//! ranges** on the shared worker pool: each task scans the id list in
//! order and applies only the rows it owns, so duplicate ids accumulate
//! in exactly the serial order and results are bit-identical at any
//! thread count (same argument as the matmul kernels).

use zo_tensor::{pool, Init, Tensor, TensorError};

/// A learned embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Table, `(vocab, dim)`.
    pub table: Tensor,
    /// Gradients for the table.
    pub dtable: Tensor,
}

/// Saved token ids for the backward pass.
#[derive(Debug, Clone)]
pub struct EmbeddingCache {
    /// The looked-up ids, one per output row.
    pub ids: Vec<usize>,
}

impl Embedding {
    /// Creates a table of `vocab` rows of size `dim` (std 0.02, GPT-2's
    /// initialization scale).
    pub fn new(vocab: usize, dim: usize, init: &mut Init) -> Embedding {
        Embedding {
            table: init.normal_tensor(vocab, dim, 0.02),
            dtable: Tensor::zeros(vocab, dim),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.table.len()
    }

    /// Looks up `ids`, producing one row per id.
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an id outside the
    /// vocabulary.
    pub fn forward(&self, ids: &[usize]) -> Result<(Tensor, EmbeddingCache), TensorError> {
        let mut out = Tensor::zeros(ids.len(), self.dim());
        for (r, &id) in ids.iter().enumerate() {
            if id >= self.vocab() {
                return Err(TensorError::IndexOutOfBounds {
                    index: (id, 0),
                    shape: (self.vocab(), self.dim()),
                });
            }
            out.row_mut(r).copy_from_slice(self.table.row(id));
        }
        Ok((out, EmbeddingCache { ids: ids.to_vec() }))
    }

    /// Scatters `dy` rows back into the table gradient.
    ///
    /// Large scatters run across the shared worker pool, partitioned by
    /// table row so duplicate-id accumulation order — and therefore every
    /// bit of the result — matches the serial path.
    pub fn backward(&mut self, cache: &EmbeddingCache, dy: &Tensor) -> Result<(), TensorError> {
        if dy.rows() != cache.ids.len() || dy.cols() != self.dim() {
            return Err(TensorError::ShapeMismatch {
                op: "embedding backward",
                lhs: (cache.ids.len(), self.dim()),
                rhs: dy.shape(),
            });
        }
        let threads = pool::global().threads();
        // Below ~64k accumulated elements the scan cost dominates; stay
        // serial (identical arithmetic either way).
        let parts = if cache.ids.len() * self.dim() < (1 << 16) {
            1
        } else {
            threads
        };
        self.scatter_on(pool::global(), parts, &cache.ids, dy);
        Ok(())
    }

    /// The scatter-add behind [`Embedding::backward`], on an explicit
    /// pool with an explicit partition count over table rows
    /// (bit-identical for every `parts`; exposed for tests and benches).
    pub fn scatter_on(&mut self, pool: &pool::Pool, parts: usize, ids: &[usize], dy: &Tensor) {
        let dim = self.dim();
        let ranges = pool::partition(self.vocab(), parts);
        if ranges.len() <= 1 {
            for (r, &id) in ids.iter().enumerate() {
                let dst = self.dtable.row_mut(id);
                for (d, s) in dst.iter_mut().zip(dy.row(r)) {
                    *d += *s;
                }
            }
            return;
        }
        let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(ranges.len());
        let mut rest = self.dtable.data_mut();
        for rows in ranges {
            let (head, tail) = rest.split_at_mut(rows.len() * dim);
            tasks.push(Box::new(move || {
                for (r, &id) in ids.iter().enumerate() {
                    if rows.contains(&id) {
                        let local = (id - rows.start) * dim;
                        let dst = &mut head[local..local + dim];
                        for (d, s) in dst.iter_mut().zip(dy.row(r)) {
                            *d += *s;
                        }
                    }
                }
            }));
            rest = tail;
        }
        pool.run(tasks);
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.dtable.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_copies_rows() {
        let mut init = Init::new(1);
        let emb = Embedding::new(4, 3, &mut init);
        let (out, _) = emb.forward(&[2, 0, 2]).unwrap();
        assert_eq!(out.row(0), emb.table.row(2));
        assert_eq!(out.row(1), emb.table.row(0));
        assert_eq!(out.row(2), emb.table.row(2));
    }

    #[test]
    fn out_of_vocab_rejected() {
        let mut init = Init::new(1);
        let emb = Embedding::new(4, 3, &mut init);
        assert!(emb.forward(&[4]).is_err());
    }

    #[test]
    fn backward_scatters_and_accumulates_duplicates() {
        let mut init = Init::new(2);
        let mut emb = Embedding::new(5, 2, &mut init);
        let (_, cache) = emb.forward(&[1, 1, 3]).unwrap();
        let dy = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        emb.backward(&cache, &dy).unwrap();
        // Token 1 appears twice: gradients add.
        assert_eq!(emb.dtable.row(1), &[4.0, 6.0]);
        assert_eq!(emb.dtable.row(3), &[5.0, 6.0]);
        assert_eq!(emb.dtable.row(0), &[0.0, 0.0]);
        emb.zero_grads();
        assert!(emb.dtable.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn parallel_scatter_bit_identical_to_serial() {
        let pool = pool::Pool::new(4);
        let mut init = Init::new(9);
        let dim = 6;
        let vocab = 11;
        // Duplicate-heavy id pattern across the whole table.
        let ids: Vec<usize> = (0..200).map(|i| (i * 7 + i / 3) % vocab).collect();
        let dy = init.normal_tensor(ids.len(), dim, 1.0);
        let mut want = Embedding::new(vocab, dim, &mut Init::new(1));
        want.scatter_on(&pool, 1, &ids, &dy);
        for parts in [2usize, 3, 7] {
            let mut got = Embedding::new(vocab, dim, &mut Init::new(1));
            got.scatter_on(&pool, parts, &ids, &dy);
            assert_eq!(
                got.dtable.data(),
                want.dtable.data(),
                "parts={parts} must be bit-identical"
            );
        }
    }

    #[test]
    fn backward_shape_checked() {
        let mut init = Init::new(3);
        let mut emb = Embedding::new(5, 2, &mut init);
        let (_, cache) = emb.forward(&[0]).unwrap();
        let bad = Tensor::zeros(2, 2);
        assert!(emb.backward(&cache, &bad).is_err());
    }
}
