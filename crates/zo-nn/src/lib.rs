//! Real-execution neural-network substrate.
//!
//! The convergence experiments (paper Figs. 12–13) need actual training
//! dynamics, so this crate implements a small but complete NN stack with
//! hand-written backward passes: [`Linear`], [`LayerNorm`],
//! [`CausalSelfAttention`], [`TransformerBlock`], embeddings,
//! cross-entropy, and two full models — [`GptModel`] (decoder-only LM) and
//! [`Classifier`] (fine-tuning analog).
//!
//! Training engines access parameters exclusively through the [`Model`]
//! visitation trait: ordered `(layer_bucket, param, grad)` slices, which is
//! the shape the offload schedules need for flattening, per-layer gradient
//! streaming, and partitioned updates.

#![warn(missing_docs)]

mod activation;
mod attention;
mod block;
mod checkpoint;
mod dropout;
mod embedding;
mod layernorm;
mod linear;
pub mod loss;
mod model;
pub mod mp;

pub use activation::{Activation, ActivationCache};
pub use attention::{AttentionCache, CausalSelfAttention};
pub use block::{BlockCache, Mlp, MlpCache, TransformerBlock};
pub use checkpoint::{CheckpointCache, CheckpointedBlock};
pub use dropout::{Dropout, DropoutCache};
pub use embedding::{Embedding, EmbeddingCache};
pub use layernorm::{LayerNorm, LayerNormCache};
pub use linear::{Linear, LinearCache};
pub use loss::{accuracy, cross_entropy};
pub use model::{BackwardHook, Classifier, GptCache, GptConfig, GptModel, Model, ParamVisitor};
pub use mp::{ColumnParallelLinear, RowParallelLinear};
