//! Complete models and the parameter-visitation interface engines use.
//!
//! Training engines (ZeRO-Offload and the baselines) never see layer
//! structs; they see a [`Model`]: an ordered sequence of `(layer, param,
//! grad)` slices. That is exactly the shape the paper's schedules need —
//! parameters flatten into the fp32 master copy on the CPU, gradients
//! stream out layer by layer during backward, and updated parameters load
//! back in.

use zo_tensor::{Init, Tensor, TensorError};

use crate::block::{BlockCache, TransformerBlock};
use crate::embedding::Embedding;
use crate::layernorm::LayerNorm;
use crate::linear::Linear;
use crate::loss::cross_entropy;

/// The visitor callback [`Model::visit_mut`] feeds: one call per
/// `(layer_bucket, param, grad)` slice triple.
pub type ParamVisitor<'a> = dyn FnMut(usize, &mut [f32], &mut [f32]) + 'a;

/// Observes backward progress as gradients become final, bucket by bucket.
///
/// This is the streaming interface behind the paper's overlapped gradient
/// offload (Sec. 4.1): during backward, each finished layer bucket can be
/// shipped to the CPU while earlier layers are still computing. Buckets
/// fire in backward order — head first, blocks reversed, embeddings last.
///
/// Within a bucket, [`BackwardHook::on_grads`] receives the bucket's
/// gradient slices in the *canonical* [`Model::visit_mut`] order, so the
/// concatenation of a bucket's slices equals that bucket's segment of
/// [`Model::copy_grads_to`]. [`BackwardHook::on_bucket`] then marks the
/// bucket complete.
pub trait BackwardHook {
    /// A finished gradient slice of `bucket`, in canonical visitation
    /// order. Slices of one bucket are contiguous in the flat layout.
    fn on_grads(&mut self, bucket: usize, grads: &[f32]) {
        let _ = (bucket, grads);
    }

    /// Layer bucket `bucket` has its final gradients for this micro-batch.
    fn on_bucket(&mut self, bucket: usize);
}

impl<H: BackwardHook + ?Sized> BackwardHook for &mut H {
    fn on_grads(&mut self, bucket: usize, grads: &[f32]) {
        (**self).on_grads(bucket, grads);
    }

    fn on_bucket(&mut self, bucket: usize) {
        (**self).on_bucket(bucket);
    }
}

/// Adapter for the closure-based `train_step` entry points: a plain
/// `FnMut(usize)` observes bucket completion and ignores the slices.
struct FnBucketHook<F>(F);

impl<F: FnMut(usize)> BackwardHook for FnBucketHook<F> {
    fn on_bucket(&mut self, bucket: usize) {
        (self.0)(bucket);
    }
}

/// Parameter visitation: every model exposes its `(param, grad)` slices in
/// a stable canonical order, tagged with a layer index used as the
/// offload/streaming bucket.
pub trait Model {
    /// Number of layer buckets (embeddings and head count as buckets).
    fn num_layer_buckets(&self) -> usize;

    /// Total parameter count.
    fn num_params(&self) -> usize;

    /// Visits every `(layer_bucket, param, grad)` triple in canonical order.
    fn visit_mut(&mut self, f: &mut ParamVisitor);

    /// Zeroes all gradients.
    fn zero_grads(&mut self);

    /// Copies all parameters into `flat` (canonical order).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != self.num_params()`.
    fn copy_params_to(&mut self, flat: &mut [f32]) {
        assert_eq!(flat.len(), self.num_params(), "flat buffer length");
        let mut off = 0;
        self.visit_mut(&mut |_, p, _| {
            flat[off..off + p.len()].copy_from_slice(p);
            off += p.len();
        });
    }

    /// Loads all parameters from `flat` (canonical order).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != self.num_params()`.
    fn load_params_from(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_params(), "flat buffer length");
        let mut off = 0;
        self.visit_mut(&mut |_, p, _| {
            p.copy_from_slice(&flat[off..off + p.len()]);
            off += p.len();
        });
    }

    /// Copies all gradients into `flat` (canonical order).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != self.num_params()`.
    fn copy_grads_to(&mut self, flat: &mut [f32]) {
        assert_eq!(flat.len(), self.num_params(), "flat buffer length");
        let mut off = 0;
        self.visit_mut(&mut |_, _, g| {
            flat[off..off + g.len()].copy_from_slice(g);
            off += g.len();
        });
    }

    /// The flat-offset range of each layer bucket, in canonical order.
    fn layer_ranges(&mut self) -> Vec<core::ops::Range<usize>> {
        let buckets = self.num_layer_buckets();
        let mut sizes = vec![0usize; buckets];
        self.visit_mut(&mut |l, p, _| sizes[l] += p.len());
        let mut ranges = Vec::with_capacity(buckets);
        let mut off = 0;
        for s in sizes {
            ranges.push(off..off + s);
            off += s;
        }
        ranges
    }

    /// Loads the parameters covering flat-offset `range` from `flat`
    /// (indexed relative to `range.start`), leaving everything outside the
    /// range untouched. This is the stage-3 materialisation hook: a
    /// parameter-partitioned engine writes gathered layer slices in place
    /// without ever holding a full flat replica.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != range.len()` or the range exceeds
    /// `num_params()`.
    fn load_param_range(&mut self, range: core::ops::Range<usize>, flat: &[f32]) {
        assert_eq!(flat.len(), range.len(), "flat buffer length");
        assert!(range.end <= self.num_params(), "range exceeds num_params");
        let mut off = 0;
        self.visit_mut(&mut |_, p, _| {
            let start = off;
            off += p.len();
            let lo = range.start.max(start);
            let hi = range.end.min(off);
            if lo < hi {
                p[lo - start..hi - start]
                    .copy_from_slice(&flat[lo - range.start..hi - range.start]);
            }
        });
    }

    /// Zeroes the parameters covering flat-offset `range`, leaving
    /// everything outside untouched. Stage-3 engines call this after a
    /// layer's non-owned shard is released so tests can prove the model
    /// really runs without a resident full replica.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `num_params()`.
    fn clear_param_range(&mut self, range: core::ops::Range<usize>) {
        assert!(range.end <= self.num_params(), "range exceeds num_params");
        let mut off = 0;
        self.visit_mut(&mut |_, p, _| {
            let start = off;
            off += p.len();
            let lo = range.start.max(start);
            let hi = range.end.min(off);
            if lo < hi {
                p[lo - start..hi - start].fill(0.0);
            }
        });
    }
}

/// Configuration of the small real-execution GPT model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GptConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length (position table size).
    pub seq_len: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer blocks.
    pub layers: usize,
}

/// A GPT-2-style decoder-only LM, small enough to actually train.
pub struct GptModel {
    cfg: GptConfig,
    tok_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<TransformerBlock>,
    final_ln: LayerNorm,
    lm_head: Linear,
    /// Recompute block activations in backward instead of caching them.
    checkpoint_activations: bool,
}

/// Forward state of a full GPT pass.
pub struct GptCache {
    tok_cache: crate::embedding::EmbeddingCache,
    pos_cache: crate::embedding::EmbeddingCache,
    block_caches: Vec<BlockCache>,
    ln_cache: crate::layernorm::LayerNormCache,
    head_cache: crate::linear::LinearCache,
}

impl GptModel {
    /// Builds a model with seeded initialization.
    pub fn new(cfg: GptConfig, seed: u64) -> GptModel {
        let mut init = Init::new(seed);
        GptModel {
            cfg,
            tok_emb: Embedding::new(cfg.vocab, cfg.hidden, &mut init),
            pos_emb: Embedding::new(cfg.seq_len, cfg.hidden, &mut init),
            blocks: (0..cfg.layers)
                .map(|_| TransformerBlock::new(cfg.hidden, cfg.heads, &mut init))
                .collect(),
            final_ln: LayerNorm::new(cfg.hidden, &mut init),
            lm_head: Linear::new(cfg.hidden, cfg.vocab, &mut init),
            checkpoint_activations: false,
        }
    }

    /// Enables or disables activation checkpointing.
    ///
    /// When enabled, [`GptModel::train_step`] stores only each block's
    /// input during the forward pass and recomputes the block forward
    /// during backward — the paper's activation-memory recipe (Fig. 2
    /// caption). Gradients are bit-identical either way.
    pub fn set_activation_checkpointing(&mut self, enabled: bool) {
        self.checkpoint_activations = enabled;
    }

    /// Whether activation checkpointing is enabled.
    pub fn activation_checkpointing(&self) -> bool {
        self.checkpoint_activations
    }

    /// The configuration.
    pub fn config(&self) -> &GptConfig {
        &self.cfg
    }

    /// Forward pass to logits.
    ///
    /// `inputs` is `batch*seq` token ids, row-major by sequence.
    pub fn forward(
        &self,
        inputs: &[usize],
        batch: usize,
        seq: usize,
    ) -> Result<(Tensor, GptCache), TensorError> {
        if inputs.len() != batch * seq {
            return Err(TensorError::LengthMismatch {
                op: "gpt forward",
                expected: batch * seq,
                actual: inputs.len(),
            });
        }
        let (tok, tok_cache) = self.tok_emb.forward(inputs)?;
        let positions: Vec<usize> = (0..batch * seq).map(|i| i % seq).collect();
        let (pos, pos_cache) = self.pos_emb.forward(&positions)?;
        let mut x = tok;
        zo_tensor::ops::add_assign(x.data_mut(), pos.data())?;

        let mut block_caches = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (nx, cache) = block.forward(&x, batch, seq)?;
            x = nx;
            block_caches.push(cache);
        }
        let (nx, ln_cache) = self.final_ln.forward(&x)?;
        let (logits, head_cache) = self.lm_head.forward(&nx)?;
        Ok((
            logits,
            GptCache {
                tok_cache,
                pos_cache,
                block_caches,
                ln_cache,
                head_cache,
            },
        ))
    }

    /// Forward + cross-entropy + full backward.
    ///
    /// Gradients accumulate into the layer grad buffers. `on_bucket` fires
    /// as each layer bucket's gradients become final, in backward order —
    /// head bucket first, blocks in reverse, embeddings last — mirroring
    /// the paper's per-layer gradient streaming to CPU (Sec. 4.1). To also
    /// receive the finished gradient slices, use
    /// [`GptModel::train_step_hooked`].
    pub fn train_step(
        &mut self,
        inputs: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
        on_bucket: impl FnMut(usize),
    ) -> Result<f32, TensorError> {
        self.train_step_hooked(inputs, targets, batch, seq, &mut FnBucketHook(on_bucket))
    }

    /// [`GptModel::train_step`] with a full [`BackwardHook`]: the hook sees
    /// each bucket's finished gradient slices *during* backward, which is
    /// what lets an engine overlap the device-to-host gradient offload with
    /// the remaining backward compute (paper Fig. 6).
    pub fn train_step_hooked(
        &mut self,
        inputs: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
        hook: &mut dyn BackwardHook,
    ) -> Result<f32, TensorError> {
        if self.checkpoint_activations {
            return self.train_step_checkpointed(inputs, targets, batch, seq, hook);
        }
        let (logits, cache) = self.forward(inputs, batch, seq)?;
        let (loss, dlogits) = cross_entropy(&logits, targets)?;
        let dx = self.lm_head.backward(&cache.head_cache, &dlogits)?;
        let mut dx = self.final_ln.backward(&cache.ln_cache, &dx)?;
        self.stream_head_grads(hook); // Head bucket is final.
        for (i, block) in self.blocks.iter_mut().enumerate().rev() {
            dx = block.backward(&cache.block_caches[i], &dx)?;
            stream_block_grads(hook, i + 1, block);
            hook.on_bucket(i + 1);
        }
        self.tok_emb.backward(&cache.tok_cache, &dx)?;
        self.pos_emb.backward(&cache.pos_cache, &dx)?;
        self.stream_embedding_grads(hook);
        Ok(loss)
    }

    /// Emits the head bucket (final LN + LM head) to `hook`.
    fn stream_head_grads(&self, hook: &mut dyn BackwardHook) {
        let head = self.blocks.len() + 1;
        stream_ln_grads(hook, head, &self.final_ln);
        stream_linear_grads(hook, head, &self.lm_head);
        hook.on_bucket(head);
    }

    /// Emits the embeddings bucket (bucket 0) to `hook`.
    fn stream_embedding_grads(&self, hook: &mut dyn BackwardHook) {
        hook.on_grads(0, self.tok_emb.dtable.data());
        hook.on_grads(0, self.pos_emb.dtable.data());
        hook.on_bucket(0);
    }

    /// Training step with activation checkpointing: the forward pass keeps
    /// only each block's input; backward recomputes block internals.
    fn train_step_checkpointed(
        &mut self,
        inputs: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
        hook: &mut dyn BackwardHook,
    ) -> Result<f32, TensorError> {
        if inputs.len() != batch * seq {
            return Err(TensorError::LengthMismatch {
                op: "gpt forward",
                expected: batch * seq,
                actual: inputs.len(),
            });
        }
        // Forward, storing only block inputs (the checkpoints).
        let (tok, tok_cache) = self.tok_emb.forward(inputs)?;
        let positions: Vec<usize> = (0..batch * seq).map(|i| i % seq).collect();
        let (pos, pos_cache) = self.pos_emb.forward(&positions)?;
        let mut x = tok;
        zo_tensor::ops::add_assign(x.data_mut(), pos.data())?;
        let mut checkpoints: Vec<Tensor> = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            checkpoints.push(x.clone());
            let (nx, cache) = block.forward(&x, batch, seq)?;
            // The full cache is dropped: this is the memory saving.
            drop(cache);
            x = nx;
        }
        let (nx, ln_cache) = self.final_ln.forward(&x)?;
        let (logits, head_cache) = self.lm_head.forward(&nx)?;
        let (loss, dlogits) = cross_entropy(&logits, targets)?;

        // Backward with per-block recompute.
        let dx = self.lm_head.backward(&head_cache, &dlogits)?;
        let mut dx = self.final_ln.backward(&ln_cache, &dx)?;
        self.stream_head_grads(hook);
        for (i, block) in self.blocks.iter_mut().enumerate().rev() {
            let (_, cache) = block.forward(&checkpoints[i], batch, seq)?;
            dx = block.backward(&cache, &dx)?;
            stream_block_grads(hook, i + 1, block);
            hook.on_bucket(i + 1);
        }
        self.tok_emb.backward(&tok_cache, &dx)?;
        self.pos_emb.backward(&pos_cache, &dx)?;
        self.stream_embedding_grads(hook);
        Ok(loss)
    }

    /// Mean loss on a batch without touching gradients.
    pub fn eval_loss(
        &self,
        inputs: &[usize],
        targets: &[usize],
        batch: usize,
        seq: usize,
    ) -> Result<f32, TensorError> {
        let (logits, _) = self.forward(inputs, batch, seq)?;
        Ok(cross_entropy(&logits, targets)?.0)
    }
}

/// Visits one [`Linear`] as two `(param, grad)` pairs.
fn visit_linear(layer: usize, lin: &mut Linear, f: &mut ParamVisitor) {
    f(layer, lin.w.data_mut(), lin.dw.data_mut());
    f(layer, &mut lin.b, &mut lin.db);
}

/// Visits one [`LayerNorm`].
fn visit_ln(layer: usize, ln: &mut LayerNorm, f: &mut ParamVisitor) {
    f(layer, &mut ln.gamma, &mut ln.dgamma);
    f(layer, &mut ln.beta, &mut ln.dbeta);
}

/// Streams one [`Linear`]'s gradients in the same order [`visit_linear`]
/// visits its parameters — the streamed concat must match the flat layout.
fn stream_linear_grads(hook: &mut dyn BackwardHook, bucket: usize, lin: &Linear) {
    hook.on_grads(bucket, lin.dw.data());
    hook.on_grads(bucket, &lin.db);
}

/// Streams one [`LayerNorm`]'s gradients (order of [`visit_ln`]).
fn stream_ln_grads(hook: &mut dyn BackwardHook, bucket: usize, ln: &LayerNorm) {
    hook.on_grads(bucket, &ln.dgamma);
    hook.on_grads(bucket, &ln.dbeta);
}

/// Streams one transformer block's gradients (order of the block's leg of
/// [`GptModel`]'s `visit_mut`).
fn stream_block_grads(hook: &mut dyn BackwardHook, bucket: usize, b: &TransformerBlock) {
    stream_ln_grads(hook, bucket, &b.ln1);
    stream_linear_grads(hook, bucket, &b.attn.wq);
    stream_linear_grads(hook, bucket, &b.attn.wk);
    stream_linear_grads(hook, bucket, &b.attn.wv);
    stream_linear_grads(hook, bucket, &b.attn.wo);
    stream_ln_grads(hook, bucket, &b.ln2);
    stream_linear_grads(hook, bucket, &b.mlp.fc1);
    stream_linear_grads(hook, bucket, &b.mlp.fc2);
}

impl Model for GptModel {
    fn num_layer_buckets(&self) -> usize {
        // Bucket 0: embeddings; 1..=L: blocks; L+1: final LN + LM head.
        self.blocks.len() + 2
    }

    fn num_params(&self) -> usize {
        self.tok_emb.num_params()
            + self.pos_emb.num_params()
            + self.blocks.iter().map(|b| b.num_params()).sum::<usize>()
            + self.final_ln.num_params()
            + self.lm_head.num_params()
    }

    fn visit_mut(&mut self, f: &mut ParamVisitor) {
        f(
            0,
            self.tok_emb.table.data_mut(),
            self.tok_emb.dtable.data_mut(),
        );
        f(
            0,
            self.pos_emb.table.data_mut(),
            self.pos_emb.dtable.data_mut(),
        );
        for (i, b) in self.blocks.iter_mut().enumerate() {
            let l = i + 1;
            visit_ln(l, &mut b.ln1, f);
            visit_linear(l, &mut b.attn.wq, f);
            visit_linear(l, &mut b.attn.wk, f);
            visit_linear(l, &mut b.attn.wv, f);
            visit_linear(l, &mut b.attn.wo, f);
            visit_ln(l, &mut b.ln2, f);
            visit_linear(l, &mut b.mlp.fc1, f);
            visit_linear(l, &mut b.mlp.fc2, f);
        }
        let head = self.blocks.len() + 1;
        visit_ln(head, &mut self.final_ln, f);
        visit_linear(head, &mut self.lm_head, f);
    }

    fn zero_grads(&mut self) {
        self.tok_emb.zero_grads();
        self.pos_emb.zero_grads();
        for b in &mut self.blocks {
            b.zero_grads();
        }
        self.final_ln.zero_grads();
        self.lm_head.zero_grads();
    }
}

/// A small MLP classifier (the BERT-fine-tuning analog of Fig. 13).
pub struct Classifier {
    /// Input projection.
    pub fc_in: Linear,
    /// Hidden projection.
    pub fc_mid: Linear,
    /// Output head.
    pub fc_out: Linear,
    act: crate::activation::Activation,
}

impl Classifier {
    /// Builds `dim → hidden → hidden → classes` with GELU.
    pub fn new(dim: usize, hidden: usize, classes: usize, seed: u64) -> Classifier {
        let mut init = Init::new(seed);
        Classifier {
            fc_in: Linear::new(dim, hidden, &mut init),
            fc_mid: Linear::new(hidden, hidden, &mut init),
            fc_out: Linear::new(hidden, classes, &mut init),
            act: crate::activation::Activation::Gelu,
        }
    }

    /// Forward to logits.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let (h1, _) = self.fc_in.forward(x)?;
        let (a1, _) = self.act.forward(&h1);
        let (h2, _) = self.fc_mid.forward(&a1)?;
        let (a2, _) = self.act.forward(&h2);
        Ok(self.fc_out.forward(&a2)?.0)
    }

    /// Forward + cross-entropy + backward; `on_bucket` fires per layer in
    /// backward order (2 = head, 1 = mid, 0 = input).
    pub fn train_step(
        &mut self,
        x: &Tensor,
        targets: &[usize],
        on_bucket: impl FnMut(usize),
    ) -> Result<f32, TensorError> {
        self.train_step_hooked(x, targets, &mut FnBucketHook(on_bucket))
    }

    /// [`Classifier::train_step`] with a full [`BackwardHook`] that also
    /// receives each layer's finished gradient slices during backward.
    pub fn train_step_hooked(
        &mut self,
        x: &Tensor,
        targets: &[usize],
        hook: &mut dyn BackwardHook,
    ) -> Result<f32, TensorError> {
        let (h1, c_in) = self.fc_in.forward(x)?;
        let (a1, ca1) = self.act.forward(&h1);
        let (h2, c_mid) = self.fc_mid.forward(&a1)?;
        let (a2, ca2) = self.act.forward(&h2);
        let (logits, c_out) = self.fc_out.forward(&a2)?;
        let (loss, dlogits) = cross_entropy(&logits, targets)?;
        let da2 = self.fc_out.backward(&c_out, &dlogits)?;
        stream_linear_grads(hook, 2, &self.fc_out);
        hook.on_bucket(2);
        let dh2 = self.act.backward(&ca2, &da2);
        let da1 = self.fc_mid.backward(&c_mid, &dh2)?;
        stream_linear_grads(hook, 1, &self.fc_mid);
        hook.on_bucket(1);
        let dh1 = self.act.backward(&ca1, &da1);
        self.fc_in.backward(&c_in, &dh1)?;
        stream_linear_grads(hook, 0, &self.fc_in);
        hook.on_bucket(0);
        Ok(loss)
    }

    /// Mean loss without touching gradients.
    pub fn eval_loss(&self, x: &Tensor, targets: &[usize]) -> Result<f32, TensorError> {
        Ok(cross_entropy(&self.forward(x)?, targets)?.0)
    }
}

impl Model for Classifier {
    fn num_layer_buckets(&self) -> usize {
        3
    }

    fn num_params(&self) -> usize {
        self.fc_in.num_params() + self.fc_mid.num_params() + self.fc_out.num_params()
    }

    fn visit_mut(&mut self, f: &mut ParamVisitor) {
        visit_linear(0, &mut self.fc_in, f);
        visit_linear(1, &mut self.fc_mid, f);
        visit_linear(2, &mut self.fc_out, f);
    }

    fn zero_grads(&mut self) {
        self.fc_in.zero_grads();
        self.fc_mid.zero_grads();
        self.fc_out.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GptModel {
        GptModel::new(
            GptConfig {
                vocab: 16,
                seq_len: 8,
                hidden: 8,
                heads: 2,
                layers: 2,
            },
            42,
        )
    }

    #[test]
    fn num_params_matches_visitation() {
        let mut m = tiny();
        let mut total = 0;
        m.visit_mut(&mut |_, p, g| {
            assert_eq!(p.len(), g.len());
            total += p.len();
        });
        assert_eq!(total, m.num_params());
    }

    #[test]
    fn layer_ranges_tile_params() {
        let mut m = tiny();
        let ranges = m.layer_ranges();
        assert_eq!(ranges.len(), m.num_layer_buckets());
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, m.num_params());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn params_roundtrip_through_flat_buffer() {
        let mut m = tiny();
        let n = m.num_params();
        let mut flat = vec![0.0f32; n];
        m.copy_params_to(&mut flat);
        assert!(flat.iter().any(|&v| v != 0.0));
        let mut scaled = flat.clone();
        for v in &mut scaled {
            *v *= 2.0;
        }
        m.load_params_from(&scaled);
        let mut back = vec![0.0f32; n];
        m.copy_params_to(&mut back);
        assert_eq!(back, scaled);
    }

    #[test]
    fn param_range_load_and_clear_touch_only_the_range() {
        let mut m = tiny();
        let n = m.num_params();
        let mut orig = vec![0.0f32; n];
        m.copy_params_to(&mut orig);
        // Each layer bucket: clear it, check only that range went to zero,
        // then load it back and check full restoration.
        for range in m.layer_ranges() {
            m.clear_param_range(range.clone());
            let mut now = vec![0.0f32; n];
            m.copy_params_to(&mut now);
            for (i, (&a, &b)) in now.iter().zip(&orig).enumerate() {
                if range.contains(&i) {
                    assert_eq!(a, 0.0, "index {i} not cleared");
                } else {
                    assert_eq!(a.to_bits(), b.to_bits(), "index {i} perturbed");
                }
            }
            m.load_param_range(range.clone(), &orig[range.clone()]);
            let mut back = vec![0.0f32; n];
            m.copy_params_to(&mut back);
            assert_eq!(back, orig, "range {range:?} did not restore");
        }
        // An unaligned slice spanning bucket boundaries also roundtrips.
        let mid = n / 3..2 * n / 3 + 1;
        m.clear_param_range(mid.clone());
        m.load_param_range(mid.clone(), &orig[mid]);
        let mut back = vec![0.0f32; n];
        m.copy_params_to(&mut back);
        assert_eq!(back, orig);
    }

    #[test]
    fn train_step_reduces_loss_on_fixed_batch() {
        let mut m = tiny();
        // One fixed batch: repeated steps must overfit it.
        let inputs: Vec<usize> = (0..16).map(|i| i % 16).collect();
        let targets: Vec<usize> = (0..16).map(|i| (i + 1) % 16).collect();
        let first = m.eval_loss(&inputs, &targets, 2, 8).unwrap();
        let mut opt = zo_optim::Sgd::new(
            zo_optim::SgdParams {
                lr: 0.2,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            m.num_params(),
        );
        for _ in 0..30 {
            m.zero_grads();
            m.train_step(&inputs, &targets, 2, 8, |_| {}).unwrap();
            let n = m.num_params();
            let mut p = vec![0.0; n];
            let mut g = vec![0.0; n];
            m.copy_params_to(&mut p);
            m.copy_grads_to(&mut g);
            opt.step(&mut p, &g).unwrap();
            m.load_params_from(&p);
        }
        let last = m.eval_loss(&inputs, &targets, 2, 8).unwrap();
        assert!(last < first * 0.7, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn bucket_callback_order_is_backward() {
        let mut m = tiny();
        let inputs = vec![0usize; 8];
        let targets = vec![1usize; 8];
        let mut order = Vec::new();
        m.train_step(&inputs, &targets, 1, 8, |b| order.push(b))
            .unwrap();
        // Head (3), blocks reversed (2, 1), embeddings (0).
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    /// Collects every streamed slice, tagged by bucket, in arrival order.
    struct Collector {
        per_bucket: Vec<Vec<f32>>,
        bucket_order: Vec<usize>,
    }

    impl BackwardHook for Collector {
        fn on_grads(&mut self, bucket: usize, grads: &[f32]) {
            self.per_bucket[bucket].extend_from_slice(grads);
        }

        fn on_bucket(&mut self, bucket: usize) {
            self.bucket_order.push(bucket);
        }
    }

    #[test]
    fn streamed_grad_slices_match_flat_layout() {
        let mut m = tiny();
        let inputs: Vec<usize> = (0..16).map(|i| (i * 3) % 16).collect();
        let targets: Vec<usize> = (0..16).map(|i| (i * 3 + 1) % 16).collect();
        let mut hook = Collector {
            per_bucket: vec![Vec::new(); m.num_layer_buckets()],
            bucket_order: Vec::new(),
        };
        m.zero_grads();
        m.train_step_hooked(&inputs, &targets, 2, 8, &mut hook)
            .unwrap();
        assert_eq!(hook.bucket_order, vec![3, 2, 1, 0]);

        let n = m.num_params();
        let mut flat = vec![0.0f32; n];
        m.copy_grads_to(&mut flat);
        let ranges = m.layer_ranges();
        for (bucket, range) in ranges.iter().enumerate() {
            assert_eq!(
                hook.per_bucket[bucket],
                &flat[range.clone()],
                "bucket {bucket} streamed slices diverge from the flat layout"
            );
        }
    }

    #[test]
    fn checkpointed_streaming_matches_plain() {
        let cfg = GptConfig {
            vocab: 16,
            seq_len: 8,
            hidden: 8,
            heads: 2,
            layers: 2,
        };
        let inputs = vec![3usize; 8];
        let targets = vec![5usize; 8];
        let collect = |ckpt: bool| {
            let mut m = GptModel::new(cfg, 11);
            m.set_activation_checkpointing(ckpt);
            let mut hook = Collector {
                per_bucket: vec![Vec::new(); m.num_layer_buckets()],
                bucket_order: Vec::new(),
            };
            m.train_step_hooked(&inputs, &targets, 1, 8, &mut hook)
                .unwrap();
            hook.per_bucket
        };
        assert_eq!(collect(false), collect(true));
    }

    #[test]
    fn classifier_streamed_grads_match_flat_layout() {
        let mut m = Classifier::new(4, 8, 2, 7);
        let mut x = Tensor::zeros(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                x.set(r, c, (r * 4 + c) as f32 * 0.1 - 0.5).unwrap();
            }
        }
        let y = vec![0usize, 1, 0, 1];
        let mut hook = Collector {
            per_bucket: vec![Vec::new(); 3],
            bucket_order: Vec::new(),
        };
        m.zero_grads();
        m.train_step_hooked(&x, &y, &mut hook).unwrap();
        assert_eq!(hook.bucket_order, vec![2, 1, 0]);
        let n = m.num_params();
        let mut flat = vec![0.0f32; n];
        m.copy_grads_to(&mut flat);
        for (bucket, range) in m.layer_ranges().iter().enumerate() {
            assert_eq!(hook.per_bucket[bucket], &flat[range.clone()]);
        }
    }

    #[test]
    fn classifier_learns_separable_task() {
        let mut m = Classifier::new(4, 16, 2, 7);
        let mut init = Init::new(3);
        // Class = sign of first feature.
        let mut make_batch = |n: usize| {
            let mut x = Tensor::zeros(n, 4);
            let mut y = Vec::new();
            for r in 0..n {
                for c in 0..4 {
                    x.set(r, c, init.standard_normal()).unwrap();
                }
                y.push(usize::from(x.get(r, 0).unwrap() > 0.0));
            }
            (x, y)
        };
        let (xe, ye) = make_batch(64);
        let before = m.eval_loss(&xe, &ye).unwrap();
        let mut opt = zo_optim::Sgd::new(
            zo_optim::SgdParams {
                lr: 0.1,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            m.num_params(),
        );
        for _ in 0..60 {
            let (x, y) = make_batch(32);
            m.zero_grads();
            m.train_step(&x, &y, |_| {}).unwrap();
            let n = m.num_params();
            let mut p = vec![0.0; n];
            let mut g = vec![0.0; n];
            m.copy_params_to(&mut p);
            m.copy_grads_to(&mut g);
            opt.step(&mut p, &g).unwrap();
            m.load_params_from(&p);
        }
        let after = m.eval_loss(&xe, &ye).unwrap();
        assert!(
            after < before * 0.5,
            "classifier did not learn: {before} -> {after}"
        );
    }

    #[test]
    fn forward_validates_input_length() {
        let m = tiny();
        assert!(m.forward(&[0; 7], 1, 8).is_err());
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;

    #[test]
    fn checkpointed_training_is_bit_identical() {
        let cfg = GptConfig {
            vocab: 16,
            seq_len: 8,
            hidden: 8,
            heads: 2,
            layers: 3,
        };
        let mut plain = GptModel::new(cfg, 77);
        let mut ckpt = GptModel::new(cfg, 77);
        ckpt.set_activation_checkpointing(true);
        assert!(ckpt.activation_checkpointing());

        let inputs: Vec<usize> = (0..16).map(|i| (i * 5) % 16).collect();
        let targets: Vec<usize> = (0..16).map(|i| (i * 5 + 1) % 16).collect();
        let l1 = plain.train_step(&inputs, &targets, 2, 8, |_| {}).unwrap();
        let l2 = ckpt.train_step(&inputs, &targets, 2, 8, |_| {}).unwrap();
        assert_eq!(l1, l2);

        let n = plain.num_params();
        let mut g1 = vec![0.0f32; n];
        let mut g2 = vec![0.0f32; n];
        plain.copy_grads_to(&mut g1);
        ckpt.copy_grads_to(&mut g2);
        assert_eq!(g1, g2, "recompute changed the gradients");
    }

    #[test]
    fn checkpointed_bucket_order_unchanged() {
        let cfg = GptConfig {
            vocab: 16,
            seq_len: 8,
            hidden: 8,
            heads: 2,
            layers: 2,
        };
        let mut m = GptModel::new(cfg, 1);
        m.set_activation_checkpointing(true);
        let inputs = vec![0usize; 8];
        let targets = vec![1usize; 8];
        let mut order = Vec::new();
        m.train_step(&inputs, &targets, 1, 8, |b| order.push(b))
            .unwrap();
        assert_eq!(order, vec![3, 2, 1, 0]);
    }
}
