//! Cross-entropy loss over logits, with fused softmax backward.
//!
//! Rows are independent (softmax + one-hot subtraction per row), so the
//! per-row work parallelizes across the shared worker pool. The scalar
//! loss is reduced **serially in row order** from per-row log-probs, so
//! the f64 accumulation sequence — and the returned loss — is
//! bit-identical to the serial implementation at any thread count.

use zo_tensor::{ops, pool, Tensor, TensorError};

/// Mean cross-entropy of `logits` `(n, classes)` against integer `targets`.
///
/// Returns `(loss, dlogits)` where `dlogits = (softmax - onehot) / n` —
/// the gradient of the mean loss, ready to feed the model backward.
/// Large batches run across the shared worker pool with bit-identical
/// results.
///
/// Returns [`TensorError::LengthMismatch`] if `targets.len() != n`, and
/// [`TensorError::IndexOutOfBounds`] for a target outside `[0, classes)`.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> Result<(f32, Tensor), TensorError> {
    let (n, classes) = logits.shape();
    let threads = pool::global().threads();
    // Small batches aren't worth a pool round-trip.
    let parts = if n * classes < (1 << 16) { 1 } else { threads };
    cross_entropy_on(pool::global(), parts, logits, targets)
}

/// [`cross_entropy`] on an explicit pool with an explicit partition count
/// over rows (bit-identical for every `parts`).
pub fn cross_entropy_on(
    pool: &pool::Pool,
    parts: usize,
    logits: &Tensor,
    targets: &[usize],
) -> Result<(f32, Tensor), TensorError> {
    let (n, classes) = logits.shape();
    if targets.len() != n {
        return Err(TensorError::LengthMismatch {
            op: "cross_entropy",
            expected: n,
            actual: targets.len(),
        });
    }
    for (r, &t) in targets.iter().enumerate() {
        if t >= classes {
            return Err(TensorError::IndexOutOfBounds {
                index: (r, t),
                shape: (n, classes),
            });
        }
    }
    let mut dlogits = logits.clone();
    let inv_n = 1.0 / n as f32;
    // Per-row log-probs, filled by the (possibly parallel) row pass and
    // reduced serially below so the f64 sum order never changes.
    let mut row_logp = vec![0.0f64; n];
    let row_pass = |rows: core::ops::Range<usize>, drows: &mut [f32], logp: &mut [f64]| {
        for (li, r) in rows.enumerate() {
            let row = &mut drows[li * classes..(li + 1) * classes];
            let t = targets[r];
            ops::softmax_row(row);
            // Guard against log(0) when the target prob underflows.
            logp[li] = (row[t].max(1e-30) as f64).ln();
            row[t] -= 1.0;
            for v in row.iter_mut() {
                *v *= inv_n;
            }
        }
    };
    let ranges = pool::partition(n, parts);
    if ranges.len() <= 1 {
        row_pass(0..n, dlogits.data_mut(), &mut row_logp);
    } else {
        let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(ranges.len());
        let mut d_rest = dlogits.data_mut();
        let mut l_rest = row_logp.as_mut_slice();
        let row_pass = &row_pass;
        for rows in ranges {
            let (d_head, d_tail) = d_rest.split_at_mut(rows.len() * classes);
            let (l_head, l_tail) = l_rest.split_at_mut(rows.len());
            tasks.push(Box::new(move || row_pass(rows, d_head, l_head)));
            d_rest = d_tail;
            l_rest = l_tail;
        }
        pool.run(tasks);
    }
    let mut loss = 0.0f64;
    for lp in &row_logp {
        loss -= lp;
    }
    Ok(((loss / n as f64) as f32, dlogits))
}

/// Fraction of rows whose argmax equals the target (accuracy).
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    if targets.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        let row = logits.row(r);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if argmax == t {
            correct += 1;
        }
    }
    correct as f32 / targets.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Tensor::zeros(3, 4);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor::zeros(1, 3);
        logits.set(0, 1, 10.0).unwrap();
        let (loss, _) = cross_entropy(&logits, &[1]).unwrap();
        assert!(loss < 1e-3);
        let (bad, _) = cross_entropy(&logits, &[0]).unwrap();
        assert!(bad > 5.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_rows(&[&[0.3, -0.7, 1.1], &[0.0, 0.5, -0.5]]).unwrap();
        let targets = [2usize, 0];
        let (_, d) = cross_entropy(&logits, &targets).unwrap();
        let h = 1e-3;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                lp.set(r, c, logits.get(r, c).unwrap() + h).unwrap();
                let mut lm = logits.clone();
                lm.set(r, c, logits.get(r, c).unwrap() - h).unwrap();
                let (up, _) = cross_entropy(&lp, &targets).unwrap();
                let (down, _) = cross_entropy(&lm, &targets).unwrap();
                let fd = (up - down) / (2.0 * h);
                assert!((d.get(r, c).unwrap() - fd).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let (_, d) = cross_entropy(&logits, &[0]).unwrap();
        let s: f32 = d.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn parallel_loss_bit_identical_to_serial() {
        let pool = pool::Pool::new(4);
        let mut init = zo_tensor::Init::new(21);
        let n = 37;
        let classes = 13;
        let logits = init.normal_tensor(n, classes, 2.0);
        let targets: Vec<usize> = (0..n).map(|r| (r * 5 + 1) % classes).collect();
        let (want_loss, want_d) = cross_entropy_on(&pool, 1, &logits, &targets).unwrap();
        for parts in [2usize, 3, 7] {
            let (loss, d) = cross_entropy_on(&pool, parts, &logits, &targets).unwrap();
            assert_eq!(loss.to_bits(), want_loss.to_bits(), "parts={parts}");
            assert_eq!(d.data(), want_d.data(), "parts={parts}");
        }
        // And the public entry point agrees bit-for-bit too.
        let (loss, d) = cross_entropy(&logits, &targets).unwrap();
        assert_eq!(loss.to_bits(), want_loss.to_bits());
        assert_eq!(d.data(), want_d.data());
    }

    #[test]
    fn errors_on_bad_inputs() {
        let logits = Tensor::zeros(2, 3);
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.2, 0.1]]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&Tensor::zeros(0, 2), &[]), 0.0);
    }
}
