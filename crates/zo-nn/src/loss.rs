//! Cross-entropy loss over logits, with fused softmax backward.

use zo_tensor::{ops, Tensor, TensorError};

/// Mean cross-entropy of `logits` `(n, classes)` against integer `targets`.
///
/// Returns `(loss, dlogits)` where `dlogits = (softmax - onehot) / n` —
/// the gradient of the mean loss, ready to feed the model backward.
///
/// Returns [`TensorError::LengthMismatch`] if `targets.len() != n`, and
/// [`TensorError::IndexOutOfBounds`] for a target outside `[0, classes)`.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> Result<(f32, Tensor), TensorError> {
    let (n, classes) = logits.shape();
    if targets.len() != n {
        return Err(TensorError::LengthMismatch {
            op: "cross_entropy",
            expected: n,
            actual: targets.len(),
        });
    }
    let mut dlogits = logits.clone();
    let mut loss = 0.0f64;
    let inv_n = 1.0 / n as f32;
    for (r, &t) in targets.iter().enumerate() {
        if t >= classes {
            return Err(TensorError::IndexOutOfBounds {
                index: (r, t),
                shape: (n, classes),
            });
        }
        let row = dlogits.row_mut(r);
        ops::softmax_row(row);
        // Guard against log(0) when the target prob underflows.
        loss -= (row[t].max(1e-30) as f64).ln();
        row[t] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_n;
        }
    }
    Ok(((loss / n as f64) as f32, dlogits))
}

/// Fraction of rows whose argmax equals the target (accuracy).
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    if targets.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        let row = logits.row(r);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if argmax == t {
            correct += 1;
        }
    }
    correct as f32 / targets.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Tensor::zeros(3, 4);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor::zeros(1, 3);
        logits.set(0, 1, 10.0).unwrap();
        let (loss, _) = cross_entropy(&logits, &[1]).unwrap();
        assert!(loss < 1e-3);
        let (bad, _) = cross_entropy(&logits, &[0]).unwrap();
        assert!(bad > 5.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_rows(&[&[0.3, -0.7, 1.1], &[0.0, 0.5, -0.5]]).unwrap();
        let targets = [2usize, 0];
        let (_, d) = cross_entropy(&logits, &targets).unwrap();
        let h = 1e-3;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                lp.set(r, c, logits.get(r, c).unwrap() + h).unwrap();
                let mut lm = logits.clone();
                lm.set(r, c, logits.get(r, c).unwrap() - h).unwrap();
                let (up, _) = cross_entropy(&lp, &targets).unwrap();
                let (down, _) = cross_entropy(&lm, &targets).unwrap();
                let fd = (up - down) / (2.0 * h);
                assert!((d.get(r, c).unwrap() - fd).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let (_, d) = cross_entropy(&logits, &[0]).unwrap();
        let s: f32 = d.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let logits = Tensor::zeros(2, 3);
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.2, 0.1]]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&Tensor::zeros(0, 2), &[]), 0.0);
    }
}
