//! Row-wise layer normalization with manual backward.

use zo_tensor::{Init, Tensor, TensorError};

/// Layer normalization over the last dimension with learned scale/shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale, length = feature dim.
    pub gamma: Vec<f32>,
    /// Shift, length = feature dim.
    pub beta: Vec<f32>,
    /// Scale gradients.
    pub dgamma: Vec<f32>,
    /// Shift gradients.
    pub dbeta: Vec<f32>,
    eps: f32,
}

/// Saved forward state for the backward pass.
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    /// Normalized activations `(x - mean) / std`, same shape as input.
    pub xhat: Tensor,
    /// Per-row inverse standard deviation.
    pub inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer norm over `dim` features (gamma = 1, beta = 0).
    pub fn new(dim: usize, _init: &mut Init) -> LayerNorm {
        LayerNorm {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            dgamma: vec![0.0; dim],
            dbeta: vec![0.0; dim],
            eps: 1e-5,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.gamma.len() + self.beta.len()
    }

    /// Forward pass.
    ///
    /// Returns [`TensorError::LengthMismatch`] if `x.cols() != dim`.
    pub fn forward(&self, x: &Tensor) -> Result<(Tensor, LayerNormCache), TensorError> {
        let d = self.dim();
        if x.cols() != d {
            return Err(TensorError::LengthMismatch {
                op: "layernorm",
                expected: d,
                actual: x.cols(),
            });
        }
        let mut y = Tensor::zeros(x.rows(), d);
        let mut xhat = Tensor::zeros(x.rows(), d);
        let mut inv_std = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std.push(istd);
            let xh = xhat.row_mut(r);
            let yr = y.row_mut(r);
            for j in 0..d {
                let h = (row[j] - mean) * istd;
                xh[j] = h;
                yr[j] = h * self.gamma[j] + self.beta[j];
            }
        }
        Ok((y, LayerNormCache { xhat, inv_std }))
    }

    /// Backward pass: accumulates `dgamma`/`dbeta`, returns `dx`.
    pub fn backward(&mut self, cache: &LayerNormCache, dy: &Tensor) -> Result<Tensor, TensorError> {
        let d = self.dim();
        if dy.cols() != d {
            return Err(TensorError::LengthMismatch {
                op: "layernorm backward",
                expected: d,
                actual: dy.cols(),
            });
        }
        let mut dx = Tensor::zeros(dy.rows(), d);
        for r in 0..dy.rows() {
            let dyr = dy.row(r);
            let xh = cache.xhat.row(r);
            let istd = cache.inv_std[r];
            // Parameter grads.
            for j in 0..d {
                self.dgamma[j] += dyr[j] * xh[j];
                self.dbeta[j] += dyr[j];
            }
            // dxhat = dy * gamma; then the standard two-reduction formula:
            // dx = istd/d * (d*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat)).
            let mut sum_dxh = 0.0f32;
            let mut sum_dxh_xh = 0.0f32;
            for j in 0..d {
                let dxh = dyr[j] * self.gamma[j];
                sum_dxh += dxh;
                sum_dxh_xh += dxh * xh[j];
            }
            let dxr = dx.row_mut(r);
            let inv_d = 1.0 / d as f32;
            for j in 0..d {
                let dxh = dyr[j] * self.gamma[j];
                dxr[j] = istd * (dxh - inv_d * sum_dxh - xh[j] * inv_d * sum_dxh_xh);
            }
        }
        Ok(dx)
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.dgamma.fill(0.0);
        self.dbeta.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_normalized() {
        let mut init = Init::new(1);
        let ln = LayerNorm::new(8, &mut init);
        let x = init.normal_tensor(4, 8, 3.0);
        let (y, _) = ln.forward(&x).unwrap();
        for r in 0..4 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut init = Init::new(2);
        let mut ln = LayerNorm::new(4, &mut init);
        ln.gamma = vec![2.0; 4];
        ln.beta = vec![1.0; 4];
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        let (y, _) = ln.forward(&x).unwrap();
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-5); // beta shifts the mean
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut init = Init::new(9);
        let mut ln = LayerNorm::new(6, &mut init);
        // Non-trivial gamma to exercise the chain rule.
        for (j, g) in ln.gamma.iter_mut().enumerate() {
            *g = 1.0 + 0.1 * j as f32;
        }
        let x = init.normal_tensor(3, 6, 1.5);
        // Loss = weighted sum to give row-varying dy.
        let dy_fn = |r: usize, j: usize| (r as f32 + 1.0) * 0.3 + j as f32 * 0.05;
        let loss = |ln: &LayerNorm, x: &Tensor| -> f32 {
            let (y, _) = ln.forward(x).unwrap();
            let mut s = 0.0;
            for r in 0..y.rows() {
                for j in 0..y.cols() {
                    s += y.get(r, j).unwrap() * dy_fn(r, j);
                }
            }
            s
        };
        let (_, cache) = ln.forward(&x).unwrap();
        let mut dy = Tensor::zeros(3, 6);
        for r in 0..3 {
            for j in 0..6 {
                dy.set(r, j, dy_fn(r, j)).unwrap();
            }
        }
        let dx = ln.backward(&cache, &dy).unwrap();

        let h = 1e-3;
        // dgamma[2].
        let orig = ln.gamma[2];
        ln.gamma[2] = orig + h;
        let up = loss(&ln, &x);
        ln.gamma[2] = orig - h;
        let down = loss(&ln, &x);
        ln.gamma[2] = orig;
        assert!((ln.dgamma[2] - (up - down) / (2.0 * h)).abs() < 1e-2);
        // dbeta[4].
        let orig = ln.beta[4];
        ln.beta[4] = orig + h;
        let up = loss(&ln, &x);
        ln.beta[4] = orig - h;
        let down = loss(&ln, &x);
        ln.beta[4] = orig;
        assert!((ln.dbeta[4] - (up - down) / (2.0 * h)).abs() < 1e-2);
        // dx[1][3].
        let mut x2 = x.clone();
        let orig = x2.get(1, 3).unwrap();
        x2.set(1, 3, orig + h).unwrap();
        let up = loss(&ln, &x2);
        x2.set(1, 3, orig - h).unwrap();
        let down = loss(&ln, &x2);
        let fd = (up - down) / (2.0 * h);
        assert!(
            (dx.get(1, 3).unwrap() - fd).abs() < 1e-2,
            "dx {} vs fd {fd}",
            dx.get(1, 3).unwrap()
        );
    }

    #[test]
    fn dimension_checked() {
        let mut init = Init::new(1);
        let ln = LayerNorm::new(4, &mut init);
        assert!(ln.forward(&Tensor::zeros(2, 5)).is_err());
    }
}
