//! Causal multi-head self-attention with manual backward.
//!
//! Activations flow as `(batch·seq, hidden)` matrices; the layer is told
//! the `(batch, seq)` factorization so it can slice per-sequence,
//! per-head blocks for the attention core.
//!
//! The projection and score/context matmuls use the parallel
//! [`zo_tensor::matmul`] kernels (row-partitioned over the shared worker
//! pool, bit-identical at any thread count); the per-head score matrices
//! are usually small enough that the kernels' flop threshold keeps them
//! inline while the big QKV/output projections fan out.

use zo_tensor::{matmul, matmul_a_bt, matmul_at_b, ops, Init, Tensor, TensorError};

use crate::linear::{Linear, LinearCache};

/// Causal multi-head self-attention.
#[derive(Debug, Clone)]
pub struct CausalSelfAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    heads: usize,
}

/// Saved forward state for the backward pass.
#[derive(Debug, Clone)]
pub struct AttentionCache {
    q_cache: LinearCache,
    k_cache: LinearCache,
    v_cache: LinearCache,
    o_cache: LinearCache,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax probabilities, one `(seq, seq)` tensor per `(batch, head)`.
    probs: Vec<Tensor>,
    batch: usize,
    seq: usize,
}

/// Copies the `(seq, head_dim)` block of head `h` in sequence `b` out of a
/// `(batch*seq, hidden)` tensor.
fn head_block(x: &Tensor, b: usize, h: usize, seq: usize, head_dim: usize) -> Tensor {
    let mut out = Tensor::zeros(seq, head_dim);
    for t in 0..seq {
        let src = &x.row(b * seq + t)[h * head_dim..(h + 1) * head_dim];
        out.row_mut(t).copy_from_slice(src);
    }
    out
}

/// Adds a `(seq, head_dim)` block back into its position in `dst`.
fn add_head_block(
    dst: &mut Tensor,
    block: &Tensor,
    b: usize,
    h: usize,
    seq: usize,
    head_dim: usize,
) {
    for t in 0..seq {
        let d = &mut dst.row_mut(b * seq + t)[h * head_dim..(h + 1) * head_dim];
        for (dv, sv) in d.iter_mut().zip(block.row(t)) {
            *dv += *sv;
        }
    }
}

impl CausalSelfAttention {
    /// Creates attention over `hidden` features with `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    pub fn new(hidden: usize, heads: usize, init: &mut Init) -> CausalSelfAttention {
        assert!(
            heads > 0 && hidden.is_multiple_of(heads),
            "hidden must divide into heads"
        );
        CausalSelfAttention {
            wq: Linear::new(hidden, hidden, init),
            wk: Linear::new(hidden, hidden, init),
            wv: Linear::new(hidden, hidden, init),
            wo: Linear::new(hidden, hidden, init),
            heads,
        }
    }

    /// Head count.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.wq.num_params() + self.wk.num_params() + self.wv.num_params() + self.wo.num_params()
    }

    /// Forward pass over `(batch*seq, hidden)` activations.
    pub fn forward(
        &self,
        x: &Tensor,
        batch: usize,
        seq: usize,
    ) -> Result<(Tensor, AttentionCache), TensorError> {
        let hidden = self.wq.fan_in();
        if x.rows() != batch * seq || x.cols() != hidden {
            return Err(TensorError::ShapeMismatch {
                op: "attention",
                lhs: (batch * seq, hidden),
                rhs: x.shape(),
            });
        }
        let head_dim = hidden / self.heads;
        let scale = 1.0 / (head_dim as f32).sqrt();

        let (q, q_cache) = self.wq.forward(x)?;
        let (k, k_cache) = self.wk.forward(x)?;
        let (v, v_cache) = self.wv.forward(x)?;

        let mut ctx = Tensor::zeros(batch * seq, hidden);
        let mut probs = Vec::with_capacity(batch * self.heads);
        for b in 0..batch {
            for h in 0..self.heads {
                let qb = head_block(&q, b, h, seq, head_dim);
                let kb = head_block(&k, b, h, seq, head_dim);
                let vb = head_block(&v, b, h, seq, head_dim);
                // scores[i][j] = q_i · k_j * scale, causal mask j <= i.
                let mut scores = matmul_a_bt(&qb, &kb)?;
                for i in 0..seq {
                    let row = scores.row_mut(i);
                    for (j, s) in row.iter_mut().enumerate() {
                        if j > i {
                            *s = f32::NEG_INFINITY;
                        } else {
                            *s *= scale;
                        }
                    }
                    ops::softmax_row(row);
                }
                let ctx_b = matmul(&scores, &vb)?;
                add_head_block(&mut ctx, &ctx_b, b, h, seq, head_dim);
                probs.push(scores);
            }
        }
        let (out, o_cache) = self.wo.forward(&ctx)?;
        Ok((
            out,
            AttentionCache {
                q_cache,
                k_cache,
                v_cache,
                o_cache,
                q,
                k,
                v,
                probs,
                batch,
                seq,
            },
        ))
    }

    /// Backward pass; accumulates projection grads, returns `dx`.
    pub fn backward(&mut self, cache: &AttentionCache, dy: &Tensor) -> Result<Tensor, TensorError> {
        let hidden = self.wq.fan_in();
        let head_dim = hidden / self.heads;
        let scale = 1.0 / (head_dim as f32).sqrt();
        let (batch, seq) = (cache.batch, cache.seq);

        let dctx = self.wo.backward(&cache.o_cache, dy)?;

        let mut dq = Tensor::zeros(batch * seq, hidden);
        let mut dk = Tensor::zeros(batch * seq, hidden);
        let mut dv = Tensor::zeros(batch * seq, hidden);
        for b in 0..batch {
            for h in 0..self.heads {
                let p = &cache.probs[b * self.heads + h];
                let kb = head_block(&cache.k, b, h, seq, head_dim);
                let vb = head_block(&cache.v, b, h, seq, head_dim);
                let qb = head_block(&cache.q, b, h, seq, head_dim);
                let dctx_b = head_block(&dctx, b, h, seq, head_dim);

                // dV = Pᵀ · dctx ; dP = dctx · Vᵀ.
                let dv_b = matmul_at_b(p, &dctx_b)?;
                let dp = matmul_a_bt(&dctx_b, &vb)?;

                // Softmax backward per row: ds = p ⊙ (dp - Σ dp⊙p).
                let mut ds = Tensor::zeros(seq, seq);
                for i in 0..seq {
                    let prow = p.row(i);
                    let dprow = dp.row(i);
                    let dot: f32 = prow.iter().zip(dprow).map(|(a, b)| a * b).sum();
                    let dsrow = ds.row_mut(i);
                    for j in 0..seq {
                        dsrow[j] = prow[j] * (dprow[j] - dot) * scale;
                    }
                }

                // dQ = ds · K ; dK = dsᵀ · Q.
                let dq_b = matmul(&ds, &kb)?;
                let dk_b = matmul_at_b(&ds, &qb)?;

                add_head_block(&mut dq, &dq_b, b, h, seq, head_dim);
                add_head_block(&mut dk, &dk_b, b, h, seq, head_dim);
                add_head_block(&mut dv, &dv_b, b, h, seq, head_dim);
            }
        }

        let mut dx = self.wq.backward(&cache.q_cache, &dq)?;
        let dxk = self.wk.backward(&cache.k_cache, &dk)?;
        let dxv = self.wv.backward(&cache.v_cache, &dv)?;
        ops::add_assign(dx.data_mut(), dxk.data())?;
        ops::add_assign(dx.data_mut(), dxv.data())?;
        Ok(dx)
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.wq.zero_grads();
        self.wk.zero_grads();
        self.wv.zero_grads();
        self.wo.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causality_holds() {
        // Changing a future token must not change past outputs.
        let mut init = Init::new(10);
        let attn = CausalSelfAttention::new(8, 2, &mut init);
        let mut rng = Init::new(11);
        let x = rng.normal_tensor(6, 8, 1.0); // batch=1, seq=6
        let (y, _) = attn.forward(&x, 1, 6).unwrap();
        let mut x2 = x.clone();
        for j in 0..8 {
            x2.set(5, j, 9.0).unwrap(); // Perturb the last position.
        }
        let (y2, _) = attn.forward(&x2, 1, 6).unwrap();
        for t in 0..5 {
            assert_eq!(y.row(t), y2.row(t), "position {t} leaked future info");
        }
        assert_ne!(y.row(5), y2.row(5));
    }

    #[test]
    fn attention_rows_are_distributions() {
        let mut init = Init::new(12);
        let attn = CausalSelfAttention::new(8, 2, &mut init);
        let mut rng = Init::new(13);
        let x = rng.normal_tensor(8, 8, 1.0); // batch=2, seq=4
        let (_, cache) = attn.forward(&x, 2, 4).unwrap();
        assert_eq!(cache.probs.len(), 4); // 2 sequences × 2 heads
        for p in &cache.probs {
            for i in 0..4 {
                let row = p.row(i);
                let total: f32 = row.iter().sum();
                assert!((total - 1.0).abs() < 1e-5);
                for (j, &v) in row.iter().enumerate() {
                    if j > i {
                        assert_eq!(v, 0.0, "mass above the diagonal");
                    }
                }
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut init = Init::new(14);
        let mut attn = CausalSelfAttention::new(4, 2, &mut init);
        let mut rng = Init::new(15);
        let x = rng.normal_tensor(3, 4, 0.8); // batch=1, seq=3
        let loss = |attn: &CausalSelfAttention, x: &Tensor| -> f32 {
            let (y, _) = attn.forward(x, 1, 3).unwrap();
            // Weighted sum for non-uniform dy.
            y.data()
                .iter()
                .enumerate()
                .map(|(i, v)| v * (0.1 * i as f32 + 0.5))
                .sum()
        };
        let (y, cache) = attn.forward(&x, 1, 3).unwrap();
        let mut dy = Tensor::zeros(3, 4);
        for i in 0..dy.len() {
            dy.data_mut()[i] = 0.1 * i as f32 + 0.5;
        }
        let _ = y;
        let dx = attn.backward(&cache, &dy).unwrap();
        let h = 1e-3;

        // Check every dx entry.
        for r in 0..3 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c).unwrap() + h).unwrap();
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c).unwrap() - h).unwrap();
                let fd = (loss(&attn, &xp) - loss(&attn, &xm)) / (2.0 * h);
                let got = dx.get(r, c).unwrap();
                assert!((got - fd).abs() < 2e-2, "dx[{r}][{c}] {got} vs {fd}");
            }
        }

        // Spot-check a weight gradient in each projection.
        fn proj(attn: &mut CausalSelfAttention, i: usize) -> &mut Linear {
            match i {
                0 => &mut attn.wq,
                1 => &mut attn.wk,
                2 => &mut attn.wv,
                _ => &mut attn.wo,
            }
        }
        for i in 0..4 {
            let got = proj(&mut attn, i).dw.get(1, 2).unwrap();
            let orig = proj(&mut attn, i).w.get(1, 2).unwrap();
            proj(&mut attn, i).w.set(1, 2, orig + h).unwrap();
            let up = loss(&attn, &x);
            proj(&mut attn, i).w.set(1, 2, orig - h).unwrap();
            let down = loss(&attn, &x);
            proj(&mut attn, i).w.set(1, 2, orig).unwrap();
            let fd = (up - down) / (2.0 * h);
            assert!((got - fd).abs() < 2e-2, "projection {i} dw {got} vs {fd}");
        }
    }

    #[test]
    fn shape_validation() {
        let mut init = Init::new(16);
        let attn = CausalSelfAttention::new(8, 2, &mut init);
        let x = Tensor::zeros(5, 8);
        assert!(attn.forward(&x, 2, 3).is_err()); // 5 != 2*3
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn heads_must_divide_hidden() {
        let mut init = Init::new(17);
        CausalSelfAttention::new(10, 3, &mut init);
    }
}
