//! Property tests for the stream simulator and memory pools.

use proptest::prelude::*;
use zo_hetsim::{MemoryPool, Sim, StreamId, TaskId};

proptest! {
    /// The makespan is at least the busiest stream's busy time and at
    /// least the longest dependency chain... lower-bounded here by the
    /// maximum single-stream load.
    #[test]
    fn makespan_lower_bounds(
        durations in prop::collection::vec(0.0f64..10.0, 1..40),
        streams in 1usize..4,
    ) {
        let mut sim = Sim::new();
        let ids: Vec<StreamId> = (0..streams).map(|i| sim.stream(format!("s{i}"))).collect();
        for (i, d) in durations.iter().enumerate() {
            sim.task(ids[i % streams], *d, &[], format!("t{i}")).unwrap();
        }
        let tl = sim.run().unwrap();
        let max_load = (0..streams)
            .map(|i| tl.busy_secs(ids[i]))
            .fold(0.0f64, f64::max);
        prop_assert!(tl.makespan() >= max_load - 1e-9);
        // Total busy equals the sum of durations.
        let total: f64 = (0..streams).map(|i| tl.busy_secs(ids[i])).sum();
        let want: f64 = durations.iter().sum();
        prop_assert!((total - want).abs() < 1e-6);
    }

    /// With a single stream, the makespan is exactly the duration sum
    /// regardless of dependencies (in-order execution).
    #[test]
    fn single_stream_serializes(
        durations in prop::collection::vec(0.0f64..5.0, 1..30),
        dep_stride in 1usize..5,
    ) {
        let mut sim = Sim::new();
        let s = sim.stream("only");
        let mut prev: Vec<TaskId> = Vec::new();
        for (i, d) in durations.iter().enumerate() {
            let deps: Vec<TaskId> = if i % dep_stride == 0 { prev.clone() } else { vec![] };
            let id = sim.task(s, *d, &deps, format!("t{i}")).unwrap();
            prev = vec![id];
        }
        let tl = sim.run().unwrap();
        let want: f64 = durations.iter().sum();
        prop_assert!((tl.makespan() - want).abs() < 1e-9);
    }

    /// Adding a dependency can only delay a task, never speed it up.
    #[test]
    fn dependencies_are_monotone(
        d1 in 0.1f64..5.0,
        d2 in 0.1f64..5.0,
        d3 in 0.1f64..5.0,
    ) {
        // Without the cross dependency.
        let mut sim = Sim::new();
        let a = sim.stream("a");
        let b = sim.stream("b");
        sim.task(a, d1, &[], "x").unwrap();
        let y = sim.task(b, d2, &[], "y").unwrap();
        let z = sim.task(b, d3, &[y], "z").unwrap();
        let free = sim.run().unwrap().finish_of(z);

        // With it.
        let mut sim = Sim::new();
        let a = sim.stream("a");
        let b = sim.stream("b");
        let x = sim.task(a, d1, &[], "x").unwrap();
        let y = sim.task(b, d2, &[x], "y").unwrap();
        let z = sim.task(b, d3, &[y], "z").unwrap();
        let gated = sim.run().unwrap().finish_of(z);

        prop_assert!(gated >= free - 1e-12);
    }

    /// Memory pool usage accounting is exact under arbitrary alloc/free
    /// interleavings, and peak is the max of running usage.
    #[test]
    fn pool_accounting(ops in prop::collection::vec((0u64..100, any::<bool>()), 1..50)) {
        let mut pool = MemoryPool::new("p", 2000);
        let mut live = Vec::new();
        let mut used = 0u64;
        let mut peak = 0u64;
        for (size, free_one) in ops {
            if free_one && !live.is_empty() {
                let (alloc, bytes) = live.pop().unwrap();
                pool.free(alloc).unwrap();
                used -= bytes;
            } else if let Ok(a) = pool.alloc(size, "x") {
                prop_assert!(used + size <= 2000);
                used += size;
                peak = peak.max(used);
                live.push((a, size));
            } else {
                // Failed alloc must only happen when it would overflow.
                prop_assert!(used + size > 2000);
            }
            prop_assert_eq!(pool.used(), used);
        }
        prop_assert_eq!(pool.peak(), peak);
        prop_assert_eq!(pool.available(), 2000 - used);
    }
}
