//! Accounting memory pools with OOM semantics.
//!
//! Model-scale experiments (Fig. 7) are questions about whether a given
//! allocation plan fits a device: pools track usage and peak and fail
//! allocations that exceed capacity, which is exactly the "CUDA OOM" that
//! bounds trainable model size.

use std::collections::HashMap;

use crate::error::SimError;

/// A handle to a live allocation in a [`MemoryPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Allocation {
    id: u64,
    bytes: u64,
}

impl Allocation {
    /// Size of this allocation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// A fixed-capacity memory pool with usage tracking.
///
/// # Examples
///
/// ```
/// use zo_hetsim::MemoryPool;
///
/// let mut pool = MemoryPool::new("gpu0.hbm", 100);
/// let a = pool.alloc(60, "params").unwrap();
/// assert!(pool.alloc(60, "grads").is_err()); // OOM
/// pool.free(a).unwrap();
/// assert_eq!(pool.used(), 0);
/// assert_eq!(pool.peak(), 60);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryPool {
    name: String,
    capacity: u64,
    used: u64,
    peak: u64,
    next_id: u64,
    live: HashMap<u64, (u64, String)>,
}

impl MemoryPool {
    /// Creates a pool with `capacity` bytes.
    pub fn new(name: impl Into<String>, capacity: u64) -> MemoryPool {
        MemoryPool {
            name: name.into(),
            capacity,
            used: 0,
            peak: 0,
            next_id: 0,
            live: HashMap::new(),
        }
    }

    /// Pool name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// High-water mark of usage.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Allocates `bytes`, tagged with `label` for diagnostics.
    ///
    /// Returns [`SimError::OutOfMemory`] if the pool cannot hold it.
    pub fn alloc(&mut self, bytes: u64, label: impl Into<String>) -> Result<Allocation, SimError> {
        if self.used + bytes > self.capacity {
            return Err(SimError::OutOfMemory {
                pool: self.name.clone(),
                requested: bytes,
                used: self.used,
                capacity: self.capacity,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        self.live.insert(id, (bytes, label.into()));
        Ok(Allocation { id, bytes })
    }

    /// Frees a live allocation.
    ///
    /// Returns [`SimError::UnknownAllocation`] on double-free.
    pub fn free(&mut self, alloc: Allocation) -> Result<(), SimError> {
        match self.live.remove(&alloc.id) {
            Some((bytes, _)) => {
                self.used -= bytes;
                Ok(())
            }
            None => Err(SimError::UnknownAllocation {
                pool: self.name.clone(),
                id: alloc.id,
            }),
        }
    }

    /// Returns `(label, bytes)` for every live allocation, largest first.
    pub fn live_allocations(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self.live.values().map(|(b, l)| (l.clone(), *b)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Whether an allocation of `bytes` would currently succeed.
    pub fn would_fit(&self, bytes: u64) -> bool {
        self.used + bytes <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut pool = MemoryPool::new("p", 100);
        let a = pool.alloc(40, "a").unwrap();
        let b = pool.alloc(60, "b").unwrap();
        assert_eq!(pool.used(), 100);
        assert_eq!(pool.available(), 0);
        assert!(!pool.would_fit(1));
        pool.free(a).unwrap();
        assert_eq!(pool.used(), 60);
        assert!(pool.would_fit(40));
        pool.free(b).unwrap();
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.peak(), 100);
    }

    #[test]
    fn oom_reports_context() {
        let mut pool = MemoryPool::new("gpu", 10);
        pool.alloc(8, "x").unwrap();
        match pool.alloc(5, "y") {
            Err(SimError::OutOfMemory {
                pool,
                requested,
                used,
                capacity,
            }) => {
                assert_eq!(pool, "gpu");
                assert_eq!(requested, 5);
                assert_eq!(used, 8);
                assert_eq!(capacity, 10);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        // Failed allocation must not change usage.
        assert_eq!(pool.used(), 8);
    }

    #[test]
    fn double_free_rejected() {
        let mut pool = MemoryPool::new("p", 10);
        let a = pool.alloc(4, "a").unwrap();
        pool.free(a).unwrap();
        assert!(matches!(
            pool.free(a),
            Err(SimError::UnknownAllocation { .. })
        ));
    }

    #[test]
    fn live_allocations_sorted() {
        let mut pool = MemoryPool::new("p", 100);
        pool.alloc(10, "small").unwrap();
        pool.alloc(50, "big").unwrap();
        let live = pool.live_allocations();
        assert_eq!(live[0], ("big".to_string(), 50));
        assert_eq!(live[1], ("small".to_string(), 10));
    }

    #[test]
    fn zero_byte_allocations_allowed() {
        let mut pool = MemoryPool::new("p", 0);
        let a = pool.alloc(0, "empty").unwrap();
        pool.free(a).unwrap();
    }
}
