//! Stream-ordered discrete-event simulation core.
//!
//! The execution model mirrors how GPU runtimes actually behave: every
//! hardware engine (a GPU's compute stream, each direction of its PCIe
//! link, the CPU worker pool, the NVLink/IB fabric) is an **in-order
//! stream**. Work items are submitted in program order and start when both
//! (a) all their cross-stream dependencies have finished and (b) the
//! previous item on the same stream has finished.
//!
//! This captures precisely the overlap effects the paper's schedules rely
//! on: gradient transfers overlapping backward compute (Sec. 4.1), the
//! tiled parameter copy overlapping the CPU Adam of the next tile
//! (Sec. 5.1), and DPU overlapping the CPU step with the next
//! forward+backward (Sec. 5.2).

use serde::Serialize;

use crate::error::SimError;

/// Identifies a stream (an in-order hardware engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct StreamId(pub usize);

/// Identifies a submitted task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct TaskId(pub usize);

/// One scheduled work item in the completed simulation.
#[derive(Debug, Clone, Serialize)]
pub struct ScheduledTask {
    /// The task id.
    pub id: TaskId,
    /// The stream it ran on.
    pub stream: StreamId,
    /// Human-readable label (for traces).
    pub label: String,
    /// Start time in seconds.
    pub start: f64,
    /// Finish time in seconds.
    pub finish: f64,
}

struct PendingTask {
    stream: StreamId,
    duration: f64,
    deps: Vec<TaskId>,
    label: String,
    earliest: f64,
}

/// A stream-ordered simulator.
///
/// # Examples
///
/// ```
/// use zo_hetsim::Sim;
///
/// let mut sim = Sim::new();
/// let gpu = sim.stream("gpu0.compute");
/// let pcie = sim.stream("gpu0.d2h");
/// let bwd = sim.task(gpu, 1.0, &[], "backward").unwrap();
/// // The gradient copy depends on backward but runs on the PCIe stream,
/// // so a following GPU task overlaps with it.
/// let copy = sim.task(pcie, 0.5, &[bwd], "grad offload").unwrap();
/// let next = sim.task(gpu, 1.0, &[], "next fwd").unwrap();
/// let timeline = sim.run().unwrap();
/// assert_eq!(timeline.finish_of(copy), 1.5);
/// assert_eq!(timeline.finish_of(next), 2.0); // overlapped with the copy
/// ```
#[derive(Default)]
pub struct Sim {
    streams: Vec<String>,
    tasks: Vec<PendingTask>,
}

impl Sim {
    /// Creates an empty simulator.
    pub fn new() -> Sim {
        Sim::default()
    }

    /// Registers a named stream and returns its id.
    pub fn stream(&mut self, name: impl Into<String>) -> StreamId {
        self.streams.push(name.into());
        StreamId(self.streams.len() - 1)
    }

    /// Number of registered streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Submits a task of `duration` seconds on `stream`, starting no
    /// earlier than all of `deps` have finished.
    ///
    /// Dependencies must refer to already-submitted tasks (program order),
    /// like CUDA events recorded earlier.
    pub fn task(
        &mut self,
        stream: StreamId,
        duration: f64,
        deps: &[TaskId],
        label: impl Into<String>,
    ) -> Result<TaskId, SimError> {
        self.task_after(stream, duration, deps, 0.0, label)
    }

    /// Like [`Sim::task`] but additionally constrained to start no earlier
    /// than the absolute time `earliest`.
    pub fn task_after(
        &mut self,
        stream: StreamId,
        duration: f64,
        deps: &[TaskId],
        earliest: f64,
        label: impl Into<String>,
    ) -> Result<TaskId, SimError> {
        if stream.0 >= self.streams.len() {
            return Err(SimError::UnknownResource { id: stream.0 });
        }
        if !duration.is_finite() || duration < 0.0 {
            return Err(SimError::InvalidDuration { duration });
        }
        let id = TaskId(self.tasks.len());
        for d in deps {
            if d.0 >= id.0 {
                return Err(SimError::UnknownTask { id: d.0 });
            }
        }
        self.tasks.push(PendingTask {
            stream,
            duration,
            deps: deps.to_vec(),
            label: label.into(),
            earliest,
        });
        Ok(id)
    }

    /// Runs the simulation, consuming the submitted tasks.
    pub fn run(&mut self) -> Result<Timeline, SimError> {
        let mut stream_free = vec![0.0f64; self.streams.len()];
        let mut finished = Vec::with_capacity(self.tasks.len());
        let mut scheduled = Vec::with_capacity(self.tasks.len());
        for (i, t) in self.tasks.iter().enumerate() {
            let mut start = stream_free[t.stream.0].max(t.earliest);
            for d in &t.deps {
                let f: f64 = finished[d.0];
                start = start.max(f);
            }
            let finish = start + t.duration;
            stream_free[t.stream.0] = finish;
            finished.push(finish);
            scheduled.push(ScheduledTask {
                id: TaskId(i),
                stream: t.stream,
                label: t.label.clone(),
                start,
                finish,
            });
        }
        Ok(Timeline {
            streams: self.streams.clone(),
            tasks: scheduled,
        })
    }
}

/// The completed schedule: every task with its start/finish times.
#[derive(Debug, Clone, Serialize)]
pub struct Timeline {
    streams: Vec<String>,
    tasks: Vec<ScheduledTask>,
}

impl Timeline {
    /// Total makespan (finish time of the last task), 0 if empty.
    pub fn makespan(&self) -> f64 {
        self.tasks.iter().map(|t| t.finish).fold(0.0, f64::max)
    }

    /// Finish time of a task.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from the producing [`Sim`].
    pub fn finish_of(&self, id: TaskId) -> f64 {
        self.tasks[id.0].finish
    }

    /// Start time of a task.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from the producing [`Sim`].
    pub fn start_of(&self, id: TaskId) -> f64 {
        self.tasks[id.0].start
    }

    /// Busy seconds accumulated on a stream.
    pub fn busy_secs(&self, stream: StreamId) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.stream == stream)
            .map(|t| t.finish - t.start)
            .sum()
    }

    /// Utilization of a stream over the makespan (0 for an empty timeline).
    pub fn utilization(&self, stream: StreamId) -> f64 {
        let total = self.makespan();
        if total == 0.0 {
            0.0
        } else {
            self.busy_secs(stream) / total
        }
    }

    /// All scheduled tasks, in submission order.
    pub fn tasks(&self) -> &[ScheduledTask] {
        &self.tasks
    }

    /// Stream names, indexed by [`StreamId`].
    pub fn stream_names(&self) -> &[String] {
        &self.streams
    }

    /// Serializes the timeline as pretty JSON (for trace inspection).
    pub fn to_json(&self) -> String {
        // Serialization of this plain data structure cannot fail.
        serde_json::to_string_pretty(self).expect("timeline serialization")
    }

    /// Converts the schedule into plain [`zo_trace::TraceEvent`]s — the
    /// same event type real engine runs record — with each stream as a
    /// track and simulated seconds mapped to microseconds.
    pub fn to_trace_events(&self) -> Vec<zo_trace::TraceEvent> {
        self.tasks
            .iter()
            .map(|t| {
                let start_us = (t.start * 1e6).round() as u64;
                let end_us = (t.finish * 1e6).round() as u64;
                zo_trace::TraceEvent {
                    track: self.streams[t.stream.0].clone(),
                    name: t.label.clone(),
                    start_us,
                    dur_us: end_us.saturating_sub(start_us),
                }
            })
            .collect()
    }

    /// Renders the simulated schedule as Chrome trace format JSON,
    /// identical in shape to a real run's
    /// `zo_trace::Tracer::chrome_trace_json` export.
    pub fn chrome_trace_json(&self) -> String {
        zo_trace::chrome_trace_json_from(&self.to_trace_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_serializes_tasks() {
        let mut sim = Sim::new();
        let s = sim.stream("s");
        let a = sim.task(s, 1.0, &[], "a").unwrap();
        let b = sim.task(s, 2.0, &[], "b").unwrap();
        let tl = sim.run().unwrap();
        assert_eq!(tl.finish_of(a), 1.0);
        assert_eq!(tl.start_of(b), 1.0);
        assert_eq!(tl.finish_of(b), 3.0);
        assert_eq!(tl.makespan(), 3.0);
        assert_eq!(tl.busy_secs(s), 3.0);
        assert_eq!(tl.utilization(s), 1.0);
    }

    #[test]
    fn cross_stream_dependency_gates_start() {
        let mut sim = Sim::new();
        let s1 = sim.stream("s1");
        let s2 = sim.stream("s2");
        let a = sim.task(s1, 2.0, &[], "a").unwrap();
        let b = sim.task(s2, 1.0, &[a], "b").unwrap();
        let tl = sim.run().unwrap();
        assert_eq!(tl.start_of(b), 2.0);
        assert_eq!(tl.finish_of(b), 3.0);
    }

    #[test]
    fn independent_streams_overlap() {
        let mut sim = Sim::new();
        let s1 = sim.stream("s1");
        let s2 = sim.stream("s2");
        sim.task(s1, 5.0, &[], "long").unwrap();
        let b = sim.task(s2, 1.0, &[], "short").unwrap();
        let tl = sim.run().unwrap();
        assert_eq!(tl.finish_of(b), 1.0);
        assert_eq!(tl.makespan(), 5.0);
        assert!((tl.utilization(s2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn earliest_constraint_applies() {
        let mut sim = Sim::new();
        let s = sim.stream("s");
        let a = sim.task_after(s, 1.0, &[], 10.0, "late").unwrap();
        let tl = sim.run().unwrap();
        assert_eq!(tl.start_of(a), 10.0);
        assert_eq!(tl.finish_of(a), 11.0);
    }

    #[test]
    fn forward_dependency_rejected() {
        let mut sim = Sim::new();
        let s = sim.stream("s");
        let err = sim.task(s, 1.0, &[TaskId(5)], "bad");
        assert!(matches!(err, Err(SimError::UnknownTask { id: 5 })));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut sim = Sim::new();
        let s = sim.stream("s");
        assert!(matches!(
            sim.task(StreamId(9), 1.0, &[], "x"),
            Err(SimError::UnknownResource { id: 9 })
        ));
        assert!(matches!(
            sim.task(s, -1.0, &[], "x"),
            Err(SimError::InvalidDuration { .. })
        ));
        assert!(matches!(
            sim.task(s, f64::NAN, &[], "x"),
            Err(SimError::InvalidDuration { .. })
        ));
    }

    #[test]
    fn empty_timeline() {
        let mut sim = Sim::new();
        let tl = sim.run().unwrap();
        assert_eq!(tl.makespan(), 0.0);
    }

    #[test]
    fn models_gradient_offload_overlap() {
        // The paper's single-GPU schedule: backward is a chain of per-layer
        // compute tasks; each layer's gradient copy runs on the d2h stream
        // as soon as that layer finishes. With copy time <= layer compute
        // time, the total overhead is just the final copy's tail.
        let mut sim = Sim::new();
        let gpu = sim.stream("gpu");
        let d2h = sim.stream("d2h");
        let layers = 10;
        let mut prev: Option<TaskId> = None;
        let mut last_copy = None;
        for i in 0..layers {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            let bwd = sim.task(gpu, 1.0, &deps, format!("bwd{i}")).unwrap();
            last_copy = Some(sim.task(d2h, 0.5, &[bwd], format!("copy{i}")).unwrap());
            prev = Some(bwd);
        }
        let tl = sim.run().unwrap();
        // Backward chain: 10 s; final copy starts at 10.0, ends 10.5.
        assert_eq!(tl.finish_of(prev.unwrap()), 10.0);
        assert_eq!(tl.finish_of(last_copy.unwrap()), 10.5);
        // 9 of the 10 copies were fully hidden.
        assert_eq!(tl.makespan(), 10.5);
    }
}
