//! Calibrated presets matching the paper's testbed (Table 2).

use crate::specs::{ClusterSpec, CpuSpec, GpuSpec, LinkSpec, NodeSpec, NvmeSpec, GIB};

/// NVIDIA Tesla V100 (32 GB HBM2), as in the paper's DGX-2.
///
/// Peak tensor-core throughput is 112 TFLOPS (125 boost); end-to-end
/// transformer training achieves 30–50, captured by `max_efficiency` 0.44
/// with a small-batch knee near 6.
pub fn v100() -> GpuSpec {
    GpuSpec {
        mem_bytes: 32 * GIB,
        peak_fp16_tflops: 112.0,
        peak_fp32_tflops: 15.7,
        hbm_gbps: 900.0,
        max_efficiency: 0.44,
        batch_knee: 6.0,
    }
}

/// NVIDIA A100 (80 GB), the "current flagship" the paper's Sec. 2 notes
/// still cannot hold Turing-NLG's 284 GB of model states.
pub fn a100_80g() -> GpuSpec {
    GpuSpec {
        mem_bytes: 80 * GIB,
        peak_fp16_tflops: 312.0,
        peak_fp32_tflops: 19.5,
        hbm_gbps: 2039.0,
        max_efficiency: 0.45,
        batch_knee: 6.0,
    }
}

/// The DGX-2 CPU complex: 2× Intel Xeon Platinum 8168, 1.5 TB DDR4-2666.
///
/// Adam rates are calibrated to Table 4: CPU-Adam 2.57 s @ 10B ≈ 0.26 s/B;
/// PT-CPU 14.76 s @ 10B ≈ 1.48 s/B.
pub fn dgx2_cpu() -> CpuSpec {
    CpuSpec {
        mem_bytes: 1536 * GIB,
        cores: 48,
        ddr_gbps: 85.0,
        cpu_adam_secs_per_b: 0.26,
        naive_adam_secs_per_b: 1.48,
    }
}

/// PCIe 3.0 x16: the paper's "bidirectional 32 GBps" = 16 GB/s per way.
pub fn pcie3_x16() -> LinkSpec {
    LinkSpec {
        gbps_each_way: 16.0,
        latency_s: 20e-6,
    }
}

/// A full DGX-2 node: 16× V100-32GB over NVSwitch.
pub fn dgx2() -> NodeSpec {
    NodeSpec {
        gpus_per_node: 16,
        gpu: v100(),
        cpu: dgx2_cpu(),
        pcie: pcie3_x16(),
        // NVSwitch gives ~120 GB/s effective per-GPU bus bandwidth for
        // ring collectives.
        nvlink_gbps: 120.0,
        nvme: None,
    }
}

/// A datacenter 1 TB NVMe drive (PCIe 3.0 x4 class: ~3.2/2.0 GB/s
/// sequential read/write).
pub fn nvme_1tb() -> NvmeSpec {
    NvmeSpec {
        capacity_bytes: 1024 * GIB,
        read_gbps: 3.2,
        write_gbps: 2.0,
        latency_s: 80e-6,
    }
}

/// A commodity single-GPU workstation: one V100-32GB, 64 GiB of host
/// DRAM, and a 1 TB NVMe drive. The "democratization" target one tier
/// further down than the paper's DGX-2 slice — host DRAM is now the
/// binding constraint unless optimizer states spill to flash.
pub fn workstation() -> NodeSpec {
    NodeSpec {
        gpus_per_node: 1,
        cpu: CpuSpec {
            mem_bytes: 64 * GIB,
            cores: 16,
            ddr_gbps: 60.0,
            cpu_adam_secs_per_b: 0.35,
            naive_adam_secs_per_b: 1.8,
        },
        nvme: Some(nvme_1tb()),
        ..dgx2()
    }
}

/// A single-GPU slice of a DGX-2 (for the single-GPU experiments).
pub fn single_v100_node() -> NodeSpec {
    NodeSpec {
        gpus_per_node: 1,
        ..dgx2()
    }
}

/// `nodes`× DGX-2 connected by InfiniBand (Mellanox CS7500 fabric).
///
/// 8 × 100 Gb/s HCAs per DGX-2 ≈ 100 GB/s aggregate per node.
pub fn dgx2_cluster(nodes: u32) -> ClusterSpec {
    ClusterSpec {
        nodes,
        node: dgx2(),
        ib_gbps_per_node: 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_capacities() {
        assert_eq!(v100().mem_bytes, 32 * GIB);
        assert_eq!(dgx2_cpu().mem_bytes, 1536 * GIB);
        assert_eq!(dgx2().gpus_per_node, 16);
        // Bidirectional 32 GB/s = 16 each way.
        assert_eq!(pcie3_x16().gbps_each_way, 16.0);
    }

    #[test]
    fn table4_rate_calibration() {
        let cpu = dgx2_cpu();
        // 10B parameters: paper reports 2.57 s (CPU-Adam), 14.76 s (PT-CPU).
        let t_fast = cpu.adam_secs(10e9, 1.0);
        let t_naive = cpu.naive_adam_secs(10e9, 1.0);
        assert!((t_fast - 2.6).abs() < 0.3, "CPU-Adam 10B: {t_fast}");
        assert!((t_naive - 14.8).abs() < 1.0, "PT-CPU 10B: {t_naive}");
        // The headline ratio: >5x for all configurations.
        assert!(t_naive / t_fast > 5.0);
    }

    #[test]
    fn a100_cannot_hold_turing_nlg_states() {
        // Sec. 2: Turing-NLG's 17.2B params need 284 GB of model states,
        // "clearly beyond the memory capacity of even the current flagship
        // NVIDIA A100 GPU with 80 GB".
        let states = 16u64 * 17_200_000_000;
        assert!(states > a100_80g().mem_bytes);
        assert!(states as f64 / 1e9 > 270.0);
    }

    #[test]
    fn single_gpu_node_is_dgx2_slice() {
        let n = single_v100_node();
        assert_eq!(n.gpus_per_node, 1);
        assert_eq!(n.gpu, v100());
        assert_eq!(n.cpu, dgx2_cpu());
        assert_eq!(n.nvme, None);
    }

    #[test]
    fn workstation_has_small_dram_and_a_flash_tier() {
        let w = workstation();
        assert_eq!(w.gpus_per_node, 1);
        assert_eq!(w.cpu.mem_bytes, 64 * GIB);
        let nvme = w.nvme.expect("workstation carries an NVMe drive");
        assert_eq!(nvme.capacity_bytes, 1024 * GIB);
        // Flash is an order of magnitude slower than DDR but holds an
        // order of magnitude more than this host's DRAM.
        assert!(nvme.read_gbps < w.cpu.ddr_gbps / 10.0);
        assert!(nvme.capacity_bytes > 10 * w.cpu.mem_bytes);
        // A 12-byte/param optimizer sweep over 5B params stays in tens of
        // seconds — slow, but it trains; without the tier it cannot.
        let sweep = nvme.sweep_secs(12.0 * 5e9);
        assert!(sweep > 10.0 && sweep < 120.0, "sweep {sweep}");
    }
}
