//! Error types for the hardware simulator.

use core::fmt;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A memory allocation exceeded pool capacity — the simulated OOM.
    OutOfMemory {
        /// Pool name (e.g. "gpu0.hbm").
        pool: String,
        /// Requested bytes.
        requested: u64,
        /// Bytes already in use.
        used: u64,
        /// Pool capacity in bytes.
        capacity: u64,
    },
    /// An allocation handle was freed twice or never existed.
    UnknownAllocation {
        /// Pool name.
        pool: String,
        /// The offending handle id.
        id: u64,
    },
    /// A task referenced a dependency that has not been submitted.
    UnknownTask {
        /// The offending task id.
        id: usize,
    },
    /// A task referenced a resource that does not exist.
    UnknownResource {
        /// The offending resource id.
        id: usize,
    },
    /// A task duration was negative or NaN.
    InvalidDuration {
        /// The offending duration in seconds.
        duration: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory { pool, requested, used, capacity } => write!(
                f,
                "out of memory in pool '{pool}': requested {requested} B with {used}/{capacity} B used"
            ),
            SimError::UnknownAllocation { pool, id } => {
                write!(f, "unknown allocation {id} in pool '{pool}'")
            }
            SimError::UnknownTask { id } => write!(f, "unknown task dependency {id}"),
            SimError::UnknownResource { id } => write!(f, "unknown resource {id}"),
            SimError::InvalidDuration { duration } => {
                write!(f, "invalid task duration {duration}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::OutOfMemory {
            pool: "gpu0.hbm".into(),
            requested: 10,
            used: 5,
            capacity: 12,
        };
        assert!(e.to_string().contains("gpu0.hbm"));
        assert!(e.to_string().contains("10"));
        assert!(SimError::UnknownTask { id: 3 }.to_string().contains('3'));
        assert!(SimError::InvalidDuration { duration: -1.0 }
            .to_string()
            .contains("-1"));
    }
}
