//! Discrete-event heterogeneous-hardware simulator.
//!
//! The paper's evaluation runs on hardware this reproduction does not have
//! (V100 GPUs, DGX-2 nodes, an InfiniBand cluster). This crate substitutes
//! a calibrated simulator:
//!
//! * [`specs`] / [`presets`] — device models matching Table 2 (V100-32GB,
//!   2×Xeon 8168, 32 GB/s bidirectional PCIe, NVSwitch, IB fabric);
//! * [`MemoryPool`] — capacity-accounting allocators whose OOM failures
//!   bound trainable model size exactly as CUDA OOM does (Fig. 7);
//! * [`Sim`] / [`Timeline`] — a stream-ordered task-graph simulator that
//!   reproduces the overlap semantics of CUDA streams + async copies,
//!   which every throughput experiment (Figs. 8–11) is built on.

#![warn(missing_docs)]

mod error;
pub mod fault;
mod memory;
pub mod presets;
mod sim;
pub mod specs;
pub mod trace;

pub use error::SimError;
pub use fault::FaultyLinkSpec;
pub use memory::{Allocation, MemoryPool};
pub use sim::{ScheduledTask, Sim, StreamId, TaskId, Timeline};
pub use specs::{ClusterSpec, CpuSpec, GpuSpec, LinkSpec, NodeSpec, NvmeSpec, GIB};
pub use trace::{render_gantt, render_report, utilization_report, StreamReport};
