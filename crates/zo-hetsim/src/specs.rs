//! Hardware specifications for the simulated testbed.
//!
//! These mirror Table 2 of the paper (a DGX-2 node: 16×V100-32GB, 2×Xeon
//! 8168, 1.5 TB DDR4, 32 GB/s bidirectional PCIe) plus the 8-node
//! InfiniBand cluster used for the scalability experiment (Fig. 11).

use serde::{Deserialize, Serialize};

/// Gigabytes as bytes.
pub const GIB: u64 = 1024 * 1024 * 1024;

/// A GPU model: compute rates and memory capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Peak fp16 (tensor core) throughput in TFLOP/s.
    pub peak_fp16_tflops: f64,
    /// Peak fp32 throughput in TFLOP/s.
    pub peak_fp32_tflops: f64,
    /// Device memory bandwidth in GB/s.
    pub hbm_gbps: f64,
    /// Fraction of peak achievable by large transformer kernels.
    ///
    /// End-to-end transformer training on V100 lands at 30–50 TFLOPS out
    /// of 112–125 peak; this caps the efficiency model.
    pub max_efficiency: f64,
    /// Micro-batch scale at which kernels reach ~63% of `max_efficiency`.
    ///
    /// Smaller micro-batches launch thinner GEMMs that cannot fill the
    /// device; the efficiency model is
    /// `max_efficiency * (1 - exp(-micro_batch / batch_knee))`.
    pub batch_knee: f64,
}

impl GpuSpec {
    /// Achieved fraction of peak fp16 throughput for a given micro-batch.
    pub fn efficiency(&self, micro_batch: f64) -> f64 {
        self.max_efficiency * (1.0 - (-micro_batch / self.batch_knee).exp())
    }

    /// Achieved fp16 TFLOP/s for a given micro-batch.
    pub fn achieved_tflops(&self, micro_batch: f64) -> f64 {
        self.peak_fp16_tflops * self.efficiency(micro_batch)
    }

    /// Seconds to execute `flops` floating point operations at `micro_batch`.
    pub fn compute_secs(&self, flops: f64, micro_batch: f64) -> f64 {
        flops / (self.achieved_tflops(micro_batch) * 1e12)
    }
}

/// A CPU socket-pair model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Host memory capacity in bytes.
    pub mem_bytes: u64,
    /// Total cores across sockets.
    pub cores: u32,
    /// Aggregate DDR streaming bandwidth in GB/s.
    pub ddr_gbps: f64,
    /// Optimized CPU-Adam latency in seconds per billion parameters.
    ///
    /// Calibrated from Table 4 (CPU-Adam: ~0.25 s/B on 2×Xeon 8168); the
    /// `zo-bench` harness re-measures this constant on the host with the
    /// real `CpuAdam` kernel.
    pub cpu_adam_secs_per_b: f64,
    /// PyTorch-style naive Adam latency in seconds per billion parameters
    /// (Table 4 PT-CPU: ~1.4 s/B).
    pub naive_adam_secs_per_b: f64,
}

impl CpuSpec {
    /// Seconds for an optimized CPU-Adam step over `params` parameters,
    /// using `share` of the node's CPU (1.0 = whole node).
    pub fn adam_secs(&self, params: f64, share: f64) -> f64 {
        (params / 1e9) * self.cpu_adam_secs_per_b / share.max(1e-9)
    }

    /// Seconds for a naive (PT-CPU) Adam step over `params` parameters.
    pub fn naive_adam_secs(&self, params: f64, share: f64) -> f64 {
        (params / 1e9) * self.naive_adam_secs_per_b / share.max(1e-9)
    }
}

/// A point-to-point link (PCIe between one GPU and the host).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bandwidth per direction in GB/s.
    pub gbps_each_way: f64,
    /// Fixed per-transfer latency in seconds.
    pub latency_s: f64,
}

impl LinkSpec {
    /// Seconds to move `bytes` one way.
    pub fn transfer_secs(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / (self.gbps_each_way * 1e9)
    }
}

/// An NVMe device attached to the host — the memory tier below DRAM
/// (ZeRO-Infinity's direction: optimizer states stream from flash).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmeSpec {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Sequential read bandwidth in GB/s.
    pub read_gbps: f64,
    /// Sequential write bandwidth in GB/s.
    pub write_gbps: f64,
    /// Fixed per-operation latency in seconds.
    pub latency_s: f64,
}

impl NvmeSpec {
    /// Seconds to read `bytes` sequentially.
    pub fn read_secs(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / (self.read_gbps * 1e9)
    }

    /// Seconds to write `bytes` sequentially.
    pub fn write_secs(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / (self.write_gbps * 1e9)
    }

    /// Seconds for one optimizer sweep that reads and rewrites `bytes` of
    /// tier-resident state (the per-step cost of the streaming schedule,
    /// assuming reads and writes share the device serially).
    pub fn sweep_secs(&self, bytes: f64) -> f64 {
        self.read_secs(bytes) + self.write_secs(bytes)
    }
}

/// A multi-GPU node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// The GPU model.
    pub gpu: GpuSpec,
    /// The CPU complex.
    pub cpu: CpuSpec,
    /// Host↔GPU link per GPU.
    pub pcie: LinkSpec,
    /// Effective per-GPU NVLink bus bandwidth for collectives, GB/s.
    pub nvlink_gbps: f64,
    /// Optional NVMe tier below host DRAM (`None` = no flash tier).
    pub nvme: Option<NvmeSpec>,
}

/// A cluster of identical nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: u32,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Inter-node InfiniBand bandwidth per node in GB/s.
    pub ib_gbps_per_node: f64,
}

impl ClusterSpec {
    /// Total GPU count.
    pub fn total_gpus(&self) -> u32 {
        self.nodes * self.node.gpus_per_node
    }

    /// Effective per-GPU bus bandwidth (GB/s) for ring collectives over
    /// `gpus` participants.
    ///
    /// Within one node the ring runs over NVLink; as soon as it spans
    /// nodes, the slowest hop — the InfiniBand uplink shared by all GPUs
    /// of a node — bounds the ring.
    pub fn collective_gbps(&self, gpus: u32) -> f64 {
        if gpus <= self.node.gpus_per_node {
            self.node.nvlink_gbps
        } else {
            // Each node's uplink carries the traffic of its whole GPU set.
            self.ib_gbps_per_node / self.node.gpus_per_node as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn gpu_efficiency_monotone_and_bounded() {
        let gpu = presets::v100();
        let mut last = 0.0;
        for mb in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let e = gpu.efficiency(mb);
            assert!(e > last, "efficiency must grow with micro-batch");
            assert!(e <= gpu.max_efficiency);
            last = e;
        }
        // Large batches saturate near max_efficiency.
        assert!(gpu.efficiency(256.0) > 0.99 * gpu.max_efficiency);
    }

    #[test]
    fn compute_secs_scales_linearly_in_flops() {
        let gpu = presets::v100();
        let t1 = gpu.compute_secs(1e12, 16.0);
        let t2 = gpu.compute_secs(2e12, 16.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn link_transfer_includes_latency() {
        let link = LinkSpec {
            gbps_each_way: 16.0,
            latency_s: 10e-6,
        };
        // 16 GB at 16 GB/s = 1 s plus latency.
        let t = link.transfer_secs(16e9);
        assert!((t - 1.00001).abs() < 1e-9);
    }

    #[test]
    fn adam_secs_scale_with_share() {
        let cpu = presets::dgx2().cpu;
        let whole = cpu.adam_secs(10e9, 1.0);
        let quarter = cpu.adam_secs(10e9, 0.25);
        assert!((quarter / whole - 4.0).abs() < 1e-9);
        assert!(cpu.naive_adam_secs(1e9, 1.0) > cpu.adam_secs(1e9, 1.0));
    }

    #[test]
    fn cluster_collective_bandwidth_drops_across_nodes() {
        let cluster = presets::dgx2_cluster(8);
        let intra = cluster.collective_gbps(16);
        let inter = cluster.collective_gbps(32);
        assert!(intra > inter, "IB must be slower than NVLink");
        assert_eq!(cluster.total_gpus(), 128);
    }
}
