//! Timeline inspection: utilization summaries and text Gantt rendering.
//!
//! The schedules the perf models build are only trustworthy if their
//! overlap behaviour can be inspected; this module renders a [`Timeline`]
//! as a per-stream utilization report and an ASCII Gantt chart, and both
//! are exercised by tests against hand-computable schedules.

use crate::sim::{StreamId, Timeline};

/// Per-stream utilization summary.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Stream name.
    pub name: String,
    /// Busy seconds.
    pub busy: f64,
    /// Busy / makespan.
    pub utilization: f64,
    /// Number of tasks executed.
    pub tasks: usize,
}

/// Builds the utilization report for every stream.
pub fn utilization_report(tl: &Timeline) -> Vec<StreamReport> {
    tl.stream_names()
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let id = StreamId(i);
            StreamReport {
                name: name.clone(),
                busy: tl.busy_secs(id),
                utilization: tl.utilization(id),
                tasks: tl.tasks().iter().filter(|t| t.stream == id).count(),
            }
        })
        .collect()
}

/// Renders the report as an aligned table.
pub fn render_report(tl: &Timeline) -> String {
    let mut out = format!("makespan: {:.6} s\n", tl.makespan());
    out.push_str(&format!(
        "{:<20} {:>10} {:>8} {:>7}\n",
        "stream", "busy (s)", "util", "tasks"
    ));
    for r in utilization_report(tl) {
        out.push_str(&format!(
            "{:<20} {:>10.6} {:>7.1}% {:>7}\n",
            r.name,
            r.busy,
            r.utilization * 100.0,
            r.tasks
        ));
    }
    out
}

/// Renders an ASCII Gantt chart with `width` character columns.
///
/// Each stream gets one row; a `#` marks a busy column, `.` idle. Columns
/// map linearly onto `[0, makespan]`.
pub fn render_gantt(tl: &Timeline, width: usize) -> String {
    let width = width.max(1);
    let span = tl.makespan();
    let mut out = String::new();
    if span == 0.0 {
        return out;
    }
    let name_w = tl.stream_names().iter().map(|n| n.len()).max().unwrap_or(0);
    for (i, name) in tl.stream_names().iter().enumerate() {
        let mut row = vec!['.'; width];
        for t in tl.tasks().iter().filter(|t| t.stream == StreamId(i)) {
            // Half-open column range touched by [start, finish).
            let c0 = ((t.start / span) * width as f64).floor() as usize;
            let c1 = ((t.finish / span) * width as f64).ceil() as usize;
            for c in row.iter_mut().take(c1.min(width)).skip(c0.min(width)) {
                *c = '#';
            }
        }
        out.push_str(&format!("{name:<name_w$} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;

    fn two_stream_timeline() -> Timeline {
        let mut sim = Sim::new();
        let a = sim.stream("gpu");
        let b = sim.stream("pcie");
        let t1 = sim.task(a, 2.0, &[], "compute").unwrap();
        sim.task(b, 1.0, &[t1], "copy").unwrap();
        sim.run().unwrap()
    }

    #[test]
    fn report_totals() {
        let tl = two_stream_timeline();
        let report = utilization_report(&tl);
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].name, "gpu");
        assert_eq!(report[0].busy, 2.0);
        assert_eq!(report[0].tasks, 1);
        assert!((report[0].utilization - 2.0 / 3.0).abs() < 1e-12);
        assert!((report[1].utilization - 1.0 / 3.0).abs() < 1e-12);
        let text = render_report(&tl);
        assert!(text.contains("makespan: 3.0"));
        assert!(text.contains("gpu"));
        assert!(text.contains("66.7%"));
    }

    #[test]
    fn gantt_shape() {
        let tl = two_stream_timeline();
        let g = render_gantt(&tl, 12);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        // GPU busy for the first 2/3 of columns, PCIe the last 1/3.
        let gpu_row = lines[0].split('|').nth(1).unwrap();
        let pcie_row = lines[1].split('|').nth(1).unwrap();
        assert_eq!(&gpu_row[..8], "########");
        assert_eq!(&gpu_row[8..], "....");
        assert_eq!(&pcie_row[..8], "........");
        assert_eq!(&pcie_row[8..], "####");
    }

    #[test]
    fn empty_timeline_renders_empty() {
        let mut sim = Sim::new();
        sim.stream("s");
        let tl = sim.run().unwrap();
        assert_eq!(render_gantt(&tl, 10), "");
        let report = utilization_report(&tl);
        assert_eq!(report[0].busy, 0.0);
        assert_eq!(report[0].utilization, 0.0);
    }

    #[test]
    fn json_trace_is_valid() {
        let tl = two_stream_timeline();
        let json = tl.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["tasks"].as_array().unwrap().len(), 2);
        assert_eq!(parsed["streams"][0], "gpu");
    }

    #[test]
    fn chrome_trace_export_is_valid_and_scaled() {
        let tl = two_stream_timeline();
        let events = tl.to_trace_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].track, "gpu");
        assert_eq!(events[0].dur_us, 2_000_000); // 2 simulated seconds
        let json = tl.chrome_trace_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let evs = parsed["traceEvents"].as_array().unwrap();
        // 2 thread_name metadata records + 2 complete events.
        assert_eq!(evs.len(), 4);
        let complete: Vec<_> = evs
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        assert!(complete.iter().all(|e| e["dur"].as_u64().is_some()));
    }
}
