//! Fault-aware link modelling: projected transfer cost under retries.
//!
//! The real-execution engines inject faults and retry with bounded
//! exponential backoff (the `zo-fault` crate). This module gives the
//! *simulator* the matching analytical model, so throughput projections
//! can answer "what does a flaky PCIe link or fabric cost?" without
//! running anything: a transfer that fails with probability `p` and is
//! retried until it succeeds completes in `1/(1-p)` attempts in
//! expectation, each failed attempt burning the transfer time it wasted
//! plus a backoff pause.

use serde::{Deserialize, Serialize};

use crate::specs::LinkSpec;

/// A link plus the transient-fault behaviour of its transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultyLinkSpec {
    /// The underlying link.
    pub link: LinkSpec,
    /// Probability a given transfer attempt fails transiently.
    pub fault_prob: f64,
    /// Backoff before the first retry, seconds.
    pub base_backoff_s: f64,
    /// Backoff cap, seconds (doubling saturates here).
    pub max_backoff_s: f64,
    /// Attempts before the transport gives up (≥ 1).
    pub max_attempts: u32,
}

impl FaultyLinkSpec {
    /// A fault-free wrapper (projections collapse to the plain link).
    pub fn reliable(link: LinkSpec) -> FaultyLinkSpec {
        FaultyLinkSpec {
            link,
            fault_prob: 0.0,
            base_backoff_s: 0.0,
            max_backoff_s: 0.0,
            max_attempts: 1,
        }
    }

    /// Backoff before retry number `retry` (1-based), seconds: doubling
    /// from the base, saturating at the cap — the same schedule the real
    /// transport uses.
    pub fn backoff_s(&self, retry: u32) -> f64 {
        if retry == 0 || self.base_backoff_s <= 0.0 {
            return 0.0;
        }
        let doubled = self.base_backoff_s
            * f64::from(2u32.saturating_pow(retry.saturating_sub(1)).min(1 << 20));
        doubled.min(self.max_backoff_s.max(self.base_backoff_s))
    }

    /// Expected seconds to move `bytes` one way, retries included.
    ///
    /// With per-attempt failure probability `p`, the expected number of
    /// attempts (unbounded retry) is `1/(1-p)`; each failed attempt costs
    /// a full transfer plus its backoff pause. The geometric weighting of
    /// the backoff schedule is summed exactly over `max_attempts`.
    ///
    /// # Panics
    ///
    /// Panics if `fault_prob` is outside `[0, 1)` — a link that always
    /// fails has no finite expected transfer time.
    pub fn expected_transfer_secs(&self, bytes: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&self.fault_prob),
            "fault probability must be in [0, 1): {}",
            self.fault_prob
        );
        let once = self.link.transfer_secs(bytes);
        if self.fault_prob == 0.0 {
            return once;
        }
        let p = self.fault_prob;
        // Expected attempts, unbounded: 1/(1-p). Expected backoff: the
        // k-th retry happens with probability p^k and pauses backoff(k).
        let mut backoff = 0.0;
        let mut pk = p;
        for k in 1..self.max_attempts {
            backoff += pk * self.backoff_s(k);
            pk *= p;
        }
        once / (1.0 - p) + backoff
    }

    /// Worst-case seconds for one transfer: every allowed attempt fails
    /// until the last, which succeeds — the retry budget fully burned.
    pub fn worst_case_transfer_secs(&self, bytes: f64) -> f64 {
        let once = self.link.transfer_secs(bytes);
        let attempts = f64::from(self.max_attempts.max(1));
        let mut backoff = 0.0;
        for k in 1..self.max_attempts {
            backoff += self.backoff_s(k);
        }
        attempts * once + backoff
    }

    /// Multiplier on fault-free transfer time implied by the expectation
    /// (`1.0` when reliable).
    pub fn slowdown(&self, bytes: f64) -> f64 {
        self.expected_transfer_secs(bytes) / self.link.transfer_secs(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcie() -> LinkSpec {
        LinkSpec {
            gbps_each_way: 16.0,
            latency_s: 10e-6,
        }
    }

    #[test]
    fn reliable_link_matches_plain_spec() {
        let f = FaultyLinkSpec::reliable(pcie());
        let bytes = 2.0 * 1024.0 * 1024.0 * 1024.0;
        assert_eq!(f.expected_transfer_secs(bytes), pcie().transfer_secs(bytes));
        assert_eq!(
            f.worst_case_transfer_secs(bytes),
            pcie().transfer_secs(bytes)
        );
        assert_eq!(f.slowdown(bytes), 1.0);
    }

    #[test]
    fn expected_time_scales_like_geometric_attempts() {
        let f = FaultyLinkSpec {
            link: pcie(),
            fault_prob: 0.5,
            base_backoff_s: 0.0,
            max_backoff_s: 0.0,
            max_attempts: 10,
        };
        let bytes = 1e9;
        // No backoff: expectation is exactly 1/(1-p) transfers.
        let want = pcie().transfer_secs(bytes) * 2.0;
        assert!((f.expected_transfer_secs(bytes) - want).abs() < 1e-12);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let f = FaultyLinkSpec {
            link: pcie(),
            fault_prob: 0.1,
            base_backoff_s: 50e-6,
            max_backoff_s: 150e-6,
            max_attempts: 6,
        };
        assert_eq!(f.backoff_s(1), 50e-6);
        assert_eq!(f.backoff_s(2), 100e-6);
        assert_eq!(f.backoff_s(3), 150e-6);
        assert_eq!(f.backoff_s(4), 150e-6);
    }

    #[test]
    fn worst_case_burns_the_whole_retry_budget() {
        let f = FaultyLinkSpec {
            link: pcie(),
            fault_prob: 0.2,
            base_backoff_s: 50e-6,
            max_backoff_s: 800e-6,
            max_attempts: 3,
        };
        let bytes = 1e8;
        let once = pcie().transfer_secs(bytes);
        let want = 3.0 * once + 50e-6 + 100e-6;
        assert!((f.worst_case_transfer_secs(bytes) - want).abs() < 1e-12);
        // Worst case dominates the expectation.
        assert!(f.worst_case_transfer_secs(bytes) > f.expected_transfer_secs(bytes));
    }

    #[test]
    fn certain_failure_rejected() {
        let f = FaultyLinkSpec {
            link: pcie(),
            fault_prob: 1.0,
            base_backoff_s: 0.0,
            max_backoff_s: 0.0,
            max_attempts: 2,
        };
        assert!(std::panic::catch_unwind(|| f.expected_transfer_secs(1.0)).is_err());
    }
}
