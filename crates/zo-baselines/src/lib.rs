//! Baseline training systems the paper compares against.
//!
//! * [`System`] + [`memory`] — per-system GPU/CPU memory models behind the
//!   model-scale comparison (Fig. 7): PyTorch DDP (full replication),
//!   Megatron tensor slicing, ZeRO-2 partitioning, L2L layer streaming,
//!   and ZeRO-Offload itself;
//! * [`BaselinePerf`] — iteration-time models for the throughput figures
//!   (Figs. 8, 10, 11), composing the same calibrated hardware primitives
//!   as the core crate;
//! * [`DdpEngine`] — a real replicated data-parallel engine used to show
//!   ZeRO-2 + offload preserves the training trajectory while holding
//!   `1/N` of the state.

#![warn(missing_docs)]

mod ddp;
pub mod l2l;
pub mod memory;
mod perf;
pub mod zero_stages;

pub use ddp::DdpEngine;
pub use l2l::{BlockStack, L2lEngine};
pub use memory::{cpu_bytes, fits, gpu_bytes, largest_micro_batch, max_trainable_params, System};
pub use perf::{BaselinePerf, GPU_ADAM_SECS_PER_B};
pub use zero_stages::{stage_table, StageRow, ZeroStage};
