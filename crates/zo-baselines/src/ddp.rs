//! A real replicated data-parallel baseline ("PyTorch DDP" analog).
//!
//! Every rank holds the full fp32 master copy and full optimizer state and
//! runs the complete Adam update after an all-reduce of the gradients —
//! the replication ZeRO-2 eliminates. Used by tests to demonstrate that
//! ZeRO-2 + offload partitioning computes the same training trajectory
//! while holding `1/N` of the optimizer state per rank.

use zo_collectives::Communicator;
use zo_nn::Model;
use zo_optim::{AdamParams, CpuAdam, CpuAdamConfig};
use zo_tensor::{cast_f32_to_f16, F16};

/// One rank of a fully replicated data-parallel group.
pub struct DdpEngine<M: Model> {
    model: M,
    comm: Communicator,
    /// Full fp32 master copy (replicated — the memory cost of DDP).
    master: Vec<f32>,
    grads: Vec<f32>,
    p16: Vec<F16>,
    opt: CpuAdam,
}

impl<M: Model> DdpEngine<M> {
    /// Wraps one rank's replica; all ranks must initialize identically.
    pub fn new(mut model: M, adam: AdamParams, comm: Communicator) -> DdpEngine<M> {
        let n = model.num_params();
        let mut master = vec![0.0f32; n];
        model.copy_params_to(&mut master);
        let mut p16 = vec![F16::ZERO; n];
        cast_f32_to_f16(&master, &mut p16);
        let mut engine = DdpEngine {
            model,
            comm,
            master,
            grads: vec![0.0f32; n],
            p16,
            opt: CpuAdam::new(
                CpuAdamConfig {
                    hp: adam,
                    ..CpuAdamConfig::default()
                },
                n,
            ),
        };
        engine.load_p16();
        engine
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Mutable access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Bytes of optimizer + master state this rank holds (all of it).
    pub fn state_bytes(&self) -> usize {
        self.opt.state().bytes() + self.master.len() * 4
    }

    fn load_p16(&mut self) {
        let widened: Vec<f32> = self.p16.iter().map(|h| h.to_f32()).collect();
        self.model.load_params_from(&widened);
    }

    /// One synchronous DDP step: backward, all-reduce, replicated Adam.
    pub fn step<E>(
        &mut self,
        run_backward: impl FnOnce(&mut M) -> Result<f32, E>,
    ) -> Result<f32, E> {
        self.model.zero_grads();
        let loss = run_backward(&mut self.model)?;
        self.model.copy_grads_to(&mut self.grads);
        self.comm.all_reduce_mean(&mut self.grads);
        // The fp16 wire rounding matches the offload engines so that
        // trajectories are comparable in tests.
        for g in self.grads.iter_mut() {
            *g = F16::from_f32(*g).to_f32();
        }
        self.opt
            .step_mixed(&mut self.master, &self.grads, &mut self.p16)
            .expect("engine buffers are sized together");
        self.load_p16();
        Ok(loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zo_models::BigramLm;
    use zo_nn::{GptConfig, GptModel};

    fn tiny_model(seed: u64) -> GptModel {
        GptModel::new(
            GptConfig {
                vocab: 16,
                seq_len: 8,
                hidden: 8,
                heads: 2,
                layers: 2,
            },
            seed,
        )
    }

    fn global_batch(step: usize, batch: usize) -> zo_models::LmBatch {
        let mut lm = BigramLm::new(16, 0.05, 500);
        let mut b = lm.batch(batch, 8);
        for _ in 0..step {
            b = lm.batch(batch, 8);
        }
        b
    }

    fn run_ddp(world: usize, steps: usize) -> Vec<Vec<f32>> {
        let comms = Communicator::group(world);
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    scope.spawn(move || {
                        let mut engine =
                            DdpEngine::new(tiny_model(77), AdamParams::default(), comm);
                        for step in 0..steps {
                            let b = global_batch(step, world);
                            let rank = engine.rank();
                            let inputs = b.inputs[rank * 8..(rank + 1) * 8].to_vec();
                            let targets = b.targets[rank * 8..(rank + 1) * 8].to_vec();
                            engine
                                .step(|m| m.train_step(&inputs, &targets, 1, 8, |_| {}))
                                .unwrap();
                        }
                        let mut p = vec![0.0f32; engine.model_mut().num_params()];
                        engine.model_mut().copy_params_to(&mut p);
                        p
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn replicas_stay_identical() {
        let finals = run_ddp(3, 4);
        assert_eq!(finals[0], finals[1]);
        assert_eq!(finals[1], finals[2]);
    }

    #[test]
    fn ddp_state_is_fully_replicated() {
        // The memory redundancy ZeRO-2 removes: every DDP rank holds the
        // complete 12 bytes/param of fp32 state.
        let comm = Communicator::group(1).pop().unwrap();
        let engine = DdpEngine::new(tiny_model(1), AdamParams::default(), comm);
        let n = tiny_model(1).num_params();
        assert_eq!(engine.state_bytes(), 12 * n);
    }
}
