//! Iteration-time models for the baseline systems (Figs. 8, 10, 11).
//!
//! Each baseline composes the same calibrated primitives ZeRO-Offload's
//! model uses — GPU kernel time with batch-dependent efficiency, ring
//! collectives, PCIe transfers, optimizer rates — according to that
//! system's schedule. ZeRO-Offload itself delegates to
//! [`ZeroOffloadPerf`] so every bar in a figure shares one hardware model.

use zero_offload::{IterStats, ZeroOffloadPerf};
use zo_collectives::RingCost;
use zo_hetsim::ClusterSpec;
use zo_models::TransformerConfig;

use crate::memory::System;

/// GPU Adam latency, seconds per billion parameters (Table 4 "PT-GPU":
/// 1.00 s at 10B).
pub const GPU_ADAM_SECS_PER_B: f64 = 0.10;

/// Throughput model for the baseline systems.
#[derive(Debug, Clone, Copy)]
pub struct BaselinePerf {
    /// The hardware.
    pub cluster: ClusterSpec,
}

impl BaselinePerf {
    /// Creates the model over `cluster`.
    pub fn new(cluster: ClusterSpec) -> BaselinePerf {
        BaselinePerf { cluster }
    }

    /// Steady-state iteration statistics, or `None` when the system does
    /// not support the configuration (L2L has no multi-GPU mode).
    pub fn iter_stats(
        &self,
        system: System,
        cfg: &TransformerConfig,
        micro_batch: u32,
        total_batch: u32,
        world: u32,
    ) -> Option<IterStats> {
        let node = self.cluster.node;
        let m = cfg.total_params() as f64;
        let dp_ring = |n: u32| RingCost::new(n, self.cluster.collective_gbps(world), 5e-6);

        match system {
            System::ZeroOffload { mp } => Some(ZeroOffloadPerf::new(self.cluster).iter_stats(
                cfg,
                micro_batch,
                total_batch,
                world,
                mp,
                false,
            )),
            System::PyTorchDdp => {
                let k = (total_batch / (micro_batch * world)).max(1);
                let compute = node
                    .gpu
                    .compute_secs(cfg.flops_per_iter(micro_batch as u64), micro_batch as f64);
                // Gradient all-reduce overlaps with backward except its tail
                // (one layer's worth); optimizer runs on-device, replicated.
                let allreduce = dp_ring(world).all_reduce_secs(2.0 * m);
                let exposed_comm = if world > 1 {
                    (allreduce - 0.7 * compute * k as f64).max(allreduce / cfg.num_layers as f64)
                } else {
                    0.0
                };
                let adam = GPU_ADAM_SECS_PER_B * m / 1e9;
                let secs = k as f64 * compute + exposed_comm + adam;
                Some(stats(cfg, micro_batch, k, 1, secs, 0, 0))
            }
            System::Zero2 => {
                let k = (total_batch / (micro_batch * world)).max(1);
                let compute = node
                    .gpu
                    .compute_secs(cfg.flops_per_iter(micro_batch as u64), micro_batch as f64);
                let rs = dp_ring(world).reduce_scatter_secs(2.0 * m);
                let ag = dp_ring(world).all_gather_secs(2.0 * m);
                let exposed_rs = if world > 1 {
                    (rs - 0.7 * compute * k as f64).max(rs / cfg.num_layers as f64)
                } else {
                    0.0
                };
                // Fused, partitioned on-device update.
                let adam = GPU_ADAM_SECS_PER_B * (m / world as f64) / 1e9;
                let secs = k as f64 * compute + exposed_rs + adam + ag;
                Some(stats(cfg, micro_batch, k, 1, secs, 0, 0))
            }
            System::Megatron { mp } => {
                if !world.is_multiple_of(mp) || mp == 0 {
                    return None;
                }
                let dp = world / mp;
                let k = (total_batch / (micro_batch * dp)).max(1);
                // Thin-GEMM penalty of tensor slicing (see ZeroOffloadPerf).
                let eff_batch = micro_batch as f64 / (mp as f64).sqrt();
                let compute = node.gpu.compute_secs(
                    cfg.flops_per_iter(micro_batch as u64) / mp as f64,
                    eff_batch,
                );
                // Two activation all-reduces per layer in each direction,
                // on the critical path (tensor slicing synchronizes).
                let act_bytes = micro_batch as f64 * cfg.seq_len as f64 * cfg.hidden as f64 * 2.0;
                let mp_ring = RingCost::new(mp, node.nvlink_gbps, 5e-6);
                let mp_comm = 4.0 * cfg.num_layers as f64 * mp_ring.all_reduce_secs(act_bytes);
                let grad_ar = if dp > 1 {
                    dp_ring(dp).all_reduce_secs(2.0 * m / mp as f64)
                } else {
                    0.0
                };
                let adam = GPU_ADAM_SECS_PER_B * (m / mp as f64) / 1e9;
                let secs = k as f64 * (compute + mp_comm) + grad_ar + adam;
                Some(stats(cfg, micro_batch, k, mp, secs, 0, 0))
            }
            System::L2l => {
                if world != 1 {
                    return None; // "its implementation does not support multi-GPU training"
                }
                let k = (total_batch / micro_batch).max(1);
                let compute = node
                    .gpu
                    .compute_secs(cfg.flops_per_iter(micro_batch as u64), micro_batch as f64);
                // Synchronous layer-by-layer weight streaming: 2M bytes in
                // for forward and again for backward, every micro-batch,
                // unoverlapped (L2L moves tensors synchronously).
                let stream = 2.0 * node.pcie.transfer_secs(2.0 * m);
                // Optimizer exchange: gradients out, states in/out (the
                // remainder of L2L's 28M/iteration), plus on-device Adam.
                let opt_exchange = node.pcie.transfer_secs(24.0 * m);
                let adam = GPU_ADAM_SECS_PER_B * m / 1e9;
                let secs = k as f64 * (compute + stream) + opt_exchange + adam;
                let d2h = (k as u64 * 2 + 12) * cfg.total_params();
                let h2d = (k as u64 * 2 + 14) * cfg.total_params();
                Some(stats(cfg, micro_batch, k, 1, secs, d2h, h2d))
            }
        }
    }
}

fn stats(
    cfg: &TransformerConfig,
    micro_batch: u32,
    grad_accum: u32,
    mp: u32,
    secs: f64,
    d2h_bytes: u64,
    h2d_bytes: u64,
) -> IterStats {
    let useful = cfg.flops_per_iter(micro_batch as u64) * grad_accum as f64 / mp as f64;
    IterStats {
        secs,
        tflops_per_gpu: useful / secs / 1e12,
        d2h_bytes,
        h2d_bytes,
        grad_accum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zo_hetsim::presets;

    fn perf() -> BaselinePerf {
        BaselinePerf::new(presets::dgx2_cluster(8))
    }

    #[test]
    fn fig8_zero_offload_beats_l2l_single_gpu() {
        // Fig. 8: ZeRO-Offload outperforms L2L by ~14% on average
        // (up to 22%) across 1–13B on one GPU.
        let mut ratios = Vec::new();
        for label in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 13.0] {
            let c = zo_models::by_label(label).unwrap();
            let zo = perf()
                .iter_stats(
                    System::ZeroOffload { mp: 1 },
                    &c.model,
                    c.batch_per_gpu,
                    512,
                    1,
                )
                .unwrap();
            let l2l = perf()
                .iter_stats(System::L2l, &c.model, c.batch_per_gpu, 512, 1)
                .unwrap();
            let ratio = zo.tflops_per_gpu / l2l.tflops_per_gpu;
            assert!(ratio > 1.0, "{label}B: ZO/L2L = {ratio:.3}");
            ratios.push(ratio);
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            (1.05..1.35).contains(&avg),
            "average ZO/L2L speedup {avg:.3} (paper: ~1.14)"
        );
    }

    #[test]
    fn l2l_has_no_multi_gpu_mode() {
        let c = zo_models::by_label(1.0).unwrap();
        assert!(perf()
            .iter_stats(System::L2l, &c.model, 32, 512, 4)
            .is_none());
    }

    #[test]
    fn fig10_small_models_zero_offload_wins() {
        // On 16 GPUs at 1B, ZeRO-Offload (larger feasible micro-batch, no
        // GPU optimizer stall) beats PyTorch and Megatron.
        let c = zo_models::by_label(1.0).unwrap();
        let zo = perf()
            .iter_stats(System::ZeroOffload { mp: 1 }, &c.model, 32, 512, 16)
            .unwrap();
        let pt = perf()
            .iter_stats(System::PyTorchDdp, &c.model, 8, 512, 16)
            .unwrap();
        let mega = perf()
            .iter_stats(System::Megatron { mp: 16 }, &c.model, 32, 512, 16)
            .unwrap();
        assert!(
            zo.tflops_per_gpu > pt.tflops_per_gpu,
            "ZO {:.1} !> PyTorch {:.1}",
            zo.tflops_per_gpu,
            pt.tflops_per_gpu
        );
        assert!(
            zo.tflops_per_gpu > 1.3 * mega.tflops_per_gpu,
            "ZO {:.1} !>> Megatron {:.1}",
            zo.tflops_per_gpu,
            mega.tflops_per_gpu
        );
    }

    #[test]
    fn fig11_crossover_between_zero2_and_offload() {
        // Fig. 11, 10B model: ZeRO-2 OOMs below 16 GPUs (memory model),
        // ZeRO-Offload leads at 32, ZeRO-2 overtakes at 128 once both run
        // comparable batches and ZeRO-2 avoids PCIe traffic.
        let c = zo_models::by_label(10.0).unwrap();
        let node = presets::dgx2();
        // Memory: ZeRO-2 cannot fit 10B on few GPUs.
        assert!(!crate::memory::fits(System::Zero2, &c.model, 4, &node));
        assert!(crate::memory::fits(System::Zero2, &c.model, 32, &node));

        let mb_z2 = crate::memory::largest_micro_batch(System::Zero2, &c.model, 128, &node, 32)
            .unwrap() as u32;
        let z2 = perf()
            .iter_stats(System::Zero2, &c.model, mb_z2, 4096, 128)
            .unwrap();
        let zo = perf()
            .iter_stats(
                System::ZeroOffload { mp: 1 },
                &c.model,
                c.batch_per_gpu,
                4096,
                128,
            )
            .unwrap();
        assert!(
            z2.tflops_per_gpu > 0.95 * zo.tflops_per_gpu,
            "at 128 GPUs ZeRO-2 ({:.1}) should at least match ZO ({:.1})",
            z2.tflops_per_gpu,
            zo.tflops_per_gpu
        );
    }

    #[test]
    fn megatron_invalid_mp_rejected() {
        let c = zo_models::by_label(1.0).unwrap();
        assert!(perf()
            .iter_stats(System::Megatron { mp: 3 }, &c.model, 8, 512, 16)
            .is_none());
    }
}
