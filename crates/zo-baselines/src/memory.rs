//! Per-system GPU/CPU memory models for the model-scale comparison
//! (paper Fig. 7).
//!
//! Each baseline has a distinct placement of the 16M bytes of model
//! states, activation policy, and replication behaviour; those
//! differences — not raw capacity — determine the largest trainable model.

use zero_offload::memory as zo_mem;
use zo_hetsim::NodeSpec;
use zo_models::TransformerConfig;

/// The training systems compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// PyTorch DistributedDataParallel: full replication.
    PyTorchDdp,
    /// Megatron-LM tensor-slicing model parallelism of the given degree.
    Megatron {
        /// Model-parallel degree.
        mp: u32,
    },
    /// ZeRO-2: optimizer states + gradients partitioned, params replicated.
    Zero2,
    /// L2L: one transformer block resident at a time, states on host.
    L2l,
    /// ZeRO-Offload with optional model parallelism.
    ZeroOffload {
        /// Model-parallel degree (1 = pure data parallel).
        mp: u32,
    },
}

impl System {
    /// Display name used in tables.
    pub fn name(&self) -> String {
        match self {
            System::PyTorchDdp => "PyTorch DDP".to_string(),
            System::Megatron { mp } => format!("Megatron (MP={mp})"),
            System::Zero2 => "ZeRO-2".to_string(),
            System::L2l => "L2L".to_string(),
            System::ZeroOffload { mp } if *mp == 1 => "ZeRO-Offload".to_string(),
            System::ZeroOffload { mp } => format!("ZeRO-Offload (MP={mp})"),
        }
    }
}

/// Bytes of transient workspace an unfused (PyTorch-style) Adam step
/// materializes, per parameter (one fp32 temporary).
const UNFUSED_ADAM_TEMP_PER_PARAM: u64 = 4;

/// L2L stores full (un-checkpointed) activations; working tensors per
/// layer approximated as 8 fp16 values per position plus the attention
/// score matrices (calibrated so the single-GPU maximum lands at the
/// paper's ~17B).
fn l2l_activation_bytes(cfg: &TransformerConfig, micro_batch: u64) -> u64 {
    let b = micro_batch;
    let s = cfg.seq_len as u64;
    let h = cfg.hidden as u64;
    let heads = cfg.heads as u64;
    let per_layer = 8 * b * s * h * 2 + 2 * b * heads * s * s * 2;
    cfg.num_layers as u64 * per_layer + b * s * cfg.vocab as u64 * 2
}

/// GPU bytes required per device for `system` training `cfg` on `world`
/// GPUs at `micro_batch` sequences per GPU.
pub fn gpu_bytes(system: System, cfg: &TransformerConfig, world: u32, micro_batch: u64) -> u64 {
    let m = cfg.total_params();
    let act = cfg.activation_bytes(micro_batch);
    match system {
        System::PyTorchDdp => 16 * m + UNFUSED_ADAM_TEMP_PER_PARAM * m + act,
        System::Megatron { mp } => {
            let mp = mp.max(1) as u64;
            (16 * m + UNFUSED_ADAM_TEMP_PER_PARAM * m) / mp
                + zo_mem::activation_bytes_mp(cfg, micro_batch, mp)
        }
        System::Zero2 => {
            let n = world.max(1) as u64;
            // fp16 params replicated; gradients, optimizer states and the
            // fused-update workspace partitioned.
            2 * m + (2 * m + 12 * m + UNFUSED_ADAM_TEMP_PER_PARAM * m) / n + act
        }
        System::L2l => {
            // Two resident blocks (double buffering) with all 16 bytes/param
            // of their states, plus full activations.
            let layer_states = 16 * cfg.params_per_layer();
            2 * layer_states + l2l_activation_bytes(cfg, micro_batch)
        }
        System::ZeroOffload { mp } => zo_mem::gpu_bytes(cfg, micro_batch, mp.max(1) as u64),
    }
}

/// Host bytes required (aggregate across the node).
pub fn cpu_bytes(system: System, cfg: &TransformerConfig, _world: u32) -> u64 {
    let m = cfg.total_params();
    match system {
        System::PyTorchDdp | System::Megatron { .. } | System::Zero2 => 0,
        // L2L keeps every layer's states host-side. It has no multi-GPU
        // mode (Sec. 6.2.2), so its footprint does not scale with `world`
        // and Fig. 7 carries the single-GPU bar across.
        System::L2l => 16 * m,
        // ZeRO-Offload: a single partitioned copy regardless of DP degree.
        System::ZeroOffload { mp } => zo_mem::cpu_bytes(cfg, mp.max(1) as u64),
    }
}

/// Whether `system` can train `cfg` on `world` GPUs of `node` with *some*
/// micro-batch ≥ 1.
pub fn fits(system: System, cfg: &TransformerConfig, world: u32, node: &NodeSpec) -> bool {
    let usable = (node.gpu.mem_bytes as f64 * zo_mem::USABLE_GPU_FRACTION) as u64;
    let cpu_usable = (node.cpu.mem_bytes as f64 * zo_mem::USABLE_CPU_FRACTION) as u64;
    gpu_bytes(system, cfg, world, 1) <= usable && cpu_bytes(system, cfg, world) <= cpu_usable
}

/// Largest micro-batch (≤ `cap`) that fits, or `None` if even 1 does not.
pub fn largest_micro_batch(
    system: System,
    cfg: &TransformerConfig,
    world: u32,
    node: &NodeSpec,
    cap: u64,
) -> Option<u64> {
    let usable = (node.gpu.mem_bytes as f64 * zo_mem::USABLE_GPU_FRACTION) as u64;
    let cpu_usable = (node.cpu.mem_bytes as f64 * zo_mem::USABLE_CPU_FRACTION) as u64;
    if cpu_bytes(system, cfg, world) > cpu_usable {
        return None;
    }
    (1..=cap)
        .rev()
        .find(|&mb| gpu_bytes(system, cfg, world, mb) <= usable)
}

/// Largest trainable parameter count for `system` on `world` GPUs of
/// `node` (the Fig. 7 quantity). For MP-capable systems the best degree
/// dividing `world` is chosen.
pub fn max_trainable_params(system: System, world: u32, node: &NodeSpec) -> u64 {
    let candidates: Vec<System> = match system {
        System::Megatron { .. } => divisors(world)
            .into_iter()
            .map(|mp| System::Megatron { mp })
            .collect(),
        System::ZeroOffload { .. } => divisors(world)
            .into_iter()
            .map(|mp| System::ZeroOffload { mp })
            .collect(),
        other => vec![other],
    };
    candidates
        .into_iter()
        .map(|sys| zo_mem::max_trainable_params(|cfg| fits(sys, cfg, world, node)))
        .max()
        .unwrap_or(0)
}

fn divisors(n: u32) -> Vec<u32> {
    (1..=n).filter(|d| n.is_multiple_of(*d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zo_hetsim::presets;

    fn node() -> NodeSpec {
        presets::dgx2()
    }

    #[test]
    fn fig7_single_gpu_ordering() {
        // Paper Fig. 7, 1 GPU: PyTorch ~1.4B; Megatron/ZeRO-2 no better;
        // ZeRO-Offload ~13B; L2L ~17B (largest, at an efficiency cost).
        let n = node();
        let pytorch = max_trainable_params(System::PyTorchDdp, 1, &n) as f64 / 1e9;
        let megatron = max_trainable_params(System::Megatron { mp: 1 }, 1, &n) as f64 / 1e9;
        let zero2 = max_trainable_params(System::Zero2, 1, &n) as f64 / 1e9;
        let zo = max_trainable_params(System::ZeroOffload { mp: 1 }, 1, &n) as f64 / 1e9;
        let l2l = max_trainable_params(System::L2l, 1, &n) as f64 / 1e9;

        assert!((1.0..2.0).contains(&pytorch), "PyTorch {pytorch:.1}B");
        assert!((megatron - pytorch).abs() < 0.3, "Megatron {megatron:.1}B");
        assert!((zero2 - pytorch).abs() < 0.5, "ZeRO-2 {zero2:.1}B");
        assert!((11.0..16.0).contains(&zo), "ZeRO-Offload {zo:.1}B");
        assert!((14.0..22.0).contains(&l2l), "L2L {l2l:.1}B");
        // The headline: ~9-10x over PyTorch.
        assert!(zo / pytorch > 7.0, "only {:.1}x", zo / pytorch);
    }

    #[test]
    fn fig7_sixteen_gpu_ordering() {
        let n = node();
        let pytorch = max_trainable_params(System::PyTorchDdp, 16, &n) as f64 / 1e9;
        let megatron = max_trainable_params(System::Megatron { mp: 16 }, 16, &n) as f64 / 1e9;
        let zero2 = max_trainable_params(System::Zero2, 16, &n) as f64 / 1e9;
        let l2l = max_trainable_params(System::L2l, 16, &n) as f64 / 1e9;
        let zo = max_trainable_params(System::ZeroOffload { mp: 1 }, 16, &n) as f64 / 1e9;

        // PyTorch and L2L do not scale with more GPUs (pure replication).
        let pytorch1 = max_trainable_params(System::PyTorchDdp, 1, &n) as f64 / 1e9;
        let l2l1 = max_trainable_params(System::L2l, 1, &n) as f64 / 1e9;
        assert!((pytorch - pytorch1).abs() < 0.1);
        assert!((l2l - l2l1).abs() < 0.1);
        // Megatron and ZeRO-2 help but stay far below ZeRO-Offload+MP.
        assert!(megatron > 3.0 * pytorch, "Megatron {megatron:.1}B");
        assert!(zero2 > 4.0 * pytorch, "ZeRO-2 {zero2:.1}B");
        assert!((60.0..90.0).contains(&zo), "ZeRO-Offload 16 GPUs {zo:.1}B");
        assert!(zo > megatron && zo > zero2 && zo > l2l);
    }

    #[test]
    fn zero2_scales_with_world() {
        let n = node();
        let w1 = max_trainable_params(System::Zero2, 1, &n);
        let w4 = max_trainable_params(System::Zero2, 4, &n);
        let w16 = max_trainable_params(System::Zero2, 16, &n);
        assert!(w4 > w1 && w16 > w4);
        // But bounded by the replicated 2M fp16 parameters: even with
        // infinite partitioning, <= usable/2 bytes of params.
        let bound = (n.gpu.mem_bytes as f64 * 0.94 / 2.0) as u64;
        assert!(w16 < bound);
    }

    #[test]
    fn micro_batch_tuner_monotone() {
        let n = node();
        let small = zo_models::by_label(1.0).unwrap().model;
        let big = zo_models::by_label(10.0).unwrap().model;
        let mb_small =
            largest_micro_batch(System::ZeroOffload { mp: 1 }, &small, 1, &n, 64).unwrap();
        let mb_big = largest_micro_batch(System::ZeroOffload { mp: 1 }, &big, 1, &n, 64).unwrap();
        assert!(mb_small > mb_big, "{mb_small} !> {mb_big}");
        // PyTorch cannot fit 10B at all.
        assert_eq!(
            largest_micro_batch(System::PyTorchDdp, &big, 1, &n, 64),
            None
        );
    }

    #[test]
    fn names_render() {
        assert_eq!(System::ZeroOffload { mp: 1 }.name(), "ZeRO-Offload");
        assert_eq!(System::ZeroOffload { mp: 4 }.name(), "ZeRO-Offload (MP=4)");
        assert_eq!(System::Megatron { mp: 8 }.name(), "Megatron (MP=8)");
    }
}
