//! L2L ("layer-to-layer") for real: one transformer block resident on the
//! device at a time.
//!
//! L2L (Pudipeddi et al., compared in paper Sec. 6) keeps all parameters
//! in host memory and "synchronously moves tensors needed in the upcoming
//! layer into GPU memory", bounding device parameter memory by one layer.
//! This engine executes that schedule literally: block parameters are
//! paged in just before the block computes and *poisoned* (overwritten
//! with NaN) when evicted — so if any computation ever touched a
//! non-resident layer, the loss would go NaN. Tests verify both the
//! residency bound and that results equal a fully-resident run.

use zo_nn::TransformerBlock;
use zo_optim::{CpuAdam, CpuAdamConfig};
use zo_tensor::{Init, Tensor, TensorError};

/// A plain stack of transformer blocks over pre-embedded activations
/// (the model substrate L2L streams through).
pub struct BlockStack {
    blocks: Vec<TransformerBlock>,
    hidden: usize,
}

/// The L2L engine: host-side parameters, single-block device residency.
pub struct L2lEngine {
    stack: BlockStack,
    /// Host-side fp32 parameters, one buffer per block ("CPU memory").
    host_params: Vec<Vec<f32>>,
    /// Host-side optimizer, one per block (states never on device).
    optimizers: Vec<CpuAdam>,
    /// Which block currently holds real parameters, if any.
    resident: Option<usize>,
    /// High-water mark of simultaneously resident blocks (must stay 1).
    max_resident: usize,
    /// Bytes moved host→device (parameter uploads).
    pub h2d_bytes: u64,
    /// Bytes moved device→host (gradient downloads).
    pub d2h_bytes: u64,
}

impl BlockStack {
    /// Builds `layers` blocks of width `hidden` with seeded init.
    pub fn new(layers: usize, hidden: usize, heads: usize, seed: u64) -> BlockStack {
        let mut init = Init::new(seed);
        BlockStack {
            blocks: (0..layers)
                .map(|_| TransformerBlock::new(hidden, heads, &mut init))
                .collect(),
            hidden,
        }
    }

    /// Number of blocks.
    pub fn layers(&self) -> usize {
        self.blocks.len()
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Fully-resident forward (the reference path).
    pub fn forward(&self, x: &Tensor, batch: usize, seq: usize) -> Result<Tensor, TensorError> {
        let mut x = x.clone();
        for b in &self.blocks {
            x = b.forward(&x, batch, seq)?.0;
        }
        Ok(x)
    }
}

fn copy_block_params_out(b: &mut TransformerBlock, dst: &mut Vec<f32>) {
    dst.clear();
    b.visit_params_mut(&mut |p, _| dst.extend_from_slice(p));
}

fn load_block_params(b: &mut TransformerBlock, src: &[f32]) {
    let mut off = 0;
    b.visit_params_mut(&mut |p, _| {
        p.copy_from_slice(&src[off..off + p.len()]);
        off += p.len();
    });
    assert_eq!(off, src.len(), "host buffer length");
}

fn poison_block_params(b: &mut TransformerBlock) {
    b.visit_params_mut(&mut |p, _| p.fill(f32::NAN));
}

fn copy_block_grads_out(b: &mut TransformerBlock, dst: &mut Vec<f32>) {
    dst.clear();
    b.visit_params_mut(&mut |_, g| dst.extend_from_slice(g));
}

impl L2lEngine {
    /// Wraps a block stack; parameters move host-side, device poisoned.
    pub fn new(mut stack: BlockStack, lr: f32) -> L2lEngine {
        let mut host_params = Vec::with_capacity(stack.blocks.len());
        let mut optimizers = Vec::with_capacity(stack.blocks.len());
        for b in &mut stack.blocks {
            let mut buf = Vec::new();
            copy_block_params_out(b, &mut buf);
            optimizers.push(CpuAdam::new(
                CpuAdamConfig {
                    hp: zo_optim::AdamParams {
                        lr,
                        ..Default::default()
                    },
                    ..CpuAdamConfig::default()
                },
                buf.len(),
            ));
            host_params.push(buf);
            poison_block_params(b);
        }
        L2lEngine {
            stack,
            host_params,
            optimizers,
            resident: None,
            max_resident: 0,
            h2d_bytes: 0,
            d2h_bytes: 0,
        }
    }

    /// High-water mark of resident blocks (the L2L guarantee: 1).
    pub fn max_resident(&self) -> usize {
        self.max_resident
    }

    fn page_in(&mut self, i: usize) {
        if let Some(prev) = self.resident {
            if prev == i {
                return;
            }
            poison_block_params(&mut self.stack.blocks[prev]);
        }
        load_block_params(&mut self.stack.blocks[i], &self.host_params[i]);
        self.h2d_bytes += 2 * self.host_params[i].len() as u64; // fp16 wire
        self.resident = Some(i);
        // Exactly one block resident at any instant.
        self.max_resident = self.max_resident.max(1);
    }

    /// One training step on `(x, dy_target)` pairs with MSE-style loss
    /// `0.5·|y − target|²`, streaming blocks one at a time.
    ///
    /// Returns the loss. Forward pages each block in, computes, stores the
    /// block *input* (L2L keeps activations on device), evicts; backward
    /// pages blocks in again in reverse, recomputes internals, applies the
    /// per-block host-side Adam immediately.
    pub fn train_step(
        &mut self,
        x: &Tensor,
        target: &Tensor,
        batch: usize,
        seq: usize,
    ) -> Result<f32, TensorError> {
        let layers = self.stack.blocks.len();
        // Forward, storing block inputs.
        let mut inputs: Vec<Tensor> = Vec::with_capacity(layers);
        let mut act = x.clone();
        for i in 0..layers {
            self.page_in(i);
            inputs.push(act.clone());
            act = self.stack.blocks[i].forward(&act, batch, seq)?.0;
        }
        // MSE head: loss = 0.5 * sum((y - t)^2) / rows; dy = (y - t)/rows.
        let rows = act.rows() as f32;
        let mut dy = act.clone();
        zo_tensor::ops::sub_assign(dy.data_mut(), target.data())?;
        let loss = 0.5 * dy.data().iter().map(|v| v * v).sum::<f32>() / rows;
        zo_tensor::ops::scale(dy.data_mut(), 1.0 / rows);

        // Backward, one block at a time, updating host-side immediately.
        let mut grads_buf = Vec::new();
        for i in (0..layers).rev() {
            self.page_in(i);
            let block = &mut self.stack.blocks[i];
            block.zero_grads();
            let (_, cache) = block.forward(&inputs[i], batch, seq)?;
            dy = block.backward(&cache, &dy)?;
            copy_block_grads_out(block, &mut grads_buf);
            self.d2h_bytes += 2 * grads_buf.len() as u64;
            self.optimizers[i]
                .step(&mut self.host_params[i], &grads_buf)
                .expect("host buffers are sized together");
        }
        // Evict the last resident block: steady-state device params = 0.
        if let Some(prev) = self.resident.take() {
            poison_block_params(&mut self.stack.blocks[prev]);
        }
        Ok(loss)
    }

    /// Fully-resident evaluation forward using the host parameters.
    pub fn eval_forward(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
    ) -> Result<Tensor, TensorError> {
        let layers = self.stack.blocks.len();
        let mut act = x.clone();
        for i in 0..layers {
            self.page_in(i);
            act = self.stack.blocks[i].forward(&act, batch, seq)?.0;
        }
        if let Some(prev) = self.resident.take() {
            poison_block_params(&mut self.stack.blocks[prev]);
        }
        Ok(act)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(seed: u64) -> (Tensor, Tensor) {
        let mut rng = Init::new(seed);
        let x = rng.normal_tensor(8, 8, 1.0); // batch 4, seq 2, hidden 8
        let t = rng.normal_tensor(8, 8, 0.5);
        (x, t)
    }

    #[test]
    fn streamed_forward_equals_fully_resident() {
        let reference = BlockStack::new(3, 8, 2, 77);
        let (x, _) = task(1);
        let want = reference.forward(&x, 4, 2).unwrap();

        let mut engine = L2lEngine::new(BlockStack::new(3, 8, 2, 77), 1e-3);
        let got = engine.eval_forward(&x, 4, 2).unwrap();
        assert_eq!(got, want, "streaming must not change the computation");
        assert_eq!(engine.max_resident(), 1);
    }

    #[test]
    fn non_resident_blocks_are_poisoned() {
        let mut engine = L2lEngine::new(BlockStack::new(2, 8, 2, 5), 1e-3);
        // Before any paging, everything is NaN on "device".
        let mut all_nan = true;
        for b in &mut engine.stack.blocks {
            b.visit_params_mut(&mut |p, _| {
                all_nan &= p.iter().all(|v| v.is_nan());
            });
        }
        assert!(all_nan, "device parameters must start evicted");
        // A streamed forward still computes finite values.
        let (x, _) = task(2);
        let y = engine.eval_forward(&x, 4, 2).unwrap();
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_reduces_loss_with_single_block_residency() {
        let mut engine = L2lEngine::new(BlockStack::new(2, 8, 2, 9), 5e-3);
        let (x, t) = task(3);
        let first = engine.train_step(&x, &t, 4, 2).unwrap();
        let mut last = first;
        for _ in 0..60 {
            last = engine.train_step(&x, &t, 4, 2).unwrap();
        }
        assert!(last < 0.5 * first, "no learning: {first} -> {last}");
        assert_eq!(engine.max_resident(), 1);
    }

    #[test]
    fn traffic_matches_l2l_cost_model() {
        // Per step: every block's params move in for forward and again for
        // backward — except the last block, still resident when backward
        // starts — and its grads move out once. That is the "weights +
        // weights + gradients" portion of L2L's per-iteration traffic
        // (optimizer states stay host-side here).
        let layers = 3u64;
        let mut engine = L2lEngine::new(BlockStack::new(layers as usize, 8, 2, 4), 1e-3);
        let per_block = engine.host_params[0].len() as u64;
        let params_total = per_block * layers;
        let (x, t) = task(4);
        engine.train_step(&x, &t, 4, 2).unwrap();
        let uploads = 2 * layers - 1;
        assert_eq!(engine.h2d_bytes, 2 * per_block * uploads);
        assert_eq!(engine.d2h_bytes, 2 * params_total);
    }
}
