//! The three ZeRO stages (paper Sec. 2, "ZeRO powered data parallel
//! training"): memory and communication models for ZeRO-1/2/3.
//!
//! ZeRO-1 partitions optimizer states only; ZeRO-2 adds gradients; ZeRO-3
//! adds parameters. ZeRO-Offload builds on stage 2 — these models exist to
//! reproduce that design choice quantitatively: stage 2 is the most
//! aggressive partitioning that still keeps communication at the data-
//! parallel baseline volume, which is what lets the offload strategy keep
//! its 4M-byte CPU↔GPU minimum on top.

use zero_offload::memory as zo_mem;
use zo_hetsim::NodeSpec;
use zo_models::TransformerConfig;

/// A ZeRO data-parallelism stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZeroStage {
    /// Optimizer states partitioned (Pos).
    Stage1,
    /// Optimizer states + gradients partitioned (Pos+g).
    Stage2,
    /// Optimizer states + gradients + parameters partitioned (Pos+g+p).
    Stage3,
}

impl ZeroStage {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ZeroStage::Stage1 => "ZeRO-1",
            ZeroStage::Stage2 => "ZeRO-2",
            ZeroStage::Stage3 => "ZeRO-3",
        }
    }
}

/// fp32 workspace of the fused partitioned update, bytes per local param.
const UPDATE_TEMP: u64 = 4;

/// Model-state bytes per GPU for `stage` at data parallelism `world`.
pub fn state_bytes_per_gpu(stage: ZeroStage, params: u64, world: u64) -> u64 {
    let n = world.max(1);
    match stage {
        // p16 + g16 replicated; optimizer (12M) + temp partitioned.
        ZeroStage::Stage1 => 2 * params + 2 * params + (12 * params + UPDATE_TEMP * params) / n,
        // p16 replicated; gradients + optimizer partitioned.
        ZeroStage::Stage2 => 2 * params + (2 + 12 + UPDATE_TEMP) * params / n,
        // Everything partitioned, plus a transient buffer of gathered
        // parameters for the layer currently executing (counted by the
        // caller via `stage3_working_bytes`).
        ZeroStage::Stage3 => (2 + 2 + 12 + UPDATE_TEMP) * params / n,
    }
}

/// ZeRO-3's transient gathered-parameter working set: two layers' fp16
/// parameters (prefetch double-buffer).
pub fn stage3_working_bytes(cfg: &TransformerConfig) -> u64 {
    2 * 2 * cfg.params_per_layer()
}

/// GPU bytes per device, including activations.
pub fn gpu_bytes(stage: ZeroStage, cfg: &TransformerConfig, world: u32, micro_batch: u64) -> u64 {
    let base = state_bytes_per_gpu(stage, cfg.total_params(), world as u64);
    let extra = if stage == ZeroStage::Stage3 {
        stage3_working_bytes(cfg)
    } else {
        0
    };
    base + extra + cfg.activation_bytes(micro_batch)
}

/// Per-GPU communication volume per iteration, in multiples of M bytes.
///
/// Baseline data parallelism all-reduces the 2M fp16 gradients (ring:
/// ~2×2M on the wire). ZeRO-1/2 replace it with reduce-scatter + an
/// all-gather of updated parameters — the same 4M total. ZeRO-3 must also
/// all-gather parameters for forward *and* backward: 6M, a 1.5× increase
/// (the cost the paper's Sec. 2 alludes to when picking stage 2).
pub fn comm_volume_m(stage: ZeroStage) -> u32 {
    match stage {
        ZeroStage::Stage1 | ZeroStage::Stage2 => 4,
        ZeroStage::Stage3 => 6,
    }
}

/// Whether `stage` can train `cfg` on `world` GPUs of `node` at any
/// micro-batch ≥ 1.
pub fn fits(stage: ZeroStage, cfg: &TransformerConfig, world: u32, node: &NodeSpec) -> bool {
    let usable = (node.gpu.mem_bytes as f64 * zo_mem::USABLE_GPU_FRACTION) as u64;
    gpu_bytes(stage, cfg, world, 1) <= usable
}

/// Largest trainable model for `stage` on `world` GPUs.
pub fn max_trainable_params(stage: ZeroStage, world: u32, node: &NodeSpec) -> u64 {
    zo_mem::max_trainable_params(|cfg| fits(stage, cfg, world, node))
}

/// One row of the stage-comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// The stage.
    pub stage: ZeroStage,
    /// Model-state bytes per GPU for an M-parameter model, as a formula
    /// evaluated at `world` (in multiples of M).
    pub state_per_gpu_m: f64,
    /// Communication volume, multiples of M.
    pub comm_m: u32,
    /// Largest trainable model on `world` GPUs, billions.
    pub max_b: f64,
}

/// Builds the comparison table for `world` GPUs of `node`.
pub fn stage_table(world: u32, node: &NodeSpec) -> Vec<StageRow> {
    [ZeroStage::Stage1, ZeroStage::Stage2, ZeroStage::Stage3]
        .into_iter()
        .map(|stage| StageRow {
            stage,
            state_per_gpu_m: state_bytes_per_gpu(stage, 1_000_000, world as u64) as f64
                / 1_000_000.0,
            comm_m: comm_volume_m(stage),
            max_b: max_trainable_params(stage, world, node) as f64 / 1e9,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zo_hetsim::presets;

    #[test]
    fn state_formulas_match_paper_sec2() {
        let m = 1_000_000u64;
        // At world=1 every stage holds the full 16M (+4M temp).
        for stage in [ZeroStage::Stage1, ZeroStage::Stage2, ZeroStage::Stage3] {
            assert_eq!(state_bytes_per_gpu(stage, m, 1), 20 * m, "{}", stage.name());
        }
        // At large world: stage1 → 4M, stage2 → 2M, stage3 → ~0.
        let n = 1024;
        assert!(state_bytes_per_gpu(ZeroStage::Stage1, m, n) >= 4 * m);
        assert!(state_bytes_per_gpu(ZeroStage::Stage1, m, n) < 4 * m + m);
        assert!(state_bytes_per_gpu(ZeroStage::Stage2, m, n) >= 2 * m);
        assert!(state_bytes_per_gpu(ZeroStage::Stage2, m, n) < 2 * m + m);
        assert!(state_bytes_per_gpu(ZeroStage::Stage3, m, n) < m);
    }

    #[test]
    fn stage_ordering_on_memory_and_comm() {
        let m = 7_777_777u64;
        for world in [2u64, 8, 64] {
            let s1 = state_bytes_per_gpu(ZeroStage::Stage1, m, world);
            let s2 = state_bytes_per_gpu(ZeroStage::Stage2, m, world);
            let s3 = state_bytes_per_gpu(ZeroStage::Stage3, m, world);
            assert!(s1 > s2 && s2 > s3, "world={world}");
        }
        assert_eq!(
            comm_volume_m(ZeroStage::Stage2),
            comm_volume_m(ZeroStage::Stage1)
        );
        assert!(comm_volume_m(ZeroStage::Stage3) > comm_volume_m(ZeroStage::Stage2));
    }

    #[test]
    fn stage3_trains_largest_models() {
        let node = presets::dgx2();
        let t = stage_table(16, &node);
        assert_eq!(t.len(), 3);
        assert!(t[2].max_b > t[1].max_b);
        assert!(t[1].max_b > t[0].max_b);
        // ZeRO-2 on 16 GPUs lands near the paper's ~9B (Fig. 7).
        assert!(
            (6.0..14.0).contains(&t[1].max_b),
            "ZeRO-2 {:.1}B",
            t[1].max_b
        );
    }

    #[test]
    fn stage2_matches_fig7_model() {
        // The dedicated System::Zero2 memory model and the stage table must
        // agree (same formula, two call sites).
        let node = presets::dgx2();
        let via_system =
            crate::memory::max_trainable_params(crate::memory::System::Zero2, 16, &node);
        let via_stage = max_trainable_params(ZeroStage::Stage2, 16, &node);
        let rel = (via_system as f64 - via_stage as f64).abs() / via_stage as f64;
        assert!(rel < 0.05, "{via_system} vs {via_stage}");
    }

    #[test]
    fn offload_beats_every_pure_stage_below_32_gpus() {
        // The design argument: at modest GPU counts, offloading to host
        // memory dominates any pure GPU-partitioning stage.
        let node = presets::dgx2();
        for world in [1u32, 4, 16] {
            let zo = crate::memory::max_trainable_params(
                crate::memory::System::ZeroOffload { mp: 1 },
                world,
                &node,
            );
            for stage in [ZeroStage::Stage1, ZeroStage::Stage2, ZeroStage::Stage3] {
                let pure = max_trainable_params(stage, world, &node);
                assert!(
                    zo > pure,
                    "world={world}: {} trains {:.1}B vs offload {:.1}B",
                    stage.name(),
                    pure as f64 / 1e9,
                    zo as f64 / 1e9
                );
            }
        }
    }
}
