//! Deterministic seeded fault injection for the ZeRO-Offload path.
//!
//! The offload schedule is a chain of transfers, collectives and
//! asynchronous optimizer work; every hop is a place a real deployment
//! sees transient PCIe/NIC failures, fp16 overflow storms, or a crash
//! mid-update. This crate gives the engines a way to *rehearse* those
//! failures deterministically:
//!
//! * a [`FaultPlan`] — a seed plus per-[`Site`] fault specs — decides,
//!   purely by counter hashing (no wall-clock randomness), which
//!   operations fail and how;
//! * a [`FaultSession`] — one consumer's deterministic view of the plan:
//!   each `(lane, site)` pair owns its own operation counter, so thread
//!   interleaving can never reorder decisions;
//! * [`with_retry`] — the bounded exponential-backoff retry loop the
//!   transport layers wrap around each faultable operation, emitting its
//!   attempts and backoff as `zo-trace` counters and spans.
//!
//! Determinism contract: a [`FaultKind::Transient`] spec with
//! `depth < RetryPolicy::max_attempts` always recovers within the retry
//! budget, and a recovered operation runs **exactly once** — so a
//! transient-injected run's training trajectory is bit-identical to the
//! fault-free run (asserted by `tests/fault_matrix.rs`). Fatal specs trip
//! on the first attempt and surface as typed [`FaultError`]s.
//!
//! Plans come from the builder or from the `ZO_FAULTS` environment
//! variable (see [`FaultPlan::from_env`]).

#![warn(missing_docs)]

use std::sync::{Arc, Mutex, OnceLock};

use zo_trace::names;

/// A named injection point in the offload schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Host→device parameter copy-back.
    WireH2d,
    /// Device→host gradient transfer (wire frames).
    WireD2h,
    /// Gradient reduce-scatter across ranks.
    CollectiveReduceScatter,
    /// Parameter all-gather across ranks.
    CollectiveAllGather,
    /// The CPU optimizer step.
    OptimCpuStep,
    /// Checkpoint file write.
    CheckpointWrite,
    /// Stage-3 layer-sliced parameter all-gather.
    CollectiveParamAllGather,
    /// Stage-3 release of a gathered parameter layer.
    ParamRelease,
    /// Read of an optimizer-state partition from a memory tier.
    TierRead,
    /// Write of an optimizer-state partition to a memory tier.
    TierWrite,
}

/// Number of distinct [`Site`]s (the size of per-site tables).
const SITE_COUNT: usize = 10;

impl Site {
    /// Every site, in canonical order.
    pub const ALL: [Site; SITE_COUNT] = [
        Site::WireH2d,
        Site::WireD2h,
        Site::CollectiveReduceScatter,
        Site::CollectiveAllGather,
        Site::OptimCpuStep,
        Site::CheckpointWrite,
        Site::CollectiveParamAllGather,
        Site::ParamRelease,
        Site::TierRead,
        Site::TierWrite,
    ];

    /// The site's wire name (the `ZO_FAULTS` grammar key).
    pub fn name(self) -> &'static str {
        match self {
            Site::WireH2d => "wire.h2d",
            Site::WireD2h => "wire.d2h",
            Site::CollectiveReduceScatter => "collective.reduce_scatter",
            Site::CollectiveAllGather => "collective.allgather",
            Site::OptimCpuStep => "optim.cpu_step",
            Site::CheckpointWrite => "checkpoint.write",
            Site::CollectiveParamAllGather => "collective.param_allgather",
            Site::ParamRelease => "param.release",
            Site::TierRead => "tier.read",
            Site::TierWrite => "tier.write",
        }
    }

    /// Parses a wire name back into a site.
    pub fn parse(name: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|s| s.name() == name)
    }

    fn index(self) -> usize {
        match self {
            Site::WireH2d => 0,
            Site::WireD2h => 1,
            Site::CollectiveReduceScatter => 2,
            Site::CollectiveAllGather => 3,
            Site::OptimCpuStep => 4,
            Site::CheckpointWrite => 5,
            Site::CollectiveParamAllGather => 6,
            Site::ParamRelease => 7,
            Site::TierRead => 8,
            Site::TierWrite => 9,
        }
    }
}

impl core::fmt::Display for Site {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an injected fault does to the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails `depth` consecutive attempts, then succeeds —
    /// recoverable within the retry budget when `depth < max_attempts`.
    Transient,
    /// The operation fails permanently: no retry, typed error.
    Fatal,
    /// The operation "succeeds" but delivers a NaN/Inf gradient bucket
    /// (consumed by the engines' overflow machinery, not by [`with_retry`]).
    GradNan,
}

/// Per-site fault specification inside a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSpec {
    /// Fault behaviour at this site.
    pub kind: FaultKind,
    /// Probability (per operation) that the fault fires, in `[0, 1]`.
    pub prob: f64,
    /// Consecutive failing attempts for [`FaultKind::Transient`].
    pub depth: u32,
}

/// Bounded deterministic exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts before an operation is abandoned as [`FaultError::Exhausted`].
    pub max_attempts: u32,
    /// Backoff before the second attempt, microseconds.
    pub base_backoff_us: u64,
    /// Backoff ceiling, microseconds.
    pub max_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_us: 50,
            max_backoff_us: 800,
        }
    }
}

impl RetryPolicy {
    /// Backoff after the `attempt`-th failure (1-based): doubles from
    /// `base_backoff_us`, capped at `max_backoff_us`. Purely a function of
    /// the attempt number — no clocks, no randomness.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let shifted = self
            .base_backoff_us
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        shifted.min(self.max_backoff_us)
    }
}

/// A typed, non-recoverable fault surfaced to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// A transient fault outlasted the retry budget.
    Exhausted {
        /// Where it happened.
        site: Site,
        /// Attempts performed before giving up.
        attempts: u32,
    },
    /// A fatal fault tripped; retrying cannot help.
    Fatal {
        /// Where it happened.
        site: Site,
    },
}

impl FaultError {
    /// The injection site the error originated at.
    pub fn site(&self) -> Site {
        match self {
            FaultError::Exhausted { site, .. } | FaultError::Fatal { site } => *site,
        }
    }
}

impl core::fmt::Display for FaultError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultError::Exhausted { site, attempts } => {
                write!(
                    f,
                    "transient fault at {site} persisted for {attempts} attempts"
                )
            }
            FaultError::Fatal { site } => write!(f, "fatal fault at {site}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// splitmix64: the decision hash. Full 64-bit avalanche, so consecutive
/// operation indices give statistically independent draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, immutable fault schedule: which sites can fail, how, and how
/// aggressively retries back off.
///
/// The plan is pure data; decisions are made by hashing
/// `(seed, site, lane, operation index)`, so two sessions with the same
/// lane replay the same fault sequence regardless of wall-clock timing or
/// thread interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    sites: [Option<SiteSpec>; SITE_COUNT],
    retry: RetryPolicy,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    /// A plan that never injects anything (the production default).
    pub fn disabled() -> FaultPlan {
        FaultPlan {
            seed: 0,
            sites: [None; SITE_COUNT],
            retry: RetryPolicy::default(),
        }
    }

    /// Starts a builder with the given decision seed.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan {
                seed,
                sites: [None; SITE_COUNT],
                retry: RetryPolicy::default(),
            },
        }
    }

    /// The CI stress preset: every site transient with probability 0.25
    /// and depth 2 — always within the default retry budget, so the
    /// trajectory stays bit-identical to the fault-free run.
    pub fn transient_heavy() -> FaultPlan {
        let mut b = FaultPlan::builder(0x5A0F_AB1E);
        for site in Site::ALL {
            b = b.site(
                site,
                SiteSpec {
                    kind: FaultKind::Transient,
                    prob: 0.25,
                    depth: 2,
                },
            );
        }
        b.build()
    }

    /// Derives an isolated per-domain plan: same sites and retry policy,
    /// but a decision seed mixed with a hash of `domain`.
    ///
    /// Two jobs running the same preset then draw statistically
    /// independent fault sequences, and — because each draw is indexed by
    /// a per-session `(lane, site)` counter, never by global time — one
    /// job's faults can never perturb a neighbor's schedule. A disabled
    /// plan stays disabled (the seed is irrelevant without sites).
    pub fn derived(&self, domain: &str) -> FaultPlan {
        // FNV-1a over the domain name, then avalanche the combination so
        // similar names ("job-1"/"job-2") land far apart.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in domain.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        FaultPlan {
            seed: splitmix64(self.seed ^ h),
            sites: self.sites,
            retry: self.retry,
        }
    }

    /// Builds a plan from the `ZO_FAULTS` environment variable.
    ///
    /// Accepted values: unset/empty/`off`/`none`/`0` (disabled),
    /// `transient-heavy` (the CI preset), or a spec string parsed by
    /// [`FaultPlan::parse`].
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec — a CI run with a typo'd `ZO_FAULTS`
    /// must fail loudly, not silently train fault-free.
    pub fn from_env() -> FaultPlan {
        match std::env::var("ZO_FAULTS") {
            Err(_) => FaultPlan::disabled(),
            Ok(v) => FaultPlan::parse(&v).unwrap_or_else(|e| panic!("bad ZO_FAULTS: {e}")),
        }
    }

    /// Parses a plan spec.
    ///
    /// Grammar (presets or `;`-separated clauses):
    ///
    /// ```text
    /// off | none | 0 | "" | transient-heavy
    /// seed=N
    /// retry=MAX_ATTEMPTS:BASE_US:CAP_US
    /// <site>=<kind>[:prob[:depth]]      kind ∈ transient|fatal|nan
    /// ```
    ///
    /// Example: `seed=42;wire.d2h=transient:0.3:2;optim.cpu_step=fatal:0.1`.
    /// Probability defaults to 1.0, depth to 1.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        match spec {
            "" | "off" | "none" | "0" => return Ok(FaultPlan::disabled()),
            "transient-heavy" => return Ok(FaultPlan::transient_heavy()),
            _ => {}
        }
        let mut plan = FaultPlan::disabled();
        plan.seed = 1;
        for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause `{clause}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("bad seed `{value}`"))?;
                }
                "retry" => {
                    let parts: Vec<&str> = value.split(':').collect();
                    if parts.len() != 3 {
                        return Err(format!("retry wants MAX:BASE_US:CAP_US, got `{value}`"));
                    }
                    plan.retry = RetryPolicy {
                        max_attempts: parts[0]
                            .parse()
                            .map_err(|_| format!("bad max_attempts `{}`", parts[0]))?,
                        base_backoff_us: parts[1]
                            .parse()
                            .map_err(|_| format!("bad base backoff `{}`", parts[1]))?,
                        max_backoff_us: parts[2]
                            .parse()
                            .map_err(|_| format!("bad backoff cap `{}`", parts[2]))?,
                    };
                    if plan.retry.max_attempts == 0 {
                        return Err("retry max_attempts must be at least 1".to_string());
                    }
                }
                site_name => {
                    let site = Site::parse(site_name)
                        .ok_or_else(|| format!("unknown fault site `{site_name}`"))?;
                    let mut parts = value.split(':');
                    let kind = match parts.next().unwrap_or("") {
                        "transient" => FaultKind::Transient,
                        "fatal" => FaultKind::Fatal,
                        "nan" => FaultKind::GradNan,
                        other => return Err(format!("unknown fault kind `{other}`")),
                    };
                    let prob = match parts.next() {
                        None => 1.0,
                        Some(p) => {
                            let p: f64 = p.parse().map_err(|_| format!("bad probability `{p}`"))?;
                            if !(0.0..=1.0).contains(&p) {
                                return Err(format!("probability {p} outside [0, 1]"));
                            }
                            p
                        }
                    };
                    let depth = match parts.next() {
                        None => 1,
                        Some(d) => d.parse().map_err(|_| format!("bad depth `{d}`"))?,
                    };
                    plan.sites[site.index()] = Some(SiteSpec { kind, prob, depth });
                }
            }
        }
        Ok(plan)
    }

    /// Whether any site can inject a fault.
    pub fn is_enabled(&self) -> bool {
        self.sites.iter().any(|s| s.is_some())
    }

    /// The spec installed at `site`, if any.
    pub fn site_spec(&self, site: Site) -> Option<SiteSpec> {
        self.sites[site.index()]
    }

    /// The retry policy operations at every site share.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// The decision for operation number `index` at `(site, lane)`:
    /// `None` means the operation proceeds cleanly.
    fn decide(&self, site: Site, lane: u64, index: u64) -> Option<SiteSpec> {
        let spec = self.sites[site.index()]?;
        let mut h = splitmix64(self.seed ^ (0x51_7E << 8) ^ site.index() as u64);
        h = splitmix64(h ^ lane);
        h = splitmix64(h ^ index);
        // 53 high bits → uniform in [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (u < spec.prob).then_some(spec)
    }
}

/// Builder for [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Installs a fault spec at `site`.
    #[must_use]
    pub fn site(mut self, site: Site, spec: SiteSpec) -> FaultPlanBuilder {
        self.plan.sites[site.index()] = Some(spec);
        self
    }

    /// Overrides the retry policy.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> FaultPlanBuilder {
        self.plan.retry = retry;
        self
    }

    /// Finishes the plan.
    pub fn build(self) -> FaultPlan {
        self.plan
    }
}

/// Deterministic decision lanes. Each independent consumer of a plan draws
/// on its own lane so its fault sequence cannot be perturbed by other
/// consumers' operation counts.
pub mod lane {
    /// The step pipeline's transfer/update/publish gates. Per-rank
    /// consumers add their rank to this base.
    pub const ENGINE: u64 = 0x10;
    /// The mid-backward gradient stream.
    pub const STREAM: u64 = 0x20;
    /// Collective endpoints. All ranks share this lane (collectives are
    /// lock-step per endpoint), so every rank agrees on each decision and
    /// fatal faults error out on all ranks together — no barrier deadlock.
    pub const COLLECTIVE: u64 = 0x30;
    /// Memory-tier reads/writes of optimizer-state partitions. Per-rank
    /// consumers add their rank to this base.
    pub const TIER: u64 = 0x40;
}

/// One consumer's deterministic stream of fault decisions.
///
/// Holds a per-site operation counter; `draw` advances it. Counters are
/// plain integers owned by the session (never shared atomics), so the
/// decision sequence depends only on the consumer's own operation order.
#[derive(Debug, Clone)]
pub struct FaultSession {
    plan: Arc<FaultPlan>,
    lane: u64,
    counts: [u64; SITE_COUNT],
}

impl FaultSession {
    /// A session over `plan`, drawing on `lane`.
    pub fn new(plan: Arc<FaultPlan>, lane: u64) -> FaultSession {
        FaultSession {
            plan,
            lane,
            counts: [0; SITE_COUNT],
        }
    }

    /// A session that never injects (over the disabled plan).
    pub fn disabled() -> FaultSession {
        FaultSession::new(Arc::new(FaultPlan::disabled()), 0)
    }

    /// Whether this session can inject at all — the zero-cost-when-off
    /// fast path ([`with_retry`] returns immediately when false).
    pub fn enabled(&self) -> bool {
        self.plan.is_enabled()
    }

    /// The underlying plan.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// Draws the next decision for one operation at `site`.
    pub fn draw(&mut self, site: Site) -> Option<SiteSpec> {
        if !self.enabled() {
            return None;
        }
        let index = self.counts[site.index()];
        self.counts[site.index()] += 1;
        self.plan.decide(site, self.lane, index)
    }

    /// Draws one gradient-corruption decision at `site`: `true` when the
    /// site is configured with [`FaultKind::GradNan`] and the draw fires.
    pub fn grad_nan(&mut self, site: Site) -> bool {
        matches!(
            self.draw(site),
            Some(SiteSpec {
                kind: FaultKind::GradNan,
                ..
            })
        )
    }
}

/// Runs `op` at `site` under the session's plan with bounded
/// exponential-backoff retry.
///
/// * Clean draw (or [`FaultKind::GradNan`], which is not a transport
///   failure): `op` runs once, `Ok`.
/// * Transient with depth `d`: the first `d` attempts fail; each failure
///   emits `fault.injected`, and each retry emits `retry.attempts`, a
///   `retry.backoff_us` counter and a `retry_backoff` span on `track`,
///   then sleeps the deterministic backoff. If `d` reaches the policy's
///   `max_attempts` the operation is abandoned as
///   [`FaultError::Exhausted`] **without running `op`**.
/// * Fatal: `fault.injected`, then [`FaultError::Fatal`] — `op` never runs.
///
/// On success `op` runs exactly once, after the injected failures — which
/// is why transient faults cannot perturb training numerics.
pub fn with_retry<T>(
    session: &mut FaultSession,
    site: Site,
    tracer: &zo_trace::Tracer,
    track: &str,
    op: impl FnOnce() -> T,
) -> Result<T, FaultError> {
    if !session.enabled() {
        return Ok(op());
    }
    let spec = match session.draw(site) {
        None => return Ok(op()),
        Some(spec) => spec,
    };
    match spec.kind {
        FaultKind::GradNan => Ok(op()),
        FaultKind::Fatal => {
            tracer.add(track, names::FAULT_INJECTED, 1);
            Err(FaultError::Fatal { site })
        }
        FaultKind::Transient => {
            let policy = session.plan.retry();
            let failures = spec.depth;
            for attempt in 1..=failures.min(policy.max_attempts) {
                tracer.add(track, names::FAULT_INJECTED, 1);
                if attempt == policy.max_attempts {
                    return Err(FaultError::Exhausted {
                        site,
                        attempts: attempt,
                    });
                }
                let backoff = policy.backoff_us(attempt);
                tracer.add(track, names::RETRY_ATTEMPTS, 1);
                tracer.add(track, names::RETRY_BACKOFF_US, backoff);
                let start = tracer.now_us();
                std::thread::sleep(std::time::Duration::from_micros(backoff));
                tracer.record_span(track, names::RETRY_BACKOFF_SPAN, start, backoff);
            }
            Ok(op())
        }
    }
}

// ---------------------------------------------------------------------------
// Plan registry: `Copy` engine configs reference installed plans by index,
// mirroring the `zo-trace` tracer registry.

static REGISTRY: OnceLock<Mutex<Vec<Arc<FaultPlan>>>> = OnceLock::new();

/// Pins `plan` into the process-wide registry; returns its index.
pub fn install(plan: FaultPlan) -> usize {
    let reg = REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
    let mut reg = reg.lock().expect("fault registry lock");
    reg.push(Arc::new(plan));
    reg.len() - 1
}

/// Resolves an [`install`]ed plan (`None` if the index is unknown).
pub fn lookup(index: usize) -> Option<Arc<FaultPlan>> {
    let reg = REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
    let reg = reg.lock().expect("fault registry lock");
    reg.get(index).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient_plan(prob: f64, depth: u32) -> FaultPlan {
        FaultPlan::builder(7)
            .site(
                Site::WireD2h,
                SiteSpec {
                    kind: FaultKind::Transient,
                    prob,
                    depth,
                },
            )
            .build()
    }

    #[test]
    fn site_names_roundtrip() {
        for site in Site::ALL {
            assert_eq!(Site::parse(site.name()), Some(site));
        }
        assert_eq!(Site::parse("wire.bogus"), None);
    }

    #[test]
    fn disabled_plan_never_fires() {
        let mut s = FaultSession::disabled();
        assert!(!s.enabled());
        for _ in 0..100 {
            assert_eq!(s.draw(Site::WireD2h), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_lane_scoped() {
        let plan = Arc::new(transient_plan(0.5, 1));
        let draws = |lane: u64| -> Vec<bool> {
            let mut s = FaultSession::new(Arc::clone(&plan), lane);
            (0..64).map(|_| s.draw(Site::WireD2h).is_some()).collect()
        };
        assert_eq!(draws(1), draws(1), "same lane must replay identically");
        assert_ne!(draws(1), draws(2), "lanes must be independent");
        let fired = draws(1).iter().filter(|&&f| f).count();
        assert!((10..55).contains(&fired), "p=0.5 over 64 draws: {fired}");
    }

    #[test]
    fn derived_plans_are_domain_isolated() {
        let base = FaultPlan::transient_heavy();
        let a = base.derived("job-a");
        let b = base.derived("job-b");
        assert_eq!(
            a,
            base.derived("job-a"),
            "derivation must be a pure function"
        );
        assert_ne!(a, b, "distinct domains must get distinct seeds");

        let draws = |plan: &FaultPlan| -> Vec<bool> {
            let mut s = FaultSession::new(Arc::new(plan.clone()), 1);
            (0..64).map(|_| s.draw(Site::WireD2h).is_some()).collect()
        };
        assert_ne!(
            draws(&a),
            draws(&b),
            "domains must draw independent fault sequences"
        );
        // Same sites and retry policy: only the seed moves.
        for site in Site::ALL {
            assert_eq!(a.site_spec(site), base.site_spec(site));
        }
        assert_eq!(a.retry(), base.retry());
    }

    #[test]
    fn derived_disabled_plan_stays_disabled() {
        let d = FaultPlan::disabled().derived("job-a");
        assert!(!d.is_enabled());
        let mut s = FaultSession::new(Arc::new(d), 1);
        for _ in 0..32 {
            assert_eq!(s.draw(Site::WireD2h), None);
        }
    }

    #[test]
    fn probability_extremes() {
        let mut always = FaultSession::new(Arc::new(transient_plan(1.0, 1)), 3);
        let mut never = FaultSession::new(Arc::new(transient_plan(0.0, 1)), 3);
        for _ in 0..32 {
            assert!(always.draw(Site::WireD2h).is_some());
            assert!(never.draw(Site::WireD2h).is_none());
        }
    }

    #[test]
    fn with_retry_recovers_within_budget_and_runs_op_once() {
        let tracer = zo_trace::Tracer::new();
        let mut s = FaultSession::new(Arc::new(transient_plan(1.0, 2)), 5);
        let mut runs = 0;
        let out = with_retry(&mut s, Site::WireD2h, &tracer, "pcie", || {
            runs += 1;
            42
        });
        assert_eq!(out, Ok(42));
        assert_eq!(runs, 1, "a recovered op must execute exactly once");
        assert_eq!(tracer.counter_total(zo_trace::names::FAULT_INJECTED), 2);
        assert_eq!(tracer.counter_total(zo_trace::names::RETRY_ATTEMPTS), 2);
        assert!(tracer.counter_total(zo_trace::names::RETRY_BACKOFF_US) > 0);
        assert_eq!(
            tracer
                .spans_named(zo_trace::names::RETRY_BACKOFF_SPAN)
                .len(),
            2
        );
    }

    #[test]
    fn with_retry_exhausts_deep_transients_without_running_op() {
        let tracer = zo_trace::Tracer::new();
        let plan = FaultPlan::builder(7)
            .site(
                Site::OptimCpuStep,
                SiteSpec {
                    kind: FaultKind::Transient,
                    prob: 1.0,
                    depth: 99,
                },
            )
            .retry(RetryPolicy {
                max_attempts: 3,
                base_backoff_us: 1,
                max_backoff_us: 4,
            })
            .build();
        let mut s = FaultSession::new(Arc::new(plan), 1);
        let mut runs = 0;
        let out = with_retry(&mut s, Site::OptimCpuStep, &tracer, "cpu", || runs += 1);
        assert_eq!(
            out,
            Err(FaultError::Exhausted {
                site: Site::OptimCpuStep,
                attempts: 3
            })
        );
        assert_eq!(runs, 0, "an abandoned op must never run");
    }

    #[test]
    fn with_retry_fatal_is_immediate() {
        let tracer = zo_trace::Tracer::new();
        let plan = FaultPlan::builder(9)
            .site(
                Site::WireH2d,
                SiteSpec {
                    kind: FaultKind::Fatal,
                    prob: 1.0,
                    depth: 1,
                },
            )
            .build();
        let mut s = FaultSession::new(Arc::new(plan), 1);
        let out = with_retry(&mut s, Site::WireH2d, &tracer, "pcie", || ());
        assert_eq!(
            out,
            Err(FaultError::Fatal {
                site: Site::WireH2d
            })
        );
        assert_eq!(tracer.counter_total(zo_trace::names::RETRY_ATTEMPTS), 0);
    }

    #[test]
    fn grad_nan_draws_fire_only_for_nan_specs() {
        let plan = FaultPlan::builder(3)
            .site(
                Site::WireD2h,
                SiteSpec {
                    kind: FaultKind::GradNan,
                    prob: 1.0,
                    depth: 1,
                },
            )
            .build();
        let mut s = FaultSession::new(Arc::new(plan), 1);
        assert!(s.grad_nan(Site::WireD2h));
        let mut t = FaultSession::new(Arc::new(transient_plan(1.0, 1)), 1);
        assert!(!t.grad_nan(Site::WireD2h), "transient specs are not NaN");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_us: 50,
            max_backoff_us: 300,
        };
        assert_eq!(p.backoff_us(1), 50);
        assert_eq!(p.backoff_us(2), 100);
        assert_eq!(p.backoff_us(3), 200);
        assert_eq!(p.backoff_us(4), 300);
        assert_eq!(p.backoff_us(40), 300, "huge attempts must not overflow");
    }

    #[test]
    fn parse_grammar() {
        assert!(!FaultPlan::parse("off").unwrap().is_enabled());
        assert!(!FaultPlan::parse("").unwrap().is_enabled());
        let heavy = FaultPlan::parse("transient-heavy").unwrap();
        assert_eq!(heavy, FaultPlan::transient_heavy());
        for site in Site::ALL {
            let spec = heavy.site_spec(site).expect("every site configured");
            assert_eq!(spec.kind, FaultKind::Transient);
            assert!(spec.depth < heavy.retry().max_attempts);
        }
        let custom = FaultPlan::parse(
            "seed=42;wire.d2h=transient:0.3:2;optim.cpu_step=fatal:0.1;retry=4:10:80",
        )
        .unwrap();
        let d2h = custom.site_spec(Site::WireD2h).unwrap();
        assert_eq!(d2h.kind, FaultKind::Transient);
        assert_eq!(d2h.prob, 0.3);
        assert_eq!(d2h.depth, 2);
        let cpu = custom.site_spec(Site::OptimCpuStep).unwrap();
        assert_eq!(cpu.kind, FaultKind::Fatal);
        assert_eq!(custom.retry().max_attempts, 4);
        assert!(custom.site_spec(Site::WireH2d).is_none());

        assert!(FaultPlan::parse("wire.bogus=fatal").is_err());
        assert!(FaultPlan::parse("wire.d2h=sideways").is_err());
        assert!(FaultPlan::parse("wire.d2h=transient:1.5").is_err());
        assert!(FaultPlan::parse("retry=1:2").is_err());
        assert!(FaultPlan::parse("gibberish").is_err());
    }

    #[test]
    fn registry_installs_and_resolves() {
        let ix = install(FaultPlan::transient_heavy());
        let plan = lookup(ix).expect("installed plan resolves");
        assert!(plan.is_enabled());
        assert!(lookup(ix + 100_000).is_none());
    }
}
