//! Property tests for model accounting and synthetic data.

use proptest::prelude::*;
use zo_models::{BigramLm, GaussianClassification, ModelStateBytes, TransformerConfig};

proptest! {
    /// Parameter count grows monotonically in depth and width.
    #[test]
    fn params_monotone(layers in 1u32..100, hidden_step in 1u32..30) {
        let hidden = 64 * hidden_step;
        let base = TransformerConfig::gpt2_like(layers, hidden);
        let deeper = TransformerConfig::gpt2_like(layers + 1, hidden);
        let wider = TransformerConfig::gpt2_like(layers, hidden + 64);
        prop_assert!(deeper.total_params() > base.total_params());
        prop_assert!(wider.total_params() > base.total_params());
        // Depth adds exactly one layer's parameters.
        prop_assert_eq!(
            deeper.total_params() - base.total_params(),
            base.params_per_layer()
        );
    }

    /// The 16M rule holds exactly for any parameter count.
    #[test]
    fn state_bytes_16m(params in 1u64..1_000_000_000_000) {
        let st = ModelStateBytes::for_params(params);
        prop_assert_eq!(st.total(), 16 * params);
        prop_assert_eq!(st.p16 + st.g16, 4 * params);
        prop_assert_eq!(st.p32 + st.optim, 12 * params);
    }

    /// FLOPs and activations are linear/affine in micro-batch.
    #[test]
    fn flops_and_activations_scale(
        layers in 1u32..40,
        h_step in 1u32..16,
        mb in 1u64..32,
    ) {
        let cfg = TransformerConfig::gpt2_like(layers, 128 * h_step);
        let f1 = cfg.flops_per_iter(mb);
        let f2 = cfg.flops_per_iter(2 * mb);
        prop_assert!((f2 / f1 - 2.0).abs() < 1e-9);
        let a1 = cfg.activation_bytes(mb);
        let a2 = cfg.activation_bytes(2 * mb);
        // Activations are linear in batch with zero intercept.
        prop_assert_eq!(a2, 2 * a1);
    }

    /// LM batches are always in-vocabulary and shift-consistent.
    #[test]
    fn lm_batch_well_formed(
        vocab_step in 1usize..10,
        batch in 1usize..6,
        seq in 2usize..20,
        seed in 0u64..500,
    ) {
        let vocab = 8 * vocab_step;
        let mut lm = BigramLm::new(vocab, 0.1, seed);
        let b = lm.batch(batch, seq);
        prop_assert_eq!(b.inputs.len(), batch * seq);
        prop_assert_eq!(b.targets.len(), batch * seq);
        prop_assert!(b.inputs.iter().all(|&t| t < vocab));
        prop_assert!(b.targets.iter().all(|&t| t < vocab));
        for s in 0..batch {
            for t in 0..seq - 1 {
                prop_assert_eq!(b.targets[s * seq + t], b.inputs[s * seq + t + 1]);
            }
        }
    }

    /// Classification labels are uniform-ish and features finite.
    #[test]
    fn classification_batch_well_formed(
        classes in 2usize..6,
        dim in 1usize..12,
        seed in 0u64..500,
    ) {
        let mut task = GaussianClassification::new(classes, dim, 0.5, seed);
        let b = task.batch(64);
        prop_assert_eq!(b.labels.len(), 64);
        prop_assert_eq!(b.features.shape(), (64, dim));
        prop_assert!(b.labels.iter().all(|&l| l < classes));
        prop_assert!(b.features.data().iter().all(|v| v.is_finite()));
        // Every class appears at least once in 64 draws with high
        // probability (classes <= 6).
        let mut seen = vec![false; classes];
        for &l in &b.labels {
            seen[l] = true;
        }
        prop_assert!(seen.iter().filter(|&&s| s).count() >= classes - 1);
    }
}
