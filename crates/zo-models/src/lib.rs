//! Evaluation workloads for the ZeRO-Offload reproduction.
//!
//! * [`TransformerConfig`] — GPT-2-like architecture accounting
//!   (parameters, FLOPs, activation bytes) for the Table 3 model zoo;
//! * [`configs`] — the exact Table 3 rows plus BERT-large;
//! * [`data`] — seeded synthetic datasets for the convergence experiments.

#![warn(missing_docs)]

pub mod configs;
pub mod data;
mod transformer;

pub use configs::{bert_large, by_label, table3, EvalConfig, TOTAL_BATCH};
pub use data::{BigramLm, ClassBatch, GaussianClassification, LmBatch};
pub use transformer::{ModelStateBytes, TransformerConfig};
