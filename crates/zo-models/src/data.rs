//! Synthetic datasets for the convergence experiments (Figs. 12–13).
//!
//! The paper's convergence claims compare *variants of the same training
//! run* (baseline vs. ZeRO-Offload vs. ZeRO-Offload+DPU), so the substrate
//! task only needs to be (a) learnable and (b) exactly reproducible from a
//! seed. Two generators cover the two experiments:
//!
//! * [`BigramLm`] — a language-modeling task drawn from a fixed random
//!   bigram chain (GPT-2 pretraining analog, Fig. 12);
//! * [`GaussianClassification`] — a sequence classification task with
//!   class-dependent Gaussian features (BERT fine-tuning analog, Fig. 13).

use zo_tensor::{Init, Tensor};

/// A batch of token ids for language modeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LmBatch {
    /// Input token ids, `batch * seq_len` row-major.
    pub inputs: Vec<usize>,
    /// Next-token targets, same shape.
    pub targets: Vec<usize>,
    /// Number of sequences.
    pub batch: usize,
    /// Sequence length.
    pub seq_len: usize,
}

/// A synthetic LM corpus generated from a fixed random bigram chain.
///
/// Each vocabulary item has a handful of likely successors; a model that
/// learns the chain drives its cross-entropy from `ln(vocab)` down toward
/// the chain's conditional entropy, producing the smooth, informative loss
/// curves the Fig. 12 comparison needs.
pub struct BigramLm {
    vocab: usize,
    /// `successors[t]` lists the favoured next tokens of `t`.
    successors: Vec<[usize; 4]>,
    rng: Init,
    /// Probability of an off-chain (uniform) token.
    noise: f32,
}

impl BigramLm {
    /// Creates a corpus over `vocab` tokens with `noise` off-chain mass.
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 8`.
    pub fn new(vocab: usize, noise: f32, seed: u64) -> BigramLm {
        assert!(vocab >= 8, "vocab must be at least 8");
        // The chain itself comes from a separate, fixed stream so that
        // sampling order cannot change the task.
        let mut chain_rng = Init::new(seed ^ 0x5EED_C8A1_u64);
        let successors = (0..vocab)
            .map(|_| {
                [
                    chain_rng.index(vocab),
                    chain_rng.index(vocab),
                    chain_rng.index(vocab),
                    chain_rng.index(vocab),
                ]
            })
            .collect();
        BigramLm {
            vocab,
            successors,
            rng: Init::new(seed),
            noise,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Samples a batch of sequences.
    pub fn batch(&mut self, batch: usize, seq_len: usize) -> LmBatch {
        let mut inputs = Vec::with_capacity(batch * seq_len);
        let mut targets = Vec::with_capacity(batch * seq_len);
        for _ in 0..batch {
            let mut tok = self.rng.index(self.vocab);
            for _ in 0..seq_len {
                inputs.push(tok);
                let next = if self.rng.uniform(0.0, 1.0) < self.noise {
                    self.rng.index(self.vocab)
                } else {
                    self.successors[tok][self.rng.index(4)]
                };
                targets.push(next);
                tok = next;
            }
        }
        LmBatch {
            inputs,
            targets,
            batch,
            seq_len,
        }
    }
}

/// A batch of feature vectors with class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassBatch {
    /// Features, `(batch, dim)`.
    pub features: Tensor,
    /// Class labels in `[0, classes)`.
    pub labels: Vec<usize>,
}

/// Gaussian-mixture classification (the fine-tuning analog).
pub struct GaussianClassification {
    classes: usize,
    dim: usize,
    /// Per-class mean vectors.
    means: Vec<Vec<f32>>,
    rng: Init,
    /// Within-class standard deviation.
    spread: f32,
}

impl GaussianClassification {
    /// Creates a task with `classes` classes of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `classes < 2` or `dim == 0`.
    pub fn new(classes: usize, dim: usize, spread: f32, seed: u64) -> GaussianClassification {
        assert!(classes >= 2, "need at least two classes");
        assert!(dim > 0, "need at least one feature dimension");
        let mut task_rng = Init::new(seed ^ 0xC1A5_5E5E_u64);
        let means = (0..classes)
            .map(|_| (0..dim).map(|_| task_rng.standard_normal() * 2.0).collect())
            .collect();
        GaussianClassification {
            classes,
            dim,
            means,
            rng: Init::new(seed),
            spread,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Samples a batch.
    pub fn batch(&mut self, batch: usize) -> ClassBatch {
        let mut features = Tensor::zeros(batch, self.dim);
        let mut labels = Vec::with_capacity(batch);
        for r in 0..batch {
            let label = self.rng.index(self.classes);
            labels.push(label);
            let row = features.row_mut(r);
            for (j, v) in row.iter_mut().enumerate() {
                *v = self.means[label][j] + self.rng.standard_normal() * self.spread;
            }
        }
        ClassBatch { features, labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lm_batches_are_reproducible() {
        let mut a = BigramLm::new(64, 0.1, 9);
        let mut b = BigramLm::new(64, 0.1, 9);
        assert_eq!(a.batch(4, 16), b.batch(4, 16));
        // Different seed, different batch.
        let mut c = BigramLm::new(64, 0.1, 10);
        assert_ne!(a.batch(4, 16), c.batch(4, 16));
    }

    #[test]
    fn lm_targets_shift_inputs() {
        let mut lm = BigramLm::new(32, 0.0, 1);
        let b = lm.batch(2, 8);
        assert_eq!(b.inputs.len(), 16);
        assert_eq!(b.targets.len(), 16);
        // Within a sequence, target t becomes input t+1.
        for s in 0..2 {
            for t in 0..7 {
                assert_eq!(b.targets[s * 8 + t], b.inputs[s * 8 + t + 1]);
            }
        }
        assert!(b.inputs.iter().all(|&t| t < 32));
    }

    #[test]
    fn lm_chain_is_learnable_structure() {
        // With zero noise, every (token, next) pair must be one of the 4
        // designated successors.
        let mut lm = BigramLm::new(16, 0.0, 3);
        let chain = lm.successors.clone();
        let b = lm.batch(8, 32);
        for i in 0..b.inputs.len() {
            let tok = b.inputs[i];
            let next = b.targets[i];
            assert!(
                chain[tok].contains(&next),
                "{next} not a successor of {tok}"
            );
        }
    }

    #[test]
    fn classification_batches_reproducible_and_separable() {
        let mut a = GaussianClassification::new(4, 8, 0.3, 5);
        let mut b = GaussianClassification::new(4, 8, 0.3, 5);
        let ba = a.batch(32);
        let bb = b.batch(32);
        assert_eq!(ba.labels, bb.labels);
        assert_eq!(ba.features.data(), bb.features.data());
        assert!(ba.labels.iter().all(|&l| l < 4));
        // Features of a class cluster near its mean: nearest-mean
        // classification should beat chance comfortably.
        let task = GaussianClassification::new(4, 8, 0.3, 5);
        let mut correct = 0;
        for r in 0..32 {
            let row = ba.features.row(r);
            let best = (0..4)
                .min_by(|&i, &j| {
                    let di: f32 = row
                        .iter()
                        .zip(&task.means[i])
                        .map(|(x, m)| (x - m).powi(2))
                        .sum();
                    let dj: f32 = row
                        .iter()
                        .zip(&task.means[j])
                        .map(|(x, m)| (x - m).powi(2))
                        .sum();
                    di.partial_cmp(&dj).unwrap()
                })
                .unwrap();
            if best == ba.labels[r] {
                correct += 1;
            }
        }
        assert!(correct >= 28, "only {correct}/32 nearest-mean correct");
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn classification_needs_two_classes() {
        GaussianClassification::new(1, 4, 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "vocab")]
    fn lm_needs_vocab() {
        BigramLm::new(4, 0.0, 0);
    }
}
