//! The evaluation model zoo of Table 3, plus BERT-large (Sec. 6.1).

use serde::{Deserialize, Serialize};

use crate::transformer::TransformerConfig;

/// One row of Table 3: a model size with its evaluation settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Nominal parameter count label, in billions (e.g. 10 for "10B").
    pub label_b: f64,
    /// Micro-batch size per GPU used in the paper's runs.
    pub batch_per_gpu: u32,
    /// Model-parallel degree used with ZeRO-Offload.
    pub mp_degree: u32,
    /// The architecture.
    pub model: TransformerConfig,
}

impl EvalConfig {
    fn new(label_b: f64, batch_per_gpu: u32, mp_degree: u32, layers: u32, hidden: u32) -> Self {
        EvalConfig {
            label_b,
            batch_per_gpu,
            mp_degree,
            model: TransformerConfig::gpt2_like(layers, hidden),
        }
    }
}

/// All rows of Table 3, in order.
pub fn table3() -> Vec<EvalConfig> {
    vec![
        EvalConfig::new(1.0, 32, 1, 20, 2048),
        EvalConfig::new(2.0, 32, 1, 40, 2048),
        EvalConfig::new(4.0, 32, 1, 64, 2304),
        EvalConfig::new(6.0, 16, 1, 53, 3072),
        EvalConfig::new(8.0, 16, 1, 72, 3072),
        EvalConfig::new(10.0, 10, 1, 50, 4096),
        EvalConfig::new(11.0, 8, 1, 55, 4096),
        EvalConfig::new(12.0, 4, 1, 60, 4096),
        EvalConfig::new(13.0, 4, 1, 65, 4096),
        EvalConfig::new(15.0, 8, 2, 78, 4096),
        EvalConfig::new(20.0, 8, 2, 25, 8192),
        EvalConfig::new(40.0, 8, 2, 50, 8192),
        EvalConfig::new(60.0, 8, 2, 75, 8192),
        EvalConfig::new(70.0, 8, 8, 69, 9216),
    ]
}

/// Looks up a Table 3 row by its nominal size in billions.
pub fn by_label(label_b: f64) -> Option<EvalConfig> {
    table3()
        .into_iter()
        .find(|c| (c.label_b - label_b).abs() < 1e-9)
}

/// BERT-large (24 layers, 1024 hidden, 16 heads, ~336M parameters), used
/// for the SQuAD fine-tuning convergence experiment (Fig. 13).
pub fn bert_large() -> TransformerConfig {
    TransformerConfig {
        num_layers: 24,
        hidden: 1024,
        heads: 16,
        vocab: 30522,
        seq_len: 384,
    }
}

/// The total training batch size used in the throughput experiments.
pub const TOTAL_BATCH: u32 = 512;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_fourteen_rows() {
        assert_eq!(table3().len(), 14);
    }

    #[test]
    fn labels_are_close_to_actual_counts() {
        for cfg in table3() {
            let actual_b = cfg.model.total_params() as f64 / 1e9;
            let rel = (actual_b - cfg.label_b).abs() / cfg.label_b;
            assert!(
                rel < 0.15,
                "{}B row has {actual_b:.2}B actual parameters",
                cfg.label_b
            );
        }
    }

    #[test]
    fn lookup_by_label() {
        let c = by_label(10.0).unwrap();
        assert_eq!(c.batch_per_gpu, 10);
        assert_eq!(c.model.hidden, 4096);
        assert!(by_label(3.0).is_none());
    }

    #[test]
    fn mp_degree_only_for_large_models() {
        for cfg in table3() {
            if cfg.label_b <= 13.0 {
                assert_eq!(cfg.mp_degree, 1, "{}B", cfg.label_b);
            } else {
                assert!(cfg.mp_degree >= 2, "{}B", cfg.label_b);
            }
        }
    }

    #[test]
    fn bert_large_parameter_count() {
        let p = bert_large().total_params() as f64;
        // ~336M (ours counts embeddings slightly differently; allow 10%).
        assert!((300e6..380e6).contains(&p), "got {p}");
    }
}
