//! GPT-2-like transformer accounting: parameters, FLOPs, activations.
//!
//! The evaluation workloads (paper Sec. 6.1) are GPT-2-like models whose
//! depth and hidden size are varied to reach 1–70B parameters (Table 3).
//! Throughput and model-scale experiments need exact parameter counts,
//! per-iteration FLOPs, and activation footprints; this module provides
//! the standard accounting formulas for a pre-LN transformer LM trained
//! with activation checkpointing (which the paper uses — Fig. 2 caption).

use serde::{Deserialize, Serialize};

/// Configuration of a GPT-2-like decoder-only transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Number of transformer layers.
    pub num_layers: u32,
    /// Hidden dimension.
    pub hidden: u32,
    /// Attention heads.
    pub heads: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Sequence length.
    pub seq_len: u32,
}

impl TransformerConfig {
    /// GPT-2 defaults for vocabulary (50257, rounded to 50304 for
    /// alignment) and sequence length (1024), with `hidden/64` heads.
    pub fn gpt2_like(num_layers: u32, hidden: u32) -> TransformerConfig {
        TransformerConfig {
            num_layers,
            hidden,
            heads: (hidden / 64).max(1),
            vocab: 50304,
            seq_len: 1024,
        }
    }

    /// Parameters in one transformer layer: `12·h² + 13·h`.
    ///
    /// Attention QKV + output projection contribute `4h² + 4h`, the MLP
    /// (4× expansion) `8h² + 5h`, and the two layer norms `4h`.
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        12 * h * h + 13 * h
    }

    /// Total parameter count, including token and position embeddings.
    pub fn total_params(&self) -> u64 {
        let h = self.hidden as u64;
        let emb = (self.vocab as u64 + self.seq_len as u64) * h;
        // Final layer norm.
        let final_ln = 2 * h;
        self.num_layers as u64 * self.params_per_layer() + emb + final_ln
    }

    /// FLOPs for one iteration at `micro_batch` sequences, with activation
    /// checkpointing.
    ///
    /// Dense-work approximation: 2·P FLOPs/token forward, 4·P backward,
    /// plus a forward recompute for checkpointing = 8·P per token, plus
    /// the attention score term `12·L·B·s²·h` (fwd+bwd+recompute of the
    /// two s×s matmuls).
    pub fn flops_per_iter(&self, micro_batch: u64) -> f64 {
        let tokens = micro_batch as f64 * self.seq_len as f64;
        let dense = 8.0 * self.total_params() as f64 * tokens;
        let attn = 12.0
            * self.num_layers as f64
            * micro_batch as f64
            * (self.seq_len as f64 * self.seq_len as f64)
            * self.hidden as f64;
        dense + attn
    }

    /// Activation bytes resident on GPU at `micro_batch`, with
    /// checkpointing (one fp16 checkpoint per layer plus one layer's
    /// working set).
    pub fn activation_bytes(&self, micro_batch: u64) -> u64 {
        let b = micro_batch;
        let s = self.seq_len as u64;
        let h = self.hidden as u64;
        let heads = self.heads as u64;
        // One fp16 checkpoint (b·s·h) per layer boundary.
        let checkpoints = (self.num_layers as u64 + 1) * b * s * h * 2;
        // Working set of the layer being (re)computed: QKV + scores +
        // context + MLP intermediates, all fp16; ~16·b·s·h plus the two
        // attention score tensors b·heads·s².
        let working = 16 * b * s * h * 2 + 2 * b * heads * s * s * 2;
        // Logits + loss working memory (fp16 + fp32 softmax): counted once.
        let logits = b * s * self.vocab as u64 * (2 + 4);
        checkpoints + working + logits
    }

    /// Model-state byte totals per the paper's 16M rule.
    pub fn state_bytes(&self) -> ModelStateBytes {
        ModelStateBytes::for_params(self.total_params())
    }
}

/// The four model-state components of mixed-precision Adam training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelStateBytes {
    /// fp16 parameters (2 bytes each).
    pub p16: u64,
    /// fp16 gradients (2 bytes each).
    pub g16: u64,
    /// fp32 master parameters (4 bytes each).
    pub p32: u64,
    /// fp32 momentum + variance (8 bytes each).
    pub optim: u64,
}

impl ModelStateBytes {
    /// Byte budget for `params` parameters.
    pub fn for_params(params: u64) -> ModelStateBytes {
        ModelStateBytes {
            p16: 2 * params,
            g16: 2 * params,
            p32: 4 * params,
            optim: 8 * params,
        }
    }

    /// Total: the paper's 16M bytes.
    pub fn total(&self) -> u64 {
        self.p16 + self.g16 + self.p32 + self.optim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_one_billion_config() {
        // 20 layers × 2048 hidden ≈ 1B (Table 3 row 1).
        let cfg = TransformerConfig::gpt2_like(20, 2048);
        let p = cfg.total_params();
        assert!((0.9e9..1.2e9).contains(&(p as f64)), "got {p}");
    }

    #[test]
    fn table3_thirteen_billion_config() {
        // 65 layers × 4096 hidden ≈ 13B (Table 3): the single-GPU maximum.
        let cfg = TransformerConfig::gpt2_like(65, 4096);
        let p = cfg.total_params() as f64;
        assert!((12.5e9..13.8e9).contains(&p), "got {p}");
    }

    #[test]
    fn table3_seventy_billion_config() {
        let cfg = TransformerConfig::gpt2_like(69, 9216);
        let p = cfg.total_params() as f64;
        assert!((68e9..72e9).contains(&p), "got {p}");
    }

    #[test]
    fn sixteen_m_rule() {
        let cfg = TransformerConfig::gpt2_like(20, 2048);
        let st = cfg.state_bytes();
        assert_eq!(st.total(), 16 * cfg.total_params());
        assert_eq!(st.p16, 2 * cfg.total_params());
        assert_eq!(st.optim, 8 * cfg.total_params());
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let cfg = TransformerConfig::gpt2_like(20, 2048);
        let f1 = cfg.flops_per_iter(1);
        let f8 = cfg.flops_per_iter(8);
        assert!((f8 / f1 - 8.0).abs() < 1e-9);
        // Dense term dominates for large hidden: ~8·P·tokens.
        let approx = 8.0 * cfg.total_params() as f64 * 1024.0;
        assert!(f1 > approx && f1 < 1.4 * approx);
    }

    #[test]
    fn activation_memory_grows_with_batch_and_depth() {
        let small = TransformerConfig::gpt2_like(20, 2048);
        let deep = TransformerConfig::gpt2_like(40, 2048);
        assert!(deep.activation_bytes(8) > small.activation_bytes(8));
        assert!(small.activation_bytes(16) > small.activation_bytes(8));
        // Checkpointing keeps it far below the no-checkpoint footprint
        // (~L·16·b·s·h bytes): for 20 layers the ratio should be large.
        let no_ckpt = 20 * 16 * 8 * 1024 * 2048 * 2u64;
        assert!(small.activation_bytes(8) < no_ckpt / 2);
    }

    #[test]
    fn heads_default_follows_hidden() {
        assert_eq!(TransformerConfig::gpt2_like(2, 2048).heads, 32);
        assert_eq!(TransformerConfig::gpt2_like(2, 64).heads, 1);
    }
}
