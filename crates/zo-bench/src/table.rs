//! Minimal aligned-text table rendering for experiment output.

/// Renders rows as an aligned markdown-style table.
///
/// # Examples
///
/// ```
/// let s = zo_bench::render_table(
///     &["name", "value"],
///     &[vec!["a".to_string(), "1".to_string()]],
/// );
/// assert!(s.contains("| a"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!(" {cell:w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let s = render_table(
            &["x", "long header"],
            &[
                vec!["aaaa".into(), "1".into()],
                vec!["b".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal length.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("long header"));
    }

    #[test]
    fn handles_empty_rows() {
        let s = render_table(&["a"], &[]);
        assert_eq!(s.lines().count(), 2);
    }
}
