//! Table 4: Adam latency — CPU-Adam vs PT-CPU vs PT-GPU.
//!
//! The real `CpuAdam` and `NaiveAdam` kernels are measured on this host at
//! a scaled parameter count (Adam is a single linear pass, so seconds per
//! billion parameters extrapolates exactly), and the PT-GPU column comes
//! from the calibrated V100 model. The paper's absolute numbers depend on
//! its 2×Xeon-8168; the claim under test is the CPU-Adam : PT-CPU ratio.

use std::time::Instant;

use zo_optim::{AdamParams, CpuAdam, CpuAdamConfig, NaiveAdam};

/// Measured optimizer rates, in seconds per billion parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamRates {
    /// Optimized CPU-Adam.
    pub cpu_adam_secs_per_b: f64,
    /// Naive op-by-op Adam (PT-CPU analog).
    pub naive_secs_per_b: f64,
    /// Parameters actually measured.
    pub measured_params: usize,
}

impl AdamRates {
    /// The headline speedup of Sec. 5.1.
    pub fn speedup(&self) -> f64 {
        self.naive_secs_per_b / self.cpu_adam_secs_per_b
    }
}

/// Times `steps` optimizer steps over `n` parameters for both
/// implementations and returns per-billion-parameter rates.
pub fn measure_adam_rates(n: usize, steps: usize) -> AdamRates {
    let mut params_fast = vec![0.5f32; n];
    let mut params_naive = vec![0.5f32; n];
    let grads: Vec<f32> = (0..n).map(|i| ((i % 997) as f32 - 498.0) * 1e-4).collect();

    let mut fast = CpuAdam::new(CpuAdamConfig::default(), n);
    let mut naive = NaiveAdam::new(AdamParams::default(), n);

    // Warm up caches and branch predictors once.
    fast.step(&mut params_fast, &grads).expect("sized buffers");
    naive
        .step(&mut params_naive, &grads)
        .expect("sized buffers");

    let t0 = Instant::now();
    for _ in 0..steps {
        fast.step(&mut params_fast, &grads).expect("sized buffers");
    }
    let fast_secs = t0.elapsed().as_secs_f64() / steps as f64;

    let t0 = Instant::now();
    for _ in 0..steps {
        naive
            .step(&mut params_naive, &grads)
            .expect("sized buffers");
    }
    let naive_secs = t0.elapsed().as_secs_f64() / steps as f64;

    let per_b = 1e9 / n as f64;
    AdamRates {
        cpu_adam_secs_per_b: fast_secs * per_b,
        naive_secs_per_b: naive_secs * per_b,
        measured_params: n,
    }
}

/// One row of Table 4, extrapolated from measured rates.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Parameter count label, billions.
    pub params_b: f64,
    /// CPU-Adam latency, seconds.
    pub cpu_adam: f64,
    /// PT-CPU latency, seconds.
    pub pt_cpu: f64,
    /// PT-GPU latency, seconds (V100 model).
    pub pt_gpu: f64,
    /// Paper-reported CPU-Adam and PT-CPU latencies for comparison.
    pub paper: (f64, f64, f64),
}

/// Builds the Table 4 rows from measured rates.
pub fn table4_rows(rates: &AdamRates) -> Vec<Table4Row> {
    // Paper Table 4: (CPU-Adam, PT-CPU, PT-GPU) seconds.
    let paper = [
        (1.0, 0.22, 1.39, 0.10),
        (2.0, 0.51, 2.75, 0.26),
        (4.0, 1.03, 5.71, 0.64),
        (8.0, 2.41, 11.93, 0.87),
        (10.0, 2.57, 14.76, 1.00),
    ];
    paper
        .iter()
        .map(|&(b, pa, pb, pc)| Table4Row {
            params_b: b,
            cpu_adam: rates.cpu_adam_secs_per_b * b,
            pt_cpu: rates.naive_secs_per_b * b,
            pt_gpu: zo_baselines::GPU_ADAM_SECS_PER_B * b,
            paper: (pa, pb, pc),
        })
        .collect()
}

/// Renders Table 4 with measured-vs-paper columns.
pub fn render_table4(rates: &AdamRates) -> String {
    let rows: Vec<Vec<String>> = table4_rows(rates)
        .into_iter()
        .map(|r| {
            vec![
                format!("{} billion", r.params_b),
                format!("{:.3}", r.cpu_adam),
                format!("{:.3}", r.pt_cpu),
                format!("{:.2}", r.pt_gpu),
                format!("{:.2}", r.paper.0),
                format!("{:.2}", r.paper.1),
                format!("{:.2}", r.paper.2),
                format!("{:.1}x", r.pt_cpu / r.cpu_adam),
            ]
        })
        .collect();
    crate::table::render_table(
        &[
            "#Parameter",
            "CPU-Adam (s)",
            "PT-CPU (s)",
            "PT-GPU (s)",
            "paper CPU-Adam",
            "paper PT-CPU",
            "paper PT-GPU",
            "speedup",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_adam_is_faster_than_naive() {
        // The Sec. 5.1 claim, at reduced scale. The paper reports >5x on
        // a 2-socket Xeon. In debug builds the op-by-op kernel pays for
        // its temporaries and f64 promotion on any host and the fused
        // kernel wins outright. In release builds LLVM autovectorizes
        // the naive passes too, and on a DRAM-bound shared vCPU both
        // kernels run at memory speed — the ratio is calibrated by the
        // `table4` binary on a quiet machine, so here we only require
        // the fused kernel not to lose beyond measurement noise.
        let rates = measure_adam_rates(1 << 20, 3);
        let floor = if cfg!(debug_assertions) { 1.5 } else { 0.33 };
        assert!(
            rates.speedup() > floor,
            "CPU-Adam only {:.2}x over naive (floor {floor}x)",
            rates.speedup()
        );
    }

    #[test]
    fn rates_scale_linearly() {
        // Doubling n should leave secs-per-B roughly unchanged. The test
        // box is a single shared vCPU and the suite runs threaded, so the
        // bound is generous — the real calibration happens in the
        // `table4` binary on a quiet machine.
        let small = measure_adam_rates(1 << 19, 5);
        let large = measure_adam_rates(1 << 21, 5);
        let ratio = large.cpu_adam_secs_per_b / small.cpu_adam_secs_per_b;
        assert!((0.15..7.0).contains(&ratio), "nonlinear scaling: {ratio}");
    }

    #[test]
    fn table4_extrapolation() {
        let rates = AdamRates {
            cpu_adam_secs_per_b: 0.25,
            naive_secs_per_b: 1.5,
            measured_params: 1,
        };
        let rows = table4_rows(&rates);
        assert_eq!(rows.len(), 5);
        assert!((rows[4].cpu_adam - 2.5).abs() < 1e-9);
        assert!((rows[4].pt_cpu - 15.0).abs() < 1e-9);
        let s = render_table4(&rates);
        assert!(s.contains("10 billion"));
        assert!(s.contains("6.0x"));
    }
}
