//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Sec. 6).
//!
//! Each experiment is a library function returning structured rows plus a
//! text renderer; the `table1`/`table4`/`fig7`…`fig13` binaries print the
//! measured-vs-paper comparison, and the module tests assert the *shape*
//! claims (who wins, by what factor, where the crossovers are).

#![warn(missing_docs)]

pub mod ablations;
pub mod adam_bench;
pub mod convergence;
pub mod criterion_artifact;
pub mod kernels;
pub mod scale;
pub mod service;
mod table;
pub mod throughput;
pub mod trajectory;

pub use ablations::{bucket_sweep, dpu_warmup_sweep, BucketRow, WarmupRow};
pub use adam_bench::{measure_adam_rates, render_table4, table4_rows, AdamRates, Table4Row};
pub use convergence::{
    fig12_curves, fig12_curves_with_warmup, fig13_curves, render_curves, smooth, ConvergenceCurves,
    DPU_WARMUP,
};
pub use criterion_artifact::{
    parse_ndjson, render_criterion_json, validate_criterion_json, BenchRecord,
};
pub use kernels::{run_kernel_bench, validate_kernel_json, KernelReport};
pub use scale::{fig7_rows, render_fig7, ScaleRow};
pub use service::{jain_index, measure_service, schedule_fairness, ServiceMetrics};
pub use table::render_table;
pub use throughput::{
    fig10_rows, fig11_rows, fig8_rows, fig9_rows, render_fig10, render_fig11, render_fig8,
    render_fig9, Fig10Row, Fig11Row, Fig8Row, Fig9Row,
};
pub use trajectory::{
    run_single, run_zero3, verify_pinned, TrajectoryRun, PINNED_TRAJECTORY_FINGERPRINT,
};
