//! Figure 7: largest trainable model per system on 1 / 4 / 16 GPUs.

use zo_baselines::System;
use zo_hetsim::presets;

/// One bar of Fig. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRow {
    /// GPU count.
    pub gpus: u32,
    /// System name.
    pub system: String,
    /// Largest trainable model, billions of parameters.
    pub max_b: f64,
    /// The paper's reported value, billions (approximate bar heights).
    pub paper_b: f64,
}

/// Paper bar heights for Fig. 7 (billions of parameters).
fn paper_value(system: &System, gpus: u32) -> f64 {
    match (system, gpus) {
        (System::PyTorchDdp, _) => 1.4,
        (System::Megatron { .. }, 1) => 1.4,
        (System::Megatron { .. }, 4) => 6.0,
        (System::Megatron { .. }, _) => 15.0,
        (System::Zero2, 1) => 1.4,
        (System::Zero2, 4) => 4.0,
        (System::Zero2, _) => 9.0,
        (System::L2l, _) => 17.0,
        (System::ZeroOffload { .. }, 1) => 13.0,
        (System::ZeroOffload { .. }, 4) => 30.0,
        (System::ZeroOffload { .. }, _) => 70.0,
    }
}

/// Computes every Fig. 7 bar.
pub fn fig7_rows() -> Vec<ScaleRow> {
    let node = presets::dgx2();
    let systems = [
        System::PyTorchDdp,
        System::Megatron { mp: 1 },
        System::Zero2,
        System::L2l,
        System::ZeroOffload { mp: 1 },
    ];
    let mut rows = Vec::new();
    for gpus in [1u32, 4, 16] {
        for sys in systems {
            let max = zo_baselines::max_trainable_params(sys, gpus, &node);
            rows.push(ScaleRow {
                gpus,
                system: base_name(&sys),
                max_b: max as f64 / 1e9,
                paper_b: paper_value(&sys, gpus),
            });
        }
    }
    rows
}

fn base_name(sys: &System) -> String {
    match sys {
        System::Megatron { .. } => "Megatron".to_string(),
        System::ZeroOffload { .. } => "ZeRO-Offload".to_string(),
        other => other.name(),
    }
}

/// Renders Fig. 7 as a table.
pub fn render_fig7() -> String {
    let rows: Vec<Vec<String>> = fig7_rows()
        .into_iter()
        .map(|r| {
            vec![
                r.gpus.to_string(),
                r.system,
                format!("{:.1}", r.max_b),
                format!("{:.1}", r.paper_b),
            ]
        })
        .collect();
    crate::table::render_table(&["GPUs", "system", "max model (B)", "paper (B)"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape_holds() {
        let rows = fig7_rows();
        assert_eq!(rows.len(), 15);
        let get = |gpus: u32, sys: &str| -> f64 {
            rows.iter()
                .find(|r| r.gpus == gpus && r.system == sys)
                .expect("row")
                .max_b
        };
        // Within every GPU count, ZeRO-Offload dominates all partition/
        // replication baselines.
        for gpus in [1u32, 4, 16] {
            let zo = get(gpus, "ZeRO-Offload");
            for sys in ["PyTorch DDP", "Megatron", "ZeRO-2"] {
                assert!(zo > get(gpus, sys), "{sys} at {gpus} GPUs");
            }
        }
        // Ordering at one GPU: PyTorch < ZeRO-Offload < L2L (paper).
        assert!(get(1, "PyTorch DDP") < get(1, "ZeRO-Offload"));
        assert!(get(1, "ZeRO-Offload") < get(1, "L2L"));
        // ZeRO-Offload at 16 GPUs reaches the tens of billions.
        assert!(get(16, "ZeRO-Offload") > 50.0);
    }

    #[test]
    fn measured_within_2x_of_paper() {
        // Shape reproduction: every bar within a factor of ~2 of the
        // paper's (absolute calibration differs, ordering must not).
        for r in fig7_rows() {
            let ratio = r.max_b / r.paper_b;
            assert!(
                (0.5..2.5).contains(&ratio),
                "{} at {} GPUs: measured {:.1}B vs paper {:.1}B",
                r.system,
                r.gpus,
                r.max_b,
                r.paper_b
            );
        }
    }
}
