//! Kernel-floor micro-benchmarks behind the `kernel_bench` binary.
//!
//! Measures the throughput of the repo's three hot kernel families through
//! their *public* entry points — the same code paths training executes:
//!
//! * the three GEMM variants (`matmul`, `matmul_at_b`, `matmul_a_bt`) at
//!   512³, serial and 4-way partitioned on an explicit 4-worker pool;
//! * the fp16 slice codec (`F16::from_f32_slice` / `to_f32_slice`, reached
//!   via `cast_f32_to_f16` / `cast_f16_to_f32`) against a scalar
//!   per-element baseline loop on a 16 MiB fp16 buffer;
//! * `CpuAdam::step` element throughput;
//!
//! plus the deterministic trajectory fingerprint from
//! [`crate::trajectory`], so `BENCH_kernels.json` records both *how fast*
//! the kernels are and *which numerics* produced the numbers. CI emits the
//! JSON on every run; diffing it across PRs is the machine-checkable perf
//! trajectory ROADMAP item 5 asks for.
//!
//! Timing is min-of-iterations over a small wall-clock budget: the minimum
//! is the right statistic for throughput on a shared machine (noise only
//! ever slows an iteration down).

use std::time::Instant;

use zero_offload::TierKind;
use zo_optim::{CpuAdam, CpuAdamConfig};
use zo_tensor::matmul::{
    matmul_a_bt_acc_on, matmul_a_bt_acc_serial, matmul_acc_on, matmul_acc_serial,
    matmul_at_b_acc_on, matmul_at_b_acc_serial,
};
use zo_tensor::{cast_f16_to_f32, cast_f32_to_f16, Pool, Tensor, F16};

use crate::trajectory::{run_single, PINNED_STEPS};

/// GEMM problem edge: 512³ is the shape the acceptance bar is pinned to.
pub const GEMM_DIM: usize = 512;

/// fp16 codec payload: 8 Mi elements = 16 MiB of fp16.
pub const CODEC_ELEMS: usize = 8 * 1024 * 1024;

/// CpuAdam payload: 4 Mi parameters.
pub const ADAM_ELEMS: usize = 4 * 1024 * 1024;

/// One GEMM measurement.
pub struct GemmPoint {
    /// Entry-point name: `matmul`, `matmul_at_b`, or `matmul_a_bt`.
    pub kernel: &'static str,
    /// Problem shape (m, k, n).
    pub shape: (usize, usize, usize),
    /// 1 = serial entry point, else the partition count on a pool of the
    /// same size.
    pub threads: usize,
    /// Billions of flops per second (`2·m·k·n / t`).
    pub gflops: f64,
}

/// One fp16 codec direction.
pub struct CodecPoint {
    /// `f32_to_f16` or `f16_to_f32`.
    pub dir: &'static str,
    /// Elements converted per call.
    pub elems: usize,
    /// Slice-codec throughput in GB/s of fp16 payload (`2·elems / t`).
    pub slice_gb_s: f64,
    /// Scalar per-element baseline, same unit.
    pub scalar_gb_s: f64,
}

/// CpuAdam measurement.
pub struct AdamPoint {
    /// Parameters per step.
    pub elems: usize,
    /// Elements updated per second by `CpuAdam::step`.
    pub elems_per_s: f64,
}

/// Everything `kernel_bench` measures.
pub struct KernelReport {
    /// Trajectory fingerprint of the pinned run under the current kernels.
    pub fingerprint: u64,
    /// Steps the fingerprint run trained for. When this equals
    /// [`PINNED_STEPS`] the fingerprint is comparable to the repo pin and
    /// the validator holds it to it; quick runs train fewer steps and are
    /// exempt.
    pub steps: usize,
    /// GEMM points: three kernels × threads {1, 4}.
    pub gemm: Vec<GemmPoint>,
    /// Codec points: both directions.
    pub codec: Vec<CodecPoint>,
    /// CpuAdam point.
    pub adam: AdamPoint,
}

/// Runs `f` repeatedly and returns the fastest observed wall time in
/// seconds. One warm-up call, then at least `min_iters` timed calls or
/// until `budget_s` of timed work has accumulated, whichever is longer.
pub fn best_seconds(mut f: impl FnMut(), budget_s: f64, min_iters: usize) -> f64 {
    f(); // warm-up: page in buffers, populate scratch
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut iters = 0;
    while iters < min_iters || (spent < budget_s && iters < 64) {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        iters += 1;
    }
    best
}

/// Deterministic pseudo-random fill in [-0.5, 0.5) (no `rand` dependency;
/// the bench must produce the same working set every run).
fn fill_randomish(data: &mut [f32], seed: u32) {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    for v in data {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        *v = ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5;
    }
}

fn gemm_points(quick: bool) -> Vec<GemmPoint> {
    let d = if quick { 128 } else { GEMM_DIM };
    let (budget, min_iters) = if quick { (0.02, 1) } else { (0.2, 2) };
    let flops = 2.0 * (d as f64).powi(3);
    let mut a = Tensor::zeros(d, d);
    let mut b = Tensor::zeros(d, d);
    fill_randomish(a.data_mut(), 1);
    fill_randomish(b.data_mut(), 2);
    let mut c = Tensor::zeros(d, d);
    let pool = Pool::new(4);

    // All three variants take square operands here, so `a`/`b` serve every
    // layout ((m,k)·(k,n), (k,m)ᵀ·(k,n), (m,k)·(n,k)ᵀ) unchanged.
    type SerialFn = fn(&Tensor, &Tensor, &mut Tensor) -> Result<(), zo_tensor::TensorError>;
    type PoolFn =
        fn(&Pool, usize, &Tensor, &Tensor, &mut Tensor) -> Result<(), zo_tensor::TensorError>;
    let kernels: [(&'static str, SerialFn, PoolFn); 3] = [
        ("matmul", matmul_acc_serial, matmul_acc_on),
        ("matmul_at_b", matmul_at_b_acc_serial, matmul_at_b_acc_on),
        ("matmul_a_bt", matmul_a_bt_acc_serial, matmul_a_bt_acc_on),
    ];

    let mut out = Vec::new();
    for (name, serial, on_pool) in kernels {
        for threads in [1usize, 4] {
            // The entry points accumulate; reset C outside the timed region
            // so repeated iterations don't drift toward infinity.
            let t = best_seconds(
                || {
                    c.data_mut().fill(0.0);
                    if threads == 1 {
                        serial(&a, &b, &mut c).expect("bench gemm");
                    } else {
                        on_pool(&pool, threads, &a, &b, &mut c).expect("bench gemm");
                    }
                },
                budget,
                min_iters,
            );
            out.push(GemmPoint {
                kernel: name,
                shape: (d, d, d),
                threads,
                gflops: flops / t / 1e9,
            });
        }
    }
    out
}

fn codec_points(quick: bool) -> Vec<CodecPoint> {
    let n = if quick { CODEC_ELEMS / 64 } else { CODEC_ELEMS };
    let (budget, min_iters) = if quick { (0.02, 1) } else { (0.2, 3) };
    let bytes = (n * 2) as f64;
    let mut src32 = vec![0.0f32; n];
    fill_randomish(&mut src32, 7);
    let mut dst16 = vec![F16::ZERO; n];
    cast_f32_to_f16(&src32, &mut dst16);
    let src16 = dst16.clone();
    let mut dst32 = vec![0.0f32; n];

    let narrow_slice = best_seconds(|| cast_f32_to_f16(&src32, &mut dst16), budget, min_iters);
    let narrow_scalar = best_seconds(
        || {
            for (d, s) in dst16.iter_mut().zip(&src32) {
                *d = F16::from_f32(*s);
            }
        },
        budget,
        min_iters,
    );
    let widen_slice = best_seconds(|| cast_f16_to_f32(&src16, &mut dst32), budget, min_iters);
    let widen_scalar = best_seconds(
        || {
            for (d, s) in dst32.iter_mut().zip(&src16) {
                *d = s.to_f32();
            }
        },
        budget,
        min_iters,
    );
    vec![
        CodecPoint {
            dir: "f32_to_f16",
            elems: n,
            slice_gb_s: bytes / narrow_slice / 1e9,
            scalar_gb_s: bytes / narrow_scalar / 1e9,
        },
        CodecPoint {
            dir: "f16_to_f32",
            elems: n,
            slice_gb_s: bytes / widen_slice / 1e9,
            scalar_gb_s: bytes / widen_scalar / 1e9,
        },
    ]
}

fn adam_point(quick: bool) -> AdamPoint {
    let n = if quick { ADAM_ELEMS / 64 } else { ADAM_ELEMS };
    let (budget, min_iters) = if quick { (0.02, 1) } else { (0.2, 2) };
    let mut p = vec![0.0f32; n];
    fill_randomish(&mut p, 11);
    let mut g = vec![0.0f32; n];
    fill_randomish(&mut g, 13);
    for v in &mut g {
        *v *= 0.01;
    }
    let mut opt = CpuAdam::new(CpuAdamConfig::default(), n);
    let t = best_seconds(
        || opt.step(&mut p, &g).expect("bench adam"),
        budget,
        min_iters,
    );
    AdamPoint {
        elems: n,
        elems_per_s: n as f64 / t,
    }
}

/// Runs every measurement. `quick` shrinks problem sizes and budgets to
/// smoke-test levels (used by the bench's own tests, not by CI).
pub fn run_kernel_bench(quick: bool) -> KernelReport {
    let steps = if quick { 2 } else { PINNED_STEPS };
    let fingerprint = run_single(steps, TierKind::Dram).hash;
    KernelReport {
        fingerprint,
        steps,
        gemm: gemm_points(quick),
        codec: codec_points(quick),
        adam: adam_point(quick),
    }
}

impl KernelReport {
    /// Renders the `BENCH_kernels.json` artifact. Flat hand-rendered JSON
    /// in the style of `BENCH_fingerprint.json`; `kernel_bench --assert`
    /// re-parses it through the `serde_json` shim, so the two ends
    /// cross-check each other.
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"zo-kernel-bench/1\",\n");
        s.push_str(&format!(
            "  \"trajectory_fingerprint\": \"{:016x}\",\n",
            self.fingerprint
        ));
        s.push_str(&format!("  \"trajectory_steps\": {},\n", self.steps));
        s.push_str("  \"gemm\": [\n");
        for (i, p) in self.gemm.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"threads\": {}, \"gflops\": {:.4}}}{}\n",
                p.kernel,
                p.shape.0,
                p.shape.1,
                p.shape.2,
                p.threads,
                p.gflops,
                if i + 1 < self.gemm.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"f16_codec\": [\n");
        for (i, p) in self.codec.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"dir\": \"{}\", \"elems\": {}, \"slice_gb_s\": {:.4}, \"scalar_gb_s\": {:.4}, \"speedup\": {:.3}}}{}\n",
                p.dir,
                p.elems,
                p.slice_gb_s,
                p.scalar_gb_s,
                p.slice_gb_s / p.scalar_gb_s,
                if i + 1 < self.codec.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"cpu_adam\": {{\"elems\": {}, \"elems_per_s\": {:.1}}}\n",
            self.adam.elems, self.adam.elems_per_s
        ));
        s.push_str("}\n");
        s
    }

    /// Renders the human-readable stdout table.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "trajectory fingerprint {:016x}\n",
            self.fingerprint
        ));
        s.push_str("kernel        shape          threads  GFLOP/s\n");
        for p in &self.gemm {
            s.push_str(&format!(
                "{:<13} {}x{}x{:<6} {:>6}  {:>8.3}\n",
                p.kernel, p.shape.0, p.shape.1, p.shape.2, p.threads, p.gflops
            ));
        }
        s.push_str("codec         elems      slice GB/s  scalar GB/s  speedup\n");
        for p in &self.codec {
            s.push_str(&format!(
                "{:<13} {:>8}   {:>9.3}  {:>10.3}  {:>6.2}x\n",
                p.dir,
                p.elems,
                p.slice_gb_s,
                p.scalar_gb_s,
                p.slice_gb_s / p.scalar_gb_s
            ));
        }
        s.push_str(&format!(
            "cpu_adam      {:>8}   {:>12.0} elem/s\n",
            self.adam.elems, self.adam.elems_per_s
        ));
        s
    }
}

/// Validates an emitted `BENCH_kernels.json`: it must parse, carry a
/// plausible fingerprint, and every throughput field must be finite and
/// strictly positive. An artifact whose fingerprint run trained the full
/// [`PINNED_STEPS`] is additionally held to
/// [`crate::trajectory::PINNED_TRAJECTORY_FINGERPRINT`] — so a perf
/// artifact recording perturbed numerics fails the assert step instead
/// of uploading. Returns a description of the first problem found.
pub fn validate_kernel_json(text: &str) -> Result<(), String> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("JSON does not parse: {e:?}"))?;
    let fp = v
        .get("trajectory_fingerprint")
        .and_then(|f| f.as_str())
        .ok_or("missing trajectory_fingerprint")?;
    let fp = u64::from_str_radix(fp, 16).map_err(|_| format!("fingerprint {fp:?} is not hex"))?;
    let steps = v
        .get("trajectory_steps")
        .and_then(|s| s.as_f64())
        .ok_or("missing trajectory_steps")? as usize;
    if steps == PINNED_STEPS && fp != crate::trajectory::PINNED_TRAJECTORY_FINGERPRINT {
        return Err(format!(
            "trajectory fingerprint {:016x} over {PINNED_STEPS} steps does not match the \
             pin {:016x} — the artifact records perturbed numerics",
            fp,
            crate::trajectory::PINNED_TRAJECTORY_FINGERPRINT
        ));
    }

    let positive = |val: Option<&serde_json::Value>, what: &str| -> Result<(), String> {
        let x = val
            .and_then(|x| x.as_f64())
            .ok_or_else(|| format!("{what}: missing or non-numeric"))?;
        if x.is_finite() && x > 0.0 {
            Ok(())
        } else {
            Err(format!("{what}: {x} is not a positive finite throughput"))
        }
    };

    let gemm = v
        .get("gemm")
        .and_then(|g| g.as_array())
        .ok_or("missing gemm array")?;
    if gemm.len() != 6 {
        return Err(format!("expected 6 gemm points, found {}", gemm.len()));
    }
    for (i, p) in gemm.iter().enumerate() {
        positive(p.get("gflops"), &format!("gemm[{i}].gflops"))?;
    }
    let codec = v
        .get("f16_codec")
        .and_then(|c| c.as_array())
        .ok_or("missing f16_codec array")?;
    if codec.len() != 2 {
        return Err(format!("expected 2 codec points, found {}", codec.len()));
    }
    for (i, p) in codec.iter().enumerate() {
        positive(p.get("slice_gb_s"), &format!("f16_codec[{i}].slice_gb_s"))?;
        positive(p.get("scalar_gb_s"), &format!("f16_codec[{i}].scalar_gb_s"))?;
    }
    positive(
        v.get("cpu_adam").and_then(|a| a.get("elems_per_s")),
        "cpu_adam.elems_per_s",
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_renders_and_validates() {
        let report = run_kernel_bench(true);
        let json = report.render_json();
        validate_kernel_json(&json).expect("quick report must validate");
        assert!(report.render_table().contains("matmul"));
    }

    #[test]
    fn validator_rejects_broken_artifacts() {
        assert!(validate_kernel_json("{nope").is_err());
        assert!(validate_kernel_json("{}").is_err());
        // A zero throughput must be rejected even when everything parses.
        let mut report = run_kernel_bench(true);
        report.gemm[0].gflops = 0.0;
        assert!(validate_kernel_json(&report.render_json()).is_err());
    }

    /// Red path for the pin gate: a full-length artifact whose
    /// fingerprint is not the repo pin must fail validation (this is
    /// what `kernel_bench --assert` runs in CI), while the exact pin
    /// passes and quick runs stay exempt.
    #[test]
    fn validator_holds_full_runs_to_the_pinned_fingerprint() {
        let mut report = run_kernel_bench(true);
        report.steps = crate::trajectory::PINNED_STEPS;
        report.fingerprint = crate::trajectory::PINNED_TRAJECTORY_FINGERPRINT;
        validate_kernel_json(&report.render_json()).expect("exact pin must validate");

        report.fingerprint ^= 1;
        let err = validate_kernel_json(&report.render_json())
            .expect_err("a perturbed full-length fingerprint must be rejected");
        assert!(err.contains("does not match the pin"), "message: {err}");

        // Quick runs (fewer steps) are not comparable and stay exempt.
        report.steps = 2;
        validate_kernel_json(&report.render_json()).expect("quick runs are exempt from the pin");
    }
}
