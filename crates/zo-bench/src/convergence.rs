//! Figures 12–13: convergence of baseline vs ZeRO-Offload vs +DPU.
//!
//! Real training runs on the `zo-nn` substrate. The paper's claims:
//! (a) ZeRO-Offload w/o DPU overlaps the unmodified baseline *exactly*
//! (it is pure systems restructuring), and (b) DPU's one-step staleness
//! perturbs the curve only transiently after it is enabled.

use zero_offload::{ZeroOffloadConfig, ZeroOffloadEngine};
use zo_models::{BigramLm, GaussianClassification};
use zo_nn::{Classifier, GptConfig, GptModel};
use zo_optim::{AdamParams, LossScaleConfig};

/// The three loss curves of a convergence figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceCurves {
    /// Unmodified mixed-precision baseline (no offload).
    pub baseline: Vec<f32>,
    /// ZeRO-Offload without DPU.
    pub offload: Vec<f32>,
    /// ZeRO-Offload with DPU (enabled after warm-up).
    pub offload_dpu: Vec<f32>,
}

/// DPU warm-up used by the paper's convergence runs.
pub const DPU_WARMUP: u64 = 40;

fn train_cfg(dpu: bool, offload: bool) -> ZeroOffloadConfig {
    let mut cfg = ZeroOffloadConfig {
        adam: AdamParams {
            lr: 3e-3,
            ..AdamParams::default()
        },
        loss_scale: LossScaleConfig {
            init_scale: 256.0,
            ..Default::default()
        },
        ..ZeroOffloadConfig::default()
    };
    if dpu {
        cfg.dpu_warmup = Some(DPU_WARMUP);
    }
    if !offload {
        cfg = cfg.without_offload();
    }
    cfg
}

/// Runs the GPT-2 pretraining analog (Fig. 12) for `steps` steps.
pub fn fig12_curves(steps: usize, seed: u64) -> ConvergenceCurves {
    let gpt = GptConfig {
        vocab: 32,
        seq_len: 16,
        hidden: 32,
        heads: 2,
        layers: 2,
    };
    let run = |cfg: ZeroOffloadConfig| -> Vec<f32> {
        let mut engine = ZeroOffloadEngine::new(GptModel::new(gpt, seed), cfg);
        let mut data = BigramLm::new(gpt.vocab, 0.05, seed ^ 0xDA7A);
        (0..steps)
            .map(|_| {
                let b = data.batch(8, gpt.seq_len);
                engine
                    .step(|m| m.train_step(&b.inputs, &b.targets, 8, gpt.seq_len, |_| {}))
                    .expect("training step")
                    .loss()
            })
            .collect()
    };
    ConvergenceCurves {
        baseline: run(train_cfg(false, false)),
        offload: run(train_cfg(false, true)),
        offload_dpu: run(train_cfg(true, true)),
    }
}

/// Runs the BERT fine-tuning analog (Fig. 13) for `steps` steps.
pub fn fig13_curves(steps: usize, seed: u64) -> ConvergenceCurves {
    let (dim, hidden, classes) = (16, 32, 4);
    let run = |cfg: ZeroOffloadConfig| -> Vec<f32> {
        let mut engine = ZeroOffloadEngine::new(Classifier::new(dim, hidden, classes, seed), cfg);
        let mut data = GaussianClassification::new(classes, dim, 0.5, seed ^ 0xF13E);
        (0..steps)
            .map(|_| {
                let b = data.batch(16);
                engine
                    .step(|m| m.train_step(&b.features, &b.labels, |_| {}))
                    .expect("training step")
                    .loss()
            })
            .collect()
    };
    ConvergenceCurves {
        baseline: run(train_cfg(false, false)),
        offload: run(train_cfg(false, true)),
        offload_dpu: run(train_cfg(true, true)),
    }
}

/// Runs the Fig. 12 workload once with an arbitrary DPU warm-up
/// (`None` disables DPU), returning the loss curve. Used by the warm-up
/// ablation.
pub fn fig12_curves_with_warmup(steps: usize, seed: u64, warmup: Option<u64>) -> Vec<f32> {
    let gpt = GptConfig {
        vocab: 32,
        seq_len: 16,
        hidden: 32,
        heads: 2,
        layers: 2,
    };
    let mut cfg = train_cfg(false, true);
    cfg.dpu_warmup = warmup;
    let mut engine = ZeroOffloadEngine::new(GptModel::new(gpt, seed), cfg);
    let mut data = BigramLm::new(gpt.vocab, 0.05, seed ^ 0xDA7A);
    (0..steps)
        .map(|_| {
            let b = data.batch(8, gpt.seq_len);
            engine
                .step(|m| m.train_step(&b.inputs, &b.targets, 8, gpt.seq_len, |_| {}))
                .expect("training step")
                .loss()
        })
        .collect()
}

/// Moving average with window `w` (for plotting noisy curves).
pub fn smooth(curve: &[f32], w: usize) -> Vec<f32> {
    if w <= 1 {
        return curve.to_vec();
    }
    curve
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let lo = i.saturating_sub(w - 1);
            let window = &curve[lo..=i];
            window.iter().sum::<f32>() / window.len() as f32
        })
        .collect()
}

/// Renders the curves as a step/loss table (every `stride` steps).
pub fn render_curves(c: &ConvergenceCurves, stride: usize) -> String {
    let s = stride.max(1);
    let rows: Vec<Vec<String>> = (0..c.baseline.len())
        .step_by(s)
        .map(|i| {
            vec![
                i.to_string(),
                format!("{:.4}", c.baseline[i]),
                format!("{:.4}", c.offload[i]),
                format!("{:.4}", c.offload_dpu[i]),
            ]
        })
        .collect();
    crate::table::render_table(
        &["step", "baseline", "ZeRO-Offload", "ZeRO-Offload + DPU"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_offload_curve_exactly_overlaps_baseline() {
        // "the training curves of the unmodified GPT-2 and ZeRO-Offload
        // w/o DPU are exactly overlapped" — bitwise here.
        let c = fig12_curves(60, 42);
        assert_eq!(c.baseline, c.offload);
    }

    #[test]
    fn fig12_dpu_matches_during_warmup_then_tracks() {
        let steps = 160;
        let c = fig12_curves(steps, 7);
        // Identical until DPU kicks in.
        assert_eq!(
            &c.offload[..DPU_WARMUP as usize],
            &c.offload_dpu[..DPU_WARMUP as usize]
        );
        // Both converge to the same smoothed level at the end.
        let a = smooth(&c.offload, 20);
        let b = smooth(&c.offload_dpu, 20);
        let tail_gap = (a[steps - 1] - b[steps - 1]).abs();
        assert!(
            tail_gap < 0.15 * a[steps - 1],
            "smoothed tail gap {tail_gap} vs level {}",
            a[steps - 1]
        );
        // And training actually converges.
        assert!(a[steps - 1] < a[20] * 0.9, "{} !< {}", a[steps - 1], a[20]);
    }

    #[test]
    fn fig13_classifier_converges_all_variants() {
        let steps = 120;
        let c = fig13_curves(steps, 3);
        assert_eq!(c.baseline, c.offload);
        for curve in [&c.offload, &c.offload_dpu] {
            let s = smooth(curve, 15);
            assert!(
                s[steps - 1] < s[10] * 0.8,
                "variant did not converge: {} -> {}",
                s[10],
                s[steps - 1]
            );
        }
    }

    #[test]
    fn smooth_behaviour() {
        assert_eq!(smooth(&[1.0, 2.0, 3.0], 1), vec![1.0, 2.0, 3.0]);
        let s = smooth(&[2.0, 4.0, 6.0], 2);
        assert_eq!(s, vec![2.0, 3.0, 5.0]);
    }

    #[test]
    fn render_strides() {
        let c = ConvergenceCurves {
            baseline: vec![1.0; 10],
            offload: vec![1.0; 10],
            offload_dpu: vec![1.0; 10],
        };
        let t = render_curves(&c, 5);
        assert_eq!(t.lines().count(), 4); // header + sep + steps 0,5
    }
}
