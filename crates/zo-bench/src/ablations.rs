//! Ablations over the design choices DESIGN.md calls out.
//!
//! * **DPU warm-up** — the paper enables DPU "after a few dozen
//!   iterations" (40 in its runs) "to avoid destabilizing the training
//!   during the early stages": sweep the warm-up and measure final loss.
//! * **Gradient bucket size** — smaller buckets overlap earlier but pay
//!   more header overhead and launch latency: sweep the size and report
//!   wire overhead plus the simulated iteration time at layer granularity.

use zero_offload::bucket::GradBucketer;
use zo_tensor::F16;

use crate::convergence::{fig12_curves_with_warmup, smooth};

/// One row of the DPU warm-up sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmupRow {
    /// Warm-up steps before DPU engages (`None` = DPU disabled).
    pub warmup: Option<u64>,
    /// Smoothed loss right after the DPU transition (step `warmup + 20`).
    pub transition_loss: f32,
    /// Smoothed final loss.
    pub final_loss: f32,
}

/// Sweeps DPU warm-up values on the Fig. 12 workload.
pub fn dpu_warmup_sweep(steps: usize, seed: u64, warmups: &[Option<u64>]) -> Vec<WarmupRow> {
    warmups
        .iter()
        .map(|&warmup| {
            let curve = fig12_curves_with_warmup(steps, seed, warmup);
            let s = smooth(&curve, 20);
            let probe = (warmup.unwrap_or(0) as usize + 20).min(steps - 1);
            WarmupRow {
                warmup,
                transition_loss: s[probe],
                final_loss: s[steps - 1],
            }
        })
        .collect()
}

/// One row of the bucket-size sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketRow {
    /// Bucket capacity in bytes.
    pub bucket_bytes: usize,
    /// Frames needed for the model's gradients.
    pub frames: u32,
    /// Header overhead as a fraction of payload.
    pub overhead: f64,
}

/// Sweeps bucket sizes over a gradient volume of `elements` fp16 values.
pub fn bucket_sweep(elements: usize, sizes: &[usize]) -> Vec<BucketRow> {
    let grads: Vec<F16> = (0..elements)
        .map(|i| F16::from_f32(i as f32 * 1e-3))
        .collect();
    sizes
        .iter()
        .map(|&bucket_bytes| {
            let mut b = GradBucketer::new(bucket_bytes);
            b.push(0, &grads);
            b.flush();
            let payload = b.payload_bytes() as f64;
            BucketRow {
                bucket_bytes,
                frames: b.frames_emitted(),
                overhead: (b.wire_bytes() as f64 - payload) / payload,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zero_offload::wire::HEADER_BYTES;

    #[test]
    fn warmup_zero_still_converges_but_paper_choice_is_safe() {
        let steps = 140;
        let rows = dpu_warmup_sweep(steps, 11, &[None, Some(0), Some(40)]);
        assert_eq!(rows.len(), 3);
        let baseline = rows[0].final_loss;
        for r in &rows {
            assert!(r.final_loss.is_finite());
            // Every variant ends within 20% of the no-DPU baseline (the
            // paper's "does not hurt convergence" claim at small scale).
            assert!(
                (r.final_loss - baseline).abs() < 0.2 * baseline,
                "warmup {:?}: {} vs baseline {}",
                r.warmup,
                r.final_loss,
                baseline
            );
        }
    }

    #[test]
    fn bucket_overhead_shrinks_with_size() {
        let rows = bucket_sweep(1 << 16, &[256, 4096, 65536, 1 << 20]);
        for w in rows.windows(2) {
            assert!(w[0].overhead >= w[1].overhead);
            assert!(w[0].frames >= w[1].frames);
        }
        // Tiny buckets pay real overhead; large ones are negligible.
        assert!(rows[0].overhead > 0.05);
        assert!(rows.last().unwrap().overhead < 1e-3);
        // Exact header math at one point: 2^16 elements in 4 KiB buckets
        // = 32 frames of 2048 elements.
        assert_eq!(rows[1].frames, 32);
        let want = 32.0 * HEADER_BYTES as f64 / (2.0 * 65536.0);
        assert!((rows[1].overhead - want).abs() < 1e-9);
    }
}
