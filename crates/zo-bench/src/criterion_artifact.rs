//! Persisted criterion artifact: `BENCH_criterion.json`.
//!
//! The vendored criterion shim appends one NDJSON record per finished
//! bench to the file named by `CRITERION_JSON`. CI sweeps every bench
//! target under `CRITERION_QUICK=1`, then the `criterion_report` binary
//! aggregates the NDJSON into a single validated JSON artifact — the
//! same emit-then-assert pattern `kernel_bench` uses for
//! `BENCH_kernels.json`, so a silently-empty or truncated sweep can
//! never upload.

/// One bench measurement as recorded by the criterion shim's sink.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Full bench name (`group/function/param`).
    pub name: String,
    /// Mean wall time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Throughput annotation, if the bench declared one:
    /// (`"elements"` or `"bytes"`, units per iteration).
    pub throughput: Option<(String, u64)>,
}

/// Parses the NDJSON stream the criterion shim appends under
/// `CRITERION_JSON`. Blank lines are skipped; any malformed line is an
/// error (a torn write means the sweep cannot be trusted).
pub fn parse_ndjson(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: does not parse: {e:?}", i + 1))?;
        let name = v
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| format!("line {}: missing name", i + 1))?
            .to_string();
        let mean_ns = v
            .get("mean_ns")
            .and_then(|m| m.as_f64())
            .ok_or_else(|| format!("line {}: missing mean_ns", i + 1))?;
        let throughput = match v.get("throughput").and_then(|t| t.as_str()) {
            Some(kind) => {
                let per_iter = v
                    .get("per_iter")
                    .and_then(|p| p.as_f64())
                    .ok_or_else(|| format!("line {}: throughput without per_iter", i + 1))?;
                Some((kind.to_string(), per_iter as u64))
            }
            None => None,
        };
        out.push(BenchRecord {
            name,
            mean_ns,
            throughput,
        });
    }
    Ok(out)
}

/// Renders `BENCH_criterion.json` from the aggregated records. Flat
/// hand-rendered JSON in the style of `BENCH_kernels.json`;
/// `criterion_report --assert` re-parses it through the `serde_json`
/// shim, so the two ends cross-check each other.
pub fn render_criterion_json(records: &[BenchRecord]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"zo-criterion-bench/1\",\n");
    s.push_str(&format!("  \"bench_count\": {},\n", records.len()));
    s.push_str("  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        let tp = match &r.throughput {
            Some((kind, per_iter)) => {
                format!(", \"throughput\": \"{kind}\", \"per_iter\": {per_iter}")
            }
            None => String::new(),
        };
        s.push_str(&format!(
            "    {{\"name\": {}, \"mean_ns\": {:.1}{}}}{}\n",
            json_string(&r.name),
            r.mean_ns,
            tp,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validates an emitted `BENCH_criterion.json`: it must parse, carry the
/// schema tag, at least one bench, unique non-empty names, and every
/// `mean_ns` finite and strictly positive. Returns a description of the
/// first problem found.
pub fn validate_criterion_json(text: &str) -> Result<(), String> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("JSON does not parse: {e:?}"))?;
    match v.get("schema").and_then(|s| s.as_str()) {
        Some("zo-criterion-bench/1") => {}
        Some(other) => return Err(format!("unexpected schema {other:?}")),
        None => return Err("missing schema tag".into()),
    }
    let benches = v
        .get("benches")
        .and_then(|b| b.as_array())
        .ok_or("missing benches array")?;
    if benches.is_empty() {
        return Err("empty benches array: the sweep measured nothing".into());
    }
    let count = v
        .get("bench_count")
        .and_then(|c| c.as_f64())
        .ok_or("missing bench_count")?;
    if count as usize != benches.len() {
        return Err(format!(
            "bench_count {count} disagrees with {} benches",
            benches.len()
        ));
    }
    let mut seen = std::collections::BTreeSet::new();
    for (i, b) in benches.iter().enumerate() {
        let name = b
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| format!("benches[{i}]: missing name"))?;
        if name.is_empty() {
            return Err(format!("benches[{i}]: empty name"));
        }
        if !seen.insert(name.to_string()) {
            return Err(format!("benches[{i}]: duplicate name {name:?}"));
        }
        let mean = b
            .get("mean_ns")
            .and_then(|m| m.as_f64())
            .ok_or_else(|| format!("benches[{i}] ({name}): missing mean_ns"))?;
        if !mean.is_finite() || mean <= 0.0 {
            return Err(format!(
                "benches[{i}] ({name}): mean_ns {mean} is not a positive finite time"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BenchRecord> {
        vec![
            BenchRecord {
                name: "adam/step/1048576".into(),
                mean_ns: 1.25e6,
                throughput: Some(("elements".into(), 1 << 20)),
            },
            BenchRecord {
                name: "codec \"fast\"".into(),
                mean_ns: 512.0,
                throughput: None,
            },
        ]
    }

    #[test]
    fn ndjson_roundtrips_into_valid_artifact() {
        let ndjson = "\
{\"name\":\"adam/step/1048576\",\"mean_ns\":1250000.0,\"throughput\":\"elements\",\"per_iter\":1048576}\n\
\n\
{\"name\":\"codec \\\"fast\\\"\",\"mean_ns\":512.0,\"throughput\":null,\"per_iter\":0}\n";
        let records = parse_ndjson(ndjson).expect("parse");
        assert_eq!(records, sample());
        let json = render_criterion_json(&records);
        validate_criterion_json(&json).expect("rendered artifact must validate");
    }

    #[test]
    fn torn_ndjson_is_rejected() {
        assert!(parse_ndjson("{\"name\":\"a\",\"mean_ns\":1.0}\n{\"name\":").is_err());
        assert!(parse_ndjson("{\"mean_ns\":1.0}").is_err(), "missing name");
        assert!(parse_ndjson("{\"name\":\"a\"}").is_err(), "missing mean_ns");
    }

    #[test]
    fn validator_rejects_broken_artifacts() {
        assert!(validate_criterion_json("{nope").is_err());
        assert!(validate_criterion_json("{}").is_err());
        // Empty sweep: nothing measured must never upload.
        let empty = render_criterion_json(&[]);
        assert!(validate_criterion_json(&empty).is_err());
        // Duplicate names mean the sweep double-counted a bench.
        let mut dup = sample();
        dup[1].name = dup[0].name.clone();
        assert!(validate_criterion_json(&render_criterion_json(&dup)).is_err());
        // Non-positive mean is a broken measurement.
        let mut zero = sample();
        zero[0].mean_ns = 0.0;
        assert!(validate_criterion_json(&render_criterion_json(&zero)).is_err());
    }
}
