//! Figures 8–11: throughput experiments on the simulated testbed.

use zero_offload::ZeroOffloadPerf;
use zo_baselines::{BaselinePerf, System};
use zo_hetsim::presets;
use zo_models::{by_label, EvalConfig, TOTAL_BATCH};

fn cluster() -> zo_hetsim::ClusterSpec {
    presets::dgx2_cluster(8)
}

/// Fig. 8: single-GPU TFLOPS, ZeRO-Offload vs L2L, batch 512.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// Model size label, billions.
    pub params_b: f64,
    /// ZeRO-Offload TFLOPS.
    pub zero_offload: f64,
    /// L2L TFLOPS.
    pub l2l: f64,
}

/// Computes Fig. 8 for all single-GPU-capable Table 3 sizes.
pub fn fig8_rows() -> Vec<Fig8Row> {
    let perf = BaselinePerf::new(cluster());
    [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 11.0, 12.0, 13.0]
        .iter()
        .map(|&label| {
            let c: EvalConfig = by_label(label).expect("table 3 row");
            let zo = perf
                .iter_stats(
                    System::ZeroOffload { mp: 1 },
                    &c.model,
                    c.batch_per_gpu,
                    TOTAL_BATCH,
                    1,
                )
                .expect("zero-offload supports single GPU");
            let l2l = perf
                .iter_stats(System::L2l, &c.model, c.batch_per_gpu, TOTAL_BATCH, 1)
                .expect("l2l supports single GPU");
            Fig8Row {
                params_b: label,
                zero_offload: zo.tflops_per_gpu,
                l2l: l2l.tflops_per_gpu,
            }
        })
        .collect()
}

/// Fig. 9: DPU throughput gain at micro-batch 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Model size label, billions.
    pub params_b: f64,
    /// Samples/sec without DPU.
    pub without_dpu: f64,
    /// Samples/sec with DPU.
    pub with_dpu: f64,
    /// Speedup factor.
    pub speedup: f64,
}

/// Computes Fig. 9 (GPT-2 1–8B, batch size 8 as in the paper).
pub fn fig9_rows() -> Vec<Fig9Row> {
    let perf = ZeroOffloadPerf::new(cluster());
    [1.0, 2.0, 4.0, 6.0, 8.0]
        .iter()
        .map(|&label| {
            let c = by_label(label).expect("table 3 row");
            let base = perf.iter_stats(&c.model, 8, 8, 1, 1, false);
            let dpu = perf.iter_stats(&c.model, 8, 8, 1, 1, true);
            Fig9Row {
                params_b: label,
                without_dpu: 8.0 / base.secs,
                with_dpu: 8.0 / dpu.secs,
                speedup: base.secs / dpu.secs,
            }
        })
        .collect()
}

/// Fig. 10: per-GPU TFLOPS on one DGX-2 (16 GPUs), all systems.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Model size label, billions.
    pub params_b: f64,
    /// TFLOPS per system; `None` = OOM / unsupported.
    pub pytorch: Option<f64>,
    /// ZeRO-2.
    pub zero2: Option<f64>,
    /// Megatron (best MP degree).
    pub megatron: Option<f64>,
    /// ZeRO-Offload without model parallelism.
    pub zero_offload: Option<f64>,
    /// ZeRO-Offload with the Table 3 MP degree.
    pub zero_offload_mp: Option<f64>,
}

fn tuned_stats(perf: &BaselinePerf, sys: System, c: &EvalConfig, world: u32) -> Option<f64> {
    let node = presets::dgx2();
    let mb = zo_baselines::largest_micro_batch(sys, &c.model, world, &node, 32)? as u32;
    Some(
        perf.iter_stats(sys, &c.model, mb, TOTAL_BATCH, world)?
            .tflops_per_gpu,
    )
}

/// Computes Fig. 10 across the Table 3 model zoo.
pub fn fig10_rows() -> Vec<Fig10Row> {
    let perf = BaselinePerf::new(cluster());
    let world = 16u32;
    zo_models::table3()
        .into_iter()
        .map(|c| {
            let megatron = (1..=4)
                .map(|p| 1u32 << p) // MP in {2,4,8,16}
                .filter_map(|mp| tuned_stats(&perf, System::Megatron { mp }, &c, world))
                .fold(None, |acc: Option<f64>, v| {
                    Some(acc.map_or(v, |a| a.max(v)))
                });
            // Table 3 lists an MP degree per row, but the fp16 replica must
            // also fit (2M/mp bytes): search upward from the listed degree.
            let zo_mp = if c.mp_degree > 1 {
                [2u32, 4, 8, 16]
                    .into_iter()
                    .filter(|&mp| mp >= c.mp_degree)
                    .filter_map(|mp| tuned_stats(&perf, System::ZeroOffload { mp }, &c, world))
                    .fold(None, |acc: Option<f64>, v| {
                        Some(acc.map_or(v, |a| a.max(v)))
                    })
            } else {
                None
            };
            Fig10Row {
                params_b: c.label_b,
                pytorch: tuned_stats(&perf, System::PyTorchDdp, &c, world),
                zero2: tuned_stats(&perf, System::Zero2, &c, world),
                megatron,
                zero_offload: tuned_stats(&perf, System::ZeroOffload { mp: 1 }, &c, world),
                zero_offload_mp: zo_mp,
            }
        })
        .collect()
}

/// Fig. 11: ZeRO-Offload vs ZeRO-2 scalability, 10B model, 1–128 GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// GPU count.
    pub gpus: u32,
    /// ZeRO-Offload per-GPU TFLOPS.
    pub zero_offload: f64,
    /// ZeRO-Offload aggregate TFLOPS.
    pub zero_offload_total: f64,
    /// ZeRO-2 per-GPU TFLOPS (`None` = OOM).
    pub zero2: Option<f64>,
}

/// Computes Fig. 11.
pub fn fig11_rows() -> Vec<Fig11Row> {
    let perf = BaselinePerf::new(cluster());
    let node = presets::dgx2();
    let c = by_label(10.0).expect("10B row");
    [1u32, 2, 4, 8, 16, 32, 64, 128]
        .iter()
        .map(|&gpus| {
            // Total batch grows with the fleet (weak scaling, as in the
            // paper's near-linear aggregate-throughput plot).
            let total_batch = (c.batch_per_gpu * gpus).max(TOTAL_BATCH);
            let zo = perf
                .iter_stats(
                    System::ZeroOffload { mp: 1 },
                    &c.model,
                    c.batch_per_gpu,
                    total_batch,
                    gpus,
                )
                .expect("zero-offload runs everywhere");
            let z2 = zo_baselines::largest_micro_batch(System::Zero2, &c.model, gpus, &node, 32)
                .and_then(|mb| {
                    perf.iter_stats(System::Zero2, &c.model, mb as u32, total_batch, gpus)
                })
                .map(|s| s.tflops_per_gpu);
            Fig11Row {
                gpus,
                zero_offload: zo.tflops_per_gpu,
                zero_offload_total: zo.tflops_per_gpu * gpus as f64,
                zero2: z2,
            }
        })
        .collect()
}

fn opt_cell(v: Option<f64>) -> String {
    v.map_or_else(|| "OOM".to_string(), |x| format!("{x:.1}"))
}

/// Renders Fig. 8 as a table.
pub fn render_fig8() -> String {
    let rows: Vec<Vec<String>> = fig8_rows()
        .into_iter()
        .map(|r| {
            vec![
                format!("{}B", r.params_b),
                format!("{:.1}", r.zero_offload),
                format!("{:.1}", r.l2l),
                format!("{:.2}x", r.zero_offload / r.l2l),
            ]
        })
        .collect();
    crate::table::render_table(
        &["model", "ZeRO-Offload TFLOPS", "L2L TFLOPS", "ZO/L2L"],
        &rows,
    )
}

/// Renders Fig. 9 as a table.
pub fn render_fig9() -> String {
    let rows: Vec<Vec<String>> = fig9_rows()
        .into_iter()
        .map(|r| {
            vec![
                format!("{}B", r.params_b),
                format!("{:.2}", r.without_dpu),
                format!("{:.2}", r.with_dpu),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    crate::table::render_table(
        &["model", "samples/s w/o DPU", "samples/s w/ DPU", "speedup"],
        &rows,
    )
}

/// Renders Fig. 10 as a table.
pub fn render_fig10() -> String {
    let rows: Vec<Vec<String>> = fig10_rows()
        .into_iter()
        .map(|r| {
            vec![
                format!("{}B", r.params_b),
                opt_cell(r.pytorch),
                opt_cell(r.zero2),
                opt_cell(r.megatron),
                opt_cell(r.zero_offload),
                if r.params_b <= 13.0 {
                    "-".to_string() // Table 3 uses MP only beyond 13B.
                } else {
                    opt_cell(r.zero_offload_mp)
                },
            ]
        })
        .collect();
    crate::table::render_table(
        &[
            "model",
            "PyTorch",
            "ZeRO-2",
            "Megatron",
            "ZO (w/o MP)",
            "ZO (w/ MP)",
        ],
        &rows,
    )
}

/// Renders Fig. 11 as a table.
pub fn render_fig11() -> String {
    let rows: Vec<Vec<String>> = fig11_rows()
        .into_iter()
        .map(|r| {
            vec![
                r.gpus.to_string(),
                format!("{:.1}", r.zero_offload),
                format!("{:.0}", r.zero_offload_total),
                opt_cell(r.zero2),
            ]
        })
        .collect();
    crate::table::render_table(
        &["GPUs", "ZO TFLOPS/GPU", "ZO aggregate", "ZeRO-2 TFLOPS/GPU"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_zero_offload_wins_every_size() {
        for r in fig8_rows() {
            assert!(
                r.zero_offload > r.l2l,
                "{}B: ZO {:.1} vs L2L {:.1}",
                r.params_b,
                r.zero_offload,
                r.l2l
            );
        }
    }

    #[test]
    fn fig9_speedup_band_matches_paper() {
        // Paper: 1.12–1.59x across sizes at batch 8.
        for r in fig9_rows() {
            assert!(
                (1.02..1.9).contains(&r.speedup),
                "{}B: DPU speedup {:.2}",
                r.params_b,
                r.speedup
            );
        }
    }

    #[test]
    fn fig10_oom_pattern_matches_paper() {
        let rows = fig10_rows();
        let row = |b: f64| rows.iter().find(|r| r.params_b == b).expect("row");
        // PyTorch cannot go past ~1.4B even on 16 GPUs.
        assert!(row(1.0).pytorch.is_some());
        assert!(row(2.0).pytorch.is_none());
        // ZeRO-2 runs out beyond ~8B (paper Sec. 6.2.2).
        assert!(row(8.0).zero2.is_some());
        assert!(row(13.0).zero2.is_none());
        // ZeRO-Offload w/o MP reaches 13B; beyond that needs MP.
        assert!(row(13.0).zero_offload.is_some());
        assert!(row(20.0).zero_offload.is_none());
        assert!(row(20.0).zero_offload_mp.is_some());
        // 70B runs with MP and >30 TFLOPS (paper Sec. 6.2.2).
        let t70 = row(70.0).zero_offload_mp.expect("70B w/ MP");
        // Our thin-GEMM MP penalty is harsher than the paper's testbed
        // (which reports >30 TFLOPS); demand a still-productive rate.
        assert!(t70 > 12.0, "70B at {t70:.1} TFLOPS");
    }

    #[test]
    fn fig10_zero_offload_leads_small_models() {
        // "For 1B to 15B models, ZeRO-Offload achieves the highest
        // throughput" — check at sizes everything can still run.
        let rows = fig10_rows();
        for r in rows.iter().filter(|r| r.params_b <= 8.0) {
            let zo = r.zero_offload.expect("runs");
            for (name, v) in [
                ("pytorch", r.pytorch),
                ("zero2", r.zero2),
                ("megatron", r.megatron),
            ] {
                if let Some(v) = v {
                    assert!(
                        zo > 0.95 * v,
                        "{}B: {name} {:.1} beats ZO {:.1}",
                        r.params_b,
                        v,
                        zo
                    );
                }
            }
        }
    }

    #[test]
    fn fig11_shape() {
        let rows = fig11_rows();
        // Near-linear aggregate scaling for ZeRO-Offload.
        let first = &rows[0];
        let last = rows.last().unwrap();
        let efficiency = last.zero_offload_total / (first.zero_offload_total * last.gpus as f64);
        assert!(efficiency > 0.7, "scaling efficiency {efficiency:.2}");
        // ZeRO-2 infeasible at small scale, feasible by 32 GPUs.
        assert!(rows.iter().find(|r| r.gpus == 4).unwrap().zero2.is_none());
        assert!(rows.iter().find(|r| r.gpus == 32).unwrap().zero2.is_some());
        // At 128 GPUs ZeRO-2 catches up to (or passes) ZeRO-Offload.
        let r128 = rows.iter().find(|r| r.gpus == 128).unwrap();
        let z2 = r128.zero2.expect("feasible at 128");
        assert!(
            z2 > 0.9 * r128.zero_offload,
            "{z2:.1} vs {:.1}",
            r128.zero_offload
        );
    }

    #[test]
    fn renderers_produce_tables() {
        assert!(render_fig8().contains("ZO/L2L"));
        assert!(render_fig9().contains("speedup"));
        assert!(render_fig10().contains("OOM"));
        assert!(render_fig11().contains("aggregate"));
    }
}
