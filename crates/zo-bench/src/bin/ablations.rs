//! Extension: ablations over the design choices (DPU warm-up, gradient
//! bucket size).

fn main() {
    let steps: usize = std::env::var("ZO_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);

    println!("-- DPU warm-up sweep ({steps} steps of the Fig. 12 workload) --");
    println!(
        "{:<12} {:>16} {:>12}",
        "warmup", "post-transition", "final loss"
    );
    let warmups = [None, Some(0u64), Some(10), Some(40), Some(100)];
    for r in zo_bench::dpu_warmup_sweep(steps, 11, &warmups) {
        let label = r
            .warmup
            .map_or_else(|| "no DPU".to_string(), |w| w.to_string());
        println!(
            "{label:<12} {:>16.4} {:>12.4}",
            r.transition_loss, r.final_loss
        );
    }
    println!("(paper: enabling DPU after a few dozen steps avoids early instability;");
    println!(" its runs use 40)");

    println!("\n-- gradient bucket size sweep (4M fp16 elements) --");
    println!("{:>14} {:>8} {:>12}", "bucket bytes", "frames", "overhead");
    for r in zo_bench::bucket_sweep(1 << 22, &[4096, 65536, 1 << 20, 32 << 20]) {
        println!(
            "{:>14} {:>8} {:>11.4}%",
            r.bucket_bytes,
            r.frames,
            r.overhead * 100.0
        );
    }
    println!("(smaller buckets overlap earlier during backward but pay header overhead;");
    println!(" the engine default is 32 MiB, bounding GPU staging at two buckets)");
}
