//! Regenerates Fig. 13: fine-tuning loss (BERT/SQuAD analog), ±DPU.

fn main() {
    let steps: usize = std::env::var("ZO_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    eprintln!("fine-tuning 3 classifier variants for {steps} steps...");
    let curves = zo_bench::fig13_curves(steps, 7);
    println!("Figure 13 — fine-tuning loss (classification analog)\n");
    println!("{}", zo_bench::render_curves(&curves, steps / 20));
    let same = curves.baseline == curves.offload;
    println!("baseline and ZeRO-Offload w/o DPU curves identical: {same}");
    println!("(paper: curves converge in the same trend and largely overlap)");
}
