//! Regenerates Fig. 10: per-GPU throughput of all systems on one DGX-2.

fn main() {
    println!("Figure 10 — training throughput (TFLOPS/GPU) on 16 GPUs, total batch 512");
    println!("(micro-batch auto-tuned per system: largest that fits without OOM)\n");
    println!("{}", zo_bench::render_fig10());
    println!("paper shape: ZeRO-Offload highest for 1-15B; ZeRO-2 OOM >8B;");
    println!("Megatron OOM >15B; ZO+MP reaches 70B at >30 TFLOPS.");
}
