//! Regenerates Fig. 8: single-GPU throughput, ZeRO-Offload vs L2L.

fn main() {
    println!("Figure 8 — single-GPU training throughput, total batch 512\n");
    println!("{}", zo_bench::render_fig8());
    let rows = zo_bench::fig8_rows();
    let avg: f64 = rows.iter().map(|r| r.zero_offload / r.l2l).sum::<f64>() / rows.len() as f64;
    println!(
        "average ZeRO-Offload speedup over L2L: {avg:.2}x (paper: 1.14x average, up to 1.22x)"
    );
}
