//! `train` — a small training CLI on the public API.
//!
//! Mirrors the DeepSpeed usability model: training behaviour comes from a
//! JSON config file (all fields optional), the loop itself is unchanged
//! user code. Supports checkpoint save/resume.
//!
//! ```text
//! train [--config cfg.json] [--steps N] [--batch B] [--layers L]
//!       [--hidden H] [--save ckpt.json] [--resume ckpt.json] [--ckpt-acts]
//! ```

use std::process::ExitCode;

use zero_offload::{ZeroOffloadConfig, ZeroOffloadEngine};
use zo_models::BigramLm;
use zo_nn::{GptConfig, GptModel};
use zo_optim::LossScaleConfig;

struct Args {
    config: Option<String>,
    steps: usize,
    batch: usize,
    layers: usize,
    hidden: usize,
    save: Option<String>,
    resume: Option<String>,
    checkpoint_activations: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: None,
        steps: 200,
        batch: 8,
        layers: 2,
        hidden: 32,
        save: None,
        resume: None,
        checkpoint_activations: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--config" => args.config = Some(value("--config")?),
            "--steps" => {
                args.steps = value("--steps")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?
            }
            "--batch" => {
                args.batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--layers" => {
                args.layers = value("--layers")?
                    .parse()
                    .map_err(|e| format!("--layers: {e}"))?
            }
            "--hidden" => {
                args.hidden = value("--hidden")?
                    .parse()
                    .map_err(|e| format!("--hidden: {e}"))?
            }
            "--save" => args.save = Some(value("--save")?),
            "--resume" => args.resume = Some(value("--resume")?),
            "--ckpt-acts" => args.checkpoint_activations = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    // Engine config from JSON (every field optional), like ds_config.json.
    let mut cfg = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            ZeroOffloadConfig::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))?
        }
        None => ZeroOffloadConfig {
            loss_scale: LossScaleConfig {
                init_scale: 256.0,
                ..Default::default()
            },
            ..ZeroOffloadConfig::default()
        },
    };
    if cfg.adam.lr == zo_optim::AdamParams::default().lr && args.config.is_none() {
        cfg.adam.lr = 3e-3;
    }

    let gpt = GptConfig {
        vocab: 64,
        seq_len: 32,
        hidden: args.hidden,
        heads: (args.hidden / 16).max(1),
        layers: args.layers,
    };
    let mut model = GptModel::new(gpt, 42);
    model.set_activation_checkpointing(args.checkpoint_activations);
    let mut engine = ZeroOffloadEngine::new(model, cfg);

    if let Some(path) = &args.resume {
        let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        engine
            .restore_json(&json)
            .map_err(|e| format!("restoring {path}: {e}"))?;
        eprintln!(
            "resumed from {path} at step {}",
            engine.stats().steps_applied
        );
    }

    let start_step = engine.stats().steps_applied as usize;
    let mut data = BigramLm::new(gpt.vocab, 0.05, 7);
    // Replay the data stream up to the resume point for continuity.
    for _ in 0..start_step {
        data.batch(args.batch, gpt.seq_len);
    }

    println!("config:\n{}", engine_config_summary(&args));
    for step in start_step..start_step + args.steps {
        let b = data.batch(args.batch, gpt.seq_len);
        let out = engine
            .step(|m| m.train_step(&b.inputs, &b.targets, args.batch, gpt.seq_len, |_| {}))
            .map_err(|e| format!("step {step}: {e}"))?;
        if step % 20 == 0 || step + 1 == start_step + args.steps {
            println!(
                "step {:>5}  loss {:.4}  scale {:>8}",
                step,
                out.loss(),
                engine.loss_scale()
            );
        }
    }

    let s = engine.stats();
    println!(
        "\n{} steps applied, {} skipped; PCIe: {} B down ({} frames, {} B on the wire), {} B up",
        s.steps_applied, s.steps_skipped, s.d2h_bytes, s.frames, s.wire_bytes, s.h2d_bytes
    );

    if let Some(path) = &args.save {
        std::fs::write(path, engine.checkpoint_json())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("checkpoint saved to {path}");
    }
    Ok(())
}

fn engine_config_summary(args: &Args) -> String {
    format!(
        "  model: {} layers x hidden {}, batch {}, activation checkpointing {}",
        args.layers, args.hidden, args.batch, args.checkpoint_activations
    )
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
