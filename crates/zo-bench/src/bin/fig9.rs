//! Regenerates Fig. 9: throughput with and without DPU at batch size 8.

fn main() {
    println!("Figure 9 — GPT-2 throughput w/ and w/o DPU, batch size 8\n");
    println!("{}", zo_bench::render_fig9());
    println!("paper: 1.12-1.59x across model sizes at micro-batch 8");
}
