//! Regenerates Fig. 11: scalability of ZeRO-Offload vs ZeRO-2, 10B model.

fn main() {
    println!("Figure 11 — 10B GPT-2, 1-128 GPUs (8x DGX-2 over InfiniBand)\n");
    println!("{}", zo_bench::render_fig11());
    println!("paper shape: near-linear ZO aggregate scaling at >30 TFLOPS/GPU;");
    println!("ZeRO-2 OOM below 16 GPUs, comparable at 32, ahead by 64-128.");

    // Extension: what a hierarchical (NVSwitch + IB) all-reduce buys over
    // the flat ring the cost model charges, for the 20 GB of gradients.
    println!("\n-- gradient all-reduce (20 GB), flat ring vs hierarchical --");
    let bytes = 20e9;
    for gpus in [32u32, 64, 128] {
        let flat = zo_collectives::RingCost::new(gpus, 100.0 / 16.0, 5e-6);
        let hier = zo_collectives::HierarchicalCost::new(gpus, 16, 120.0, 100.0, 5e-6);
        println!(
            "  {gpus:>3} GPUs: flat {:.2} s, hierarchical {:.2} s ({:.1}x)",
            flat.all_reduce_secs(bytes),
            hier.all_reduce_secs(bytes),
            flat.all_reduce_secs(bytes) / hier.all_reduce_secs(bytes)
        );
    }
}
