//! Regenerates Table 1: memory savings of the minimum-communication
//! offload strategies, derived by exhaustive partition enumeration.

use zo_dataflow::{check_unique_optimality, min_offload_comm_m, DataFlowGraph};

fn main() {
    let graph = DataFlowGraph::training_iteration();
    println!("Table 1 — offload strategies minimizing communication volume\n");
    println!("{}", zo_dataflow::render_table1(&graph));
    println!(
        "minimum offload communication volume: {}M bytes/iteration (paper: 4M)",
        min_offload_comm_m(&graph)
    );
    match check_unique_optimality(&graph) {
        Ok(m) => println!(
            "unique optimality: VERIFIED over all 256 partitions \
             (GPU memory {}M, comm {}M, CPU compute O(M))",
            m.gpu_memory_m, m.comm_volume_m
        ),
        Err(v) => println!("unique optimality: VIOLATED: {v:?}"),
    }
    println!(
        "\nnote: the paper's printed Table 1 lists the final row as 4M/8x; \
         8x of the 16M baseline is 2M — the text and reduction column agree with 2M."
    );
}
