//! Regenerates Fig. 7: largest trainable model per system on 1/4/16 GPUs.

fn main() {
    println!("Figure 7 — largest trainable model (billions of parameters)\n");
    println!("{}", zo_bench::render_fig7());
    println!("note: measured = memory-model bisection on the simulated DGX-2;");
    println!("paper column = approximate bar heights of Fig. 7.");

    // What-if extension: the same analysis on an A100-80GB node.
    let a100_node = zo_hetsim::NodeSpec {
        gpu: zo_hetsim::presets::a100_80g(),
        ..zo_hetsim::presets::dgx2()
    };
    let zo = zo_baselines::max_trainable_params(
        zo_baselines::System::ZeroOffload { mp: 1 },
        1,
        &a100_node,
    );
    let pt = zo_baselines::max_trainable_params(zo_baselines::System::PyTorchDdp, 1, &a100_node);
    println!(
        "\nwhat-if, single A100-80GB: PyTorch {:.1}B vs ZeRO-Offload {:.1}B ({:.1}x)",
        pt as f64 / 1e9,
        zo as f64 / 1e9,
        zo as f64 / pt as f64
    );
}
