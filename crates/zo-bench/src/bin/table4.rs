//! Regenerates Table 4: Adam latency for CPU-Adam vs PT-CPU vs PT-GPU.
//!
//! Measures the real kernels at a scaled size (set `ZO_ADAM_PARAMS` to
//! override, default 8M parameters) and extrapolates linearly (Adam is a
//! single pass over the data).

use zo_bench::{measure_adam_rates, render_table4};

fn main() {
    let n: usize = std::env::var("ZO_ADAM_PARAMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8 * 1024 * 1024);
    let steps: usize = std::env::var("ZO_ADAM_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    eprintln!("measuring Adam kernels over {n} parameters ({steps} steps each)...");
    let rates = measure_adam_rates(n, steps);
    println!("Table 4 — Adam latency, measured on this host + extrapolated\n");
    println!("{}", render_table4(&rates));
    println!(
        "measured rates: CPU-Adam {:.3} s/B, PT-CPU analog {:.3} s/B, speedup {:.1}x \
         (paper: ~6x on 2x Xeon 8168)",
        rates.cpu_adam_secs_per_b,
        rates.naive_secs_per_b,
        rates.speedup()
    );
}
