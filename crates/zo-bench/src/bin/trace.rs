//! `trace` — records a step-timeline from a real multi-step training run
//! and writes it as Chrome trace format JSON (load in `chrome://tracing`
//! or <https://ui.perfetto.dev>).
//!
//! ```text
//! trace [--steps N] [--batch B] [--layers L] [--hidden H] [--dpu]
//!       [--ranks R] [--out trace.json] [--sim]
//! ```
//!
//! By default a single-GPU engine runs `N` steps with a tracer installed;
//! `--ranks R` traces a ZeRO-2 run instead (per-rank tracks), and `--sim`
//! additionally emits the `zo-hetsim` projected timeline for the paper's
//! 10B/V100 schedule through the same exporter, so the simulated and the
//! measured timeline render identically.

use std::process::ExitCode;

use zero_offload::{run_ranks, TracerRef, ZeroOffloadConfig, ZeroOffloadEngine};
use zo_models::BigramLm;
use zo_nn::{GptConfig, GptModel};
use zo_optim::LossScaleConfig;
use zo_trace::Tracer;

struct Args {
    steps: usize,
    batch: usize,
    layers: usize,
    hidden: usize,
    dpu: bool,
    ranks: usize,
    out: String,
    sim: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        steps: 20,
        batch: 4,
        layers: 2,
        hidden: 32,
        dpu: false,
        ranks: 1,
        out: "trace.json".to_string(),
        sim: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--steps" => {
                args.steps = value("--steps")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?
            }
            "--batch" => {
                args.batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--layers" => {
                args.layers = value("--layers")?
                    .parse()
                    .map_err(|e| format!("--layers: {e}"))?
            }
            "--hidden" => {
                args.hidden = value("--hidden")?
                    .parse()
                    .map_err(|e| format!("--hidden: {e}"))?
            }
            "--dpu" => args.dpu = true,
            "--ranks" => {
                args.ranks = value("--ranks")?
                    .parse()
                    .map_err(|e| format!("--ranks: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--sim" => args.sim = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.ranks == 0 {
        return Err("--ranks must be at least 1".to_string());
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let tracer = Tracer::new();
    let cfg = ZeroOffloadConfig {
        loss_scale: LossScaleConfig {
            init_scale: 256.0,
            ..Default::default()
        },
        adam: zo_optim::AdamParams {
            lr: 3e-3,
            ..Default::default()
        },
        dpu_warmup: if args.dpu { Some(5) } else { None },
        tracer: Some(TracerRef::install(tracer.clone())),
        ..ZeroOffloadConfig::default()
    };
    let gpt = GptConfig {
        vocab: 64,
        seq_len: 32,
        hidden: args.hidden,
        heads: (args.hidden / 16).max(1),
        layers: args.layers,
    };

    if args.ranks == 1 {
        // Streamed schedule: the grad_offload span interleaves with
        // fwd_bwd in the exported timeline, as in paper Fig. 6.
        let mut engine = ZeroOffloadEngine::new(GptModel::new(gpt, 42), cfg);
        let mut data = BigramLm::new(gpt.vocab, 0.05, 7);
        for _ in 0..args.steps {
            let b = data.batch(args.batch, gpt.seq_len);
            engine
                .step_streamed(|m, s| {
                    m.train_step_hooked(&b.inputs, &b.targets, args.batch, gpt.seq_len, s)
                })
                .map_err(|e| e.to_string())?;
        }
    } else {
        let (steps, batch, seq, ranks) = (args.steps, args.batch, gpt.seq_len, args.ranks);
        run_ranks(
            ranks,
            cfg,
            |_| GptModel::new(gpt, 42),
            |engine| {
                let mut data = BigramLm::new(gpt.vocab, 0.05, 7);
                for _ in 0..steps {
                    let b = data.batch(batch * ranks, seq);
                    let r = engine.rank();
                    let inputs = b.inputs[r * batch * seq..(r + 1) * batch * seq].to_vec();
                    let targets = b.targets[r * batch * seq..(r + 1) * batch * seq].to_vec();
                    engine
                        .step(|m| m.train_step(&inputs, &targets, batch, seq, |_| {}))
                        .expect("training step");
                }
            },
        );
    }

    // Per-step aggregate table.
    if args.ranks > 1 {
        println!(
            "({} ranks: counters sum over rank tracks, phase columns sum concurrent ranks)",
            args.ranks
        );
    }
    println!("step  wall_us  fwd_bwd  grad_off  cpu_adam  copy_back  d2h_B  h2d_B  frames");
    for m in tracer.step_metrics() {
        println!(
            "{:>4}  {:>7}  {:>7}  {:>8}  {:>8}  {:>9}  {:>5}  {:>5}  {:>6}",
            m.step,
            m.wall_us,
            m.phase("fwd_bwd"),
            m.phase("grad_offload"),
            m.phase("cpu_adam"),
            m.phase("param_copy_back"),
            m.counter("d2h_bytes"),
            m.counter("h2d_bytes"),
            m.counter("tx_frames"),
        );
    }
    if let Some(g) = tracer.high_water("gpu_hwm_bytes") {
        println!("gpu high-water: {g} B");
    }
    if let Some(c) = tracer.high_water("cpu_hwm_bytes") {
        println!("cpu high-water: {c} B");
    }

    let json = tracer.chrome_trace_json();
    std::fs::write(&args.out, &json).map_err(|e| format!("writing {}: {e}", args.out))?;
    println!(
        "wrote {} ({} bytes, {} spans) — open in chrome://tracing",
        args.out,
        json.len(),
        tracer.spans().len()
    );

    if args.sim {
        let sim_out = format!("{}.sim.json", args.out.trim_end_matches(".json"));
        let model = zo_models::by_label(10.0).ok_or("no 10B row in the model table")?;
        let perf = zero_offload::ZeroOffloadPerf::new(zo_hetsim::presets::dgx2_cluster(1));
        let timeline = perf.timeline(
            &model.model,
            model.batch_per_gpu,
            model.batch_per_gpu,
            1,
            1,
            args.dpu,
            2,
        );
        std::fs::write(&sim_out, timeline.chrome_trace_json())
            .map_err(|e| format!("writing {sim_out}: {e}"))?;
        println!("wrote {sim_out} (simulated 10B/V100 schedule)");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
