//! `kernel_bench` — the machine-checkable kernel perf trajectory.
//!
//! Measures GFLOP/s for the three GEMM entry points at 512³ (threads 1
//! and 4), fp16 slice-codec GB/s against the scalar baseline on a 16 MiB
//! buffer, and `CpuAdam` element throughput, and stamps the result with
//! the deterministic trajectory fingerprint so every perf artifact also
//! records which numerics produced it.
//!
//! ```text
//! kernel_bench [--json PATH] [--assert PATH] [--quick]
//! ```
//!
//! * `--json PATH` — run the benchmarks and write `BENCH_kernels.json`.
//! * `--assert PATH` — do **not** run benchmarks; re-parse a previously
//!   emitted artifact through the `serde_json` shim and fail unless every
//!   throughput field is finite and > 0. CI runs the emit step and then
//!   the assert step, so a silently-empty artifact can never upload.
//! * `--quick` — smoke-test sizes (seconds instead of minutes), for
//!   interactive use.

use std::process::ExitCode;

use zo_bench::kernels::{run_kernel_bench, validate_kernel_json};

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut assert_path: Option<String> = None;
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("--json requires an output path");
                    return ExitCode::FAILURE;
                }
            },
            "--assert" => match it.next() {
                Some(p) => assert_path = Some(p),
                None => {
                    eprintln!("--assert requires an input path");
                    return ExitCode::FAILURE;
                }
            },
            "--quick" => quick = true,
            other => {
                eprintln!(
                    "unknown flag {other}; usage: kernel_bench [--json PATH] [--assert PATH] [--quick]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = assert_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_kernel_json(&text) {
            Ok(()) => {
                println!("kernel_bench: {path} OK");
                ExitCode::SUCCESS
            }
            Err(why) => {
                eprintln!("kernel_bench: {path} FAILED: {why}");
                ExitCode::FAILURE
            }
        };
    }

    let report = run_kernel_bench(quick);
    print!("{}", report.render_table());
    if let Some(path) = json_path {
        let body = report.render_json();
        // Self-check before writing: the emitter must never produce an
        // artifact its own validator rejects.
        if let Err(why) = validate_kernel_json(&body) {
            eprintln!("kernel_bench: refusing to write invalid artifact: {why}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
