//! Extension: ZeRO stage comparison (paper Sec. 2 context).
//!
//! Quantifies why ZeRO-Offload builds on stage 2: per-GPU model-state
//! bytes, communication volume, and the largest trainable model per stage,
//! versus ZeRO-Offload itself.

use zo_baselines::{stage_table, System};
use zo_hetsim::presets;

fn main() {
    let node = presets::dgx2();
    for world in [1u32, 16, 64] {
        println!("-- {world} GPU(s) --");
        println!(
            "{:<10} {:>18} {:>12} {:>14}",
            "stage", "state bytes/GPU", "comm (xM)", "max model (B)"
        );
        for row in stage_table(world, &node) {
            println!(
                "{:<10} {:>17.2}M {:>12} {:>14.1}",
                row.stage.name(),
                row.state_per_gpu_m,
                row.comm_m,
                row.max_b
            );
        }
        let zo = zo_baselines::max_trainable_params(System::ZeroOffload { mp: 1 }, world, &node);
        println!(
            "{:<10} {:>17}M {:>12} {:>14.1}   <- stage 2 + host offload",
            "ZO",
            "2.00",
            4,
            zo as f64 / 1e9
        );
        println!();
    }
    println!("Stage 2 is the most aggressive partitioning that keeps the data-parallel");
    println!("communication volume (4M wire bytes); stage 3 pays 6M. ZeRO-Offload keeps");
    println!("stage-2 volume between GPUs AND reaches stage-3-class capacity by moving");
    println!("the partitioned 14M of states to host memory.");
}
