//! Extension: render the ZeRO-Offload iteration schedule as a Gantt chart
//! and per-stream utilization report (2 steady-state iterations).

use zero_offload::ZeroOffloadPerf;
use zo_hetsim::{presets, render_gantt, render_report};

fn main() {
    let dpu = std::env::args().any(|a| a == "--dpu");
    let cfg = zo_models::by_label(4.0).expect("4B row");
    let perf = ZeroOffloadPerf::new(presets::dgx2_cluster(1));
    let tl = perf.timeline(&cfg.model, 8, 16, 1, 1, dpu, 2);
    println!(
        "ZeRO-Offload schedule, 4B model, micro-batch 8 x 2 accumulation, 2 iterations{}",
        if dpu { ", DPU" } else { "" }
    );
    println!("\n{}", render_report(&tl));
    println!("{}", render_gantt(&tl, 100));
    println!("(run with --dpu to see the update overlapped with the next iteration)");
}
