//! `fingerprint` — a deterministic trajectory hash for cross-process
//! thread-invariance checks.
//!
//! Trains a fixed GPT with the streamed engine for a fixed number of steps
//! and prints one FNV-1a hash over every per-step loss bit pattern and the
//! final master parameters. `optimizer_threads` is left at 0 (auto), so the
//! run picks up `ZO_THREADS` from the environment — CI runs this binary
//! under `ZO_THREADS=1` and `ZO_THREADS=4` and diffs the output, proving
//! the paper's claim that host-side parallelism never changes a single bit
//! of the trajectory.
//!
//! ```text
//! ZO_THREADS=4 fingerprint [--steps N] [--json PATH]
//! ```
//!
//! With `ZO_STAGE=3` the same fingerprint is computed over a two-rank
//! ZeRO-3 run (rank 0's per-step losses, then every rank's master shard
//! in rank order), so CI can prove the thread-invariance claim holds for
//! the parameter-partitioned engine too.
//!
//! With `ZO_TIER=nvme` the fp32 optimizer partitions spill to the
//! file-backed NVMe tier (`ZO_TIER_DIR` controls the spill directory).
//! The hash must not move: CI diffs the DRAM-resident and NVMe-spilled
//! fingerprints to prove tier placement is bitwise-invisible.
//!
//! `--json PATH` additionally writes a small benchmark artifact — the
//! hash plus per-step wall-times in milliseconds — which CI uploads as
//! `BENCH_fingerprint.json`.

use std::process::ExitCode;
use std::time::Instant;

use zero_offload::{run_zero3_ranks, TierKind, ZeroOffloadConfig, ZeroOffloadEngine};
use zo_models::BigramLm;
use zo_nn::{GptConfig, GptModel};
use zo_optim::{AdamParams, LossScaleConfig};

/// FNV-1a over a byte stream: stable, dependency-free, order-sensitive.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// Renders the benchmark artifact: flat JSON, no serializer needed.
fn render_json(hash: u64, engine: &str, tier: TierKind, threads: usize, step_ms: &[f64]) -> String {
    let times: Vec<String> = step_ms.iter().map(|t| format!("{t:.3}")).collect();
    let total: f64 = step_ms.iter().sum();
    format!(
        concat!(
            "{{\n",
            "  \"fingerprint\": \"{:016x}\",\n",
            "  \"engine\": \"{}\",\n",
            "  \"tier\": \"{}\",\n",
            "  \"threads\": {},\n",
            "  \"steps\": {},\n",
            "  \"total_wall_ms\": {:.3},\n",
            "  \"step_wall_ms\": [{}]\n",
            "}}\n"
        ),
        hash,
        engine,
        match tier {
            TierKind::Dram => "dram",
            TierKind::Nvme => "nvme",
        },
        threads,
        step_ms.len(),
        total,
        times.join(", ")
    )
}

fn main() -> ExitCode {
    let mut steps = 30usize;
    let mut json_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--steps" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => steps = n,
                _ => {
                    eprintln!("--steps requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match it.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires an output path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other}; usage: fingerprint [--steps N] [--json PATH]");
                return ExitCode::FAILURE;
            }
        }
    }
    let tier = match std::env::var("ZO_TIER").as_deref() {
        Ok("nvme") => TierKind::Nvme,
        Ok("dram") | Ok("") | Err(_) => TierKind::Dram,
        Ok(other) => {
            eprintln!("unknown ZO_TIER value {other:?}; expected \"dram\" or \"nvme\"");
            return ExitCode::FAILURE;
        }
    };

    let gpt = GptConfig {
        vocab: 32,
        seq_len: 16,
        hidden: 32,
        heads: 2,
        layers: 2,
    };
    let cfg = ZeroOffloadConfig {
        adam: AdamParams {
            lr: 3e-3,
            ..AdamParams::default()
        },
        loss_scale: LossScaleConfig {
            init_scale: 256.0,
            ..Default::default()
        },
        // 0 = auto: follow the shared pool, i.e. ZO_THREADS.
        optimizer_threads: 0,
        optimizer_tier: tier,
        ..ZeroOffloadConfig::default()
    };
    let stage3 = std::env::var("ZO_STAGE").is_ok_and(|v| v == "3");
    let mut hash = Fnv::new();
    let step_ms: Vec<f64> = if stage3 {
        // Two-rank ZeRO-3 run: each rank trains on its slice of the same
        // deterministic global batch stream.
        const WORLD: usize = 2;
        let traces = run_zero3_ranks(
            WORLD,
            cfg,
            move |_| GptModel::new(gpt, 42),
            move |engine| {
                let mut data = BigramLm::new(gpt.vocab, 0.02, 7);
                let mut losses = Vec::new();
                let mut times = Vec::new();
                for _ in 0..steps {
                    let b = data.batch(WORLD, gpt.seq_len);
                    let r = engine.rank();
                    let n = gpt.seq_len;
                    let inputs = b.inputs[r * n..(r + 1) * n].to_vec();
                    let targets = b.targets[r * n..(r + 1) * n].to_vec();
                    let t0 = Instant::now();
                    let out = engine
                        .step(|m| m.train_step(&inputs, &targets, 1, n, |_| {}))
                        .expect("training step");
                    times.push(t0.elapsed().as_secs_f64() * 1e3);
                    losses.push(out.loss());
                }
                (losses, engine.master_shard().to_vec(), times)
            },
        );
        for loss in &traces[0].0 {
            hash.write(&loss.to_bits().to_le_bytes());
        }
        for (_, shard, _) in &traces {
            for p in shard {
                hash.write(&p.to_bits().to_le_bytes());
            }
        }
        traces[0].2.clone()
    } else {
        let mut engine = ZeroOffloadEngine::new(GptModel::new(gpt, 42), cfg);
        let mut data = BigramLm::new(gpt.vocab, 0.02, 7);
        let mut times = Vec::new();
        for _ in 0..steps {
            let b = data.batch(4, gpt.seq_len);
            let t0 = Instant::now();
            let outcome = engine
                .step_streamed(|m, s| m.train_step_hooked(&b.inputs, &b.targets, 4, gpt.seq_len, s))
                .expect("training step");
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            hash.write(&outcome.loss().to_bits().to_le_bytes());
        }
        for p in engine.master_params() {
            hash.write(&p.to_bits().to_le_bytes());
        }
        times
    };

    let engine_name = if stage3 { "zero3" } else { "single" };
    let threads = zo_tensor::pool::global().threads();
    if let Some(path) = json_path {
        let body = render_json(hash.0, engine_name, tier, threads, &step_ms);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "fingerprint {:016x} threads={} steps={steps} engine={} tier={}",
        hash.0,
        threads,
        engine_name,
        match tier {
            TierKind::Dram => "dram",
            TierKind::Nvme => "nvme",
        }
    );
    ExitCode::SUCCESS
}
