//! `fingerprint` — a deterministic trajectory hash for cross-process
//! thread-invariance checks.
//!
//! Trains a fixed GPT with the streamed engine for a fixed number of steps
//! and prints one FNV-1a hash over every per-step loss bit pattern and the
//! final master parameters. `optimizer_threads` is left at 0 (auto), so the
//! run picks up `ZO_THREADS` from the environment — CI runs this binary
//! under `ZO_THREADS=1` and `ZO_THREADS=4` and diffs the output, proving
//! the paper's claim that host-side parallelism never changes a single bit
//! of the trajectory.
//!
//! ```text
//! ZO_THREADS=4 fingerprint [--steps N] [--json PATH]
//! ```
//!
//! With `ZO_STAGE=3` the same fingerprint is computed over a two-rank
//! ZeRO-3 run (rank 0's per-step losses, then every rank's master shard
//! in rank order), so CI can prove the thread-invariance claim holds for
//! the parameter-partitioned engine too.
//!
//! With `ZO_TIER=nvme` the fp32 optimizer partitions spill to the
//! file-backed NVMe tier (`ZO_TIER_DIR` controls the spill directory).
//! The hash must not move: CI diffs the DRAM-resident and NVMe-spilled
//! fingerprints to prove tier placement is bitwise-invisible.
//!
//! `--json PATH` additionally writes a small benchmark artifact — the
//! hash plus per-step wall-times in milliseconds — which CI uploads as
//! `BENCH_fingerprint.json`.
//!
//! The run itself (model, config, hash definition) lives in
//! `zo_bench::trajectory` so the `kernel_bench` binary and the pin test
//! compute the identical hash.

use std::process::ExitCode;

use zero_offload::TierKind;
use zo_bench::trajectory::{run_single, run_zero3};

/// Renders the benchmark artifact: flat JSON, no serializer needed.
fn render_json(hash: u64, engine: &str, tier: TierKind, threads: usize, step_ms: &[f64]) -> String {
    let times: Vec<String> = step_ms.iter().map(|t| format!("{t:.3}")).collect();
    let total: f64 = step_ms.iter().sum();
    format!(
        concat!(
            "{{\n",
            "  \"fingerprint\": \"{:016x}\",\n",
            "  \"engine\": \"{}\",\n",
            "  \"tier\": \"{}\",\n",
            "  \"threads\": {},\n",
            "  \"steps\": {},\n",
            "  \"total_wall_ms\": {:.3},\n",
            "  \"step_wall_ms\": [{}]\n",
            "}}\n"
        ),
        hash,
        engine,
        match tier {
            TierKind::Dram => "dram",
            TierKind::Nvme => "nvme",
        },
        threads,
        step_ms.len(),
        total,
        times.join(", ")
    )
}

fn main() -> ExitCode {
    let mut steps = 30usize;
    let mut json_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--steps" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => steps = n,
                _ => {
                    eprintln!("--steps requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match it.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires an output path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other}; usage: fingerprint [--steps N] [--json PATH]");
                return ExitCode::FAILURE;
            }
        }
    }
    let tier = match std::env::var("ZO_TIER").as_deref() {
        Ok("nvme") => TierKind::Nvme,
        Ok("dram") | Ok("") | Err(_) => TierKind::Dram,
        Ok(other) => {
            eprintln!("unknown ZO_TIER value {other:?}; expected \"dram\" or \"nvme\"");
            return ExitCode::FAILURE;
        }
    };

    let stage3 = std::env::var("ZO_STAGE").is_ok_and(|v| v == "3");
    let run = if stage3 {
        run_zero3(steps, tier)
    } else {
        run_single(steps, tier)
    };

    let engine_name = if stage3 { "zero3" } else { "single" };
    let threads = zo_tensor::pool::global().threads();
    if let Some(path) = json_path {
        let body = render_json(run.hash, engine_name, tier, threads, &run.step_ms);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "fingerprint {:016x} threads={} steps={steps} engine={} tier={}",
        run.hash,
        threads,
        engine_name,
        match tier {
            TierKind::Dram => "dram",
            TierKind::Nvme => "nvme",
        }
    );
    ExitCode::SUCCESS
}
