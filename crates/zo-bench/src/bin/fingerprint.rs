//! `fingerprint` — a deterministic trajectory hash for cross-process
//! thread-invariance checks.
//!
//! Trains a fixed GPT with the streamed engine for a fixed number of steps
//! and prints one FNV-1a hash over every per-step loss bit pattern and the
//! final master parameters. `optimizer_threads` is left at 0 (auto), so the
//! run picks up `ZO_THREADS` from the environment — CI runs this binary
//! under `ZO_THREADS=1` and `ZO_THREADS=4` and diffs the output, proving
//! the paper's claim that host-side parallelism never changes a single bit
//! of the trajectory.
//!
//! ```text
//! ZO_THREADS=4 fingerprint [--steps N]
//! ```

use std::process::ExitCode;

use zero_offload::{ZeroOffloadConfig, ZeroOffloadEngine};
use zo_models::BigramLm;
use zo_nn::{GptConfig, GptModel};
use zo_optim::{AdamParams, LossScaleConfig};

/// FNV-1a over a byte stream: stable, dependency-free, order-sensitive.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

fn main() -> ExitCode {
    let mut steps = 30usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--steps" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => steps = n,
                _ => {
                    eprintln!("--steps requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other}; usage: fingerprint [--steps N]");
                return ExitCode::FAILURE;
            }
        }
    }

    let gpt = GptConfig {
        vocab: 32,
        seq_len: 16,
        hidden: 32,
        heads: 2,
        layers: 2,
    };
    let cfg = ZeroOffloadConfig {
        adam: AdamParams {
            lr: 3e-3,
            ..AdamParams::default()
        },
        loss_scale: LossScaleConfig {
            init_scale: 256.0,
            ..Default::default()
        },
        // 0 = auto: follow the shared pool, i.e. ZO_THREADS.
        optimizer_threads: 0,
        ..ZeroOffloadConfig::default()
    };
    let mut engine = ZeroOffloadEngine::new(GptModel::new(gpt, 42), cfg);
    let mut data = BigramLm::new(gpt.vocab, 0.02, 7);

    let mut hash = Fnv::new();
    for _ in 0..steps {
        let b = data.batch(4, gpt.seq_len);
        let outcome = engine
            .step_streamed(|m, s| m.train_step_hooked(&b.inputs, &b.targets, 4, gpt.seq_len, s))
            .expect("training step");
        hash.write(&outcome.loss().to_bits().to_le_bytes());
    }
    for p in engine.master_params() {
        hash.write(&p.to_bits().to_le_bytes());
    }

    println!(
        "fingerprint {:016x} threads={} steps={steps}",
        hash.0,
        zo_tensor::pool::global().threads()
    );
    ExitCode::SUCCESS
}
