//! `criterion_report` — aggregates the criterion shim's NDJSON stream
//! into the validated `BENCH_criterion.json` artifact.
//!
//! ```text
//! criterion_report --from NDJSON --json OUT
//! criterion_report --assert PATH
//! ```
//!
//! * `--from NDJSON --json OUT` — parse the per-bench records the shim
//!   appended under `CRITERION_JSON`, render the artifact, self-validate,
//!   and write it. Refuses to write anything its own validator rejects.
//! * `--assert PATH` — re-parse a previously emitted artifact and fail
//!   unless it carries the schema tag, at least one bench, unique names,
//!   and positive finite means. CI runs emit then assert, so a
//!   silently-empty sweep can never upload.

use std::process::ExitCode;

use zo_bench::criterion_artifact::{parse_ndjson, render_criterion_json, validate_criterion_json};

fn main() -> ExitCode {
    let mut from_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut assert_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str, slot: &mut Option<String>| match it.next() {
            Some(p) => {
                *slot = Some(p);
                true
            }
            None => {
                eprintln!("{name} requires a path");
                false
            }
        };
        let ok = match flag.as_str() {
            "--from" => take("--from", &mut from_path),
            "--json" => take("--json", &mut json_path),
            "--assert" => take("--assert", &mut assert_path),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: criterion_report --from NDJSON --json OUT | --assert PATH"
                );
                false
            }
        };
        if !ok {
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = assert_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_criterion_json(&text) {
            Ok(()) => {
                println!("criterion_report: {path} OK");
                ExitCode::SUCCESS
            }
            Err(why) => {
                eprintln!("criterion_report: {path} FAILED: {why}");
                ExitCode::FAILURE
            }
        };
    }

    let (Some(from), Some(out)) = (from_path, json_path) else {
        eprintln!("usage: criterion_report --from NDJSON --json OUT | --assert PATH");
        return ExitCode::FAILURE;
    };
    let ndjson = match std::fs::read_to_string(&from) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to read {from}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let records = match parse_ndjson(&ndjson) {
        Ok(r) => r,
        Err(why) => {
            eprintln!("criterion_report: {from} is not a clean sweep: {why}");
            return ExitCode::FAILURE;
        }
    };
    let body = render_criterion_json(&records);
    // Self-check before writing: the emitter must never produce an
    // artifact its own validator rejects.
    if let Err(why) = validate_criterion_json(&body) {
        eprintln!("criterion_report: refusing to write invalid artifact: {why}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out, body) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "criterion_report: wrote {out} ({} benches from {from})",
        records.len()
    );
    ExitCode::SUCCESS
}
