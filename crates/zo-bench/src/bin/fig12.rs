//! Regenerates Fig. 12: GPT-2 pretraining loss, baseline vs offload vs DPU.

fn main() {
    let steps: usize = std::env::var("ZO_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    eprintln!("training 3 GPT variants for {steps} steps (set ZO_STEPS to change)...");
    let curves = zo_bench::fig12_curves(steps, 42);
    println!("Figure 12 — GPT-2 (tiny analog) training loss\n");
    println!("{}", zo_bench::render_curves(&curves, steps / 20));
    let same = curves.baseline == curves.offload;
    println!(
        "baseline and ZeRO-Offload w/o DPU curves identical: {same} (paper: exactly overlapped)"
    );
    println!(
        "DPU enabled after {} steps (paper: 40)",
        zo_bench::DPU_WARMUP
    );
}
