//! Multi-job service metrics: aggregate throughput and schedule fairness.
//!
//! The service's scheduling claim is quantitative: a deterministic
//! round-robin/priority executor should (a) keep aggregate step
//! throughput close to the solo engine's, and (b) grant steps in
//! proportion to priorities. This module turns a service run's schedule
//! log into those two numbers — Jain's fairness index over
//! priority-normalized grants, and steps/second — the same way
//! `throughput.rs` turns engine runs into Fig. 8–11 rows.

use std::collections::BTreeMap;
use std::time::Instant;

use zo_serve::{JobSpec, ScheduleEntry, Service};

/// Metrics of one service run.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// Total optimizer steps granted across all jobs.
    pub total_steps: usize,
    /// Aggregate steps per second (wall clock).
    pub steps_per_sec: f64,
    /// Jain's fairness index over priority-normalized per-job grant
    /// counts: 1.0 = perfectly proportional; `1/n` = one job starved
    /// everything else.
    pub jain_fairness: f64,
    /// Per-job granted steps, by name.
    pub steps_per_job: BTreeMap<String, usize>,
}

/// Jain's index `(Σx)² / (n·Σx²)` over per-job allocations `x`.
///
/// `x` should be normalized by entitlement (priority) so a weighted
/// schedule that honors its weights still scores 1.0.
pub fn jain_index(allocations: &[f64]) -> f64 {
    let n = allocations.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq)
}

/// Computes fairness over a schedule log, normalizing each job's grant
/// count by its priority weight.
pub fn schedule_fairness(schedule: &[ScheduleEntry], priorities: &BTreeMap<String, u32>) -> f64 {
    let mut grants: BTreeMap<&str, usize> = BTreeMap::new();
    for e in schedule {
        *grants.entry(e.job.as_str()).or_default() += 1;
    }
    let normalized: Vec<f64> = priorities
        .iter()
        .map(|(name, prio)| {
            let g = grants.get(name.as_str()).copied().unwrap_or(0);
            g as f64 / f64::from((*prio).max(1))
        })
        .collect();
    jain_index(&normalized)
}

/// Runs `specs` to completion under one service and measures throughput
/// and fairness.
pub fn measure_service(seed: u64, specs: Vec<JobSpec>) -> ServiceMetrics {
    let priorities: BTreeMap<String, u32> =
        specs.iter().map(|s| (s.name.clone(), s.priority)).collect();
    let mut service = Service::new(seed);
    for spec in specs {
        service.submit(spec).expect("service submit");
    }
    let t0 = Instant::now();
    let report = service.run_to_completion();
    let elapsed = t0.elapsed().as_secs_f64();
    let mut steps_per_job = BTreeMap::new();
    for job in &report.jobs {
        steps_per_job.insert(job.name.clone(), job.steps_done);
    }
    let total_steps: usize = steps_per_job.values().sum();
    ServiceMetrics {
        total_steps,
        steps_per_sec: total_steps as f64 / elapsed.max(1e-9),
        jain_fairness: schedule_fairness(&report.schedule, &priorities),
        steps_per_job,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zo_nn::GptConfig;

    const GPT: GptConfig = GptConfig {
        vocab: 16,
        seq_len: 8,
        hidden: 16,
        heads: 2,
        layers: 1,
    };

    #[test]
    fn jain_index_bounds() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let starved = jain_index(&[1.0, 0.0, 0.0]);
        assert!((starved - 1.0 / 3.0).abs() < 1e-12, "starved: {starved}");
        assert_eq!(jain_index(&[]), 1.0);
    }

    #[test]
    fn equal_priority_jobs_share_equally() {
        let specs = vec![
            JobSpec::new("a", GPT, 6),
            JobSpec::new("b", GPT, 6),
            JobSpec::new("c", GPT, 6),
        ];
        let m = measure_service(3, specs);
        assert_eq!(m.total_steps, 18);
        assert!(
            m.jain_fairness > 0.999,
            "equal-priority fairness: {}",
            m.jain_fairness
        );
        assert!(m.steps_per_sec > 0.0);
    }

    #[test]
    fn priorities_weight_the_schedule() {
        // Both jobs are long enough that neither finishes early; the
        // 2:1 priority must show up as ~2:1 grants in any prefix of the
        // schedule — measured here over the completed run (equal step
        // budgets force completion; fairness is over the normalized
        // grant counts, which stay proportional while both run).
        let mut fast = JobSpec::new("fast", GPT, 12);
        fast.priority = 2;
        let slow = JobSpec::new("slow", GPT, 6);
        let m = measure_service(1, vec![fast, slow]);
        assert_eq!(m.steps_per_job["fast"], 12);
        assert_eq!(m.steps_per_job["slow"], 6);
        assert!(
            m.jain_fairness > 0.999,
            "2:1 priority over 12:6 steps is proportional: {}",
            m.jain_fairness
        );
    }
}
