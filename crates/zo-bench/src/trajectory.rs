//! Deterministic trajectory fingerprints, shared by the `fingerprint` and
//! `kernel_bench` binaries and by the pin test below.
//!
//! A *trajectory fingerprint* is one FNV-1a hash over every per-step loss
//! bit pattern and the final master parameters of a fixed training run.
//! The repo's load-bearing invariant is that this hash does not move under
//! any execution-placement knob: `ZO_THREADS` (1 or 4), `ZO_TIER` (dram or
//! nvme), `ZO_FAULTS` (off or transient-heavy) and kernel partition counts
//! all produce the same bits. CI diffs the hash across those axes.
//!
//! The *expected* hash for the current kernels is pinned exactly once, in
//! [`PINNED_TRAJECTORY_FINGERPRINT`]. When a PR intentionally changes
//! kernel numerics (e.g. the packed GEMM micro-kernel replacing the old
//! `mul_add` loops), this is the only constant to update — the invariance
//! diffs in `scripts/ci.sh` stay relative and keep passing on their own.

use std::time::Instant;

use zero_offload::{run_zero3_ranks, TierKind, ZeroOffloadConfig, ZeroOffloadEngine};
use zo_models::BigramLm;
use zo_nn::{GptConfig, GptModel};
use zo_optim::{AdamParams, LossScaleConfig};

/// The trajectory hash of [`run_single`] with the default 30 steps.
///
/// Pinned after the packed register-tiled GEMM micro-kernel landed (the
/// micro-kernel's plain multiply–add chains replaced the old kernels'
/// per-element `f32::mul_add`, which changed rounding and therefore the
/// trajectory). Every test or script that wants the absolute expected
/// fingerprint must reference this constant instead of pinning its own.
pub const PINNED_TRAJECTORY_FINGERPRINT: u64 = 0x9b0c_699e_ae64_c7d8;

/// Steps the pinned fingerprint run trains for.
pub const PINNED_STEPS: usize = 30;

/// FNV-1a over a byte stream: stable, dependency-free, order-sensitive.
pub struct Fnv(u64);

impl Fnv {
    /// Creates a hasher with the standard FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    /// Absorbs `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

/// Outcome of a fingerprint run.
pub struct TrajectoryRun {
    /// FNV-1a over per-step loss bits then final master parameter bits.
    pub hash: u64,
    /// Wall-clock per optimizer step, milliseconds.
    pub step_ms: Vec<f64>,
}

/// The fixed model every fingerprint run trains.
pub fn fingerprint_model() -> GptConfig {
    GptConfig {
        vocab: 32,
        seq_len: 16,
        hidden: 32,
        heads: 2,
        layers: 2,
    }
}

/// The fixed engine config (optimizer threads follow `ZO_THREADS` via the
/// shared pool; the optimizer tier is the one placement axis callers pick).
pub fn fingerprint_config(tier: TierKind) -> ZeroOffloadConfig {
    ZeroOffloadConfig {
        adam: AdamParams {
            lr: 3e-3,
            ..AdamParams::default()
        },
        loss_scale: LossScaleConfig {
            init_scale: 256.0,
            ..Default::default()
        },
        // 0 = auto: follow the shared pool, i.e. ZO_THREADS.
        optimizer_threads: 0,
        optimizer_tier: tier,
        ..ZeroOffloadConfig::default()
    }
}

/// Trains the fixed GPT on the streamed single-GPU engine and returns the
/// trajectory hash plus per-step wall times.
pub fn run_single(steps: usize, tier: TierKind) -> TrajectoryRun {
    let gpt = fingerprint_model();
    let mut engine = ZeroOffloadEngine::new(GptModel::new(gpt, 42), fingerprint_config(tier));
    let mut data = BigramLm::new(gpt.vocab, 0.02, 7);
    let mut hash = Fnv::new();
    let mut times = Vec::new();
    for _ in 0..steps {
        let b = data.batch(4, gpt.seq_len);
        let t0 = Instant::now();
        let outcome = engine
            .step_streamed(|m, s| m.train_step_hooked(&b.inputs, &b.targets, 4, gpt.seq_len, s))
            .expect("training step");
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        hash.write(&outcome.loss().to_bits().to_le_bytes());
    }
    for p in engine.master_params() {
        hash.write(&p.to_bits().to_le_bytes());
    }
    TrajectoryRun {
        hash: hash.finish(),
        step_ms: times,
    }
}

/// The same fingerprint over a two-rank ZeRO-3 run (rank 0's per-step
/// losses, then every rank's master shard in rank order).
pub fn run_zero3(steps: usize, tier: TierKind) -> TrajectoryRun {
    let gpt = fingerprint_model();
    const WORLD: usize = 2;
    let traces = run_zero3_ranks(
        WORLD,
        fingerprint_config(tier),
        move |_| GptModel::new(gpt, 42),
        move |engine| {
            let mut data = BigramLm::new(gpt.vocab, 0.02, 7);
            let mut losses = Vec::new();
            let mut times = Vec::new();
            for _ in 0..steps {
                let b = data.batch(WORLD, gpt.seq_len);
                let r = engine.rank();
                let n = gpt.seq_len;
                let inputs = b.inputs[r * n..(r + 1) * n].to_vec();
                let targets = b.targets[r * n..(r + 1) * n].to_vec();
                let t0 = Instant::now();
                let out = engine
                    .step(|m| m.train_step(&inputs, &targets, 1, n, |_| {}))
                    .expect("training step");
                times.push(t0.elapsed().as_secs_f64() * 1e3);
                losses.push(out.loss());
            }
            (losses, engine.master_shard().to_vec(), times)
        },
    );
    let mut hash = Fnv::new();
    for loss in &traces[0].0 {
        hash.write(&loss.to_bits().to_le_bytes());
    }
    for (_, shard, _) in &traces {
        for p in shard {
            hash.write(&p.to_bits().to_le_bytes());
        }
    }
    TrajectoryRun {
        hash: hash.finish(),
        step_ms: traces[0].2.clone(),
    }
}

/// Checks a run against the pinned fingerprint. A run is comparable only
/// if it trained exactly [`PINNED_STEPS`] steps (the pin is a hash over
/// a specific step count — comparing a shorter run would "fail" for the
/// wrong reason, and accepting it would prove nothing), so a wrong-length
/// run is rejected outright rather than compared.
pub fn verify_pinned(run: &TrajectoryRun) -> Result<(), String> {
    let steps = run.step_ms.len();
    if steps != PINNED_STEPS {
        return Err(format!(
            "run trained {steps} steps; the pinned fingerprint is defined over {PINNED_STEPS} — \
             not comparable"
        ));
    }
    if run.hash != PINNED_TRAJECTORY_FINGERPRINT {
        return Err(format!(
            "trajectory fingerprint moved: got {:016x}, pinned {:016x} — if the numerics \
             change is intentional, re-pin PINNED_TRAJECTORY_FINGERPRINT",
            run.hash, PINNED_TRAJECTORY_FINGERPRINT
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The single place the absolute trajectory fingerprint is checked.
    /// If a PR intentionally changes kernel numerics, update
    /// [`PINNED_TRAJECTORY_FINGERPRINT`] (and only it) with the value this
    /// test prints on failure.
    #[test]
    fn trajectory_fingerprint_is_pinned() {
        let run = run_single(PINNED_STEPS, TierKind::Dram);
        verify_pinned(&run).expect("pinned trajectory");
    }

    /// The fingerprint must not depend on the optimizer tier (the DRAM/NVMe
    /// diff also runs cross-process in ci.sh; this is the in-process pin).
    #[test]
    fn trajectory_fingerprint_tier_invariant() {
        let nvme = run_single(PINNED_STEPS, TierKind::Nvme);
        assert_eq!(nvme.hash, PINNED_TRAJECTORY_FINGERPRINT);
    }

    /// Red path: a perturbed fingerprint must be rejected with a message
    /// naming both hashes, and a wrong-length run must be rejected as
    /// not comparable instead of silently passing or failing.
    #[test]
    fn verify_pinned_rejects_perturbed_and_wrong_length_runs() {
        let comparable = TrajectoryRun {
            hash: PINNED_TRAJECTORY_FINGERPRINT,
            step_ms: vec![1.0; PINNED_STEPS],
        };
        verify_pinned(&comparable).expect("exact pin must verify");

        let perturbed = TrajectoryRun {
            hash: PINNED_TRAJECTORY_FINGERPRINT ^ 1,
            step_ms: vec![1.0; PINNED_STEPS],
        };
        let err = verify_pinned(&perturbed).expect_err("one flipped bit must be rejected");
        assert!(err.contains("re-pin"), "unhelpful message: {err}");

        let short = TrajectoryRun {
            hash: PINNED_TRAJECTORY_FINGERPRINT,
            step_ms: vec![1.0; 2],
        };
        let err = verify_pinned(&short).expect_err("a 2-step run is not comparable to the pin");
        assert!(err.contains("not comparable"), "unhelpful message: {err}");
    }
}
