//! Criterion bench behind Table 4: the Adam kernel implementations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zo_optim::{adam_reference_step, AdamParams, AdamState, CpuAdam, CpuAdamConfig, NaiveAdam};

fn bench_adam(c: &mut Criterion) {
    let mut group = c.benchmark_group("adam");
    for &n in &[1usize << 16, 1 << 20, 1 << 22] {
        let grads: Vec<f32> = (0..n).map(|i| ((i % 997) as f32 - 498.0) * 1e-4).collect();
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("cpu_adam", n), &n, |b, &n| {
            let mut opt = CpuAdam::new(CpuAdamConfig::default(), n);
            let mut p = vec![0.5f32; n];
            b.iter(|| opt.step(&mut p, &grads).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("naive_pt_cpu", n), &n, |b, &n| {
            let mut opt = NaiveAdam::new(AdamParams::default(), n);
            let mut p = vec![0.5f32; n];
            b.iter(|| opt.step(&mut p, &grads).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("scalar_reference", n), &n, |b, &n| {
            let hp = AdamParams::default();
            let mut st = AdamState::new(n);
            let mut p = vec![0.5f32; n];
            b.iter(|| adam_reference_step(&hp, &mut st, &mut p, &grads).unwrap());
        });
    }
    group.finish();
}

fn bench_adam_thread_scaling(c: &mut Criterion) {
    // CPU-Adam update partitioned 1/2/4/8 ways over the shared pool
    // (Table 4's multi-core rows; identical bits at every setting).
    let n = 1 << 20;
    let grads: Vec<f32> = (0..n).map(|i| ((i % 997) as f32 - 498.0) * 1e-4).collect();
    let mut group = c.benchmark_group("adam_threads");
    group.throughput(Throughput::Elements(n as u64));
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let cfg = CpuAdamConfig {
                num_threads: t,
                ..CpuAdamConfig::default()
            };
            let mut opt = CpuAdam::new(cfg, n);
            let mut p = vec![0.5f32; n];
            b.iter(|| opt.step(&mut p, &grads).unwrap());
        });
    }
    group.finish();
}

fn bench_tiled_mixed(c: &mut Criterion) {
    // Ablation: tile width of the fp16 copy-back (Algorithm 1, line 15).
    let n = 1 << 20;
    let grads: Vec<f32> = (0..n).map(|i| ((i % 997) as f32 - 498.0) * 1e-4).collect();
    let mut group = c.benchmark_group("adam_tile_width");
    for &tile in &[1usize << 14, 1 << 17, 1 << 20] {
        group.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, &tile| {
            let cfg = CpuAdamConfig {
                tile_width: tile,
                ..CpuAdamConfig::default()
            };
            let mut opt = CpuAdam::new(cfg, n);
            let mut p = vec![0.5f32; n];
            let mut p16 = vec![zo_tensor::F16::ZERO; n];
            b.iter(|| opt.step_mixed(&mut p, &grads, &mut p16).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_adam, bench_adam_thread_scaling, bench_tiled_mixed
}
criterion_main!(benches);
