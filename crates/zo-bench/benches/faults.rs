//! Fault-hook overhead: the resilience layer must be zero-cost when off.
//!
//! Compares `step_streamed` on three engines: one built with no fault
//! configuration at all (gates resolve to disabled sessions), one with an
//! explicitly installed-but-disabled plan, and one with the
//! `transient-heavy` CI preset (every site injecting recoverable
//! transients). The first two must be indistinguishable — the hooks are
//! compiled in unconditionally, so any gap there is real overhead — and
//! the third bounds what the CI matrix run pays for its coverage.

use criterion::{criterion_group, criterion_main, Criterion};
use zero_offload::{FaultsRef, ZeroOffloadConfig, ZeroOffloadEngine};
use zo_fault::FaultPlan;
use zo_models::BigramLm;
use zo_nn::{GptConfig, GptModel};
use zo_optim::LossScaleConfig;

fn cfg() -> ZeroOffloadConfig {
    ZeroOffloadConfig {
        loss_scale: LossScaleConfig {
            init_scale: 256.0,
            ..Default::default()
        },
        ..ZeroOffloadConfig::default()
    }
}

fn bench_fault_overhead(c: &mut Criterion) {
    let gpt = GptConfig {
        vocab: 32,
        seq_len: 16,
        hidden: 32,
        heads: 2,
        layers: 2,
    };
    let mut group = c.benchmark_group("fault_overhead");
    for (name, engine_cfg) in [
        ("no_plan", cfg()),
        (
            "disabled_plan",
            ZeroOffloadConfig {
                faults: Some(FaultsRef::install(FaultPlan::disabled())),
                ..cfg()
            },
        ),
        (
            "transient_heavy",
            ZeroOffloadConfig {
                faults: Some(FaultsRef::install(FaultPlan::transient_heavy())),
                ..cfg()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            let mut engine = ZeroOffloadEngine::new(GptModel::new(gpt, 1), engine_cfg);
            let mut data = BigramLm::new(gpt.vocab, 0.05, 2);
            b.iter(|| {
                let batch = data.batch(4, gpt.seq_len);
                engine
                    .step_streamed(|m, s| {
                        m.train_step_hooked(&batch.inputs, &batch.targets, 4, gpt.seq_len, s)
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fault_overhead
}
criterion_main!(benches);
