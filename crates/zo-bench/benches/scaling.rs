//! End-to-end thread scaling: the full streamed training step at
//! different optimizer partition counts.
//!
//! The trajectory is bit-identical at every setting (asserted by
//! `tests/thread_invariance.rs`); this bench measures only the wall-clock
//! effect. On a single-core host the curve is flat-to-worse — the
//! partitions serialize on the lone pool thread — and it separates on
//! multi-core machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zero_offload::{ZeroOffloadConfig, ZeroOffloadEngine};
use zo_models::BigramLm;
use zo_nn::{GptConfig, GptModel};
use zo_optim::LossScaleConfig;

fn bench_step_streamed_threads(c: &mut Criterion) {
    let gpt = GptConfig {
        vocab: 64,
        seq_len: 32,
        hidden: 64,
        heads: 4,
        layers: 2,
    };
    let mut group = c.benchmark_group("step_streamed_threads");
    for &threads in &[1usize, 4] {
        let engine_cfg = ZeroOffloadConfig {
            optimizer_threads: threads,
            loss_scale: LossScaleConfig {
                init_scale: 256.0,
                ..Default::default()
            },
            ..ZeroOffloadConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            let mut engine = ZeroOffloadEngine::new(GptModel::new(gpt, 1), engine_cfg);
            let mut data = BigramLm::new(gpt.vocab, 0.05, 2);
            b.iter(|| {
                let batch = data.batch(4, gpt.seq_len);
                engine
                    .step_streamed(|m, s| {
                        m.train_step_hooked(&batch.inputs, &batch.targets, 4, gpt.seq_len, s)
                    })
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_step_streamed_threads
}
criterion_main!(benches);
