//! Substrate kernel benches: fp16 casts (the PCIe wire format) and GEMM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zo_tensor::{cast_f16_to_f32, cast_f32_to_f16, matmul, Init, Pool, F16};

fn bench_f16_casts(c: &mut Criterion) {
    let mut group = c.benchmark_group("f16_cast");
    for &n in &[1usize << 16, 1 << 20] {
        let src: Vec<f32> = (0..n).map(|i| (i as f32) * 1e-3 - 500.0).collect();
        let mut dst = vec![F16::ZERO; n];
        group.throughput(Throughput::Bytes((n * 4) as u64));
        group.bench_with_input(BenchmarkId::new("f32_to_f16", n), &n, |b, _| {
            b.iter(|| cast_f32_to_f16(&src, &mut dst));
        });
        let back_src = dst.clone();
        let mut back = vec![0.0f32; n];
        group.bench_with_input(BenchmarkId::new("f16_to_f32", n), &n, |b, _| {
            b.iter(|| cast_f16_to_f32(&back_src, &mut back));
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    // Throughput::Elements is 2·m·k·n flops, so elements/sec reads as
    // FLOP/s (divide the printed rate by 1e9 for GFLOP/s).
    let mut group = c.benchmark_group("matmul");
    for &dim in &[64usize, 128, 256, 512] {
        let mut init = Init::new(1);
        let a = init.normal_tensor(dim, dim, 1.0);
        let b_m = init.normal_tensor(dim, dim, 1.0);
        group.throughput(Throughput::Elements((2 * dim * dim * dim) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bench, _| {
            bench.iter(|| matmul(&a, &b_m).unwrap());
        });
    }
    group.finish();
}

fn bench_matmul_thread_scaling(c: &mut Criterion) {
    // Dedicated pools per thread count so the scaling curve is driven by
    // the bench parameter, not the machine's ZO_THREADS — on a single-core
    // host the >1-thread rows show scheduling overhead, not speedup.
    let dim = 512usize;
    let mut init = Init::new(2);
    let a = init.normal_tensor(dim, dim, 1.0);
    let b_m = init.normal_tensor(dim, dim, 1.0);
    let mut c_m = init.normal_tensor(dim, dim, 0.0);
    let mut group = c.benchmark_group("matmul_512_threads");
    group.throughput(Throughput::Elements((2 * dim * dim * dim) as u64));
    for &threads in &[1usize, 2, 4, 8] {
        let pool = Pool::new(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, _| {
                bench.iter(|| {
                    zo_tensor::matmul::matmul_acc_on(&pool, threads, &a, &b_m, &mut c_m).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_f16_casts, bench_matmul, bench_matmul_thread_scaling
}
criterion_main!(benches);
