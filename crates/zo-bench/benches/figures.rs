//! One bench per evaluation artifact: times the regeneration of every
//! table/figure computation (the analytic ones; convergence figures are
//! exercised with short runs).

use criterion::{criterion_group, criterion_main, Criterion};
use zo_dataflow::DataFlowGraph;

fn bench_tables_and_figures(c: &mut Criterion) {
    c.bench_function("table1_partition_analysis", |b| {
        let g = DataFlowGraph::training_iteration();
        b.iter(|| {
            let rows = zo_dataflow::table1_rows(&g);
            zo_dataflow::check_unique_optimality(&g).unwrap();
            rows
        });
    });
    c.bench_function("fig7_scale_search", |b| b.iter(zo_bench::fig7_rows));
    c.bench_function("fig8_single_gpu_throughput", |b| {
        b.iter(zo_bench::fig8_rows)
    });
    c.bench_function("fig9_dpu_speedup", |b| b.iter(zo_bench::fig9_rows));
    c.bench_function("fig10_multi_gpu_throughput", |b| {
        b.iter(zo_bench::fig10_rows)
    });
    c.bench_function("fig11_scalability", |b| b.iter(zo_bench::fig11_rows));
    c.bench_function("fig12_convergence_short", |b| {
        b.iter(|| zo_bench::fig12_curves(10, 1))
    });
    c.bench_function("fig13_convergence_short", |b| {
        b.iter(|| zo_bench::fig13_curves(10, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tables_and_figures
}
criterion_main!(benches);
