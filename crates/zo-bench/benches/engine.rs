//! Real-engine step cost: offload vs reference vs DPU paths, and the
//! thread-rank collectives.

use criterion::{criterion_group, criterion_main, Criterion};
use zero_offload::{ZeroOffloadConfig, ZeroOffloadEngine};
use zo_collectives::Communicator;
use zo_models::BigramLm;
use zo_nn::{GptConfig, GptModel};
use zo_optim::LossScaleConfig;

fn cfg() -> ZeroOffloadConfig {
    ZeroOffloadConfig {
        loss_scale: LossScaleConfig {
            init_scale: 256.0,
            ..Default::default()
        },
        ..ZeroOffloadConfig::default()
    }
}

fn bench_engine_step(c: &mut Criterion) {
    let gpt = GptConfig {
        vocab: 32,
        seq_len: 16,
        hidden: 32,
        heads: 2,
        layers: 2,
    };
    let mut group = c.benchmark_group("engine_step");
    for (name, engine_cfg) in [
        ("offload", cfg()),
        ("reference", cfg().without_offload()),
        (
            "offload_dpu",
            ZeroOffloadConfig {
                dpu_warmup: Some(0),
                ..cfg()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            let mut engine = ZeroOffloadEngine::new(GptModel::new(gpt, 1), engine_cfg);
            let mut data = BigramLm::new(gpt.vocab, 0.05, 2);
            b.iter(|| {
                let batch = data.batch(4, gpt.seq_len);
                engine
                    .step(|m| m.train_step(&batch.inputs, &batch.targets, 4, gpt.seq_len, |_| {}))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives_2rank");
    group.bench_function("all_reduce_64k", |b| {
        b.iter(|| {
            let comms = Communicator::group(2);
            std::thread::scope(|s| {
                for comm in comms {
                    s.spawn(move || {
                        let mut v = vec![1.0f32; 65536];
                        comm.all_reduce_sum(&mut v);
                        v[0]
                    });
                }
            });
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engine_step, bench_collectives
}
criterion_main!(benches);
