//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use std::sync::OnceLock;
use zo_tensor::{matmul, matmul_a_bt, matmul_at_b, ops, Pool, F16};

/// One shared 4-worker pool for every proptest case (spawning a pool per
/// case would dominate the runtime and hide reuse bugs).
fn test_pool() -> &'static Pool {
    static POOL: OnceLock<std::sync::Arc<Pool>> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(4))
}

fn finite_f32() -> impl Strategy<Value = f32> {
    // Values well inside the f16 range so casts stay finite.
    -1000.0f32..1000.0f32
}

proptest! {
    /// f32 -> f16 -> f32 never moves a value by more than one f16 ulp.
    #[test]
    fn f16_cast_error_bounded(v in finite_f32()) {
        let h = F16::from_f32(v).to_f32();
        // ulp at |v|: 2^(floor(log2 |v|) - 10), at least the subnormal step.
        let ulp = if v == 0.0 {
            2.0f32.powi(-24)
        } else {
            2.0f32.powi((v.abs().log2().floor() as i32 - 10).max(-24))
        };
        prop_assert!((h - v).abs() <= 0.5 * ulp + f32::EPSILON,
            "v={v} h={h} ulp={ulp}");
    }

    /// Casting is monotone: a <= b implies f16(a) <= f16(b).
    #[test]
    fn f16_cast_monotone(a in finite_f32(), b in finite_f32()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    /// f16 -> f32 -> f16 is the identity on non-NaN bit patterns.
    #[test]
    fn f16_roundtrip_identity(bits in 0u16..=u16::MAX) {
        let h = F16::from_bits(bits);
        prop_assume!(!h.is_nan());
        prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), bits);
    }

    /// Negation flips only the sign bit and is an involution.
    #[test]
    fn f16_neg_involution(bits in 0u16..=u16::MAX) {
        let h = F16::from_bits(bits);
        prop_assert_eq!((-(-h)).to_bits(), bits);
        prop_assert_eq!((-h).to_bits(), bits ^ 0x8000);
    }

    /// Matmul distributes over addition: (A+B)C = AC + BC.
    #[test]
    fn matmul_distributes(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in 0u64..1000
    ) {
        let mut init = zo_tensor::Init::new(seed);
        let a = init.normal_tensor(m, k, 1.0);
        let b = init.normal_tensor(m, k, 1.0);
        let c = init.normal_tensor(k, n, 1.0);

        let mut ab = a.clone();
        ops::add_assign(ab.data_mut(), b.data()).unwrap();
        let lhs = matmul(&ab, &c).unwrap();

        let mut rhs = matmul(&a, &c).unwrap();
        let bc = matmul(&b, &c).unwrap();
        ops::add_assign(rhs.data_mut(), bc.data()).unwrap();

        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ, exercised through the transposed kernels.
    #[test]
    fn matmul_transpose_identity(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in 0u64..1000
    ) {
        let mut init = zo_tensor::Init::new(seed.wrapping_add(7));
        let a = init.normal_tensor(m, k, 1.0);
        let b = init.normal_tensor(k, n, 1.0);
        let ab_t = matmul(&a, &b).unwrap().transposed();
        // Bᵀ·Aᵀ via matmul_at_b(B, Aᵀᵀ)… simplest check: against plain matmul
        // of explicit transposes.
        let want = matmul(&b.transposed(), &a.transposed()).unwrap();
        for (x, y) in ab_t.data().iter().zip(want.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        // And the fused kernels agree with explicit transposition.
        let atb = matmul_at_b(&a, &a).unwrap();
        let atb_want = matmul(&a.transposed(), &a).unwrap();
        for (x, y) in atb.data().iter().zip(atb_want.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let abt = matmul_a_bt(&b, &b).unwrap();
        let abt_want = matmul(&b, &b.transposed()).unwrap();
        for (x, y) in abt.data().iter().zip(abt_want.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Softmax output is a probability distribution.
    #[test]
    fn softmax_is_distribution(v in prop::collection::vec(-50.0f32..50.0, 1..64)) {
        let mut row = v;
        ops::softmax_row(&mut row);
        let total: f64 = row.iter().map(|x| *x as f64).sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
        prop_assert!(row.iter().all(|x| (0.0..=1.0).contains(x)));
    }

    /// All three parallel matmul kernels are bit-identical to their serial
    /// variants for random shapes at every partition count, including part
    /// counts that exceed the pool's thread count and the row count.
    #[test]
    fn parallel_matmul_bit_identical_to_serial(
        m in 1usize..40, k in 1usize..24, n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut init = zo_tensor::Init::new(seed.wrapping_add(99));
        let pool = test_pool();
        for parts in [1usize, 2, 3, 7] {
            // C += A·B with A (m,k), B (k,n).
            let a = init.normal_tensor(m, k, 1.0);
            let b = init.normal_tensor(k, n, 1.0);
            let mut want = init.normal_tensor(m, n, 0.5);
            let mut got = want.clone();
            zo_tensor::matmul::matmul_acc_serial(&a, &b, &mut want).unwrap();
            zo_tensor::matmul::matmul_acc_on(pool, parts, &a, &b, &mut got).unwrap();
            prop_assert_eq!(got.data(), want.data(), "matmul parts={}", parts);

            // C += Aᵀ·B with A (k,m), B (k,n).
            let at = init.normal_tensor(k, m, 1.0);
            let bt = init.normal_tensor(k, n, 1.0);
            let mut want = init.normal_tensor(m, n, 0.5);
            let mut got = want.clone();
            zo_tensor::matmul::matmul_at_b_acc_serial(&at, &bt, &mut want).unwrap();
            zo_tensor::matmul::matmul_at_b_acc_on(pool, parts, &at, &bt, &mut got).unwrap();
            prop_assert_eq!(got.data(), want.data(), "matmul_at_b parts={}", parts);

            // C += A·Bᵀ with A (m,k), B (n,k).
            let ab = init.normal_tensor(m, k, 1.0);
            let bb = init.normal_tensor(n, k, 1.0);
            let mut want = init.normal_tensor(m, n, 0.5);
            let mut got = want.clone();
            zo_tensor::matmul::matmul_a_bt_acc_serial(&ab, &bb, &mut want).unwrap();
            zo_tensor::matmul::matmul_a_bt_acc_on(pool, parts, &ab, &bb, &mut got).unwrap();
            prop_assert_eq!(got.data(), want.data(), "matmul_a_bt parts={}", parts);
        }
    }

    /// The packed kernels stay bit-identical to serial on shapes chosen to
    /// straddle every tiling boundary: k crossing the KC panel depth, m
    /// hitting MR sub-tile tails, n hitting partial NR register blocks —
    /// at partition counts {1, 2, 3, 7} including parts > m.
    #[test]
    fn packed_matmul_tail_shapes_bit_identical(
        m in prop::sample::select(vec![1usize, 2, 3, 4, 5, 7, 9, 13]),
        k in prop::sample::select(vec![1usize, 2, 31, 127, 128, 129, 255, 257]),
        n in prop::sample::select(vec![1usize, 7, 8, 9, 15, 17, 24, 25]),
        seed in 0u64..500,
    ) {
        let mut init = zo_tensor::Init::new(seed.wrapping_add(7));
        let pool = test_pool();
        for parts in [1usize, 2, 3, 7] {
            let a = init.normal_tensor(m, k, 1.0);
            let b = init.normal_tensor(k, n, 1.0);
            let mut want = init.normal_tensor(m, n, 0.5);
            let mut got = want.clone();
            zo_tensor::matmul::matmul_acc_serial(&a, &b, &mut want).unwrap();
            zo_tensor::matmul::matmul_acc_on(pool, parts, &a, &b, &mut got).unwrap();
            prop_assert_eq!(got.data(), want.data(),
                "matmul {}x{}x{} parts={}", m, k, n, parts);

            let at = init.normal_tensor(k, m, 1.0);
            let mut want = init.normal_tensor(m, n, 0.5);
            let mut got = want.clone();
            zo_tensor::matmul::matmul_at_b_acc_serial(&at, &b, &mut want).unwrap();
            zo_tensor::matmul::matmul_at_b_acc_on(pool, parts, &at, &b, &mut got).unwrap();
            prop_assert_eq!(got.data(), want.data(),
                "matmul_at_b {}x{}x{} parts={}", m, k, n, parts);

            let bt = init.normal_tensor(n, k, 1.0);
            let mut want = init.normal_tensor(m, n, 0.5);
            let mut got = want.clone();
            zo_tensor::matmul::matmul_a_bt_acc_serial(&a, &bt, &mut want).unwrap();
            zo_tensor::matmul::matmul_a_bt_acc_on(pool, parts, &a, &bt, &mut got).unwrap();
            prop_assert_eq!(got.data(), want.data(),
                "matmul_a_bt {}x{}x{} parts={}", m, k, n, parts);
        }
    }

    /// The packed kernel agrees with a naive f64 triple loop to within
    /// accumulated-rounding tolerance (the panel-wise f32 accumulation
    /// reorders sums but must not change the math).
    #[test]
    fn packed_matmul_close_to_naive(
        m in 1usize..10,
        k in prop::sample::select(vec![1usize, 5, 127, 128, 129, 200]),
        n in 1usize..12,
        seed in 0u64..500,
    ) {
        let mut init = zo_tensor::Init::new(seed.wrapping_add(41));
        let a = init.normal_tensor(m, k, 1.0);
        let b = init.normal_tensor(k, n, 1.0);
        let got = matmul(&a, &b).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for kk in 0..k {
                    acc += f64::from(a.data()[i * k + kk]) * f64::from(b.data()[kk * n + j]);
                }
                let x = f64::from(got.data()[i * n + j]);
                let tol = 1e-4 * (k as f64).sqrt().max(1.0) * acc.abs().max(1.0);
                prop_assert!((x - acc).abs() <= tol, "[{i},{j}] {x} vs naive {acc}");
            }
        }
    }

    /// The batched f32 -> f16 slice codec is bit-for-bit the scalar cast on
    /// arbitrary input bit patterns (NaNs, infinities, subnormals included),
    /// at lengths covering empty, sub-lane tails and multi-lane bodies.
    #[test]
    fn f16_narrow_slice_codec_matches_scalar(
        bits in prop::collection::vec(any::<u32>(), 0..70)
    ) {
        let src: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut dst = vec![F16::ZERO; src.len()];
        F16::from_f32_slice(&src, &mut dst);
        for (i, (&s, &d)) in src.iter().zip(&dst).enumerate() {
            prop_assert_eq!(d.to_bits(), F16::from_f32(s).to_bits(),
                "index {} input {:#010x}", i, s.to_bits());
        }
    }

    /// The batched f16 -> f32 slice codec is bit-for-bit the scalar widen
    /// on arbitrary f16 bit patterns (NaN payloads preserved, signaling
    /// bit included).
    #[test]
    fn f16_widen_slice_codec_matches_scalar(
        bits in prop::collection::vec(any::<u16>(), 0..70)
    ) {
        let src: Vec<F16> = bits.iter().map(|&b| F16::from_bits(b)).collect();
        let mut dst = vec![0.0f32; src.len()];
        F16::to_f32_slice(&src, &mut dst);
        for (i, (&s, &d)) in src.iter().zip(&dst).enumerate() {
            prop_assert_eq!(d.to_bits(), s.to_f32().to_bits(),
                "index {} input {:#06x}", i, s.to_bits());
        }
    }

    /// axpy with alpha = 0 is the identity; with src = 0 it is the identity.
    #[test]
    fn axpy_identities(v in prop::collection::vec(-10.0f32..10.0, 1..32)) {
        let mut d = v.clone();
        let zeros = vec![0.0; v.len()];
        ops::axpy(0.0, &zeros, &mut d).unwrap();
        prop_assert_eq!(&d, &v);
        ops::axpy(3.5, &zeros, &mut d).unwrap();
        prop_assert_eq!(&d, &v);
    }
}
