//! Error types for tensor operations.

use core::fmt;

/// Errors produced by shape-checked tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Left-hand operand shape (rows, cols).
        lhs: (usize, usize),
        /// Right-hand operand shape (rows, cols).
        rhs: (usize, usize),
    },
    /// A buffer length did not match the expected element count.
    LengthMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Expected number of elements.
        expected: usize,
        /// Actual number of elements.
        actual: usize,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index (row, col).
        index: (usize, usize),
        /// The tensor shape (rows, cols).
        shape: (usize, usize),
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::LengthMismatch {
                op,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "length mismatch in {op}: expected {expected}, got {actual}"
                )
            }
            TensorError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for shape {}x{}",
                index.0, index.1, shape.0, shape.1
            ),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "shape mismatch in matmul: lhs 2x3, rhs 4x5");
        let e = TensorError::LengthMismatch {
            op: "axpy",
            expected: 8,
            actual: 7,
        };
        assert_eq!(e.to_string(), "length mismatch in axpy: expected 8, got 7");
        let e = TensorError::IndexOutOfBounds {
            index: (9, 0),
            shape: (3, 3),
        };
        assert_eq!(e.to_string(), "index (9, 0) out of bounds for shape 3x3");
    }
}
