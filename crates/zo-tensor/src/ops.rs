//! Elementwise and reduction kernels over `f32` slices.
//!
//! These are the building blocks shared by the NN substrate (`zo-nn`) and
//! the optimizers (`zo-optim`). They operate on flat slices so that the
//! same kernels serve both `Tensor` data and raw parameter buffers.

use crate::error::TensorError;

/// Checks that two slices have equal length for operation `op`.
#[inline]
fn check_len(op: &'static str, a: usize, b: usize) -> Result<(), TensorError> {
    if a == b {
        Ok(())
    } else {
        Err(TensorError::LengthMismatch {
            op,
            expected: a,
            actual: b,
        })
    }
}

/// `dst += src`.
pub fn add_assign(dst: &mut [f32], src: &[f32]) -> Result<(), TensorError> {
    check_len("add_assign", dst.len(), src.len())?;
    for (d, s) in dst.iter_mut().zip(src) {
        *d += *s;
    }
    Ok(())
}

/// `dst -= src`.
pub fn sub_assign(dst: &mut [f32], src: &[f32]) -> Result<(), TensorError> {
    check_len("sub_assign", dst.len(), src.len())?;
    for (d, s) in dst.iter_mut().zip(src) {
        *d -= *s;
    }
    Ok(())
}

/// `dst *= src` elementwise.
pub fn mul_assign(dst: &mut [f32], src: &[f32]) -> Result<(), TensorError> {
    check_len("mul_assign", dst.len(), src.len())?;
    for (d, s) in dst.iter_mut().zip(src) {
        *d *= *s;
    }
    Ok(())
}

/// `dst *= alpha`.
pub fn scale(dst: &mut [f32], alpha: f32) {
    for d in dst.iter_mut() {
        *d *= alpha;
    }
}

/// `dst += alpha * src` (the BLAS `axpy`).
pub fn axpy(alpha: f32, src: &[f32], dst: &mut [f32]) -> Result<(), TensorError> {
    check_len("axpy", dst.len(), src.len())?;
    for (d, s) in dst.iter_mut().zip(src) {
        *d = s.mul_add(alpha, *d);
    }
    Ok(())
}

/// Dot product of two slices, accumulated in `f64` for stability.
pub fn dot(a: &[f32], b: &[f32]) -> Result<f64, TensorError> {
    check_len("dot", a.len(), b.len())?;
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (*x as f64) * (*y as f64))
        .sum())
}

/// Sum of all elements, accumulated in `f64`.
pub fn sum(a: &[f32]) -> f64 {
    a.iter().map(|x| *x as f64).sum()
}

/// L2 norm, accumulated in `f64`.
pub fn l2_norm(a: &[f32]) -> f64 {
    a.iter()
        .map(|x| (*x as f64) * (*x as f64))
        .sum::<f64>()
        .sqrt()
}

/// Maximum absolute value, or 0.0 for an empty slice.
pub fn max_abs(a: &[f32]) -> f32 {
    a.iter().fold(0.0f32, |m, x| m.max(x.abs()))
}

/// Returns `true` if any element is NaN or infinite.
///
/// Mixed-precision training uses this for the dynamic loss scaler's
/// overflow check on fp16 gradients.
pub fn has_non_finite(a: &[f32]) -> bool {
    a.iter().any(|x| !x.is_finite())
}

/// In-place numerically stable softmax over one row.
pub fn softmax_row(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().fold(f32::NEG_INFINITY, |m, x| m.max(*x));
    let mut denom = 0.0f64;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        denom += *v as f64;
    }
    let inv = (1.0 / denom) as f32;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// GELU activation (tanh approximation, as used by GPT-2/BERT).
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`] with respect to its input.
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = 0.044715 * x * x * x;
    let t = (C * (x + x3)).tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// ReLU activation.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of [`relu`] (subgradient 0 at the kink).
#[inline]
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_mul_scale() {
        let mut d = vec![1.0, 2.0, 3.0];
        add_assign(&mut d, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(d, vec![2.0, 3.0, 4.0]);
        sub_assign(&mut d, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
        mul_assign(&mut d, &[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(d, vec![2.0, 4.0, 6.0]);
        scale(&mut d, 0.5);
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
        assert!(add_assign(&mut d, &[1.0]).is_err());
    }

    #[test]
    fn axpy_and_dot() {
        let mut d = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut d).unwrap();
        assert_eq!(d, vec![7.0, 9.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), 11.0);
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn reductions() {
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(max_abs(&[-7.0, 3.0]), 7.0);
        assert_eq!(max_abs(&[]), 0.0);
        assert!(!has_non_finite(&[1.0, 2.0]));
        assert!(has_non_finite(&[1.0, f32::NAN]));
        assert!(has_non_finite(&[f32::INFINITY]));
    }

    #[test]
    fn softmax_properties() {
        let mut row = vec![1.0, 2.0, 3.0];
        softmax_row(&mut row);
        let total: f32 = row.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        assert!(row[2] > row[1] && row[1] > row[0]);
        // Stability under large inputs.
        let mut big = vec![1000.0, 1000.0];
        softmax_row(&mut big);
        assert!((big[0] - 0.5).abs() < 1e-6);
        // Empty row is a no-op.
        softmax_row(&mut []);
    }

    #[test]
    fn gelu_matches_reference_points() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // Large positive ~ identity, large negative ~ 0.
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-2,
                "gelu'({x}) = {} vs fd {}",
                gelu_grad(x),
                fd
            );
        }
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(2.0), 1.0);
    }
}
