//! Packed register-tiled GEMM micro-kernel (paper Sec. 5.1's
//! "hand-optimized" CPU compute floor, in portable stable Rust).
//!
//! All three matmul variants in [`mod@crate::matmul`] lower onto one
//! driver, `gemm_packed`: the `k` dimension is split into [`KC`]-deep
//! panels,
//! the operands for each panel are repacked into contiguous buffers in a
//! reusable thread-local scratch, and an [`MR`]×[`NR`] register-tiled
//! micro-kernel drives plain multiply–add chains over the packed data.
//! Packing is what turns the transposed variants' strided walks (the old
//! `a_bt` kernel dotted a *column* of row-major `B` per output element)
//! into the same contiguous, autovectorizable inner loop as the plain
//! variant — each variant differs only in its pack closures.
//!
//! # Why bit-identity survives register tiling
//!
//! The repo's load-bearing invariant is parallel ≡ serial, bit-identical
//! at any thread count. It survives this kernel because every output
//! element's floating-point op sequence is a function of the `k` loop
//! alone:
//!
//! * element `(i, j)` accumulates `acc = a[i,k]·b[k,j] + acc` for `k` in
//!   panel order, then adds one `acc` into `C` per panel — a fixed
//!   sequence determined entirely by `ka` and [`KC`];
//! * which MR×NR tile owns the element changes *which register* holds its
//!   accumulator, never the sequence: row tails run the same per-element
//!   chain through a narrower monomorphized kernel, and column tails are
//!   zero-padded in the packed buffer but only valid columns are written
//!   back;
//! * row partitioning moves tile boundaries but boundaries carry no state
//!   — so any `parts` and any `ZO_THREADS` produce identical bits.
//!
//! The multiply–add is deliberately written `a * b + acc` (not
//! `f32::mul_add`): on the default x86-64 target fused multiply-add is
//! not a native instruction and lowers to a per-element libm call, which
//! is what made the old kernels slow.

use core::cell::RefCell;
use core::ops::Range;

/// Depth of one packed `k` panel. Per-element accumulation order depends
/// on this constant (one `C += acc` per panel), so changing it changes
/// the trajectory fingerprint — it is part of the numerics, not just a
/// tuning knob.
pub const KC: usize = 128;

/// Rows per micro-tile (register rows).
pub const MR: usize = 4;

/// Columns per micro-tile. 8 f32 columns × 4 rows = 32 accumulators =
/// 8 of the 16 SSE2 xmm registers, leaving room for the `A` broadcast
/// and `B` loads; 16 columns would spill on the baseline target.
pub const NR: usize = 8;

/// Reusable per-thread packing scratch: `a` holds one MR×KC tile, `b`
/// one KC×n panel (padded to a multiple of NR columns). Reused across
/// calls on the same worker, so steady-state packing allocates nothing.
#[derive(Default)]
struct PackScratch {
    a: Vec<f32>,
    b: Vec<f32>,
}

thread_local! {
    static SCRATCH: RefCell<PackScratch> = RefCell::new(PackScratch::default());
}

/// The register-tiled inner kernel over one packed tile pair: `M` rows of
/// packed `A` (`ap[k*M + r]`) against NR columns of packed `B`
/// (`bp[k*NR + c]`), accumulating into `M`×`jw` elements of `cd` at
/// (`row0`, `col0`) with row stride `n`.
///
/// `M` is a const generic so row tails (M < MR) monomorphize into kernels
/// running the identical per-element arithmetic with fewer accumulator
/// rows. `bp` columns `>= jw` hold zeros and are never written back.
// The index-based loop shape below is load-bearing: the `0..M` /
// `0..NR` counted loops over const bounds are what LLVM fully unrolls
// and maps onto vector registers at baseline x86-64. The
// iterator-chain form clippy prefers (zip over `acc.iter_mut()`)
// measured ~7× slower at 512³ — it defeats the unroll.
#[allow(clippy::assign_op_pattern, clippy::needless_range_loop)]
#[inline(always)]
fn kernel_m<const M: usize>(
    ap: &[f32],
    bp: &[f32],
    cd: &mut [f32],
    row0: usize,
    col0: usize,
    n: usize,
    jw: usize,
) {
    let mut acc = [[0.0f32; NR]; M];
    // chunks_exact pairs (A column, B row) per k step with no bounds
    // checks; the fully unrolled M×NR body keeps every accumulator in a
    // register across the k loop.
    for (ak, bk) in ap.chunks_exact(M).zip(bp.chunks_exact(NR)) {
        for r in 0..M {
            let a = ak[r];
            for c in 0..NR {
                acc[r][c] = a * bk[c] + acc[r][c];
            }
        }
    }
    for r in 0..M {
        let start = (row0 + r) * n + col0;
        for (cv, av) in cd[start..start + jw].iter_mut().zip(&acc[r][..jw]) {
            *cv += *av;
        }
    }
}

/// Drives the packed micro-kernel over output rows `rows` of a `(·, n)`
/// product with inner dimension `ka`; `cd` holds exactly those rows.
///
/// The operand layouts live in the two pack closures:
///
/// * `pack_a(ap, row, mh, k0, kc)` writes the `mh`-row tile starting at
///   global output row `row`, panel `k0..k0+kc`, as `ap[k*mh + r]`;
/// * `pack_b(bp, k0, kc)` writes the full panel as NR-column blocks,
///   `bp[jb*kc*NR + k*NR + c]`, zero-padding the final partial block.
pub(crate) fn gemm_packed(
    rows: Range<usize>,
    ka: usize,
    n: usize,
    cd: &mut [f32],
    pack_a: impl Fn(&mut [f32], usize, usize, usize, usize),
    pack_b: impl Fn(&mut [f32], usize, usize),
) {
    if n == 0 || rows.is_empty() {
        return;
    }
    let n_blocks = n.div_ceil(NR);
    let local_m = rows.len();
    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let PackScratch { a: ap, b: bp } = &mut *scratch;
        ap.resize(KC * MR, 0.0);
        bp.resize(KC * n_blocks * NR, 0.0);
        for k0 in (0..ka).step_by(KC) {
            let kc = KC.min(ka - k0);
            pack_b(bp, k0, kc);
            for li0 in (0..local_m).step_by(MR) {
                let mh = MR.min(local_m - li0);
                pack_a(ap, rows.start + li0, mh, k0, kc);
                let apk = &ap[..kc * mh];
                for jb in 0..n_blocks {
                    let j0 = jb * NR;
                    let jw = NR.min(n - j0);
                    let bpk = &bp[jb * kc * NR..(jb + 1) * kc * NR];
                    match mh {
                        4 => kernel_m::<4>(apk, bpk, cd, li0, j0, n, jw),
                        3 => kernel_m::<3>(apk, bpk, cd, li0, j0, n, jw),
                        2 => kernel_m::<2>(apk, bpk, cd, li0, j0, n, jw),
                        _ => kernel_m::<1>(apk, bpk, cd, li0, j0, n, jw),
                    }
                }
            }
        }
    });
}

/// Packs an `mh`-row tile of row-major `A` `(m, ka)`: output rows are
/// `A` rows. Layout `ap[k*mh + r] = A[row+r, k0+k]`.
pub(crate) fn pack_a_rows(
    ad: &[f32],
    ka: usize,
    ap: &mut [f32],
    row: usize,
    mh: usize,
    k0: usize,
    kc: usize,
) {
    for r in 0..mh {
        let src = &ad[(row + r) * ka + k0..(row + r) * ka + k0 + kc];
        for (k, &v) in src.iter().enumerate() {
            ap[k * mh + r] = v;
        }
    }
}

/// Packs an `mh`-row tile of `Aᵀ` where `A` is row-major `(ka, m)`:
/// output rows are `A` *columns*, so each `k` step copies `mh`
/// contiguous elements of an `A` row.
pub(crate) fn pack_a_transposed(
    ad: &[f32],
    m: usize,
    ap: &mut [f32],
    row: usize,
    mh: usize,
    k0: usize,
    kc: usize,
) {
    for k in 0..kc {
        let src = &ad[(k0 + k) * m + row..(k0 + k) * m + row + mh];
        ap[k * mh..k * mh + mh].copy_from_slice(src);
    }
}

/// Packs a `kc`-deep panel of row-major `B` `(ka, n)` into NR-column
/// blocks. The final block's missing columns are zeroed (the scratch is
/// reused across calls, so stale values would otherwise leak in).
pub(crate) fn pack_b_rows(bd: &[f32], n: usize, bp: &mut [f32], k0: usize, kc: usize) {
    let n_blocks = n.div_ceil(NR);
    for jb in 0..n_blocks {
        let j0 = jb * NR;
        let jw = NR.min(n - j0);
        let dst = &mut bp[jb * kc * NR..(jb + 1) * kc * NR];
        if jw < NR {
            dst.fill(0.0);
        }
        for k in 0..kc {
            let src = &bd[(k0 + k) * n + j0..(k0 + k) * n + j0 + jw];
            dst[k * NR..k * NR + jw].copy_from_slice(src);
        }
    }
}

/// Packs a `kc`-deep panel of `Bᵀ` where `B` is row-major `(n, ka)` —
/// the layout the input-gradient kernel (`C += A · Bᵀ`) sees. Each
/// packed column is a contiguous run of a `B` row, so the micro-kernel's
/// inner loop becomes contiguous multiply–adds instead of the old
/// strided column dot.
pub(crate) fn pack_b_transposed(
    bd: &[f32],
    ka: usize,
    bp: &mut [f32],
    n: usize,
    k0: usize,
    kc: usize,
) {
    let n_blocks = n.div_ceil(NR);
    for jb in 0..n_blocks {
        let j0 = jb * NR;
        let jw = NR.min(n - j0);
        let dst = &mut bp[jb * kc * NR..(jb + 1) * kc * NR];
        if jw < NR {
            dst.fill(0.0);
        }
        for c in 0..jw {
            let src = &bd[(j0 + c) * ka + k0..(j0 + c) * ka + k0 + kc];
            for (k, &v) in src.iter().enumerate() {
                dst[k * NR + c] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The packed driver against a direct per-element reference that
    /// replays the documented sequence (panel-local accumulate, one
    /// `C +=` per panel) — the numerics contract everything else pins.
    #[test]
    fn packed_matches_panelwise_reference() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (5, 3, 9),
            (7, 300, 11), // k crosses a KC panel boundary
            (9, 513, 17),
        ] {
            let ad: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
            let bd: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
            let mut want = vec![0.5f32; m * n];
            for i in 0..m {
                for j in 0..n {
                    for k0 in (0..k).step_by(KC) {
                        let kc = KC.min(k - k0);
                        let mut acc = 0.0f32;
                        for kk in k0..k0 + kc {
                            acc += ad[i * k + kk] * bd[kk * n + j];
                        }
                        want[i * n + j] += acc;
                    }
                }
            }
            let mut got = vec![0.5f32; m * n];
            gemm_packed(
                0..m,
                k,
                n,
                &mut got,
                |ap, row, mh, k0, kc| pack_a_rows(&ad, k, ap, row, mh, k0, kc),
                |bp, k0, kc| pack_b_rows(&bd, n, bp, k0, kc),
            );
            assert_eq!(got, want, "m={m} k={k} n={n}");
        }
    }

    /// Scratch reuse across calls with shrinking `n` must not leak stale
    /// packed columns into the zero-padded tail block.
    #[test]
    fn scratch_reuse_does_not_leak_padding() {
        let k = 4;
        let ad = vec![1.0f32; 2 * k];
        let big_b = vec![9.0f32; k * 16];
        let mut c_big = vec![0.0f32; 2 * 16];
        gemm_packed(
            0..2,
            k,
            16,
            &mut c_big,
            |ap, row, mh, k0, kc| pack_a_rows(&ad, k, ap, row, mh, k0, kc),
            |bp, k0, kc| pack_b_rows(&big_b, 16, bp, k0, kc),
        );
        // Now a 3-column product on the same thread: columns 3..8 of the
        // scratch still hold 9.0 unless the pack zeroes them.
        let small_b = vec![2.0f32; k * 3];
        let mut c_small = vec![0.0f32; 2 * 3];
        gemm_packed(
            0..2,
            k,
            3,
            &mut c_small,
            |ap, row, mh, k0, kc| pack_a_rows(&ad, k, ap, row, mh, k0, kc),
            |bp, k0, kc| pack_b_rows(&small_b, 3, bp, k0, kc),
        );
        assert_eq!(c_small, vec![8.0f32; 6]);
    }
}
