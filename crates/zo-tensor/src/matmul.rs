//! Cache-blocked matrix multiplication kernels.
//!
//! Three variants cover everything a manual-backward NN needs:
//!
//! * `matmul`      — `C = A · B`          (forward)
//! * `matmul_at_b` — `C = Aᵀ · B`         (weight gradients)
//! * `matmul_a_bt` — `C = A · Bᵀ`         (input gradients)
//!
//! All kernels accumulate into `C` (caller zeroes it first if needed),
//! which lets gradient accumulation reuse the same entry points.
//!
//! All three variants lower onto the packed register-tiled micro-kernel
//! in [`crate::microkernel`]: operands are repacked per k-panel into a
//! thread-local scratch and an MR×NR register tile runs contiguous
//! multiply–adds. The variants differ only in their pack closures.
//!
//! # Parallelism and determinism
//!
//! The `_acc` entry points partition the **output rows** of `C` into
//! contiguous ranges and run one range per task on the shared
//! [`pool`]. Every output element is produced by exactly the
//! same sequence of floating-point operations regardless of how the rows
//! are partitioned — a row's accumulation order depends only on the inner
//! (`k`) loop and the fixed panel depth [`crate::microkernel::KC`], never on
//! which task (or which register tile) owns the row — so parallel results
//! are **bit-identical** to the serial kernels at any thread count. The
//! `*_serial` variants run the identical arithmetic inline and exist as
//! the reference for tests and benches; `*_on` variants take an explicit
//! pool and partition count (benches force 1/2/4/8-way scaling through
//! them).
//!
//! Small products are not worth a pool round-trip; below
//! [`MIN_PARALLEL_FLOPS`] the default entry points run serially inline.

use crate::error::TensorError;
use crate::microkernel::{
    gemm_packed, pack_a_rows, pack_a_transposed, pack_b_rows, pack_b_transposed,
};
use crate::pool::{self, Pool};
use crate::tensor::Tensor;

/// Products below this many flops (`2·m·k·n`) always run inline: pool
/// dispatch costs more than it saves.
///
/// Recalibrated for the packed micro-kernel (min-of-N wall clock over
/// square shapes, `kernel_bench` methodology): serial sustains
/// ≈ 16 GFLOP/s at 16³ rising to ≈ 27 GFLOP/s by 128³, and a 4-task
/// pool round-trip costs ≈ 3 µs (the pool-minus-serial gap at 16³,
/// where per-part kernel work is negligible). Each part re-packs its
/// own B panels, so parallel overhead also grows with `k·n`; requiring
/// the serial kernel time (≈ 65 µs at 96³) to be ≥ ~20× the fixed
/// round-trip keeps dispatch plus duplicated packing under ~10 % of the
/// work being split. The old threshold (2·64³) was tuned for the
/// ≈ 0.6 GFLOP/s `mul_add`-loop kernel; at ~40× the throughput the
/// break-even product is correspondingly larger.
pub const MIN_PARALLEL_FLOPS: usize = 2 * 96 * 96 * 96;

fn check_shapes(
    op: &'static str,
    op_out: &'static str,
    lhs: (usize, usize),
    rhs: (usize, usize),
    inner: (usize, usize),
    out_want: (usize, usize),
    out_got: (usize, usize),
) -> Result<(), TensorError> {
    if inner.0 != inner.1 {
        return Err(TensorError::ShapeMismatch { op, lhs, rhs });
    }
    if out_want != out_got {
        return Err(TensorError::ShapeMismatch {
            op: op_out,
            lhs: out_want,
            rhs: out_got,
        });
    }
    Ok(())
}

/// Decides the partition count for an auto-parallel kernel call: the
/// global pool's thread count clamped to `m` (a tall pool on a short
/// matrix must not produce empty row-ranges that still pay boxing and
/// dispatch), unless the product is too small to pay for dispatch at all
/// (then 1, meaning inline serial execution).
fn auto_parts(m: usize, k: usize, n: usize) -> usize {
    let threads = pool::global().threads();
    if threads <= 1
        || 2usize.saturating_mul(m).saturating_mul(k).saturating_mul(n) < MIN_PARALLEL_FLOPS
    {
        1
    } else {
        threads.min(m)
    }
}

/// Runs `kernel` once per contiguous row-range of `cd` (row width `n`),
/// on `pool` when more than one range results.
fn run_row_partitioned<'a>(
    pool: &Pool,
    parts: usize,
    m: usize,
    n: usize,
    cd: &'a mut [f32],
    kernel: impl Fn(core::ops::Range<usize>, &mut [f32]) + Sync + Send + 'a,
) {
    let ranges = pool::partition(m, parts);
    if ranges.len() <= 1 {
        kernel(0..m, cd);
        return;
    }
    let kernel = &kernel;
    let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(ranges.len());
    let mut rest = cd;
    for rows in ranges {
        let (head, tail) = rest.split_at_mut(rows.len() * n);
        tasks.push(Box::new(move || kernel(rows, head)));
        rest = tail;
    }
    pool.run(tasks);
}

// ---- C += A · B ----

/// The `matmul_acc` inner kernel over output rows `rows`; `cd` holds
/// exactly those rows. Row-major `A` tiles and row-major `B` panels are
/// packed into the thread-local scratch and fed to the register-tiled
/// micro-kernel.
fn matmul_rows(
    ad: &[f32],
    bd: &[f32],
    cd: &mut [f32],
    rows: core::ops::Range<usize>,
    ka: usize,
    n: usize,
) {
    gemm_packed(
        rows,
        ka,
        n,
        cd,
        |ap, row, mh, k0, kc| pack_a_rows(ad, ka, ap, row, mh, k0, kc),
        |bp, k0, kc| pack_b_rows(bd, n, bp, k0, kc),
    );
}

/// `c += a · b` where `a` is `(m, k)` and `b` is `(k, n)`, parallelized
/// over the global pool (bit-identical to [`matmul_acc_serial`]).
///
/// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ or
/// `c` is not `(m, n)`.
pub fn matmul_acc(a: &Tensor, b: &Tensor, c: &mut Tensor) -> Result<(), TensorError> {
    let (m, ka) = a.shape();
    let (_, n) = b.shape();
    matmul_acc_on(pool::global(), auto_parts(m, ka, n), a, b, c)
}

/// [`matmul_acc`] with the work always run inline on the calling thread.
pub fn matmul_acc_serial(a: &Tensor, b: &Tensor, c: &mut Tensor) -> Result<(), TensorError> {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    check_shapes(
        "matmul",
        "matmul(out)",
        a.shape(),
        b.shape(),
        (ka, kb),
        (m, n),
        c.shape(),
    )?;
    matmul_rows(a.data(), b.data(), c.data_mut(), 0..m, ka, n);
    Ok(())
}

/// [`matmul_acc`] on an explicit pool with an explicit partition count
/// (results are bit-identical for every `parts`).
pub fn matmul_acc_on(
    pool: &Pool,
    parts: usize,
    a: &Tensor,
    b: &Tensor,
    c: &mut Tensor,
) -> Result<(), TensorError> {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    check_shapes(
        "matmul",
        "matmul(out)",
        a.shape(),
        b.shape(),
        (ka, kb),
        (m, n),
        c.shape(),
    )?;
    let (ad, bd) = (a.data(), b.data());
    run_row_partitioned(pool, parts, m, n, c.data_mut(), |rows, cd| {
        matmul_rows(ad, bd, cd, rows, ka, n);
    });
    Ok(())
}

/// `C = A · B`, allocating the output.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut c = Tensor::zeros(a.rows(), b.cols());
    matmul_acc(a, b, &mut c)?;
    Ok(c)
}

// ---- C += Aᵀ · B ----

/// The `matmul_at_b_acc` inner kernel over output rows `rows` (columns of
/// `A`). `Aᵀ` tiles pack as contiguous copies of `A`'s rows; `B` packs as
/// in the plain variant.
fn matmul_at_b_rows(
    ad: &[f32],
    bd: &[f32],
    cd: &mut [f32],
    rows: core::ops::Range<usize>,
    ka: usize,
    m: usize,
    n: usize,
) {
    gemm_packed(
        rows,
        ka,
        n,
        cd,
        |ap, row, mh, k0, kc| pack_a_transposed(ad, m, ap, row, mh, k0, kc),
        |bp, k0, kc| pack_b_rows(bd, n, bp, k0, kc),
    );
}

/// `c += aᵀ · b` where `a` is `(k, m)` and `b` is `(k, n)`, parallelized
/// over the global pool (bit-identical to [`matmul_at_b_acc_serial`]).
///
/// This is the weight-gradient kernel: for a linear layer `y = x · W`,
/// `dW = xᵀ · dy`.
pub fn matmul_at_b_acc(a: &Tensor, b: &Tensor, c: &mut Tensor) -> Result<(), TensorError> {
    let (ka, m) = a.shape();
    let (_, n) = b.shape();
    matmul_at_b_acc_on(pool::global(), auto_parts(m, ka, n), a, b, c)
}

/// [`matmul_at_b_acc`] with the work always run inline.
pub fn matmul_at_b_acc_serial(a: &Tensor, b: &Tensor, c: &mut Tensor) -> Result<(), TensorError> {
    let (ka, m) = a.shape();
    let (kb, n) = b.shape();
    check_shapes(
        "matmul_at_b",
        "matmul_at_b(out)",
        a.shape(),
        b.shape(),
        (ka, kb),
        (m, n),
        c.shape(),
    )?;
    matmul_at_b_rows(a.data(), b.data(), c.data_mut(), 0..m, ka, m, n);
    Ok(())
}

/// [`matmul_at_b_acc`] on an explicit pool with an explicit partition
/// count (results are bit-identical for every `parts`).
pub fn matmul_at_b_acc_on(
    pool: &Pool,
    parts: usize,
    a: &Tensor,
    b: &Tensor,
    c: &mut Tensor,
) -> Result<(), TensorError> {
    let (ka, m) = a.shape();
    let (kb, n) = b.shape();
    check_shapes(
        "matmul_at_b",
        "matmul_at_b(out)",
        a.shape(),
        b.shape(),
        (ka, kb),
        (m, n),
        c.shape(),
    )?;
    let (ad, bd) = (a.data(), b.data());
    run_row_partitioned(pool, parts, m, n, c.data_mut(), |rows, cd| {
        matmul_at_b_rows(ad, bd, cd, rows, ka, m, n);
    });
    Ok(())
}

/// `C = Aᵀ · B`, allocating the output.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut c = Tensor::zeros(a.cols(), b.cols());
    matmul_at_b_acc(a, b, &mut c)?;
    Ok(c)
}

// ---- C += A · Bᵀ ----

/// The `matmul_a_bt_acc` inner kernel over output rows `rows`. Packing
/// `Bᵀ` turns the old strided column dot (one scalar of row-major `B`
/// per k step) into the same contiguous micro-kernel loop as the plain
/// variant.
fn matmul_a_bt_rows(
    ad: &[f32],
    bd: &[f32],
    cd: &mut [f32],
    rows: core::ops::Range<usize>,
    ka: usize,
    n: usize,
) {
    gemm_packed(
        rows,
        ka,
        n,
        cd,
        |ap, row, mh, k0, kc| pack_a_rows(ad, ka, ap, row, mh, k0, kc),
        |bp, k0, kc| pack_b_transposed(bd, ka, bp, n, k0, kc),
    );
}

/// `c += a · bᵀ` where `a` is `(m, k)` and `b` is `(n, k)`, parallelized
/// over the global pool (bit-identical to [`matmul_a_bt_acc_serial`]).
///
/// This is the input-gradient kernel: for `y = x · W`, `dx = dy · Wᵀ`.
pub fn matmul_a_bt_acc(a: &Tensor, b: &Tensor, c: &mut Tensor) -> Result<(), TensorError> {
    let (m, ka) = a.shape();
    let (n, _) = b.shape();
    matmul_a_bt_acc_on(pool::global(), auto_parts(m, ka, n), a, b, c)
}

/// [`matmul_a_bt_acc`] with the work always run inline.
pub fn matmul_a_bt_acc_serial(a: &Tensor, b: &Tensor, c: &mut Tensor) -> Result<(), TensorError> {
    let (m, ka) = a.shape();
    let (n, kb) = b.shape();
    check_shapes(
        "matmul_a_bt",
        "matmul_a_bt(out)",
        a.shape(),
        b.shape(),
        (ka, kb),
        (m, n),
        c.shape(),
    )?;
    matmul_a_bt_rows(a.data(), b.data(), c.data_mut(), 0..m, ka, n);
    Ok(())
}

/// [`matmul_a_bt_acc`] on an explicit pool with an explicit partition
/// count (results are bit-identical for every `parts`).
pub fn matmul_a_bt_acc_on(
    pool: &Pool,
    parts: usize,
    a: &Tensor,
    b: &Tensor,
    c: &mut Tensor,
) -> Result<(), TensorError> {
    let (m, ka) = a.shape();
    let (n, kb) = b.shape();
    check_shapes(
        "matmul_a_bt",
        "matmul_a_bt(out)",
        a.shape(),
        b.shape(),
        (ka, kb),
        (m, n),
        c.shape(),
    )?;
    let (ad, bd) = (a.data(), b.data());
    run_row_partitioned(pool, parts, m, n, c.data_mut(), |rows, cd| {
        matmul_a_bt_rows(ad, bd, cd, rows, ka, n);
    });
    Ok(())
}

/// `C = A · Bᵀ`, allocating the output.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut c = Tensor::zeros(a.rows(), b.rows());
    matmul_a_bt_acc(a, b, &mut c)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// A real multi-worker pool shared by the parallel-equivalence tests
    /// (spawned once; these tests must not depend on `ZO_THREADS`).
    fn test_pool() -> &'static std::sync::Arc<Pool> {
        static POOL: OnceLock<std::sync::Arc<Pool>> = OnceLock::new();
        POOL.get_or_init(|| Pool::new(4))
    }

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let (_, n) = b.shape();
        let mut c = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.get(i, p).unwrap() * b.get(p, j).unwrap();
                }
                c.set(i, j, s).unwrap();
            }
        }
        c
    }

    fn randomish(rows: usize, cols: usize, seed: u32) -> Tensor {
        // Deterministic pseudo-random fill without pulling in `rand` here.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut t = Tensor::zeros(rows, cols);
        for v in t.data_mut() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5;
        }
        t
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} != {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(
            c,
            Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matches_naive_on_odd_shapes() {
        // Shapes straddling the block boundary exercise the tail handling.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (64, 64, 64),
            (65, 63, 130),
            (100, 1, 9),
        ] {
            let a = randomish(m, k, (m * 31 + k) as u32);
            let b = randomish(k, n, (k * 17 + n) as u32);
            assert_close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-4);
        }
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = randomish(13, 7, 1);
        let b = randomish(13, 9, 2);
        let want = naive(&a.transposed(), &b);
        assert_close(&matmul_at_b(&a, &b).unwrap(), &want, 1e-4);

        let a2 = randomish(6, 11, 3);
        let b2 = randomish(8, 11, 4);
        let want2 = naive(&a2, &b2.transposed());
        assert_close(&matmul_a_bt(&a2, &b2).unwrap(), &want2, 1e-4);
    }

    #[test]
    fn parallel_bit_identical_to_serial_at_any_part_count() {
        let pool = test_pool();
        for &(m, k, n) in &[
            (1usize, 3usize, 2usize),
            (5, 9, 4),
            (65, 63, 30),
            (80, 17, 70),
        ] {
            let a = randomish(m, k, (m * 7 + k) as u32);
            let b = randomish(k, n, (k * 13 + n) as u32);
            let a_t = randomish(k, m, (m * 5 + 1) as u32);
            let b_t = randomish(n, k, (n * 3 + 2) as u32);
            let mut want = Tensor::full(m, n, 0.25);
            let mut want_atb = want.clone();
            let mut want_abt = want.clone();
            matmul_acc_serial(&a, &b, &mut want).unwrap();
            matmul_at_b_acc_serial(&a_t, &b, &mut want_atb).unwrap();
            matmul_a_bt_acc_serial(&a, &b_t, &mut want_abt).unwrap();
            for parts in [1usize, 2, 3, 7] {
                let mut got = Tensor::full(m, n, 0.25);
                matmul_acc_on(pool, parts, &a, &b, &mut got).unwrap();
                assert_eq!(
                    got.data(),
                    want.data(),
                    "matmul m={m} k={k} n={n} parts={parts}"
                );
                let mut got = Tensor::full(m, n, 0.25);
                matmul_at_b_acc_on(pool, parts, &a_t, &b, &mut got).unwrap();
                assert_eq!(got.data(), want_atb.data(), "at_b m={m} parts={parts}");
                let mut got = Tensor::full(m, n, 0.25);
                matmul_a_bt_acc_on(pool, parts, &a, &b_t, &mut got).unwrap();
                assert_eq!(got.data(), want_abt.data(), "a_bt m={m} parts={parts}");
            }
        }
    }

    #[test]
    fn zero_heavy_inputs_still_correct() {
        // The old kernels skipped zero elements of A with a per-element
        // branch; the dense kernels must produce the same products.
        let mut a = randomish(20, 30, 3);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let b = randomish(30, 10, 4);
        assert_close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-4);
        let b2 = randomish(20, 10, 5);
        let want_atb = naive(&a.transposed(), &b2);
        assert_close(&matmul_at_b(&a, &b2).unwrap(), &want_atb, 1e-4);
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(4, 5);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_at_b(&a, &b).is_err());
        assert!(matmul_a_bt(&a, &b).is_err());
        let mut bad_out = Tensor::zeros(1, 1);
        let b_ok = Tensor::zeros(3, 5);
        assert!(matmul_acc(&a, &b_ok, &mut bad_out).is_err());
        assert!(matmul_acc_serial(&a, &b_ok, &mut bad_out).is_err());
        assert!(matmul_acc_on(test_pool(), 2, &a, &b_ok, &mut bad_out).is_err());
    }

    #[test]
    fn accumulating_entry_points_accumulate() {
        let a = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let b = Tensor::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]).unwrap();
        let mut c = Tensor::full(2, 2, 1.0);
        matmul_acc(&a, &b, &mut c).unwrap();
        assert_eq!(c, Tensor::from_rows(&[&[3.0, 1.0], &[1.0, 3.0]]).unwrap());
    }
}
