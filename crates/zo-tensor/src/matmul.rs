//! Cache-blocked matrix multiplication kernels.
//!
//! Three variants cover everything a manual-backward NN needs:
//!
//! * `matmul`      — `C = A · B`          (forward)
//! * `matmul_at_b` — `C = Aᵀ · B`         (weight gradients)
//! * `matmul_a_bt` — `C = A · Bᵀ`         (input gradients)
//!
//! All kernels accumulate into `C` (caller zeroes it first if needed),
//! which lets gradient accumulation reuse the same entry points.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Block edge for the cache-blocked loops.
const BLOCK: usize = 64;

/// `c += a · b` where `a` is `(m, k)` and `b` is `(k, n)`.
///
/// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ or
/// `c` is not `(m, n)`.
pub fn matmul_acc(a: &Tensor, b: &Tensor, c: &mut Tensor) -> Result<(), TensorError> {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if c.shape() != (m, n) {
        return Err(TensorError::ShapeMismatch {
            op: "matmul(out)",
            lhs: (m, n),
            rhs: c.shape(),
        });
    }
    let ad = a.data();
    let bd = b.data();
    let cd = c.data_mut();
    // i-k-j loop order with blocking: the inner j loop is a contiguous
    // axpy over a row of B and a row of C, which autovectorizes well.
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..ka).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(ka);
            for i in i0..i1 {
                let crow = &mut cd[i * n..(i + 1) * n];
                for k in k0..k1 {
                    let aik = ad[i * ka + k];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &bd[k * n..(k + 1) * n];
                    for (cv, bv) in crow.iter_mut().zip(brow) {
                        *cv = bv.mul_add(aik, *cv);
                    }
                }
            }
        }
    }
    Ok(())
}

/// `C = A · B`, allocating the output.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut c = Tensor::zeros(a.rows(), b.cols());
    matmul_acc(a, b, &mut c)?;
    Ok(c)
}

/// `c += aᵀ · b` where `a` is `(k, m)` and `b` is `(k, n)`.
///
/// This is the weight-gradient kernel: for a linear layer `y = x · W`,
/// `dW = xᵀ · dy`.
pub fn matmul_at_b_acc(a: &Tensor, b: &Tensor, c: &mut Tensor) -> Result<(), TensorError> {
    let (ka, m) = a.shape();
    let (kb, n) = b.shape();
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if c.shape() != (m, n) {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b(out)",
            lhs: (m, n),
            rhs: c.shape(),
        });
    }
    let ad = a.data();
    let bd = b.data();
    let cd = c.data_mut();
    for k in 0..ka {
        let arow = &ad[k * m..(k + 1) * m];
        let brow = &bd[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let crow = &mut cd[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv = bv.mul_add(aki, *cv);
            }
        }
    }
    Ok(())
}

/// `C = Aᵀ · B`, allocating the output.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut c = Tensor::zeros(a.cols(), b.cols());
    matmul_at_b_acc(a, b, &mut c)?;
    Ok(c)
}

/// `c += a · bᵀ` where `a` is `(m, k)` and `b` is `(n, k)`.
///
/// This is the input-gradient kernel: for `y = x · W`, `dx = dy · Wᵀ`.
pub fn matmul_a_bt_acc(a: &Tensor, b: &Tensor, c: &mut Tensor) -> Result<(), TensorError> {
    let (m, ka) = a.shape();
    let (n, kb) = b.shape();
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if c.shape() != (m, n) {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt(out)",
            lhs: (m, n),
            rhs: c.shape(),
        });
    }
    let ad = a.data();
    let bd = b.data();
    let cd = c.data_mut();
    for i in 0..m {
        let arow = &ad[i * ka..(i + 1) * ka];
        let crow = &mut cd[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &bd[j * kb..(j + 1) * kb];
            let mut acc = 0.0f32;
            for (av, bv) in arow.iter().zip(brow) {
                acc = av.mul_add(*bv, acc);
            }
            *cv += acc;
        }
    }
    Ok(())
}

/// `C = A · Bᵀ`, allocating the output.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let mut c = Tensor::zeros(a.rows(), b.rows());
    matmul_a_bt_acc(a, b, &mut c)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let (_, n) = b.shape();
        let mut c = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.get(i, p).unwrap() * b.get(p, j).unwrap();
                }
                c.set(i, j, s).unwrap();
            }
        }
        c
    }

    fn randomish(rows: usize, cols: usize, seed: u32) -> Tensor {
        // Deterministic pseudo-random fill without pulling in `rand` here.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut t = Tensor::zeros(rows, cols);
        for v in t.data_mut() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5;
        }
        t
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} != {y}");
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(
            c,
            Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matches_naive_on_odd_shapes() {
        // Shapes straddling the block boundary exercise the tail handling.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (64, 64, 64),
            (65, 63, 130),
            (100, 1, 9),
        ] {
            let a = randomish(m, k, (m * 31 + k) as u32);
            let b = randomish(k, n, (k * 17 + n) as u32);
            assert_close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-4);
        }
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = randomish(13, 7, 1);
        let b = randomish(13, 9, 2);
        let want = naive(&a.transposed(), &b);
        assert_close(&matmul_at_b(&a, &b).unwrap(), &want, 1e-4);

        let a2 = randomish(6, 11, 3);
        let b2 = randomish(8, 11, 4);
        let want2 = naive(&a2, &b2.transposed());
        assert_close(&matmul_a_bt(&a2, &b2).unwrap(), &want2, 1e-4);
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(4, 5);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_at_b(&a, &b).is_err());
        assert!(matmul_a_bt(&a, &b).is_err());
        let mut bad_out = Tensor::zeros(1, 1);
        let b_ok = Tensor::zeros(3, 5);
        assert!(matmul_acc(&a, &b_ok, &mut bad_out).is_err());
    }

    #[test]
    fn accumulating_entry_points_accumulate() {
        let a = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let b = Tensor::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]).unwrap();
        let mut c = Tensor::full(2, 2, 1.0);
        matmul_acc(&a, &b, &mut c).unwrap();
        assert_eq!(c, Tensor::from_rows(&[&[3.0, 1.0], &[1.0, 3.0]]).unwrap());
    }
}
