//! Persistent shared worker pool for CPU-side compute kernels.
//!
//! The paper's throughput argument (Sec. 5.1) is that offloaded training
//! is gated by sustained CPU compute bandwidth: the optimizer step and the
//! fwd/bwd matmuls must run as close to hardware peak as the memory system
//! allows. Spawning OS threads per kernel invocation (as
//! `std::thread::scope` does) costs tens of microseconds each — far more
//! than a small tile of Adam math — so this module keeps one process-wide
//! pool of workers alive for the lifetime of the process and hands them
//! closures instead.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** The pool never decides *what* to compute, only
//!    *where*. Callers partition their work into contiguous ranges and the
//!    pool runs one closure per range; there is no work stealing and no
//!    dynamic splitting, so the same partition always performs the same
//!    arithmetic in the same order — results are bit-identical at any
//!    worker count, including zero (inline execution).
//! 2. **Reuse.** Workers are spawned once ([`Pool::new`] / [`global`])
//!    and live forever; [`Pool::run`] only moves boxed
//!    closures through a queue. [`Pool::stats`] exposes `tasks` and
//!    `busy_ns` counters so observability layers (and tests) can verify
//!    the pool is actually doing the work.
//! 3. **Borrowed data.** `run` executes closures that borrow the caller's
//!    stack (disjoint `&mut` sub-slices of a gradient buffer, say) and
//!    does not return until every closure has finished, panics included —
//!    the same contract as `std::thread::scope`, without the spawns.
//!
//! The global pool's size comes from the `ZO_THREADS` environment
//! variable, falling back to [`std::thread::available_parallelism`].
//! `ZO_THREADS=1` makes every `run` call execute inline on the caller's
//! thread (no workers are spawned at all), which is also the fallback
//! whenever a pool is asked to run a single task.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// A closure with its lifetime erased; see the safety argument in
/// [`Pool::run`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Cumulative activity counters for a pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Closures executed (both on workers and inline).
    pub tasks: u64,
    /// Total nanoseconds spent executing closures, summed over workers.
    pub busy_ns: u64,
}

/// Tracks completion of one `run` batch, including panic propagation.
struct Batch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    fn new(count: usize) -> Arc<Batch> {
        Arc::new(Batch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    fn finish_one(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(p) = panic {
            self.panic.lock().expect("pool batch panic slot").replace(p);
        }
        let mut remaining = self.remaining.lock().expect("pool batch counter");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("pool batch counter");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("pool batch wait");
        }
    }
}

struct Queue {
    jobs: Mutex<VecDeque<(Job, Arc<Batch>)>>,
    available: Condvar,
}

/// A persistent worker pool; see the module docs for the contract.
pub struct Pool {
    queue: Arc<Queue>,
    threads: usize,
    spawned: AtomicUsize,
    tasks: AtomicU64,
    busy_ns: AtomicU64,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .field("spawned", &self.spawned.load(Ordering::Relaxed))
            .finish()
    }
}

/// Hard cap on pool size: beyond this the kernels are memory-bound anyway.
const MAX_THREADS: usize = 64;

/// The pool size the environment asks for: `ZO_THREADS` if set and valid,
/// otherwise [`std::thread::available_parallelism`], clamped to
/// `1..=64`.
pub fn env_threads() -> usize {
    let parsed = std::env::var("ZO_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0);
    let n = parsed.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    n.clamp(1, MAX_THREADS)
}

static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();

/// The process-wide shared pool, created on first use with
/// [`env_threads`] workers.
///
/// Every parallel kernel in the workspace (matmul, CPU-Adam, embedding
/// backward, loss) submits to this one pool, so oversubscription cannot
/// occur no matter how many engines or optimizer threads are active.
pub fn global() -> &'static Arc<Pool> {
    GLOBAL.get_or_init(|| Pool::new(env_threads()))
}

impl Pool {
    /// Creates a pool with `threads` workers (spawned immediately).
    ///
    /// A 1-thread pool spawns no workers: `run` executes inline. Sizes
    /// are clamped to `1..=64`.
    pub fn new(threads: usize) -> Arc<Pool> {
        let threads = threads.clamp(1, MAX_THREADS);
        let pool = Arc::new(Pool {
            queue: Arc::new(Queue {
                jobs: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            }),
            threads,
            spawned: AtomicUsize::new(0),
            tasks: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        });
        if threads > 1 {
            for i in 0..threads {
                let worker = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("zo-pool-{i}"))
                    .spawn(move || worker.work_loop())
                    .expect("spawn pool worker");
                pool.spawned.fetch_add(1, Ordering::Relaxed);
            }
        }
        pool
    }

    /// Worker count the pool was sized for (callers use this as the
    /// default partition count).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// OS threads this pool has ever spawned. Constant after
    /// construction — the probe tests use to prove kernel calls do not
    /// create threads.
    pub fn threads_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.tasks.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }

    fn work_loop(&self) {
        loop {
            let (job, batch) = {
                let mut jobs = self.queue.jobs.lock().expect("pool queue");
                loop {
                    if let Some(entry) = jobs.pop_front() {
                        break entry;
                    }
                    jobs = self.queue.available.wait(jobs).expect("pool queue wait");
                }
            };
            self.execute(job, Some(&batch));
        }
    }

    fn execute(&self, job: Job, batch: Option<&Batch>) {
        let start = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.tasks.fetch_add(1, Ordering::Relaxed);
        match batch {
            Some(b) => b.finish_one(outcome.err()),
            None => {
                if let Err(p) = outcome {
                    std::panic::resume_unwind(p);
                }
            }
        }
    }

    /// Runs every closure in `tasks`, blocking until all have finished.
    ///
    /// Closures may borrow from the caller's scope (`'scope` need not be
    /// `'static`): `run` does not return until every closure has executed
    /// to completion or panicked, so no borrow outlives the call — the
    /// same guarantee `std::thread::scope` provides. If any closure
    /// panicked, the panic is resumed on the caller's thread after the
    /// whole batch has drained (borrows stay valid for stragglers).
    ///
    /// On a 1-thread pool, or for a single task, the closures execute
    /// inline on the calling thread, in order. Closures submitted to
    /// workers execute in submission order (one FIFO queue, no stealing),
    /// though concurrently with each other; callers must hand out disjoint
    /// mutable state.
    pub fn run<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        if self.threads <= 1 || tasks.len() == 1 {
            for task in tasks {
                // Counted like worker execution so `stats()` reflects all
                // pool-submitted work regardless of placement.
                self.execute(unsafe { erase_lifetime(task) }, None);
            }
            return;
        }
        let batch = Batch::new(tasks.len());
        {
            let mut jobs = self.queue.jobs.lock().expect("pool queue");
            for task in tasks {
                // SAFETY: the borrow checker cannot see that `run` joins
                // the batch before returning. We erase the `'scope`
                // lifetime to move the closure into the queue, and the
                // `batch.wait()` below blocks until every closure has
                // finished running (finish_one fires even on panic, via
                // catch_unwind in `execute`), so no borrow carried by the
                // closure is used after `'scope` ends.
                jobs.push_back((unsafe { erase_lifetime(task) }, Arc::clone(&batch)));
            }
            self.queue.available.notify_all();
        }
        batch.wait();
        let panic = batch.panic.lock().expect("pool batch panic slot").take();
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }
    }
}

/// Erases a closure's borrow lifetime so it can sit in the worker queue.
///
/// # Safety
///
/// The caller must not return control to safe code that could invalidate
/// the closure's borrows before the closure has finished executing.
/// [`Pool::run`] upholds this by joining its batch before returning.
unsafe fn erase_lifetime<'scope>(task: Box<dyn FnOnce() + Send + 'scope>) -> Job {
    std::mem::transmute(task)
}

/// Splits `n` items into at most `parts` contiguous ranges of
/// near-equal size (the deterministic partitioning every parallel kernel
/// in this workspace uses).
///
/// The split depends only on `(n, parts)` — never on worker count or
/// scheduling — and concatenating the ranges in order yields `0..n`
/// exactly.
pub fn partition(n: usize, parts: usize) -> Vec<core::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let chunk = n.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly() {
        for &(n, parts) in &[(10usize, 3usize), (7, 7), (7, 9), (1, 4), (0, 3), (64, 4)] {
            let ranges = partition(n, parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "gap in partition({n},{parts})");
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, n);
            assert!(ranges.len() <= parts.max(1));
        }
    }

    #[test]
    fn run_executes_borrowing_closures() {
        let pool = Pool::new(3);
        let mut data = vec![0u64; 10];
        {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = data
                .chunks_mut(3)
                .enumerate()
                .map(|(i, chunk)| {
                    let f: Box<dyn FnOnce() + Send> = Box::new(move || {
                        for v in chunk {
                            *v = i as u64 + 1;
                        }
                    });
                    f
                })
                .collect();
            pool.run(tasks);
        }
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4]);
        assert_eq!(pool.stats().tasks, 4);
        assert_eq!(pool.threads_spawned(), 3);
    }

    #[test]
    fn single_thread_pool_runs_inline_without_workers() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads_spawned(), 0);
        let hits = AtomicU64::new(0);
        pool.run(vec![
            Box::new(|| {
                hits.fetch_add(1, Ordering::Relaxed);
            }),
            Box::new(|| {
                hits.fetch_add(1, Ordering::Relaxed);
            }),
        ]);
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert_eq!(pool.stats().tasks, 2);
    }

    #[test]
    fn counters_accumulate_across_batches() {
        let pool = Pool::new(2);
        for _ in 0..5 {
            pool.run(vec![
                Box::new(|| {
                    std::hint::black_box(1 + 1);
                }),
                Box::new(|| {
                    std::hint::black_box(2 + 2);
                }),
            ]);
        }
        let stats = pool.stats();
        assert_eq!(stats.tasks, 10);
        assert_eq!(pool.threads_spawned(), 2, "workers spawned once, reused");
    }

    #[test]
    fn panics_propagate_after_batch_drains() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| {}),
                Box::new(|| panic!("worker task failed")),
                Box::new(|| {}),
            ]);
        }));
        assert!(result.is_err(), "panic must reach the submitting thread");
        // The pool survives a panicked batch.
        let ok = AtomicU64::new(0);
        pool.run(vec![
            Box::new(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            }),
            Box::new(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            }),
        ]);
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn global_pool_is_shared_and_env_sized() {
        let a = global();
        let b = global();
        assert!(Arc::ptr_eq(a, b));
        assert!(a.threads() >= 1);
        assert!(env_threads() >= 1);
    }

    #[test]
    fn concurrent_runs_from_multiple_threads() {
        // Engine + async DPU submit from different OS threads; batches
        // must not interfere.
        let pool = Pool::new(4);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let pool = &pool;
                scope.spawn(move || {
                    let mut acc = [0u64; 8];
                    for round in 0..50 {
                        let tasks: Vec<Box<dyn FnOnce() + Send>> = acc
                            .chunks_mut(2)
                            .map(|c| {
                                let f: Box<dyn FnOnce() + Send> = Box::new(move || {
                                    for v in c {
                                        *v += 1;
                                    }
                                });
                                f
                            })
                            .collect();
                        pool.run(tasks);
                        assert!(acc.iter().all(|&v| v == round + 1), "thread {t}");
                    }
                });
            }
        });
    }
}
