//! Tensor substrate for the ZeRO-Offload reproduction.
//!
//! This crate provides the numeric foundation the rest of the workspace
//! builds on:
//!
//! * [`F16`] — IEEE 754 binary16 implemented from scratch, the storage type
//!   of GPU-resident parameters and of the gradients streamed to CPU.
//! * [`Tensor`] — a dense row-major `f32` matrix used by the real-execution
//!   NN substrate.
//! * [`ops`] — elementwise/reduction kernels shared with the optimizers.
//! * [`mod@matmul`] — cache-blocked GEMM kernels (plain and transposed
//!   forms), parallelized over the shared worker pool with bit-identical
//!   results at any thread count.
//! * [`mod@pool`] — the persistent process-wide worker pool every parallel
//!   kernel in the workspace submits to (sized by `ZO_THREADS`).
//! * [`Init`] — deterministic, seeded parameter initialization.
//!
//! Nothing in this crate knows about devices or offloading; it is pure math.

#![warn(missing_docs)]

mod error;
mod f16;
mod init;
pub mod matmul;
pub mod microkernel;
pub mod ops;
pub mod pool;
mod tensor;

pub use error::TensorError;
pub use f16::{cast_f16_to_f32, cast_f32_to_f16, F16};
pub use init::Init;
pub use matmul::{matmul, matmul_a_bt, matmul_at_b};
pub use pool::{Pool, PoolStats};
pub use tensor::Tensor;
