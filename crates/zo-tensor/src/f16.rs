//! IEEE 754 binary16 ("half precision") implemented from scratch.
//!
//! ZeRO-Offload's offload strategy is defined in terms of fp16 model states
//! (parameters and gradients) versus fp32 optimizer states, so the library
//! needs a real 16-bit storage type: GPU-resident parameters and the
//! gradients streamed over the (simulated) PCIe link are stored as [`F16`],
//! while master parameters, momentum and variance stay `f32`.
//!
//! Conversions implement round-to-nearest-even, gradual underflow to
//! subnormals, and NaN/infinity propagation, matching the semantics of
//! hardware `float2half` that the paper's tiled copy-back relies on.

use core::cmp::Ordering;
use core::fmt;

/// A 16-bit IEEE 754 binary16 floating point number.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
/// Arithmetic is performed by widening to `f32`, which is exact for every
/// representable `F16` value.
///
/// # Examples
///
/// ```
/// use zo_tensor::F16;
///
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// assert_eq!(F16::from_f32(65_520.0), F16::INFINITY); // overflow rounds up
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct F16(pub u16);

const MAN_BITS: u32 = 10;
const EXP_BIAS: i32 = 15;
const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value, -65504.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2^-24.
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon, 2^-10.
    pub const EPSILON: F16 = F16(0x1400);

    /// Creates an `F16` from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `F16` with round-to-nearest-even.
    ///
    /// Values above the finite range become infinities; tiny values flush
    /// gradually through the subnormal range to (signed) zero.
    #[inline]
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN: preserve NaN payload top bits, force quiet.
            return if man == 0 {
                F16(sign | EXP_MASK)
            } else {
                F16(sign | EXP_MASK | 0x0200 | ((man >> 13) as u16 & MAN_MASK))
            };
        }

        // Unbiased exponent of the f32 value.
        let unbiased = exp - 127;
        let half_exp = unbiased + EXP_BIAS;

        if half_exp >= 0x1F {
            // Overflow to infinity.
            return F16(sign | EXP_MASK);
        }

        if half_exp <= 0 {
            // Subnormal or zero. The implicit leading 1 must be made
            // explicit, then the mantissa is shifted right by the exponent
            // deficit with round-to-nearest-even.
            if half_exp < -10 {
                // Too small even for the largest shift: signed zero.
                return F16(sign);
            }
            let man = man | 0x0080_0000; // Make the leading 1 explicit.
            let shift = (14 - half_exp) as u32; // In [14, 24].
            let halfway = 1u32 << (shift - 1);
            let mut out = (man >> shift) as u16;
            let rem = man & ((1 << shift) - 1);
            match rem.cmp(&halfway) {
                Ordering::Greater => out += 1,
                Ordering::Equal => out += out & 1, // Ties to even.
                Ordering::Less => {}
            }
            return F16(sign | out);
        }

        // Normal range: round the 23-bit mantissa to 10 bits.
        let mut out = ((half_exp as u16) << MAN_BITS) | ((man >> 13) as u16);
        let rem = man & 0x1FFF;
        match rem.cmp(&0x1000) {
            Ordering::Greater => out += 1, // May carry into exponent: correct.
            Ordering::Equal => out += out & 1,
            Ordering::Less => {}
        }
        F16(sign | out)
    }

    /// Converts to `f32` exactly (every `F16` is representable in `f32`).
    #[inline]
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & SIGN_MASK) as u32) << 16;
        let exp = ((self.0 & EXP_MASK) >> MAN_BITS) as i32;
        let man = (self.0 & MAN_MASK) as u32;

        if exp == 0x1F {
            // Infinity or NaN.
            return f32::from_bits(sign | 0x7F80_0000 | (man << 13));
        }
        if exp == 0 {
            if man == 0 {
                return f32::from_bits(sign);
            }
            // Subnormal: value = man * 2^-24. With the highest set bit of
            // `man` at position p, the value is 2^(p-24) * 1.xxx, i.e. a
            // biased f32 exponent of 103 + p = 113 - shift.
            let shift = man.leading_zeros() - (31 - MAN_BITS);
            // Shift the leading 1 up to bit 11, drop it, and keep the
            // 11 remaining fraction bits; f32 needs them at bits 12..23.
            let frac = (man << (shift + 1)) & 0x07FF;
            let exp = (113 - shift as i32) as u32;
            return f32::from_bits(sign | (exp << 23) | (frac << 12));
        }
        let exp = (exp - EXP_BIAS + 127) as u32;
        f32::from_bits(sign | (exp << 23) | (man << 13))
    }

    /// Narrows a slice of `f32` into `F16`, bit-for-bit identical to
    /// [`F16::from_f32`] on every input (round-to-nearest-even, gradual
    /// underflow, quiet-NaN with preserved top payload bits).
    ///
    /// The scalar path branches four ways per element; this one runs a
    /// branchless bit-level conversion over fixed-width
    /// `CODEC_LANES`-element chunks with no bounds checks, so the
    /// autovectorizer can map the lanes onto vector registers. This is
    /// the hot edge of the simulated PCIe wire (D2H gradients narrow,
    /// updated parameters narrow back) — see [`cast_f32_to_f16`].
    pub fn from_f32_slice(src: &[f32], dst: &mut [F16]) {
        assert_eq!(src.len(), dst.len(), "cast length mismatch");
        let mut s = src.chunks_exact(CODEC_LANES);
        let mut d = dst.chunks_exact_mut(CODEC_LANES);
        for (sb, db) in (&mut s).zip(&mut d) {
            for i in 0..CODEC_LANES {
                db[i] = F16(narrow_bits(sb[i].to_bits()));
            }
        }
        for (sv, dv) in s.remainder().iter().zip(d.into_remainder()) {
            *dv = F16(narrow_bits(sv.to_bits()));
        }
    }

    /// Widens a slice of `F16` into `f32`, bit-for-bit identical to
    /// [`F16::to_f32`] on every input (exact widening; NaN payloads —
    /// including the signaling bit — are preserved, which is why the
    /// conversion is pure integer arithmetic: routing a NaN through an
    /// x86 float multiply would quietly set its quiet bit).
    pub fn to_f32_slice(src: &[F16], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "cast length mismatch");
        let mut s = src.chunks_exact(CODEC_LANES);
        let mut d = dst.chunks_exact_mut(CODEC_LANES);
        for (sb, db) in (&mut s).zip(&mut d) {
            // Fixed-size arrays (not slices) let the vectorizer treat the
            // whole chunk as one register-width unit.
            let lanes: [F16; CODEC_LANES] = sb.try_into().unwrap();
            let mut out = [0.0f32; CODEC_LANES];
            for i in 0..CODEC_LANES {
                out[i] = f32::from_bits(widen_bits(lanes[i].0));
            }
            db.copy_from_slice(&out);
        }
        for (sv, dv) in s.remainder().iter().zip(d.into_remainder()) {
            *dv = f32::from_bits(widen_bits(sv.0));
        }
    }

    /// Converts an `f64` by first narrowing to `f32`.
    #[inline]
    pub fn from_f64(value: f64) -> F16 {
        F16::from_f32(value as f32)
    }

    /// Widens to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Returns `true` if this value is NaN.
    #[inline]
    pub const fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// Returns `true` if this value is positive or negative infinity.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// Returns `true` if this value is neither infinite nor NaN.
    #[inline]
    pub const fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Returns `true` if the value is subnormal (nonzero with zero exponent).
    #[inline]
    pub const fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// Returns `true` if the sign bit is set (including -0.0 and NaNs).
    #[inline]
    pub const fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// Returns the absolute value.
    #[inline]
    pub const fn abs(self) -> F16 {
        F16(self.0 & !SIGN_MASK)
    }

    /// Returns the negation.
    #[inline]
    pub const fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

/// Chunk width of the slice codec's unrolled inner loops.
pub const CODEC_LANES: usize = 8;

/// Branchless `f32` → `f16` bit conversion, the slice-codec inner lane.
///
/// The magic-constant construction (after the FP16 library's
/// `fp16_ieee_from_fp32_value`): scaling by 2^112 then 2^-110 pushes the
/// value's rounding point to where binary16 truncates, so the hardware's
/// round-to-nearest-even does the rounding — including subnormal ties —
/// in two multiplies and an add. Exponent re-biasing falls out of adding
/// `exp_bits + mantissa_bits` (the carry is load-bearing: a mantissa that
/// rounds up past 2^10 must bump the exponent). The NaN arm mirrors the
/// scalar path exactly: quiet bit forced, top ten payload bits kept.
#[inline(always)]
fn narrow_bits(xb: u32) -> u16 {
    let sign = xb & 0x8000_0000;
    let abs_bits = xb & 0x7FFF_FFFF;
    let scale_to_inf = f32::from_bits(0x7780_0000); // 2^112
    let scale_to_zero = f32::from_bits(0x0880_0000); // 2^-110
    let base = (f32::from_bits(abs_bits) * scale_to_inf) * scale_to_zero;
    let shl1_w = abs_bits << 1;
    let bias = (shl1_w & 0xFF00_0000).max(0x7100_0000);
    let base = f32::from_bits((bias >> 1) + 0x0780_0000) + base;
    let bits = base.to_bits();
    let exp_bits = (bits >> 13) & 0x7C00;
    let mantissa_bits = bits & 0x0FFF;
    let nonsign = exp_bits + mantissa_bits;
    let r = if abs_bits > 0x7F80_0000 {
        0x7E00 | ((abs_bits >> 13) & MAN_MASK as u32)
    } else {
        nonsign
    };
    ((sign >> 16) | r) as u16
}

/// Branchless `f16` → `f32` bit conversion, the slice-codec inner lane.
///
/// One multiply covers every finite value exactly: placing the f16
/// exponent-mantissa field at the bottom of the f32 exponent
/// (`em << 13`) yields `2^(e-127)·(1+m/1024)` for normals and the f32
/// subnormal `man · 2^-136` for f16 subnormals; scaling by 2^112 lands
/// both on the exact f16 value (a power-of-two scale of a subnormal
/// into the normal range never rounds). Inf and NaN take the integer
/// re-bias path instead — routing a NaN through the multiply would
/// quietly set its quiet bit, and the scalar reference preserves NaN
/// payloads (signaling bit included).
#[inline(always)]
fn widen_bits(h: u16) -> u32 {
    let h = h as u32;
    let sign = (h & 0x8000) << 16;
    let em = h & 0x7FFF;
    let shifted = em << 13;
    let scale = f32::from_bits(0x7780_0000); // 2^112
    let finite = (f32::from_bits(shifted) * scale).to_bits();
    // Inf/NaN lanes: `shifted` has f32 exponent 31, so the (exact)
    // multiply re-biased it to 143 with the mantissa untouched — adding
    // another 112 in the exponent field lands on 255 with the payload
    // (signaling bit included) intact. A masked add is cheaper than a
    // lane select on SSE2.
    let fixup = if em >= 0x7C00 { 112u32 << 23 } else { 0 };
    sign | finite.wrapping_add(fixup)
}

impl From<f32> for F16 {
    #[inline]
    fn from(v: f32) -> F16 {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    #[inline]
    fn from(v: F16) -> f32 {
        v.to_f32()
    }
}

impl PartialOrd for F16 {
    #[inline]
    fn partial_cmp(&self, other: &F16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl core::ops::Add for F16 {
    type Output = F16;
    #[inline]
    fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl core::ops::Sub for F16 {
    type Output = F16;
    #[inline]
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl core::ops::Mul for F16 {
    type Output = F16;
    #[inline]
    fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl core::ops::Div for F16 {
    type Output = F16;
    #[inline]
    fn div(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl core::ops::Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}f16", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

/// Casts a slice of `f32` into `F16` with round-to-nearest-even.
///
/// This is the `float2half` edge of the paper's data-flow graph (Fig. 2):
/// it is what the CPU-side optimizer runs before the tiled copy of updated
/// parameters back to the GPU. Delegates to the batched
/// [`F16::from_f32_slice`] codec, which is bit-identical to calling
/// [`F16::from_f32`] per element.
pub fn cast_f32_to_f16(src: &[f32], dst: &mut [F16]) {
    F16::from_f32_slice(src, dst);
}

/// Widens a slice of `F16` into `f32` exactly, via the batched
/// [`F16::to_f32_slice`] codec (bit-identical to per-element
/// [`F16::to_f32`]).
pub fn cast_f16_to_f32(src: &[F16], dst: &mut [f32]) {
    F16::to_f32_slice(src, dst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_roundtrip() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
    }

    #[test]
    fn simple_values() {
        for v in [0.5f32, 1.0, 1.5, 2.0, -3.25, 100.0, 1024.0, 0.099975586] {
            let h = F16::from_f32(v);
            assert_eq!(h.to_f32(), v, "value {v} should be exact in f16");
        }
    }

    #[test]
    fn rounding_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1.0009765625 (the
        // next representable value); ties-to-even keeps 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway), F16::ONE);
        // Slightly above the halfway point rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
        // 1 + 3*2^-11 is halfway between ulp 1 and ulp 2; even is ulp 2.
        let halfway2 = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(
            F16::from_f32(halfway2).to_f32(),
            1.0 + 2.0 * 2.0f32.powi(-10)
        );
    }

    #[test]
    fn overflow_and_underflow() {
        assert_eq!(F16::from_f32(65504.0), F16::MAX);
        // 65520 is the rounding boundary; it rounds to infinity.
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
        assert_eq!(F16::from_f32(65519.9), F16::MAX);
        assert_eq!(F16::from_f32(-65520.0), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(1e30), F16::INFINITY);
        // Below half the smallest subnormal: flush to zero, keeping sign.
        assert_eq!(F16::from_f32(2.0f32.powi(-26)), F16::ZERO);
        assert_eq!(F16::from_f32(-2.0f32.powi(-26)), F16::NEG_ZERO);
        // Exactly halfway between 0 and the smallest subnormal → even (0).
        assert_eq!(F16::from_f32(2.0f32.powi(-25)), F16::ZERO);
    }

    #[test]
    fn subnormals() {
        let sub = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(sub), F16::MIN_SUBNORMAL);
        assert_eq!(F16::MIN_SUBNORMAL.to_f32(), sub);
        assert!(F16::MIN_SUBNORMAL.is_subnormal());
        // The largest subnormal: (2^10 - 1) * 2^-24.
        let big_sub = 1023.0 * 2.0f32.powi(-24);
        let h = F16::from_f32(big_sub);
        assert_eq!(h.to_f32(), big_sub);
        assert!(h.is_subnormal());
        // One ulp up is the smallest normal.
        assert_eq!(F16(h.0 + 1), F16::MIN_POSITIVE);
    }

    #[test]
    fn nan_propagation() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.to_f32().is_nan());
        assert!((F16::ONE / F16::ZERO).is_infinite());
        assert!((F16::ZERO / F16::ZERO).is_nan());
    }

    #[test]
    fn signed_zero() {
        assert_eq!(F16::from_f32(-0.0), F16::NEG_ZERO);
        assert!(F16::NEG_ZERO.is_sign_negative());
        assert_eq!(F16::NEG_ZERO.to_f32().to_bits(), (-0.0f32).to_bits());
        // IEEE: -0.0 == 0.0 numerically.
        assert_eq!(F16::NEG_ZERO.to_f32(), 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b / a).to_f32(), 1.5);
        assert_eq!((-a).to_f32(), -1.5);
        assert_eq!(a.abs(), a);
        assert_eq!((-a).abs(), a);
    }

    #[test]
    fn exhaustive_roundtrip_f16_f32_f16() {
        // Every finite f16 must survive the f32 round trip bit-exactly.
        for bits in 0..=u16::MAX {
            let h = F16(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.0, h.0, "bits {bits:#06x} did not round trip");
        }
    }

    #[test]
    fn widen_slice_codec_exhaustively_matches_scalar() {
        // All 65536 f16 bit patterns — every normal, subnormal, zero, inf,
        // and NaN payload (quiet and signaling) must widen to exactly the
        // bits the scalar reference produces. This is what caught the
        // float-multiply widening tricks: an x86 float op quietly sets a
        // signaling NaN's quiet bit, the integer path must not.
        let src: Vec<F16> = (0..=u16::MAX).map(F16).collect();
        let mut got = vec![0.0f32; src.len()];
        F16::to_f32_slice(&src, &mut got);
        for (h, g) in src.iter().zip(&got) {
            assert_eq!(
                g.to_bits(),
                h.to_f32().to_bits(),
                "widen mismatch at {:#06x}",
                h.0
            );
        }
    }

    #[test]
    fn narrow_slice_codec_matches_scalar_on_hard_cases() {
        // Boundary patterns for the magic-constant narrowing: rounding
        // ties, overflow threshold, subnormal range, NaN payloads,
        // signed zeros, plus both extremes. (Arbitrary bit patterns are
        // covered by the proptests; full 2^32 equivalence was verified
        // once out-of-band.)
        let mut cases: Vec<u32> = vec![
            0x0000_0000, // +0
            0x8000_0000, // -0
            0x0000_0001, // min f32 subnormal
            0x7F7F_FFFF, // f32::MAX
            0x7F80_0000, // +inf
            0xFF80_0000, // -inf
            0x7F80_0001, // signaling NaN, tiny payload
            0x7FC0_0000, // canonical quiet NaN
            0xFFFF_FFFF, // quiet NaN, full payload, negative
            0x7FA5_A5A5, // signaling NaN with payload
        ];
        for v in [
            1.0f32,
            -1.0,
            65504.0,
            65519.9,
            65520.0, // rounds to inf
            1e30,
            2.0f32.powi(-14),
            2.0f32.powi(-24),
            2.0f32.powi(-25), // halfway to zero: ties-to-even
            2.0f32.powi(-26),
            1.0 + 2.0f32.powi(-11), // tie at 1.0
            1.0 + 3.0 * 2.0f32.powi(-11),
            1023.0 * 2.0f32.powi(-24), // largest subnormal
            f32::MIN_POSITIVE,
            1e-40, // f32 subnormal input
        ] {
            cases.push(v.to_bits());
            cases.push((-v).to_bits());
        }
        let src: Vec<f32> = cases.iter().map(|&b| f32::from_bits(b)).collect();
        let mut got = vec![F16::ZERO; src.len()];
        F16::from_f32_slice(&src, &mut got);
        for (s, g) in src.iter().zip(&got) {
            assert_eq!(
                g.0,
                F16::from_f32(*s).0,
                "narrow mismatch at {:#010x}",
                s.to_bits()
            );
        }
    }

    #[test]
    #[ignore = "exhaustive 2^32 sweep, ~minutes in release; run on demand"]
    fn narrow_slice_codec_exhaustively_matches_scalar() {
        const CHUNK: usize = 1 << 16;
        let mut src = vec![0.0f32; CHUNK];
        let mut got = vec![F16::ZERO; CHUNK];
        for hi in 0..=u16::MAX as u32 {
            for (i, s) in src.iter_mut().enumerate() {
                *s = f32::from_bits((hi << 16) | i as u32);
            }
            F16::from_f32_slice(&src, &mut got);
            for (s, g) in src.iter().zip(&got) {
                assert_eq!(
                    g.0,
                    F16::from_f32(*s).0,
                    "narrow mismatch at {:#010x}",
                    s.to_bits()
                );
            }
        }
    }

    #[test]
    fn slice_codec_handles_tails_and_empty() {
        // Lengths around the CODEC_LANES boundary exercise the
        // chunks_exact remainder path.
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17] {
            let src: Vec<f32> = (0..n).map(|i| i as f32 * 0.3 - 1.0).collect();
            let mut h = vec![F16::ZERO; n];
            cast_f32_to_f16(&src, &mut h);
            for (s, g) in src.iter().zip(&h) {
                assert_eq!(g.0, F16::from_f32(*s).0);
            }
            let mut back = vec![0.0f32; n];
            cast_f16_to_f32(&h, &mut back);
            for (s, g) in h.iter().zip(&back) {
                assert_eq!(g.to_bits(), s.to_f32().to_bits());
            }
        }
    }

    #[test]
    fn slice_casts() {
        let src = [0.0f32, 1.0, -2.5, 65504.0, 1e-8];
        let mut h = [F16::ZERO; 5];
        cast_f32_to_f16(&src, &mut h);
        let mut back = [0.0f32; 5];
        cast_f16_to_f32(&h, &mut back);
        assert_eq!(back[0], 0.0);
        assert_eq!(back[1], 1.0);
        assert_eq!(back[2], -2.5);
        assert_eq!(back[3], 65504.0);
        // 1e-8 underflows to zero in f16.
        assert_eq!(back[4], 0.0);
    }
}
