//! A minimal row-major 2-D `f32` tensor.
//!
//! The real-execution training path of the library (used for the
//! convergence experiments, Figs. 12–13 of the paper) only needs dense 2-D
//! math: batched activations are `(batch*seq, features)` matrices and every
//! layer's forward/backward is expressible with matmuls and elementwise
//! kernels from [`crate::ops`].

use crate::error::TensorError;
use crate::f16::F16;

/// A dense, row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use zo_tensor::Tensor;
///
/// let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// assert_eq!(t.get(1, 0), Some(3.0));
/// assert_eq!(t.shape(), (2, 2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Tensor {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Tensor, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                op: "from_vec",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Creates a tensor from a slice of equal-length rows.
    ///
    /// Returns [`TensorError::LengthMismatch`] if the rows differ in length.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Tensor, TensorError> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(TensorError::LengthMismatch {
                    op: "from_rows",
                    expected: c,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Tensor {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Returns the shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the flat row-major data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the flat row-major data slice mutably.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at `(row, col)`, or `None` if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets the element at `(row, col)`.
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) -> Result<(), TensorError> {
        if row < self.rows && col < self.cols {
            self.data[row * self.cols + col] = value;
            Ok(())
        } else {
            Err(TensorError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            })
        }
    }

    /// Returns row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns row `row` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns the transpose as a new tensor.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Fills the tensor with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshapes in place without moving data.
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element count differs.
    pub fn reshape(&mut self, rows: usize, cols: usize) -> Result<(), TensorError> {
        if rows * cols != self.data.len() {
            return Err(TensorError::LengthMismatch {
                op: "reshape",
                expected: self.data.len(),
                actual: rows * cols,
            });
        }
        self.rows = rows;
        self.cols = cols;
        Ok(())
    }

    /// Rounds every element through fp16 and back.
    ///
    /// This models storing a tensor in half precision (the paper keeps fp16
    /// parameters on GPU): the values that come back are exactly the values
    /// an fp16 buffer would hold.
    pub fn quantize_f16(&mut self) {
        for v in &mut self.data {
            *v = F16::from_f32(*v).to_f32();
        }
    }

    /// Returns a copy of the given row range as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    pub fn slice_rows(&self, range: core::ops::Range<usize>) -> Tensor {
        assert!(
            range.end <= self.rows,
            "row range {range:?} exceeds {}",
            self.rows
        );
        let data = self.data[range.start * self.cols..range.end * self.cols].to_vec();
        Tensor {
            rows: range.len(),
            cols: self.cols,
            data,
        }
    }

    /// Returns a copy of the given column range as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&self, range: core::ops::Range<usize>) -> Tensor {
        assert!(
            range.end <= self.cols,
            "column range {range:?} exceeds {}",
            self.cols
        );
        let mut out = Tensor::zeros(self.rows, range.len());
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[range.clone()]);
        }
        out
    }

    /// Stacks tensors vertically (all must share the column count).
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a column-count conflict
    /// and an empty `0x0` tensor for an empty input.
    pub fn concat_rows(parts: &[&Tensor]) -> Result<Tensor, TensorError> {
        let Some(first) = parts.first() else {
            return Ok(Tensor::zeros(0, 0));
        };
        let cols = first.cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            if p.cols != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_rows",
                    lhs: (rows, cols),
                    rhs: p.shape(),
                });
            }
            data.extend_from_slice(&p.data);
            rows += p.rows;
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Returns the Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|v| (*v as f64) * (*v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(2, 3);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        t.set(1, 2, 5.0).unwrap();
        assert_eq!(t.get(1, 2), Some(5.0));
        assert_eq!(t.get(2, 0), None);
        assert!(t.set(0, 3, 1.0).is_err());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Tensor::from_vec(2, 2, vec![1.0; 5]).is_err());
    }

    #[test]
    fn from_rows_validates_raggedness() {
        let ok = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(ok.row(1), &[3.0, 4.0]);
        let bad: &[&[f32]] = &[&[1.0, 2.0], &[3.0]];
        assert!(Tensor::from_rows(bad).is_err());
    }

    #[test]
    fn transpose() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let tt = t.transposed();
        assert_eq!(tt.shape(), (3, 2));
        assert_eq!(tt.get(0, 1), Some(4.0));
        assert_eq!(tt.get(2, 0), Some(3.0));
        assert_eq!(tt.transposed(), t);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(2, 3, (0..6).map(|i| i as f32).collect()).unwrap();
        t.reshape(3, 2).unwrap();
        assert_eq!(t.get(2, 1), Some(5.0));
        assert!(t.reshape(4, 2).is_err());
    }

    #[test]
    fn quantize_f16_rounds() {
        let mut t = Tensor::from_vec(1, 2, vec![1.0, 1.0 + 2.0f32.powi(-12)]).unwrap();
        t.quantize_f16();
        // The second value is below half an fp16 ulp above 1.0: rounds to 1.
        assert_eq!(t.data(), &[1.0, 1.0]);
    }

    #[test]
    fn frobenius_norm() {
        let t = Tensor::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn slicing_and_concat() {
        let t = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32).collect()).unwrap();
        let mid = t.slice_rows(1..3);
        assert_eq!(mid.shape(), (2, 3));
        assert_eq!(mid.row(0), &[3.0, 4.0, 5.0]);
        let right = t.slice_cols(1..3);
        assert_eq!(right.shape(), (4, 2));
        assert_eq!(right.row(2), &[7.0, 8.0]);
        // Slices re-concatenate to the original.
        let top = t.slice_rows(0..1);
        let rest = t.slice_rows(1..4);
        assert_eq!(Tensor::concat_rows(&[&top, &rest]).unwrap(), t);
        // Mismatched columns rejected; empty input is the empty tensor.
        let narrow = Tensor::zeros(1, 2);
        assert!(Tensor::concat_rows(&[&top, &narrow]).is_err());
        assert_eq!(Tensor::concat_rows(&[]).unwrap().shape(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn slice_rows_bounds_checked() {
        Tensor::zeros(2, 2).slice_rows(1..3);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut t = Tensor::zeros(2, 2);
        t.row_mut(1).copy_from_slice(&[7.0, 8.0]);
        assert_eq!(t.get(1, 0), Some(7.0));
        assert_eq!(t.get(1, 1), Some(8.0));
    }
}
