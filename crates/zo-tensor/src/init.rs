//! Deterministic parameter initialization.
//!
//! Convergence experiments compare *variants of the same training run*
//! (baseline vs. offload vs. offload+DPU), so initialization must be exactly
//! reproducible from a seed regardless of which engine consumes it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// A seeded source of initial parameter values.
///
/// # Examples
///
/// ```
/// use zo_tensor::Init;
///
/// let mut a = Init::new(42);
/// let mut b = Init::new(42);
/// assert_eq!(a.normal_tensor(2, 3, 0.02).data(), b.normal_tensor(2, 3, 0.02).data());
/// ```
pub struct Init {
    rng: StdRng,
}

impl Init {
    /// Creates an initializer from a seed.
    pub fn new(seed: u64) -> Init {
        Init {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one standard-normal sample via Box–Muller.
    pub fn standard_normal(&mut self) -> f32 {
        // Box–Muller on two uniforms in (0, 1].
        let u1: f64 = 1.0 - self.rng.random::<f64>();
        let u2: f64 = self.rng.random::<f64>();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// Fills a slice with `N(0, std^2)` samples.
    pub fn normal(&mut self, dst: &mut [f32], std: f32) {
        for v in dst {
            *v = self.standard_normal() * std;
        }
    }

    /// Returns a `(rows, cols)` tensor of `N(0, std^2)` samples.
    pub fn normal_tensor(&mut self, rows: usize, cols: usize, std: f32) -> Tensor {
        let mut t = Tensor::zeros(rows, cols);
        self.normal(t.data_mut(), std);
        t
    }

    /// Returns a tensor with Xavier/Glorot scaling `std = sqrt(2/(in+out))`.
    pub fn xavier(&mut self, rows: usize, cols: usize) -> Tensor {
        let std = (2.0 / (rows + cols) as f32).sqrt();
        self.normal_tensor(rows, cols, std)
    }

    /// Draws a uniform value in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.rng.random::<f32>() * (hi - lo)
    }

    /// Draws a uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.random_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Init::new(7);
        let mut b = Init::new(7);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
        let mut c = Init::new(8);
        assert_ne!(Init::new(7).standard_normal(), c.standard_normal());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut init = Init::new(123);
        let mut buf = vec![0.0f32; 20_000];
        init.normal(&mut buf, 2.0);
        let mean = buf.iter().map(|v| *v as f64).sum::<f64>() / buf.len() as f64;
        let var = buf.iter().map(|v| (*v as f64 - mean).powi(2)).sum::<f64>() / buf.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn xavier_scales_with_fan() {
        let mut init = Init::new(5);
        let t = init.xavier(100, 100);
        let var = t.data().iter().map(|v| (*v as f64).powi(2)).sum::<f64>() / t.len() as f64;
        // Expected variance 2/200 = 0.01.
        assert!((var - 0.01).abs() < 0.005, "var {var}");
    }

    #[test]
    fn uniform_and_index_bounds() {
        let mut init = Init::new(9);
        for _ in 0..1000 {
            let v = init.uniform(-1.0, 3.0);
            assert!((-1.0..3.0).contains(&v));
            let i = init.index(17);
            assert!(i < 17);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_zero_panics() {
        Init::new(1).index(0);
    }
}
