//! Step-timeline observability for the ZeRO-Offload engines.
//!
//! A [`Tracer`] records three kinds of facts while training runs:
//!
//! * **spans** — named wall-clock intervals on a named track (`"gpu"`,
//!   `"pcie"`, `"optimizer"`, `"rank0"`, …), opened with [`Tracer::span`]
//!   and closed when the guard drops;
//! * **counters** — monotonically accumulating quantities keyed by
//!   `(track, name)`, e.g. bytes shipped over PCIe, frames emitted, steps
//!   applied ([`Tracer::add`]);
//! * **gauges** — high-water marks, e.g. resident buffer bytes
//!   ([`Tracer::gauge_max`]).
//!
//! [`Tracer::finish_step`] closes a step boundary, snapshotting the phase
//! times and counter deltas observed since the previous boundary into a
//! [`StepMetrics`] row — the per-step aggregate export. The full event
//! log exports as Chrome trace format JSON
//! ([`Tracer::chrome_trace_json`]), loadable in `chrome://tracing` or
//! Perfetto; [`chrome_trace_json_from`] renders any plain
//! [`TraceEvent`] list the same way, so simulated timelines
//! (`zo-hetsim`) and real runs produce identical artifacts.
//!
//! The crate is dependency-free and thread-safe: a tracer clone is a
//! cheap `Arc` handle, and a **disabled** tracer ([`Tracer::disabled`])
//! records nothing at the cost of one branch per call site. Engines that
//! must stay `Copy`-configurable reference tracers through the process
//! registry: [`install`] pins a tracer and returns an index,
//! [`lookup`] resolves it anywhere in the process.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Canonical counter and span names shared by the resilience layer.
///
/// The fault-injection subsystem (`zo-fault`) and every engine that hosts
/// it emit retries and injected faults under these names, so tests and
/// dashboards can key on them without stringly-typed drift.
pub mod names {
    /// Counter: faults injected (transient failures and fatal trips).
    pub const FAULT_INJECTED: &str = "fault.injected";
    /// Counter: NaN/Inf gradient buckets injected.
    pub const FAULT_GRAD_NAN: &str = "fault.grad_nan";
    /// Counter: streamed-offload windows that degraded to the post-hoc
    /// transfer path after a mid-backward transfer fault.
    pub const FAULT_STREAM_FALLBACK: &str = "fault.stream_fallback";
    /// Counter: retry attempts performed after transient faults.
    pub const RETRY_ATTEMPTS: &str = "retry.attempts";
    /// Counter: cumulative deterministic backoff, microseconds.
    pub const RETRY_BACKOFF_US: &str = "retry.backoff_us";
    /// Span: one backoff interval between retry attempts.
    pub const RETRY_BACKOFF_SPAN: &str = "retry_backoff";
    /// Counter: optimizer steps skipped because of fp16 overflow.
    pub const OPTIM_OVERFLOW: &str = "optim.overflow";
    /// Span: one stage-3 layer-sliced parameter all-gather.
    pub const PARAM_ALLGATHER: &str = "param.allgather";
    /// Span: one stage-3 release of a gathered parameter layer.
    pub const PARAM_RELEASE: &str = "param.release";
    /// Counter: fp16 parameter bytes received by stage-3 gathers.
    pub const PARAM_TRAFFIC_BYTES: &str = "param_traffic_bytes";
    /// Gauge prefix: per-rank peak fp16 parameter residency, bytes. The
    /// full gauge name carries a `.rank{r}` suffix.
    pub const PARAM_HWM_BYTES: &str = "param_hwm_bytes";
    /// Span: one framed optimizer-state partition read from a memory tier.
    pub const TIER_READ: &str = "tier.read";
    /// Span: one framed optimizer-state partition write to a memory tier.
    pub const TIER_WRITE: &str = "tier.write";
    /// Span: the Adam update of one tile streamed through DRAM scratch.
    pub const TIER_UPDATE: &str = "tier.tile_update";
    /// Counter: framed payload bytes moved to/from a memory tier.
    pub const TIER_TRAFFIC_BYTES: &str = "tier_traffic_bytes";
    /// Gauge: peak DRAM scratch bytes held by the tiered optimizer.
    pub const TIER_HWM_BYTES: &str = "tier_hwm_bytes";
}

/// One completed interval on a track (microseconds since the epoch).
///
/// This is the common currency between real runs and the `zo-hetsim`
/// simulator: both reduce to a list of `TraceEvent`s and render through
/// [`chrome_trace_json_from`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Execution lane the interval belongs to (rendered as a thread row).
    pub track: String,
    /// What ran.
    pub name: String,
    /// Start, µs from the trace epoch.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
}

impl TraceEvent {
    /// End of the interval, µs from the trace epoch.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }

    /// Whether two intervals overlap in wall-clock time.
    pub fn overlaps(&self, other: &TraceEvent) -> bool {
        self.start_us < other.end_us() && other.start_us < self.end_us()
    }
}

/// A counter's cumulative value at a moment in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Track the counter lives on.
    pub track: String,
    /// Counter name.
    pub name: String,
    /// Sample time, µs from the trace epoch.
    pub ts_us: u64,
    /// Cumulative value at `ts_us`.
    pub total: u64,
}

/// Aggregate metrics for one training step.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StepMetrics {
    /// Step ordinal (0-based, assigned at each [`Tracer::finish_step`]).
    pub step: u64,
    /// Wall-clock µs spent per phase (span name) within the step.
    pub phase_us: Vec<(String, u64)>,
    /// Counter deltas within the step, summed over tracks, by name.
    pub counters: Vec<(String, u64)>,
    /// Total wall-clock µs from the previous boundary to this one.
    pub wall_us: u64,
}

impl StepMetrics {
    /// The delta of counter `name` during this step (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The µs spent in phase `name` during this step (0 if absent).
    pub fn phase(&self, name: &str) -> u64 {
        self.phase_us
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }
}

#[derive(Default)]
struct State {
    spans: Vec<TraceEvent>,
    counter_samples: Vec<CounterSample>,
    totals: BTreeMap<(String, String), u64>,
    gauges: BTreeMap<String, f64>,
    steps: Vec<StepMetrics>,
    /// Phase-time accumulation since the last step boundary.
    step_phase_us: BTreeMap<String, u64>,
    /// Counter totals at the last step boundary.
    step_base: BTreeMap<(String, String), u64>,
    step_start_us: u64,
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// A thread-safe event recorder (cheap to clone; clones share storage).
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// A recording tracer with its epoch at the call instant.
    pub fn new() -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// A tracer that records nothing (every call is a cheap no-op).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether this tracer records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// µs elapsed since the trace epoch (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Opens a span on `track`; it records when the guard drops.
    ///
    /// The guard owns a tracer handle (a cheap `Arc` clone), so it does
    /// not borrow `self` — callers may keep mutating the surrounding
    /// state while the span is open.
    pub fn span(&self, track: &str, name: &str) -> SpanGuard {
        match &self.inner {
            Some(_) => SpanGuard {
                tracer: self.clone(),
                track: track.to_string(),
                name: name.to_string(),
                start_us: self.now_us(),
                armed: true,
            },
            None => SpanGuard {
                tracer: Tracer::disabled(),
                track: String::new(),
                name: String::new(),
                start_us: 0,
                armed: false,
            },
        }
    }

    /// Records a completed interval directly.
    pub fn record_span(&self, track: &str, name: &str, start_us: u64, dur_us: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("tracer state lock");
        *st.step_phase_us.entry(name.to_string()).or_insert(0) += dur_us;
        st.spans.push(TraceEvent {
            track: track.to_string(),
            name: name.to_string(),
            start_us,
            dur_us,
        });
    }

    /// Adds `delta` to the counter `(track, name)` and samples it.
    pub fn add(&self, track: &str, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let ts_us = self.now_us();
        let mut st = inner.state.lock().expect("tracer state lock");
        let key = (track.to_string(), name.to_string());
        let total = st.totals.entry(key).or_insert(0);
        *total += delta;
        let total = *total;
        st.counter_samples.push(CounterSample {
            track: track.to_string(),
            name: name.to_string(),
            ts_us,
            total,
        });
    }

    /// Raises the high-water gauge `name` to at least `value`.
    pub fn gauge_max(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("tracer state lock");
        let g = st
            .gauges
            .entry(name.to_string())
            .or_insert(f64::NEG_INFINITY);
        if value > *g {
            *g = value;
        }
    }

    /// Closes a step boundary: phase times and counter deltas since the
    /// previous boundary become one [`StepMetrics`] row.
    pub fn finish_step(&self) {
        let Some(inner) = &self.inner else { return };
        let now = self.now_us();
        let mut st = inner.state.lock().expect("tracer state lock");
        let step = st.steps.len() as u64;
        let phase_us: Vec<(String, u64)> =
            std::mem::take(&mut st.step_phase_us).into_iter().collect();
        // Per-name counter deltas, summed over tracks.
        let mut by_name: BTreeMap<String, u64> = BTreeMap::new();
        for ((_track, name), total) in &st.totals {
            let base = st
                .step_base
                .get(&(_track.clone(), name.clone()))
                .copied()
                .unwrap_or(0);
            *by_name.entry(name.clone()).or_insert(0) += total - base;
        }
        st.step_base = st.totals.clone();
        let wall_us = now - st.step_start_us;
        st.step_start_us = now;
        st.steps.push(StepMetrics {
            step,
            phase_us,
            counters: by_name.into_iter().collect(),
            wall_us,
        });
    }

    // ---- queries ----

    /// Cumulative value of counter `name` on `track`.
    pub fn counter_on(&self, track: &str, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let st = inner.state.lock().expect("tracer state lock");
        st.totals
            .get(&(track.to_string(), name.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Cumulative value of counter `name`, summed over all tracks.
    pub fn counter_total(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let st = inner.state.lock().expect("tracer state lock");
        st.totals
            .iter()
            .filter(|((_, n), _)| n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Tracks that have recorded the counter `name`, in sorted order.
    pub fn tracks_with_counter(&self, name: &str) -> Vec<String> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let st = inner.state.lock().expect("tracer state lock");
        st.totals
            .keys()
            .filter(|(_, n)| n == name)
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// All completed spans so far, in completion order.
    pub fn spans(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.state.lock().expect("tracer state lock").spans.clone(),
            None => Vec::new(),
        }
    }

    /// Completed spans named `name`, in completion order.
    pub fn spans_named(&self, name: &str) -> Vec<TraceEvent> {
        self.spans()
            .into_iter()
            .filter(|s| s.name == name)
            .collect()
    }

    /// All completed spans with each track prefixed `tag/` — the stream
    /// view a multi-job service merges: per-job tracers stay fully
    /// isolated while recording, and tagging at export time lets N
    /// streams interleave in one Chrome trace without track collisions.
    pub fn tagged_spans(&self, tag: &str) -> Vec<TraceEvent> {
        self.spans()
            .into_iter()
            .map(|mut s| {
                s.track = format!("{tag}/{}", s.track);
                s
            })
            .collect()
    }

    /// Per-step aggregate rows recorded by [`Tracer::finish_step`].
    pub fn step_metrics(&self) -> Vec<StepMetrics> {
        match &self.inner {
            Some(inner) => inner.state.lock().expect("tracer state lock").steps.clone(),
            None => Vec::new(),
        }
    }

    /// The high-water value of gauge `name`, if ever set.
    pub fn high_water(&self, name: &str) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let st = inner.state.lock().expect("tracer state lock");
        st.gauges.get(name).copied()
    }

    // ---- export ----

    /// Renders the full event log as Chrome trace format JSON.
    ///
    /// Spans become `ph:"X"` complete events, counters `ph:"C"` series,
    /// and each track gets a `thread_name` metadata record, so the file
    /// loads directly in `chrome://tracing` / Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let Some(inner) = &self.inner else {
            return "{\"traceEvents\":[]}".to_string();
        };
        let st = inner.state.lock().expect("tracer state lock");
        let mut tracks: Vec<&str> = Vec::new();
        for s in &st.spans {
            if !tracks.contains(&s.track.as_str()) {
                tracks.push(&s.track);
            }
        }
        for c in &st.counter_samples {
            if !tracks.contains(&c.track.as_str()) {
                tracks.push(&c.track);
            }
        }
        let tid = |track: &str| tracks.iter().position(|t| *t == track).unwrap_or(0);

        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for (i, track) in tracks.iter().enumerate() {
            push_event(&mut out, &mut first, &format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                json_str(track)
            ));
        }
        for s in &st.spans {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":{},\"ts\":{},\"dur\":{}}}",
                    tid(&s.track),
                    json_str(&s.name),
                    s.start_us,
                    s.dur_us
                ),
            );
        }
        for c in &st.counter_samples {
            push_event(
                &mut out,
                &mut first,
                &format!(
                "{{\"ph\":\"C\",\"pid\":0,\"tid\":{},\"name\":{},\"ts\":{},\"args\":{{{}:{}}}}}",
                tid(&c.track),
                json_str(&c.name),
                c.ts_us,
                json_str(&c.name),
                c.total
            ),
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Merges several independently-recorded trace streams into one Chrome
/// trace, each stream's tracks prefixed with its tag (via
/// [`Tracer::tagged_spans`]). Events are sorted by start time so the
/// merged file reads as one coherent timeline.
pub fn chrome_trace_json_tagged(streams: &[(&str, &Tracer)]) -> String {
    let mut events: Vec<TraceEvent> = Vec::new();
    for (tag, tracer) in streams {
        events.extend(tracer.tagged_spans(tag));
    }
    events.sort_by_key(|e| (e.start_us, e.dur_us));
    chrome_trace_json_from(&events)
}

/// Renders a plain event list (e.g. a simulated timeline) as Chrome
/// trace format JSON, identically to [`Tracer::chrome_trace_json`].
pub fn chrome_trace_json_from(events: &[TraceEvent]) -> String {
    let mut tracks: Vec<&str> = Vec::new();
    for e in events {
        if !tracks.contains(&e.track.as_str()) {
            tracks.push(&e.track);
        }
    }
    let tid = |track: &str| tracks.iter().position(|t| *t == track).unwrap_or(0);
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (i, track) in tracks.iter().enumerate() {
        push_event(&mut out, &mut first, &format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            json_str(track)
        ));
    }
    for e in events {
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":{},\"ts\":{},\"dur\":{}}}",
                tid(&e.track),
                json_str(&e.name),
                e.start_us,
                e.dur_us
            ),
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn push_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(event);
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An open span; records its interval when dropped.
pub struct SpanGuard {
    tracer: Tracer,
    track: String,
    name: String,
    start_us: u64,
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            let end = self.tracer.now_us();
            self.tracer.record_span(
                &self.track,
                &self.name,
                self.start_us,
                end.saturating_sub(self.start_us),
            );
        }
    }
}

// ---- process-wide registry ----

static REGISTRY: OnceLock<Mutex<Vec<Tracer>>> = OnceLock::new();

/// Pins `tracer` into the process registry; the returned index resolves
/// it from anywhere via [`lookup`]. Indices are never reused.
pub fn install(tracer: Tracer) -> usize {
    let mut reg = REGISTRY
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("trace registry");
    reg.push(tracer);
    reg.len() - 1
}

/// Resolves a tracer previously pinned with [`install`].
pub fn lookup(index: usize) -> Option<Tracer> {
    let reg = REGISTRY
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("trace registry");
    reg.get(index).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_and_counters_accumulate() {
        let t = Tracer::new();
        {
            let _g = t.span("gpu", "fwd");
            std::thread::sleep(Duration::from_millis(2));
        }
        t.add("pcie", "d2h_bytes", 100);
        t.add("pcie", "d2h_bytes", 50);
        t.add("rank1", "d2h_bytes", 25);
        assert_eq!(t.counter_on("pcie", "d2h_bytes"), 150);
        assert_eq!(t.counter_total("d2h_bytes"), 175);
        assert_eq!(t.tracks_with_counter("d2h_bytes"), vec!["pcie", "rank1"]);
        let spans = t.spans_named("fwd");
        assert_eq!(spans.len(), 1);
        assert!(
            spans[0].dur_us >= 1000,
            "span too short: {}",
            spans[0].dur_us
        );
    }

    #[test]
    fn step_metrics_capture_deltas() {
        let t = Tracer::new();
        t.add("pcie", "bytes", 10);
        t.record_span("cpu", "adam", 0, 7);
        t.finish_step();
        t.add("pcie", "bytes", 32);
        t.finish_step();
        let steps = t.step_metrics();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].counter("bytes"), 10);
        assert_eq!(steps[0].phase("adam"), 7);
        assert_eq!(steps[1].counter("bytes"), 32);
        assert_eq!(steps[1].phase("adam"), 0);
    }

    #[test]
    fn gauges_keep_high_water() {
        let t = Tracer::new();
        t.gauge_max("gpu_bytes", 10.0);
        t.gauge_max("gpu_bytes", 4.0);
        t.gauge_max("gpu_bytes", 12.0);
        assert_eq!(t.high_water("gpu_bytes"), Some(12.0));
        assert_eq!(t.high_water("absent"), None);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        {
            let _g = t.span("gpu", "fwd");
        }
        t.add("pcie", "bytes", 10);
        t.finish_step();
        assert!(!t.is_enabled());
        assert!(t.spans().is_empty());
        assert!(t.step_metrics().is_empty());
        assert_eq!(t.counter_total("bytes"), 0);
        assert_eq!(t.chrome_trace_json(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn tagged_spans_prefix_tracks_and_preserve_timing() {
        let t = Tracer::new();
        t.record_span("gpu", "fwd", 10, 5);
        t.record_span("cpu", "adam", 20, 7);
        let tagged = t.tagged_spans("job-a");
        assert_eq!(tagged.len(), 2);
        assert_eq!(tagged[0].track, "job-a/gpu");
        assert_eq!(tagged[1].track, "job-a/cpu");
        assert_eq!(tagged[0].start_us, 10);
        assert_eq!(tagged[1].dur_us, 7);
        // The tracer itself is untouched.
        assert_eq!(t.spans()[0].track, "gpu");
    }

    #[test]
    fn tagged_merge_keeps_streams_apart() {
        let a = Tracer::new();
        let b = Tracer::new();
        a.record_span("gpu", "fwd", 30, 5);
        b.record_span("gpu", "fwd", 10, 5);
        let json = chrome_trace_json_tagged(&[("job-a", &a), ("job-b", &b)]);
        // Both jobs used track "gpu": the merged trace must keep them as
        // distinct named tracks, ordered by start time.
        assert!(
            json.contains("\"job-a/gpu\""),
            "missing job-a track: {json}"
        );
        assert!(
            json.contains("\"job-b/gpu\""),
            "missing job-b track: {json}"
        );
        let a_pos = json.find("\"job-a/gpu\"").unwrap();
        let b_pos = json.find("\"job-b/gpu\"").unwrap();
        assert!(
            b_pos < a_pos,
            "job-b's span starts earlier so its track registers first"
        );
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let t = Tracer::new();
        {
            let _g = t.span("gpu", "fwd\"bwd");
        }
        t.add("pcie", "d2h_bytes", 64);
        let json = t.chrome_trace_json();
        // Structural checks without a JSON parser (this crate is dep-free).
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("fwd\\\"bwd"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn overlap_predicate() {
        let a = TraceEvent {
            track: "x".into(),
            name: "a".into(),
            start_us: 0,
            dur_us: 10,
        };
        let b = TraceEvent {
            track: "y".into(),
            name: "b".into(),
            start_us: 5,
            dur_us: 10,
        };
        let c = TraceEvent {
            track: "y".into(),
            name: "c".into(),
            start_us: 10,
            dur_us: 5,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c), "touching intervals do not overlap");
    }

    #[test]
    fn registry_install_and_lookup() {
        let t = Tracer::new();
        t.add("x", "marker", 7);
        let ix = install(t);
        let resolved = lookup(ix).expect("tracer installed");
        assert_eq!(resolved.counter_on("x", "marker"), 7);
        assert!(lookup(ix + 1000).is_none());
    }

    #[test]
    fn cross_thread_spans_share_epoch() {
        let t = Tracer::new();
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            let _g = t2.span("worker", "job");
            std::thread::sleep(Duration::from_millis(1));
        });
        {
            let _g = t.span("main", "wait");
            std::thread::sleep(Duration::from_millis(2));
        }
        h.join().unwrap();
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let job = spans.iter().find(|s| s.name == "job").unwrap();
        let wait = spans.iter().find(|s| s.name == "wait").unwrap();
        assert!(job.overlaps(wait), "threaded spans must be comparable");
    }
}
