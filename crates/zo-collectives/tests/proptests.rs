//! Property tests for collectives: algebraic identities and cost models.

use proptest::prelude::*;
use zo_collectives::{partition_range, Communicator, RingCost};

fn run_group<T: Send>(world: usize, f: impl Fn(Communicator) -> T + Send + Sync + Clone) -> Vec<T> {
    let comms = Communicator::group(world);
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                scope.spawn(move || f(c))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// reduce-scatter followed by all-gather equals all-reduce (mean).
    #[test]
    fn rs_then_ag_equals_allreduce(
        world in 1usize..5,
        len in 1usize..40,
        seed in 0u32..1000,
    ) {
        let data: Vec<Vec<f32>> = (0..world)
            .map(|r| {
                (0..len)
                    .map(|i| ((seed as usize + r * 31 + i * 7) % 23) as f32 - 11.0)
                    .collect()
            })
            .collect();
        let data_rs = data.clone();
        let composed = run_group(world, move |c| {
            let mine = data_rs[c.rank()].clone();
            let shard = c.reduce_scatter_mean(&mine);
            c.all_gather(&shard, len)
        });
        let data_ar = data;
        let direct = run_group(world, move |c| {
            let mut mine = data_ar[c.rank()].clone();
            c.all_reduce_mean(&mut mine);
            mine
        });
        for (a, b) in composed.iter().zip(&direct) {
            for (x, y) in a.iter().zip(b) {
                prop_assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    /// Broadcast is idempotent and rank-independent.
    #[test]
    fn broadcast_delivers_root_payload(
        world in 1usize..5,
        root_pick in 0usize..5,
        payload in prop::collection::vec(-100.0f32..100.0, 1..20),
    ) {
        let root = root_pick % world;
        let payload_c = payload.clone();
        let out = run_group(world, move |c| {
            let mine = if c.rank() == root { payload_c.clone() } else { vec![0.0; payload_c.len()] };
            c.broadcast(&mine, root)
        });
        for o in out {
            prop_assert_eq!(&o, &payload);
        }
    }

    /// Ring cost model: reduce-scatter time is monotone in bytes and
    /// bounded by the full-buffer wire time.
    #[test]
    fn ring_cost_monotone(
        n in 2u32..128,
        gbps in 1.0f64..500.0,
        bytes in 1.0f64..1e10,
    ) {
        let c = RingCost::new(n, gbps, 0.0);
        let t1 = c.reduce_scatter_secs(bytes);
        let t2 = c.reduce_scatter_secs(bytes * 2.0);
        prop_assert!(t2 >= t1);
        // (n-1)/n of the buffer crosses each link: strictly less than the
        // whole buffer's wire time.
        prop_assert!(t1 < bytes / (gbps * 1e9) + 1e-12);
        prop_assert!((c.all_reduce_secs(bytes) - 2.0 * t1).abs() < 1e-12);
    }

    /// Partition ranges compose with gather: flattening every rank's shard
    /// of a buffer reproduces the buffer.
    #[test]
    fn partitions_compose(total in 0usize..200, world in 1usize..9) {
        let buf: Vec<usize> = (0..total).collect();
        let mut rebuilt = Vec::new();
        for rank in 0..world {
            rebuilt.extend_from_slice(&buf[partition_range(total, world, rank)]);
        }
        prop_assert_eq!(rebuilt, buf);
    }
}
