//! Communication collectives for the ZeRO-Offload reproduction.
//!
//! Two layers serve the two execution modes:
//!
//! * [`cost`] — analytic ring-collective cost models that the simulated
//!   multi-GPU schedules (Figs. 10–11) charge for reduce-scatter,
//!   all-gather/broadcast and all-reduce;
//! * [`Communicator`] — real shared-memory collectives for the
//!   thread-based real-execution engine, with deterministic rank-order
//!   reduction so runs are bit-reproducible;
//! * [`partition_range`] — the one shard definition (balanced, contiguous)
//!   every crate uses for ZeRO-2 state partitioning.

#![warn(missing_docs)]

mod comm;
pub mod cost;
pub mod hierarchical;
mod partition;

pub use comm::Communicator;
pub use cost::RingCost;
pub use hierarchical::HierarchicalCost;
pub use partition::{partition_len, partition_range};
