//! Real shared-memory collectives for thread-based data-parallel training.
//!
//! The real-execution engine runs each data-parallel rank as an OS thread
//! ("threads as GPUs"). These collectives give those threads the exact
//! operations the paper's multi-GPU schedule uses — reduce-scatter of
//! gradients, broadcast/all-gather of updated parameters, all-reduce for
//! baselines — with deterministic, rank-order-independent results
//! (accumulation order is fixed by rank, not by thread arrival).

use std::sync::{Arc, Barrier};

use parking_lot::Mutex;

use crate::partition::partition_range;

struct Shared {
    barrier: Barrier,
    /// Scratch accumulation buffer.
    buf: Mutex<Vec<f32>>,
    /// Per-rank staging used to fix the reduction order.
    stage: Mutex<Vec<Option<Vec<f32>>>>,
}

/// One rank's endpoint of a thread collective group.
///
/// # Examples
///
/// ```
/// use zo_collectives::Communicator;
///
/// let comms = Communicator::group(2);
/// let handles: Vec<_> = comms
///     .into_iter()
///     .map(|c| {
///         std::thread::spawn(move || {
///             let mut data = vec![c.rank() as f32 + 1.0; 4];
///             c.all_reduce_sum(&mut data);
///             data
///         })
///     })
///     .collect();
/// for h in handles {
///     assert_eq!(h.join().unwrap(), vec![3.0; 4]);
/// }
/// ```
pub struct Communicator {
    rank: usize,
    world: usize,
    shared: Arc<Shared>,
}

impl Clone for Communicator {
    /// Clones this endpoint: the clone has the same rank and shares the
    /// group, letting several layers owned by one rank's thread issue
    /// collectives on the same group. Do NOT drive a clone from a second
    /// thread — one thread per rank is the contract.
    fn clone(&self) -> Communicator {
        Communicator {
            rank: self.rank,
            world: self.world,
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Communicator {
    /// Creates a group of `world` connected endpoints, one per rank.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn group(world: usize) -> Vec<Communicator> {
        assert!(world > 0, "world size must be non-zero");
        let shared = Arc::new(Shared {
            barrier: Barrier::new(world),
            buf: Mutex::new(Vec::new()),
            stage: Mutex::new(vec![None; world]),
        });
        (0..world)
            .map(|rank| Communicator {
                rank,
                world,
                shared: Arc::clone(&shared),
            })
            .collect()
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn world(&self) -> usize {
        self.world
    }

    fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Stages this rank's contribution, then reduces in rank order.
    ///
    /// Returns the full sum on every rank via `buf`. Caller must read
    /// before the next entry barrier.
    fn stage_and_reduce(&self, data: &[f32]) {
        // Entry barrier: the previous collective's readers are done.
        self.barrier();
        self.shared.stage.lock()[self.rank] = Some(data.to_vec());
        self.barrier();
        if self.rank == 0 {
            // Deterministic rank-order reduction.
            let mut stage = self.shared.stage.lock();
            let mut buf = self.shared.buf.lock();
            buf.clear();
            buf.resize(data.len(), 0.0);
            for slot in stage.iter_mut() {
                let contribution = slot.take().expect("every rank staged");
                for (b, c) in buf.iter_mut().zip(&contribution) {
                    *b += *c;
                }
            }
        }
        self.barrier();
    }

    /// All-reduce (sum): every rank ends with the elementwise sum.
    pub fn all_reduce_sum(&self, data: &mut [f32]) {
        if self.world == 1 {
            return;
        }
        self.stage_and_reduce(data);
        data.copy_from_slice(&self.shared.buf.lock());
    }

    /// All-reduce (mean): the data-parallel gradient average.
    pub fn all_reduce_mean(&self, data: &mut [f32]) {
        self.all_reduce_sum(data);
        if self.world > 1 {
            let inv = 1.0 / self.world as f32;
            for v in data.iter_mut() {
                *v *= inv;
            }
        }
    }

    /// Reduce-scatter (mean): returns this rank's shard of the averaged
    /// buffer, using [`partition_range`] shard boundaries.
    pub fn reduce_scatter_mean(&self, data: &[f32]) -> Vec<f32> {
        let range = partition_range(data.len(), self.world, self.rank);
        if self.world == 1 {
            return data[range].to_vec();
        }
        self.stage_and_reduce(data);
        let inv = 1.0 / self.world as f32;
        self.shared.buf.lock()[range]
            .iter()
            .map(|v| v * inv)
            .collect()
    }

    /// All-gather: assembles per-rank shards (partitioned by
    /// [`partition_range`] over `total`) into the full buffer on every rank.
    ///
    /// # Panics
    ///
    /// Panics if `shard.len()` differs from this rank's partition length.
    pub fn all_gather(&self, shard: &[f32], total: usize) -> Vec<f32> {
        let range = partition_range(total, self.world, self.rank);
        assert_eq!(shard.len(), range.len(), "shard length mismatch");
        if self.world == 1 {
            return shard.to_vec();
        }
        self.barrier();
        {
            let mut buf = self.shared.buf.lock();
            if buf.len() != total {
                buf.clear();
                buf.resize(total, 0.0);
            }
            buf[range].copy_from_slice(shard);
        }
        self.barrier();
        let out = self.shared.buf.lock().clone();
        self.barrier();
        out
    }

    /// All-gather with per-rank variable lengths: returns every rank's
    /// contribution, in rank order, on every rank.
    ///
    /// Unlike [`Communicator::all_gather`], shards need not follow
    /// [`partition_range`] — used e.g. to gather uneven tensor-parallel
    /// column blocks.
    pub fn all_gather_var(&self, shard: &[f32]) -> Vec<Vec<f32>> {
        if self.world == 1 {
            return vec![shard.to_vec()];
        }
        self.barrier();
        self.shared.stage.lock()[self.rank] = Some(shard.to_vec());
        self.barrier();
        let out: Vec<Vec<f32>> = {
            let stage = self.shared.stage.lock();
            stage
                .iter()
                .map(|slot| slot.as_ref().expect("every rank staged").clone())
                .collect()
        };
        self.barrier();
        // Rank 0 clears the staging slots for the next collective.
        if self.rank == 0 {
            for slot in self.shared.stage.lock().iter_mut() {
                *slot = None;
            }
        }
        self.barrier();
        out
    }

    /// Broadcast from `root`: every rank returns root's `data`.
    pub fn broadcast(&self, data: &[f32], root: usize) -> Vec<f32> {
        if self.world == 1 {
            return data.to_vec();
        }
        self.barrier();
        if self.rank == root {
            let mut buf = self.shared.buf.lock();
            buf.clear();
            buf.extend_from_slice(data);
        }
        self.barrier();
        let out = self.shared.buf.lock().clone();
        self.barrier();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_group<T: Send + 'static>(
        world: usize,
        f: impl Fn(Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let comms = Communicator::group(world);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                std::thread::spawn(move || f(c))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    }

    #[test]
    fn all_reduce_sum_and_mean() {
        let out = run_group(4, |c| {
            let mut v = vec![(c.rank() + 1) as f32; 3];
            c.all_reduce_sum(&mut v);
            let mut m = vec![(c.rank() + 1) as f32; 3];
            c.all_reduce_mean(&mut m);
            (v, m)
        });
        for (sum, mean) in out {
            assert_eq!(sum, vec![10.0; 3]);
            assert_eq!(mean, vec![2.5; 3]);
        }
    }

    #[test]
    fn reduce_scatter_returns_owned_shard_of_mean() {
        let out = run_group(3, |c| {
            // Rank r contributes [r, r, ..., r] over 7 elements.
            let data = vec![c.rank() as f32; 7];
            (c.rank(), c.reduce_scatter_mean(&data))
        });
        // Mean over ranks 0,1,2 = 1.0 everywhere; shard lengths 3,2,2.
        for (rank, shard) in out {
            let want_len = partition_range(7, 3, rank).len();
            assert_eq!(shard.len(), want_len);
            assert!(shard.iter().all(|&v| v == 1.0));
        }
    }

    #[test]
    fn all_gather_reassembles() {
        let total = 10;
        let out = run_group(4, move |c| {
            let range = partition_range(total, 4, c.rank());
            let shard: Vec<f32> = range.clone().map(|i| i as f32).collect();
            c.all_gather(&shard, total)
        });
        let want: Vec<f32> = (0..10).map(|i| i as f32).collect();
        for full in out {
            assert_eq!(full, want);
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        for root in 0..3 {
            let out = run_group(3, move |c| {
                let data = if c.rank() == root {
                    vec![42.0, 7.0]
                } else {
                    vec![0.0, 0.0]
                };
                c.broadcast(&data, root)
            });
            for v in out {
                assert_eq!(v, vec![42.0, 7.0]);
            }
        }
    }

    #[test]
    fn deterministic_reduction_order() {
        // Floating-point sums depend on order; rank-order staging must make
        // repeated runs bit-identical even with racing threads.
        let golden = run_group(4, |c| {
            let mut v: Vec<f32> = (0..64)
                .map(|i| (i as f32 + 0.1) * (c.rank() as f32 + 0.7))
                .collect();
            c.all_reduce_sum(&mut v);
            v
        });
        for _ in 0..5 {
            let again = run_group(4, |c| {
                let mut v: Vec<f32> = (0..64)
                    .map(|i| (i as f32 + 0.1) * (c.rank() as f32 + 0.7))
                    .collect();
                c.all_reduce_sum(&mut v);
                v
            });
            assert_eq!(again, golden);
        }
    }

    #[test]
    fn sequential_collectives_do_not_interfere() {
        let out = run_group(2, |c| {
            let mut a = vec![1.0f32; 4];
            c.all_reduce_sum(&mut a);
            let shard = c.reduce_scatter_mean(&[2.0, 2.0, 4.0, 4.0]);
            let full = c.all_gather(&shard, 4);
            let b = c.broadcast(&full, 1);
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, vec![2.0; 4]);
            assert_eq!(b, vec![2.0, 2.0, 4.0, 4.0]);
        }
    }

    #[test]
    fn all_gather_var_uneven_blocks() {
        let out = run_group(3, |c| {
            // Rank r contributes r+1 elements valued r.
            let shard = vec![c.rank() as f32; c.rank() + 1];
            c.all_gather_var(&shard)
        });
        for blocks in out {
            assert_eq!(blocks.len(), 3);
            for (r, b) in blocks.iter().enumerate() {
                assert_eq!(b.len(), r + 1);
                assert!(b.iter().all(|&v| v == r as f32));
            }
        }
        // Back-to-back with other collectives (stage reuse is clean).
        let out = run_group(2, |c| {
            let blocks = c.all_gather_var(&[c.rank() as f32]);
            let mut v = vec![1.0f32];
            c.all_reduce_sum(&mut v);
            (blocks, v)
        });
        for (blocks, v) in out {
            assert_eq!(blocks, vec![vec![0.0], vec![1.0]]);
            assert_eq!(v, vec![2.0]);
        }
    }

    #[test]
    fn single_rank_short_circuits() {
        let c = Communicator::group(1).pop().unwrap();
        let mut v = vec![3.0f32];
        c.all_reduce_sum(&mut v);
        assert_eq!(v, vec![3.0]);
        assert_eq!(c.reduce_scatter_mean(&[1.0, 2.0]), vec![1.0, 2.0]);
        assert_eq!(c.all_gather(&[5.0], 1), vec![5.0]);
        assert_eq!(c.all_gather_var(&[5.0]), vec![vec![5.0]]);
        assert_eq!(c.broadcast(&[9.0], 0), vec![9.0]);
    }
}
