//! Real shared-memory collectives for thread-based data-parallel training.
//!
//! The real-execution engine runs each data-parallel rank as an OS thread
//! ("threads as GPUs"). These collectives give those threads the exact
//! operations the paper's multi-GPU schedule uses — reduce-scatter of
//! gradients, broadcast/all-gather of updated parameters, all-reduce for
//! baselines — with deterministic, rank-order-independent results
//! (accumulation order is fixed by rank, not by thread arrival).

use std::sync::{Arc, Barrier};

use parking_lot::Mutex;
use zo_fault::{with_retry, FaultError, FaultSession, Site};

use crate::partition::partition_range;

struct Shared {
    barrier: Barrier,
    /// Scratch accumulation buffer.
    buf: Mutex<Vec<f32>>,
    /// Per-rank staging used to fix the reduction order.
    stage: Mutex<Vec<Option<Vec<f32>>>>,
    /// Release notifications: total non-owned elements the group's ranks
    /// have dropped via [`Communicator::try_release_slice`].
    released: Mutex<u64>,
}

/// Per-endpoint fault state: the decision session plus where retries are
/// traced. Wrapped in a mutex only so endpoint clones (same rank, same
/// thread) share the decision counter — there is no cross-rank sharing.
struct FaultState {
    session: FaultSession,
    tracer: zo_trace::Tracer,
    track: String,
}

/// One rank's endpoint of a thread collective group.
///
/// # Examples
///
/// ```
/// use zo_collectives::Communicator;
///
/// let comms = Communicator::group(2);
/// let handles: Vec<_> = comms
///     .into_iter()
///     .map(|c| {
///         std::thread::spawn(move || {
///             let mut data = vec![c.rank() as f32 + 1.0; 4];
///             c.all_reduce_sum(&mut data);
///             data
///         })
///     })
///     .collect();
/// for h in handles {
///     assert_eq!(h.join().unwrap(), vec![3.0; 4]);
/// }
/// ```
pub struct Communicator {
    rank: usize,
    world: usize,
    shared: Arc<Shared>,
    /// Fault-injection state, `None` until installed. Endpoint-local (per
    /// rank), shared between clones of the same endpoint.
    faults: Arc<Mutex<Option<FaultState>>>,
}

impl Clone for Communicator {
    /// Clones this endpoint: the clone has the same rank and shares the
    /// group, letting several layers owned by one rank's thread issue
    /// collectives on the same group. Do NOT drive a clone from a second
    /// thread — one thread per rank is the contract.
    fn clone(&self) -> Communicator {
        Communicator {
            rank: self.rank,
            world: self.world,
            shared: Arc::clone(&self.shared),
            faults: Arc::clone(&self.faults),
        }
    }
}

impl Communicator {
    /// Creates a group of `world` connected endpoints, one per rank.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0`.
    pub fn group(world: usize) -> Vec<Communicator> {
        assert!(world > 0, "world size must be non-zero");
        let shared = Arc::new(Shared {
            barrier: Barrier::new(world),
            buf: Mutex::new(Vec::new()),
            stage: Mutex::new(vec![None; world]),
            released: Mutex::new(0),
        });
        (0..world)
            .map(|rank| Communicator {
                rank,
                world,
                shared: Arc::clone(&shared),
                faults: Arc::new(Mutex::new(None)),
            })
            .collect()
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Installs a fault-injection session on this endpoint; retries and
    /// injected faults are traced on `track`.
    ///
    /// Every rank's session must draw on [`zo_fault::lane::COLLECTIVE`]:
    /// decisions are then keyed only by `(site, operation index)`, and
    /// because collectives are lock-step per endpoint, all ranks agree on
    /// every inject/retry/fatal decision — a fatal fault errors out on all
    /// ranks together instead of deadlocking a barrier.
    pub fn install_faults(&self, session: FaultSession, tracer: zo_trace::Tracer, track: &str) {
        *self.faults.lock() = Some(FaultState {
            session,
            tracer,
            track: track.to_string(),
        });
    }

    /// Runs the fault gate for one collective at `site`: retries burn
    /// deterministic backoff without touching the barriers; a fatal or
    /// exhausted fault returns before any barrier is entered.
    fn gate(&self, site: Site) -> Result<(), FaultError> {
        let mut guard = self.faults.lock();
        let Some(state) = guard.as_mut() else {
            return Ok(());
        };
        with_retry(&mut state.session, site, &state.tracer, &state.track, || ())
    }

    fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Stages this rank's contribution, then reduces in rank order.
    ///
    /// Returns the full sum on every rank via `buf`. Caller must read
    /// before the next entry barrier.
    fn stage_and_reduce(&self, data: &[f32]) {
        // Entry barrier: the previous collective's readers are done.
        self.barrier();
        self.shared.stage.lock()[self.rank] = Some(data.to_vec());
        self.barrier();
        if self.rank == 0 {
            // Deterministic rank-order reduction.
            let mut stage = self.shared.stage.lock();
            let mut buf = self.shared.buf.lock();
            buf.clear();
            buf.resize(data.len(), 0.0);
            for slot in stage.iter_mut() {
                let contribution = slot.take().expect("every rank staged");
                for (b, c) in buf.iter_mut().zip(&contribution) {
                    *b += *c;
                }
            }
        }
        self.barrier();
    }

    /// All-reduce (sum): every rank ends with the elementwise sum.
    pub fn all_reduce_sum(&self, data: &mut [f32]) {
        if self.world == 1 {
            return;
        }
        self.stage_and_reduce(data);
        data.copy_from_slice(&self.shared.buf.lock());
    }

    /// All-reduce (mean): the data-parallel gradient average.
    pub fn all_reduce_mean(&self, data: &mut [f32]) {
        self.all_reduce_sum(data);
        if self.world > 1 {
            let inv = 1.0 / self.world as f32;
            for v in data.iter_mut() {
                *v *= inv;
            }
        }
    }

    /// Reduce-scatter (mean): returns this rank's shard of the averaged
    /// buffer, using [`partition_range`] shard boundaries.
    pub fn reduce_scatter_mean(&self, data: &[f32]) -> Vec<f32> {
        let range = partition_range(data.len(), self.world, self.rank);
        if self.world == 1 {
            return data[range].to_vec();
        }
        self.stage_and_reduce(data);
        let inv = 1.0 / self.world as f32;
        self.shared.buf.lock()[range]
            .iter()
            .map(|v| v * inv)
            .collect()
    }

    /// Fault-aware [`Communicator::reduce_scatter_mean`]: transient
    /// faults at `collective.reduce_scatter` are retried with bounded
    /// backoff; fatal/exhausted faults surface as a typed error on every
    /// rank simultaneously (the decision is rank-agreed).
    pub fn try_reduce_scatter_mean(&self, data: &[f32]) -> Result<Vec<f32>, FaultError> {
        self.gate(Site::CollectiveReduceScatter)?;
        Ok(self.reduce_scatter_mean(data))
    }

    /// Fault-aware [`Communicator::all_gather`] (site
    /// `collective.allgather`); same retry and rank-agreement semantics as
    /// [`Communicator::try_reduce_scatter_mean`].
    pub fn try_all_gather(&self, shard: &[f32], total: usize) -> Result<Vec<f32>, FaultError> {
        self.gate(Site::CollectiveAllGather)?;
        Ok(self.all_gather(shard, total))
    }

    /// All-gather: assembles per-rank shards (partitioned by
    /// [`partition_range`] over `total`) into the full buffer on every rank.
    ///
    /// # Panics
    ///
    /// Panics if `shard.len()` differs from this rank's partition length.
    pub fn all_gather(&self, shard: &[f32], total: usize) -> Vec<f32> {
        let range = partition_range(total, self.world, self.rank);
        assert_eq!(shard.len(), range.len(), "shard length mismatch");
        if self.world == 1 {
            return shard.to_vec();
        }
        self.barrier();
        {
            let mut buf = self.shared.buf.lock();
            if buf.len() != total {
                buf.clear();
                buf.resize(total, 0.0);
            }
            buf[range].copy_from_slice(shard);
        }
        self.barrier();
        let out = self.shared.buf.lock().clone();
        self.barrier();
        out
    }

    /// Layer-sliced all-gather: assembles the flat-offset `range` of a
    /// buffer whose `total` elements are shard-partitioned by
    /// [`partition_range`]. Every rank passes its whole owned shard and
    /// receives just the requested slice — the stage-3 primitive that lets
    /// a rank materialise one layer without ever holding the full replica.
    ///
    /// All ranks must call with the same `range` and `total` (it is a
    /// collective); ranks whose shard does not intersect `range` still
    /// participate in the barriers.
    ///
    /// # Panics
    ///
    /// Panics if `shard.len()` differs from this rank's partition length
    /// or `range` exceeds `total`.
    pub fn all_gather_slice(
        &self,
        shard: &[f32],
        range: core::ops::Range<usize>,
        total: usize,
    ) -> Vec<f32> {
        let own = partition_range(total, self.world, self.rank);
        assert_eq!(shard.len(), own.len(), "shard length mismatch");
        assert!(range.end <= total, "slice range exceeds total");
        if self.world == 1 {
            return shard[range].to_vec();
        }
        self.barrier();
        {
            let mut buf = self.shared.buf.lock();
            if buf.len() != range.len() {
                buf.clear();
                buf.resize(range.len(), 0.0);
            }
            let lo = range.start.max(own.start);
            let hi = range.end.min(own.end);
            if lo < hi {
                buf[lo - range.start..hi - range.start]
                    .copy_from_slice(&shard[lo - own.start..hi - own.start]);
            }
        }
        self.barrier();
        let out = self.shared.buf.lock().clone();
        self.barrier();
        out
    }

    /// Fault-aware [`Communicator::all_gather_slice`] (site
    /// `collective.param_allgather`); same retry and rank-agreement
    /// semantics as [`Communicator::try_reduce_scatter_mean`].
    pub fn try_all_gather_slice(
        &self,
        shard: &[f32],
        range: core::ops::Range<usize>,
        total: usize,
    ) -> Result<Vec<f32>, FaultError> {
        self.gate(Site::CollectiveParamAllGather)?;
        Ok(self.all_gather_slice(shard, range, total))
    }

    /// Releases a previously gathered slice: notifies the group that this
    /// rank has dropped the non-owned elements of `range` and returns how
    /// many elements were freed. Purely local (no barrier) — the
    /// notification is a shared counter readable via
    /// [`Communicator::released_elems`] — but gated at site
    /// `param.release` so fault plans can target it; with the shared
    /// collective lane every rank agrees on the decision.
    pub fn try_release_slice(
        &self,
        range: core::ops::Range<usize>,
        total: usize,
    ) -> Result<usize, FaultError> {
        self.gate(Site::ParamRelease)?;
        assert!(range.end <= total, "slice range exceeds total");
        let own = partition_range(total, self.world, self.rank);
        let lo = range.start.max(own.start);
        let hi = range.end.min(own.end);
        let freed = range.len() - hi.saturating_sub(lo);
        *self.shared.released.lock() += freed as u64;
        Ok(freed)
    }

    /// Total non-owned elements released group-wide via
    /// [`Communicator::try_release_slice`].
    pub fn released_elems(&self) -> u64 {
        *self.shared.released.lock()
    }

    /// All-gather with per-rank variable lengths: returns every rank's
    /// contribution, in rank order, on every rank.
    ///
    /// Unlike [`Communicator::all_gather`], shards need not follow
    /// [`partition_range`] — used e.g. to gather uneven tensor-parallel
    /// column blocks.
    pub fn all_gather_var(&self, shard: &[f32]) -> Vec<Vec<f32>> {
        if self.world == 1 {
            return vec![shard.to_vec()];
        }
        self.barrier();
        self.shared.stage.lock()[self.rank] = Some(shard.to_vec());
        self.barrier();
        let out: Vec<Vec<f32>> = {
            let stage = self.shared.stage.lock();
            stage
                .iter()
                .map(|slot| slot.as_ref().expect("every rank staged").clone())
                .collect()
        };
        self.barrier();
        // Rank 0 clears the staging slots for the next collective.
        if self.rank == 0 {
            for slot in self.shared.stage.lock().iter_mut() {
                *slot = None;
            }
        }
        self.barrier();
        out
    }

    /// Broadcast from `root`: every rank returns root's `data`.
    pub fn broadcast(&self, data: &[f32], root: usize) -> Vec<f32> {
        if self.world == 1 {
            return data.to_vec();
        }
        self.barrier();
        if self.rank == root {
            let mut buf = self.shared.buf.lock();
            buf.clear();
            buf.extend_from_slice(data);
        }
        self.barrier();
        let out = self.shared.buf.lock().clone();
        self.barrier();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_group<T: Send + 'static>(
        world: usize,
        f: impl Fn(Communicator) -> T + Send + Sync + Clone + 'static,
    ) -> Vec<T> {
        let comms = Communicator::group(world);
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = f.clone();
                std::thread::spawn(move || f(c))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    }

    #[test]
    fn all_reduce_sum_and_mean() {
        let out = run_group(4, |c| {
            let mut v = vec![(c.rank() + 1) as f32; 3];
            c.all_reduce_sum(&mut v);
            let mut m = vec![(c.rank() + 1) as f32; 3];
            c.all_reduce_mean(&mut m);
            (v, m)
        });
        for (sum, mean) in out {
            assert_eq!(sum, vec![10.0; 3]);
            assert_eq!(mean, vec![2.5; 3]);
        }
    }

    #[test]
    fn reduce_scatter_returns_owned_shard_of_mean() {
        let out = run_group(3, |c| {
            // Rank r contributes [r, r, ..., r] over 7 elements.
            let data = vec![c.rank() as f32; 7];
            (c.rank(), c.reduce_scatter_mean(&data))
        });
        // Mean over ranks 0,1,2 = 1.0 everywhere; shard lengths 3,2,2.
        for (rank, shard) in out {
            let want_len = partition_range(7, 3, rank).len();
            assert_eq!(shard.len(), want_len);
            assert!(shard.iter().all(|&v| v == 1.0));
        }
    }

    #[test]
    fn all_gather_reassembles() {
        let total = 10;
        let out = run_group(4, move |c| {
            let range = partition_range(total, 4, c.rank());
            let shard: Vec<f32> = range.clone().map(|i| i as f32).collect();
            c.all_gather(&shard, total)
        });
        let want: Vec<f32> = (0..10).map(|i| i as f32).collect();
        for full in out {
            assert_eq!(full, want);
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        for root in 0..3 {
            let out = run_group(3, move |c| {
                let data = if c.rank() == root {
                    vec![42.0, 7.0]
                } else {
                    vec![0.0, 0.0]
                };
                c.broadcast(&data, root)
            });
            for v in out {
                assert_eq!(v, vec![42.0, 7.0]);
            }
        }
    }

    #[test]
    fn deterministic_reduction_order() {
        // Floating-point sums depend on order; rank-order staging must make
        // repeated runs bit-identical even with racing threads.
        let golden = run_group(4, |c| {
            let mut v: Vec<f32> = (0..64)
                .map(|i| (i as f32 + 0.1) * (c.rank() as f32 + 0.7))
                .collect();
            c.all_reduce_sum(&mut v);
            v
        });
        for _ in 0..5 {
            let again = run_group(4, |c| {
                let mut v: Vec<f32> = (0..64)
                    .map(|i| (i as f32 + 0.1) * (c.rank() as f32 + 0.7))
                    .collect();
                c.all_reduce_sum(&mut v);
                v
            });
            assert_eq!(again, golden);
        }
    }

    #[test]
    fn sequential_collectives_do_not_interfere() {
        let out = run_group(2, |c| {
            let mut a = vec![1.0f32; 4];
            c.all_reduce_sum(&mut a);
            let shard = c.reduce_scatter_mean(&[2.0, 2.0, 4.0, 4.0]);
            let full = c.all_gather(&shard, 4);
            let b = c.broadcast(&full, 1);
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, vec![2.0; 4]);
            assert_eq!(b, vec![2.0, 2.0, 4.0, 4.0]);
        }
    }

    #[test]
    fn all_gather_var_uneven_blocks() {
        let out = run_group(3, |c| {
            // Rank r contributes r+1 elements valued r.
            let shard = vec![c.rank() as f32; c.rank() + 1];
            c.all_gather_var(&shard)
        });
        for blocks in out {
            assert_eq!(blocks.len(), 3);
            for (r, b) in blocks.iter().enumerate() {
                assert_eq!(b.len(), r + 1);
                assert!(b.iter().all(|&v| v == r as f32));
            }
        }
        // Back-to-back with other collectives (stage reuse is clean).
        let out = run_group(2, |c| {
            let blocks = c.all_gather_var(&[c.rank() as f32]);
            let mut v = vec![1.0f32];
            c.all_reduce_sum(&mut v);
            (blocks, v)
        });
        for (blocks, v) in out {
            assert_eq!(blocks, vec![vec![0.0], vec![1.0]]);
            assert_eq!(v, vec![2.0]);
        }
    }

    #[test]
    fn try_collectives_without_faults_match_plain() {
        let out = run_group(2, |c| {
            let shard = c.try_reduce_scatter_mean(&[2.0, 4.0]).unwrap();
            c.try_all_gather(&shard, 2).unwrap()
        });
        for full in out {
            assert_eq!(full, vec![2.0, 4.0]);
        }
    }

    #[test]
    fn transient_collective_faults_retry_in_lock_step() {
        use zo_fault::{FaultKind, FaultPlan, FaultSession, SiteSpec};
        let plan = std::sync::Arc::new(
            FaultPlan::builder(11)
                .site(
                    zo_fault::Site::CollectiveReduceScatter,
                    SiteSpec {
                        kind: FaultKind::Transient,
                        prob: 0.6,
                        depth: 2,
                    },
                )
                .build(),
        );
        let tracer = zo_trace::Tracer::new();
        let plan2 = std::sync::Arc::clone(&plan);
        let tracer2 = tracer.clone();
        let out = run_group(3, move |c| {
            c.install_faults(
                FaultSession::new(std::sync::Arc::clone(&plan2), zo_fault::lane::COLLECTIVE),
                tracer2.clone(),
                &format!("rank{}", c.rank()),
            );
            let mut shards = Vec::new();
            for _ in 0..8 {
                shards.push(c.try_reduce_scatter_mean(&[3.0; 7]).unwrap());
            }
            shards
        });
        // Values are unperturbed by retries...
        for shards in &out {
            for s in shards {
                assert!(s.iter().all(|&v| v == 3.0));
            }
        }
        // ...and with p=0.6 over 8 ops × 3 ranks some retries must show up.
        assert!(tracer.counter_total(zo_trace::names::RETRY_ATTEMPTS) > 0);
    }

    #[test]
    fn fatal_collective_fault_errors_on_all_ranks_without_deadlock() {
        use zo_fault::{FaultKind, FaultPlan, FaultSession, SiteSpec};
        let plan = std::sync::Arc::new(
            FaultPlan::builder(4)
                .site(
                    zo_fault::Site::CollectiveAllGather,
                    SiteSpec {
                        kind: FaultKind::Fatal,
                        prob: 1.0,
                        depth: 1,
                    },
                )
                .build(),
        );
        let out = run_group(3, move |c| {
            c.install_faults(
                FaultSession::new(std::sync::Arc::clone(&plan), zo_fault::lane::COLLECTIVE),
                zo_trace::Tracer::disabled(),
                "comm",
            );
            let range = partition_range(6, 3, c.rank());
            let shard = vec![1.0f32; range.len()];
            c.try_all_gather(&shard, 6)
        });
        for r in out {
            assert_eq!(
                r,
                Err(zo_fault::FaultError::Fatal {
                    site: zo_fault::Site::CollectiveAllGather
                })
            );
        }
    }

    #[test]
    fn all_gather_slice_assembles_any_range() {
        let total = 11;
        // Slices that sit inside one shard, span shard boundaries, and
        // cover everything.
        for range in [0..3usize, 2..9, 5..6, 0..11, 10..11] {
            let r2 = range.clone();
            let out = run_group(3, move |c| {
                let own = partition_range(total, 3, c.rank());
                let shard: Vec<f32> = own.clone().map(|i| i as f32 * 1.5).collect();
                c.all_gather_slice(&shard, r2.clone(), total)
            });
            let want: Vec<f32> = range.clone().map(|i| i as f32 * 1.5).collect();
            for got in out {
                assert_eq!(got, want, "range {range:?}");
            }
        }
    }

    #[test]
    fn slice_gather_interleaves_with_other_collectives() {
        let out = run_group(2, |c| {
            let own = partition_range(6, 2, c.rank());
            let shard: Vec<f32> = own.clone().map(|i| i as f32).collect();
            let a = c.all_gather_slice(&shard, 1..5, 6);
            let mut s = vec![1.0f32; 2];
            c.all_reduce_sum(&mut s);
            let b = c.all_gather_slice(&shard, 0..6, 6);
            (a, s, b)
        });
        for (a, s, b) in out {
            assert_eq!(a, vec![1.0, 2.0, 3.0, 4.0]);
            assert_eq!(s, vec![2.0; 2]);
            assert_eq!(b, (0..6).map(|i| i as f32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn release_slice_counts_non_owned_elements() {
        let out = run_group(2, |c| {
            // Range 0..6 over total 6: rank 0 owns 0..3, rank 1 owns 3..6.
            let freed = c.try_release_slice(0..6, 6).unwrap();
            c.barrier();
            (freed, c.released_elems())
        });
        for (freed, total_released) in out {
            // Each rank frees the 3 elements it does not own...
            assert_eq!(freed, 3);
            // ...and the group-wide notification counter sees all 6.
            assert_eq!(total_released, 6);
        }
    }

    #[test]
    fn fatal_param_allgather_fault_errors_on_all_ranks() {
        use zo_fault::{FaultKind, FaultPlan, FaultSession, SiteSpec};
        let plan = std::sync::Arc::new(
            FaultPlan::builder(9)
                .site(
                    zo_fault::Site::CollectiveParamAllGather,
                    SiteSpec {
                        kind: FaultKind::Fatal,
                        prob: 1.0,
                        depth: 1,
                    },
                )
                .build(),
        );
        let out = run_group(3, move |c| {
            c.install_faults(
                FaultSession::new(std::sync::Arc::clone(&plan), zo_fault::lane::COLLECTIVE),
                zo_trace::Tracer::disabled(),
                "comm",
            );
            let own = partition_range(9, 3, c.rank());
            let shard = vec![1.0f32; own.len()];
            c.try_all_gather_slice(&shard, 2..7, 9)
        });
        for r in out {
            assert_eq!(
                r,
                Err(zo_fault::FaultError::Fatal {
                    site: zo_fault::Site::CollectiveParamAllGather
                })
            );
        }
    }

    #[test]
    fn single_rank_short_circuits() {
        let c = Communicator::group(1).pop().unwrap();
        let mut v = vec![3.0f32];
        c.all_reduce_sum(&mut v);
        assert_eq!(v, vec![3.0]);
        assert_eq!(c.reduce_scatter_mean(&[1.0, 2.0]), vec![1.0, 2.0]);
        assert_eq!(c.all_gather(&[5.0], 1), vec![5.0]);
        assert_eq!(c.all_gather_var(&[5.0]), vec![vec![5.0]]);
        assert_eq!(c.broadcast(&[9.0], 0), vec![9.0]);
    }
}
