//! Two-level (intra-node / inter-node) collective cost model.
//!
//! The Fig. 11 cluster is 8 DGX-2 boxes: NVSwitch inside a node, a shared
//! InfiniBand uplink between nodes. A flat ring over such a topology is
//! bounded by the slowest hop; the standard hierarchical algorithm does
//! better: reduce-scatter inside each node, all-reduce the shards across
//! nodes, then all-gather inside — moving only `1/g` of the data over the
//! wide-area links (`g` = GPUs per node).

use crate::cost::RingCost;

/// Cost model for hierarchical collectives over a cluster of nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalCost {
    /// GPUs per node participating.
    pub gpus_per_node: u32,
    /// Number of nodes participating.
    pub nodes: u32,
    /// Intra-node ring (NVLink/NVSwitch).
    pub intra: RingCost,
    /// Inter-node ring (InfiniBand, per-node bandwidth).
    pub inter: RingCost,
}

impl HierarchicalCost {
    /// Builds the model for `world` GPUs over nodes of `gpus_per_node`.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero or not divisible by `gpus_per_node`
    /// (partial nodes are not modeled) when it exceeds one node.
    pub fn new(
        world: u32,
        gpus_per_node: u32,
        nvlink_gbps: f64,
        ib_gbps_per_node: f64,
        latency_s: f64,
    ) -> HierarchicalCost {
        assert!(world > 0, "world must be non-zero");
        let (g, nodes) = if world <= gpus_per_node {
            (world, 1)
        } else {
            assert!(
                world.is_multiple_of(gpus_per_node),
                "partial nodes are not modeled: {world} GPUs over nodes of {gpus_per_node}"
            );
            (gpus_per_node, world / gpus_per_node)
        };
        HierarchicalCost {
            gpus_per_node: g,
            nodes,
            intra: RingCost::new(g, nvlink_gbps, latency_s),
            inter: RingCost::new(nodes, ib_gbps_per_node, latency_s),
        }
    }

    /// Hierarchical all-reduce of `bytes`:
    /// intra reduce-scatter → inter all-reduce of the 1/g shard → intra
    /// all-gather.
    pub fn all_reduce_secs(&self, bytes: f64) -> f64 {
        let shard = bytes / self.gpus_per_node as f64;
        self.intra.reduce_scatter_secs(bytes)
            + self.inter.all_reduce_secs(shard)
            + self.intra.all_gather_secs(bytes)
    }

    /// Hierarchical reduce-scatter (half the all-reduce pattern): intra
    /// reduce-scatter plus inter reduce-scatter of the shard.
    pub fn reduce_scatter_secs(&self, bytes: f64) -> f64 {
        let shard = bytes / self.gpus_per_node as f64;
        self.intra.reduce_scatter_secs(bytes) + self.inter.reduce_scatter_secs(shard)
    }

    /// Hierarchical all-gather (mirror of reduce-scatter).
    pub fn all_gather_secs(&self, bytes: f64) -> f64 {
        self.reduce_scatter_secs(bytes)
    }

    /// Bytes that actually cross the inter-node fabric per GPU's buffer.
    pub fn inter_node_bytes(&self, bytes: f64) -> f64 {
        if self.nodes <= 1 {
            0.0
        } else {
            let shard = bytes / self.gpus_per_node as f64;
            2.0 * shard * (self.nodes - 1) as f64 / self.nodes as f64
        }
    }

    /// Hierarchical all-reduce under a lossy inter-node fabric: each
    /// inter-node transfer independently fails with probability
    /// `inter_fault_prob` and is retried until it lands, so the expected
    /// number of sends per chunk is the geometric `1/(1-p)`. Intra-node
    /// links (NVSwitch) are modeled as reliable — the fault-injection
    /// campaigns against the real engines showed retries concentrate on
    /// the narrow shared uplink, which is exactly the term this inflates.
    ///
    /// # Panics
    ///
    /// Panics if `inter_fault_prob` is outside `[0, 1)` (at `p = 1` the
    /// transfer never completes).
    pub fn all_reduce_secs_faulty(&self, bytes: f64, inter_fault_prob: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&inter_fault_prob),
            "inter-node fault probability must be in [0, 1): {inter_fault_prob}"
        );
        let shard = bytes / self.gpus_per_node as f64;
        let retransmit = 1.0 / (1.0 - inter_fault_prob);
        self.intra.reduce_scatter_secs(bytes)
            + self.inter.all_reduce_secs(shard) * retransmit
            + self.intra.all_gather_secs(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(world: u32) -> HierarchicalCost {
        HierarchicalCost::new(world, 16, 120.0, 100.0, 5e-6)
    }

    #[test]
    fn single_node_has_no_inter_cost() {
        let c = cluster(16);
        assert_eq!(c.nodes, 1);
        assert_eq!(c.inter_node_bytes(1e9), 0.0);
        // All-reduce equals a pure intra ring all-reduce (RS + AG).
        let flat = RingCost::new(16, 120.0, 5e-6);
        assert!((c.all_reduce_secs(1e9) - flat.all_reduce_secs(1e9)).abs() < 1e-9);
    }

    #[test]
    fn hierarchical_beats_flat_ring_across_nodes() {
        // Flat ring over 128 GPUs is bottlenecked by the IB hop for the
        // whole buffer; hierarchical only sends 1/16 of it inter-node.
        let c = cluster(128);
        let flat_ib = RingCost::new(128, 100.0 / 16.0, 5e-6);
        let bytes = 20e9;
        assert!(
            c.all_reduce_secs(bytes) < flat_ib.all_reduce_secs(bytes),
            "{} !< {}",
            c.all_reduce_secs(bytes),
            flat_ib.all_reduce_secs(bytes)
        );
    }

    #[test]
    fn inter_node_traffic_is_shard_sized() {
        let c = cluster(32); // 2 nodes
        let bytes = 16e9;
        // Per GPU buffer: 1/16 crosses IB, twice (RS + AG), halved by 2/(2)...
        let want = 2.0 * (bytes / 16.0) * 0.5;
        assert!((c.inter_node_bytes(bytes) - want).abs() < 1.0);
    }

    #[test]
    fn cost_grows_with_nodes() {
        let bytes = 8e9;
        let t2 = cluster(32).all_reduce_secs(bytes);
        let t8 = cluster(128).all_reduce_secs(bytes);
        assert!(t8 > t2);
    }

    #[test]
    #[should_panic(expected = "partial nodes")]
    fn partial_nodes_rejected() {
        HierarchicalCost::new(24, 16, 120.0, 100.0, 0.0);
    }

    #[test]
    fn faulty_fabric_inflates_only_the_inter_term() {
        let c = cluster(128);
        let bytes = 8e9;
        let clean = c.all_reduce_secs(bytes);
        assert_eq!(c.all_reduce_secs_faulty(bytes, 0.0), clean);
        let lossy = c.all_reduce_secs_faulty(bytes, 0.5);
        assert!(lossy > clean);
        // The inflation is exactly one extra inter all-reduce of the shard.
        let shard = bytes / c.gpus_per_node as f64;
        let want = clean + c.inter.all_reduce_secs(shard);
        assert!((lossy - want).abs() / want < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fault probability")]
    fn total_loss_rejected() {
        cluster(32).all_reduce_secs_faulty(1e9, 1.0);
    }
}
