//! Balanced contiguous partitioning of a parameter range across ranks.
//!
//! ZeRO-2 assigns each data-parallel rank ownership of a contiguous shard
//! of the flattened parameter space (paper Sec. 2, "ZeRO powered data
//! parallel training"); every crate that partitions state uses this one
//! definition so shards always line up.

use core::ops::Range;

/// The contiguous shard of `total` elements owned by `rank` of `world`.
///
/// Shards are balanced to within one element, ordered by rank, and
/// collectively tile `0..total` exactly.
///
/// # Panics
///
/// Panics if `world == 0` or `rank >= world`.
///
/// # Examples
///
/// ```
/// use zo_collectives::partition_range;
///
/// assert_eq!(partition_range(10, 4, 0), 0..3);
/// assert_eq!(partition_range(10, 4, 1), 3..6);
/// assert_eq!(partition_range(10, 4, 2), 6..8);
/// assert_eq!(partition_range(10, 4, 3), 8..10);
/// ```
pub fn partition_range(total: usize, world: usize, rank: usize) -> Range<usize> {
    assert!(world > 0, "world size must be non-zero");
    assert!(rank < world, "rank {rank} out of range for world {world}");
    let base = total / world;
    let extra = total % world;
    // The first `extra` ranks get one additional element.
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    start..start + len
}

/// Length of the shard owned by `rank`.
pub fn partition_len(total: usize, world: usize, rank: usize) -> usize {
    partition_range(total, world, rank).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_tile_the_range() {
        for total in [0usize, 1, 7, 16, 1000, 1001] {
            for world in [1usize, 2, 3, 7, 16] {
                let mut next = 0;
                for rank in 0..world {
                    let r = partition_range(total, world, rank);
                    assert_eq!(r.start, next, "total={total} world={world} rank={rank}");
                    next = r.end;
                }
                assert_eq!(next, total);
            }
        }
    }

    #[test]
    fn shards_balanced_within_one() {
        for total in [17usize, 100, 129] {
            for world in [2usize, 3, 8] {
                let lens: Vec<usize> = (0..world).map(|r| partition_len(total, world, r)).collect();
                let min = *lens.iter().min().unwrap();
                let max = *lens.iter().max().unwrap();
                assert!(max - min <= 1, "lens {lens:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_must_be_in_world() {
        partition_range(10, 2, 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn world_must_be_positive() {
        partition_range(10, 0, 0);
    }
}
