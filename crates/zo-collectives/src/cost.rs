//! Analytic cost models for communication collectives.
//!
//! Multi-GPU schedules (paper Sec. 4.2) are built from reduce-scatter,
//! all-gather/broadcast and all-reduce. The standard ring-algorithm costs
//! apply: for `n` participants moving `bytes` of data over per-participant
//! bus bandwidth `gbps`, a reduce-scatter or all-gather moves
//! `(n-1)/n · bytes` per GPU, and a full all-reduce is the two composed.

/// Cost model for ring collectives over a homogeneous group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingCost {
    /// Participants.
    pub n: u32,
    /// Per-participant bus bandwidth, GB/s.
    pub gbps: f64,
    /// Per-hop launch latency, seconds.
    pub latency_s: f64,
}

impl RingCost {
    /// Creates a cost model; `n` is clamped to at least 1.
    pub fn new(n: u32, gbps: f64, latency_s: f64) -> RingCost {
        RingCost {
            n: n.max(1),
            gbps,
            latency_s,
        }
    }

    fn steps(&self) -> f64 {
        (self.n - 1) as f64
    }

    fn wire_secs(&self, bytes: f64) -> f64 {
        bytes / (self.gbps * 1e9)
    }

    /// Ring reduce-scatter of a `bytes`-sized buffer: each GPU ends with
    /// the reduced `1/n` shard.
    pub fn reduce_scatter_secs(&self, bytes: f64) -> f64 {
        if self.n == 1 {
            return 0.0;
        }
        self.steps() * (self.wire_secs(bytes / self.n as f64) + self.latency_s)
    }

    /// Ring all-gather of per-GPU `1/n` shards into the full buffer.
    pub fn all_gather_secs(&self, bytes: f64) -> f64 {
        // Symmetric to reduce-scatter.
        self.reduce_scatter_secs(bytes)
    }

    /// Ring all-reduce = reduce-scatter + all-gather.
    pub fn all_reduce_secs(&self, bytes: f64) -> f64 {
        self.reduce_scatter_secs(bytes) + self.all_gather_secs(bytes)
    }

    /// Pipelined ring broadcast of `bytes` from one root.
    pub fn broadcast_secs(&self, bytes: f64) -> f64 {
        if self.n == 1 {
            return 0.0;
        }
        // Pipelined: bandwidth-bound at ~bytes/bw plus ring fill latency.
        self.wire_secs(bytes) + self.steps() * self.latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_participant_is_free() {
        let c = RingCost::new(1, 100.0, 1e-5);
        assert_eq!(c.reduce_scatter_secs(1e9), 0.0);
        assert_eq!(c.all_gather_secs(1e9), 0.0);
        assert_eq!(c.all_reduce_secs(1e9), 0.0);
        assert_eq!(c.broadcast_secs(1e9), 0.0);
    }

    #[test]
    fn allreduce_approaches_2x_bandwidth_bound() {
        // For large n, ring all-reduce needs ~2·bytes/bw.
        let c = RingCost::new(128, 10.0, 0.0);
        let t = c.all_reduce_secs(10e9);
        let bound = 2.0 * 10e9 / (10.0 * 1e9);
        assert!((t / bound - (127.0 / 128.0)).abs() < 1e-9);
    }

    #[test]
    fn reduce_scatter_is_half_allreduce() {
        let c = RingCost::new(16, 50.0, 0.0);
        assert!((c.all_reduce_secs(4e9) - 2.0 * c.reduce_scatter_secs(4e9)).abs() < 1e-12);
    }

    #[test]
    fn latency_term_scales_with_steps() {
        let fast = RingCost::new(4, 1000.0, 1e-3);
        // Tiny message: latency dominates; 3 steps of 1 ms.
        let t = fast.reduce_scatter_secs(4.0);
        assert!((t - 3e-3).abs() < 1e-6);
    }

    #[test]
    fn broadcast_is_bandwidth_bound() {
        let c = RingCost::new(8, 10.0, 0.0);
        assert!((c.broadcast_secs(1e9) - 0.1).abs() < 1e-9);
    }
}
