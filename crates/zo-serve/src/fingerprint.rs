//! Trajectory fingerprints over job runs.
//!
//! Same construction as `zo_bench::trajectory`: FNV-1a over each step's
//! loss bit pattern, then the final fp32 master parameters. `zo-bench`
//! depends on this crate (not vice versa), so the hasher lives here and
//! the tests cross-check both implementations agree.

/// FNV-1a over a byte stream: stable, dependency-free, order-sensitive.
pub struct Fnv(u64);

impl Fnv {
    /// Creates a hasher with the standard FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    /// Absorbs `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

/// The job trajectory fingerprint: per-step loss bits in step order, then
/// the final full master parameters (all shards concatenated in rank
/// order) bit by bit.
pub fn fingerprint_run(losses: &[f32], master: &[f32]) -> u64 {
    let mut h = Fnv::new();
    for loss in losses {
        h.write(&loss.to_bits().to_le_bytes());
    }
    for p in master {
        h.write(&p.to_bits().to_le_bytes());
    }
    h.finish()
}
