//! `serve` — run a small multi-job fleet and print per-job reports.
//!
//! A demonstration harness for the multi-job service: three jobs of
//! three different engine stages time-share the process under the
//! deterministic scheduler, each in its own fault/trace/checkpoint
//! domain. Faults follow `ZO_FAULTS` (each job gets its own derived
//! plan), threads follow `ZO_THREADS`.
//!
//! Usage: serve [--seed N] [--steps N] [--trace out.json] [--ckpt DIR]

use zo_nn::GptConfig;
use zo_serve::{DataMode, JobSpec, JobState, Service, StageSpec};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = parse_flag(&args, "--seed").unwrap_or(0);
    let steps: usize = parse_flag(&args, "--steps").unwrap_or(12);
    let trace_out: Option<String> = parse_flag(&args, "--trace");
    let ckpt_dir: Option<String> = parse_flag(&args, "--ckpt");

    let model = GptConfig {
        vocab: 32,
        seq_len: 16,
        hidden: 32,
        heads: 2,
        layers: 2,
    };

    let mut service = match &ckpt_dir {
        Some(dir) => Service::with_checkpoint_root(seed, dir),
        None => Service::new(seed),
    };

    let mut single = JobSpec::new("single", model, steps);
    let mut zero2 = JobSpec::new("zero2", model, steps);
    zero2.stage = StageSpec::Zero2 { world: 2 };
    zero2.data = DataMode::Replicated;
    zero2.priority = 2;
    let mut zero3 = JobSpec::new("zero3", model, steps);
    zero3.stage = StageSpec::Zero3 { world: 2 };
    zero3.data = DataMode::Sliced;
    zero3.batch = 2;
    if ckpt_dir.is_some() {
        for spec in [&mut single, &mut zero2, &mut zero3] {
            spec.checkpoint_every = 4;
        }
    }

    for spec in [single, zero2, zero3] {
        let name = spec.name.clone();
        if let Err(e) = service.submit(spec) {
            eprintln!("submit {name}: {e}");
            std::process::exit(1);
        }
    }

    let report = service.run_to_completion();
    println!(
        "{:<8} {:>5} {:>8} {:>16}  state",
        "job", "steps", "restarts", "fingerprint"
    );
    for job in &report.jobs {
        println!(
            "{:<8} {:>5} {:>8} {:>16x}  {:?}",
            job.name, job.steps_done, job.restarts, job.fingerprint, job.state
        );
    }
    println!("schedule: {} grants", report.schedule.len());

    if let Some(path) = trace_out {
        std::fs::write(&path, service.chrome_trace_json()).expect("write trace");
        println!("trace: {path}");
    }

    let failed = report
        .jobs
        .iter()
        .any(|j| matches!(j.state, JobState::Failed { .. }));
    std::process::exit(if failed { 1 } else { 0 });
}
