//! Deterministic step-granularity scheduling.
//!
//! The scheduler is seeded, replayable round-robin with priority
//! weights: jobs are visited in submission order starting from a
//! seed-derived offset, and each visit grants the job `priority`
//! consecutive optimizer steps. Determinism is the point — the executed
//! schedule is a pure function of `(seed, submission order, priorities,
//! per-job step counts)`, so a service run can be replayed exactly, and
//! job isolation proofs can hold the schedule fixed.

/// One granted step, as recorded in the schedule log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Job name.
    pub job: String,
    /// The job's step index this grant executed (0-based).
    pub step: usize,
}

/// Round-robin/priority scheduler state.
#[derive(Debug)]
pub struct Scheduler {
    cursor: Option<usize>,
    seed: u64,
}

/// splitmix64 (same avalanche as `zo-fault`'s decision hash).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Scheduler {
    /// A scheduler whose starting job is derived from `seed`.
    pub fn new(seed: u64) -> Scheduler {
        Scheduler { cursor: None, seed }
    }

    /// Picks the next runnable job index. `runnable(i)` reports whether
    /// job `i` of `n` can still make progress. Returns `None` when no
    /// job is runnable (the service is done).
    pub fn next_job(&mut self, n: usize, runnable: impl Fn(usize) -> bool) -> Option<usize> {
        if n == 0 {
            return None;
        }
        // First grant goes to the seed-derived offset; afterwards the
        // cursor walks submission order cyclically.
        let start = match self.cursor {
            None => (splitmix64(self.seed) % n as u64) as usize,
            Some(prev) => (prev + 1) % n,
        };
        for off in 0..n {
            let i = (start + off) % n;
            if runnable(i) {
                self.cursor = Some(i);
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_seed_deterministic_and_cyclic() {
        let pick = |seed: u64| -> Vec<usize> {
            let mut s = Scheduler::new(seed);
            (0..8).map(|_| s.next_job(3, |_| true).unwrap()).collect()
        };
        assert_eq!(pick(0), pick(0), "same seed must replay identically");
        let seq = pick(0);
        for w in seq.windows(2) {
            assert_eq!(w[1], (w[0] + 1) % 3, "round-robin order");
        }
        // Some seed starts at a different offset.
        assert!((1..16).any(|s| pick(s)[0] != seq[0]));
    }

    #[test]
    fn finished_jobs_are_skipped() {
        let mut s = Scheduler::new(1);
        let picks: Vec<usize> = (0..4).map(|_| s.next_job(3, |i| i == 1).unwrap()).collect();
        assert_eq!(picks, vec![1; 4]);
        assert_eq!(s.next_job(3, |_| false), None);
    }
}
