//! Job specifications: everything needed to (re)build a job's engines.

use zero_offload::ZeroOffloadConfig;
use zo_fault::FaultPlan;
use zo_nn::GptConfig;

/// Which engine stage a job trains under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageSpec {
    /// Single-accelerator ZeRO-Offload engine (streamed gradient offload).
    Single,
    /// ZeRO-2: optimizer-state + gradient partitioning over `world` ranks.
    Zero2 {
        /// Data-parallel group size.
        world: usize,
    },
    /// ZeRO-3: parameter partitioning over `world` ranks.
    Zero3 {
        /// Data-parallel group size.
        world: usize,
    },
}

impl StageSpec {
    /// Ranks the stage trains with (1 for the single-GPU engine).
    pub fn world(&self) -> usize {
        match self {
            StageSpec::Single => 1,
            StageSpec::Zero2 { world } | StageSpec::Zero3 { world } => *world,
        }
    }
}

/// How a multi-rank job consumes each global batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataMode {
    /// Each rank trains on its `1/world` slice (classic data parallelism).
    /// The trajectory depends on `world`.
    Sliced,
    /// Every rank trains on the identical batch. With power-of-two world
    /// sizes the mean-reduce is exact, so the trajectory is bitwise
    /// *invariant* to `world` — the mode elastic resizing requires.
    Replicated,
}

/// A complete, restartable description of one training job.
///
/// The spec is pure data: the service (re)builds engines from it at
/// submission, after a quarantine, and after an elastic resize. Anything
/// the job's trajectory depends on must live here.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique job name: tags trace tracks, derives the fault domain, and
    /// names the checkpoint directory.
    pub name: String,
    /// Model architecture.
    pub model: GptConfig,
    /// Model parameter-init seed.
    pub model_seed: u64,
    /// Data-stream seed (`BigramLm`).
    pub data_seed: u64,
    /// Data-stream noise.
    pub data_noise: f32,
    /// Sequences per global batch.
    pub batch: usize,
    /// Optimizer steps the job runs to completion.
    pub steps: usize,
    /// Engine stage.
    pub stage: StageSpec,
    /// Batch consumption mode for multi-rank stages.
    pub data: DataMode,
    /// Engine configuration. The service overrides `tracer` and `faults`
    /// with the job's own isolated domain.
    pub config: ZeroOffloadConfig,
    /// Explicit fault plan for this job's domain. `None` derives a
    /// job-specific plan from the ambient `ZO_FAULTS` preset, so a CI
    /// fault matrix exercises every job with independent sequences.
    pub faults: Option<FaultPlan>,
    /// Scheduling weight: consecutive steps granted per turn (min 1).
    pub priority: u32,
    /// Checkpoint every N applied steps (0 disables periodic
    /// checkpoints; quarantine then restarts from scratch).
    pub checkpoint_every: usize,
    /// Quarantine restarts tolerated before the job is marked failed.
    pub max_restarts: u32,
}

impl JobSpec {
    /// A small single-engine job with sane defaults; override fields as
    /// needed.
    pub fn new(name: impl Into<String>, model: GptConfig, steps: usize) -> JobSpec {
        JobSpec {
            name: name.into(),
            model,
            model_seed: 42,
            data_seed: 7,
            data_noise: 0.02,
            batch: 4,
            steps,
            stage: StageSpec::Single,
            data: DataMode::Sliced,
            config: ZeroOffloadConfig::default(),
            faults: None,
            priority: 1,
            checkpoint_every: 0,
            max_restarts: 1,
        }
    }
}
