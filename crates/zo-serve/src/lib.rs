//! Multi-job training service.
//!
//! ZeRO-Offload's goal is *democratizing* large-model training — one box
//! serving many practitioners. This crate supplies the serving layer: a
//! [`Service`] multiplexes N independent training jobs — each an engine of
//! any stage (single-GPU, ZeRO-2, ZeRO-3, any optimizer tier) — over the
//! shared `zo-tensor` worker pool, at *step granularity* under a seeded,
//! replayable schedule.
//!
//! Isolation is the design invariant. Each job gets its own domain:
//!
//! - **Fault domain** — a per-job [`zo_fault::FaultPlan`] (the ambient
//!   `ZO_FAULTS` preset re-seeded per job via `FaultPlan::derived`), so
//!   jobs draw independent fault sequences and one job's faults can never
//!   perturb a neighbor's schedule.
//! - **Trace stream** — a per-job [`zo_trace::Tracer`]; the service merges
//!   them into one Chrome trace with job-tagged tracks
//!   (`zo_trace::chrome_trace_json_tagged`).
//! - **Checkpoint directory** — per-rank framed checkpoint files written
//!   every `checkpoint_every` applied steps, giving crash-resume and
//!   quarantine-restart without touching other jobs' state.
//! - **Failure domain** — a fatally-faulted job is quarantined and
//!   restarted from its latest checkpoint (fault injection disabled for
//!   the replay, exactly like a human rerunning the failed job) while
//!   co-scheduled jobs continue undisturbed.
//! - **Elastic ranks** — a ZeRO-2 job training on replicated data can
//!   grow or shrink its rank group mid-run ([`Service::resize_job`]):
//!   the service checkpoints the job, reshards the state over the new
//!   world size, and resumes bitwise on the same trajectory.
//!
//! Because every engine's step is already deterministic and jobs share no
//! mutable state (the worker pool is content-neutral: results are
//! bit-identical at any thread count), interleaving steps of different
//! jobs cannot move any job's trajectory — each job under the service is
//! bit-identical to running it alone. `tests/multi_job.rs` proves this
//! with the repo's fingerprint machinery.

mod fingerprint;
mod job;
mod scheduler;
mod service;
mod spec;

pub use fingerprint::{fingerprint_run, Fnv};
pub use job::{JobError, JobReport, JobState};
pub use scheduler::{ScheduleEntry, Scheduler};
pub use service::{run_solo, Service, ServiceReport};
pub use spec::{DataMode, JobSpec, StageSpec};
