//! One job's runtime: engines of any stage, its data stream, its
//! checkpoint directory, and its quarantine/restart state machine.

use std::path::{Path, PathBuf};

use zero_offload::{
    decode_checkpoint_bytes, encode_checkpoint_bytes, CheckpointError, DpuCheckpoint, FaultsRef,
    StepError, TracerRef, TrainingCheckpoint, Zero2OffloadEngine, Zero3OffloadEngine,
    ZeroOffloadConfig, ZeroOffloadEngine,
};
use zo_collectives::Communicator;
use zo_fault::FaultPlan;
use zo_models::BigramLm;
use zo_nn::GptModel;
use zo_trace::Tracer;

use crate::fingerprint::fingerprint_run;
use crate::spec::{DataMode, JobSpec, StageSpec};

/// Why a job could not be submitted, resized, or restored.
#[derive(Debug)]
pub enum JobError {
    /// A job with this name is already registered.
    DuplicateName(String),
    /// No job with this name.
    UnknownJob(String),
    /// The spec is internally inconsistent (e.g. batch not divisible by
    /// the world size under sliced data).
    BadSpec(String),
    /// A checkpoint failed to decode or restore.
    Checkpoint(CheckpointError),
    /// Filesystem error in the job's checkpoint directory.
    Io(String),
    /// The requested elastic resize is not defined for this job.
    ResizeUnsupported(String),
}

impl core::fmt::Display for JobError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            JobError::DuplicateName(n) => write!(f, "duplicate job name {n:?}"),
            JobError::UnknownJob(n) => write!(f, "unknown job {n:?}"),
            JobError::BadSpec(d) => write!(f, "bad job spec: {d}"),
            JobError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            JobError::Io(d) => write!(f, "checkpoint I/O error: {d}"),
            JobError::ResizeUnsupported(d) => write!(f, "resize unsupported: {d}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<CheckpointError> for JobError {
    fn from(e: CheckpointError) -> JobError {
        JobError::Checkpoint(e)
    }
}

/// Lifecycle state of a job under the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Scheduled for further steps.
    Running,
    /// All `spec.steps` applied.
    Completed,
    /// Quarantined more than `max_restarts` times.
    Failed {
        /// The last fatal error, for the operator.
        reason: String,
    },
}

/// Final account of one job's run.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Terminal state.
    pub state: JobState,
    /// Per-step training losses (rank 0's stream for multi-rank stages).
    pub losses: Vec<f32>,
    /// Final fp32 master parameters, all shards concatenated in rank
    /// order (the full model).
    pub master: Vec<f32>,
    /// FNV-1a over per-step loss bits then final master bits — directly
    /// comparable to a solo run of the same spec.
    pub fingerprint: u64,
    /// Steps applied.
    pub steps_done: usize,
    /// Times the job was quarantined and restarted.
    pub restarts: u32,
    /// Step the last quarantine restart resumed from, if any.
    pub resumed_from: Option<usize>,
}

/// The job's engines: one per rank, all holding the same trait surface
/// through stage-specific types.
enum Engines {
    Single(Box<ZeroOffloadEngine<GptModel>>),
    Zero2(Vec<Zero2OffloadEngine<GptModel>>),
    Zero3(Vec<Zero3OffloadEngine<GptModel>>),
}

pub(crate) struct JobRuntime {
    pub(crate) spec: JobSpec,
    engines: Engines,
    data: BigramLm,
    /// Steps applied so far in the *current* engine incarnation's
    /// trajectory (equals `losses.len()`).
    pub(crate) steps_done: usize,
    losses: Vec<f32>,
    pub(crate) state: JobState,
    restarts: u32,
    resumed_from: Option<usize>,
    /// The job's isolated trace stream.
    pub(crate) tracer: Tracer,
    /// Engine config with this job's tracer + fault domain installed.
    cfg: ZeroOffloadConfig,
    /// Same config with fault injection disabled: quarantine replays the
    /// failed stretch clean, like an operator rerunning a crashed job.
    recovery_cfg: ZeroOffloadConfig,
    /// Checkpoint directory (absent: quarantine restarts from scratch).
    ckpt_dir: Option<PathBuf>,
    /// Last checkpointed step (file set `step{k}.rank*.ckpt` complete).
    last_ckpt: Option<usize>,
}

impl JobRuntime {
    pub(crate) fn new(spec: JobSpec, ckpt_root: Option<&Path>) -> Result<JobRuntime, JobError> {
        let world = spec.stage.world();
        if world == 0 {
            return Err(JobError::BadSpec("world size 0".into()));
        }
        if spec.data == DataMode::Sliced && !spec.batch.is_multiple_of(world) {
            return Err(JobError::BadSpec(format!(
                "batch {} not divisible by world {world}",
                spec.batch
            )));
        }
        let tracer = Tracer::new();
        // The job's fault domain: an explicit plan is honored exactly;
        // otherwise the ambient ZO_FAULTS preset is re-seeded per job so
        // co-scheduled jobs draw independent sequences.
        let plan = spec
            .faults
            .clone()
            .unwrap_or_else(|| FaultPlan::from_env().derived(&spec.name));
        let cfg = ZeroOffloadConfig {
            tracer: Some(TracerRef::install(tracer.clone())),
            faults: Some(FaultsRef::install(plan)),
            ..spec.config
        };
        let recovery_cfg = ZeroOffloadConfig {
            faults: Some(FaultsRef::install(FaultPlan::disabled())),
            ..cfg
        };
        let ckpt_dir = match (ckpt_root, spec.checkpoint_every) {
            (Some(root), n) if n > 0 => {
                let dir = root.join(&spec.name);
                std::fs::create_dir_all(&dir).map_err(|e| JobError::Io(e.to_string()))?;
                Some(dir)
            }
            _ => None,
        };
        let mut job = JobRuntime {
            engines: build_engines(&spec, cfg),
            data: BigramLm::new(spec.model.vocab, spec.data_noise, spec.data_seed),
            steps_done: 0,
            losses: Vec::new(),
            state: JobState::Running,
            restarts: 0,
            resumed_from: None,
            tracer,
            cfg,
            recovery_cfg,
            ckpt_dir,
            last_ckpt: None,
            spec,
        };
        // Crash-resume: a fresh service finding checkpoints from a prior
        // incarnation of this job continues where it left off.
        if let Some(k) = job.latest_checkpoint_step() {
            job.restore_from_checkpoint(k, job.cfg)?;
        }
        Ok(job)
    }

    /// Runs one optimizer step; quarantines on a fatal engine error.
    /// Returns whether the job is still running afterwards.
    pub(crate) fn step(&mut self) -> bool {
        if self.state != JobState::Running {
            return false;
        }
        let b = self.data.batch(self.spec.batch, self.spec.model.seq_len);
        let result = step_engines(&mut self.engines, &self.spec, &b.inputs, &b.targets);
        match result {
            Ok(loss) => {
                self.losses.push(loss);
                self.steps_done += 1;
                if self.steps_done >= self.spec.steps {
                    self.state = JobState::Completed;
                } else if self.spec.checkpoint_every > 0
                    && self.steps_done.is_multiple_of(self.spec.checkpoint_every)
                {
                    // A failed periodic checkpoint is not fatal to the
                    // job; quarantine just restarts from an older one.
                    let _ = self.write_checkpoints();
                }
            }
            Err(reason) => self.quarantine(reason),
        }
        self.state == JobState::Running
    }

    /// Quarantine: the fatal error stays inside this job's domain. The
    /// engines are torn down and rebuilt with fault injection disabled,
    /// state restored from the latest checkpoint (or scratch), and the
    /// failed stretch replayed — bit-identically, since recovered and
    /// clean trajectories coincide.
    fn quarantine(&mut self, reason: String) {
        self.restarts += 1;
        if self.restarts > self.spec.max_restarts {
            self.state = JobState::Failed { reason };
            return;
        }
        let resume = self.latest_checkpoint_step().unwrap_or(0);
        let cfg = self.recovery_cfg;
        self.engines = build_engines(&self.spec, cfg);
        self.cfg = cfg;
        if resume > 0 {
            if let Err(e) = self.restore_from_checkpoint(resume, cfg) {
                self.state = JobState::Failed {
                    reason: format!("{reason}; restore failed: {e}"),
                };
                return;
            }
        } else {
            self.reset_data_stream(0);
        }
        self.resumed_from = Some(resume);
    }

    /// Restores engines from the step-`k` checkpoint set and rewinds the
    /// data stream and loss log to step `k`.
    fn restore_from_checkpoint(
        &mut self,
        k: usize,
        cfg: ZeroOffloadConfig,
    ) -> Result<(), JobError> {
        let dir = self
            .ckpt_dir
            .clone()
            .ok_or_else(|| JobError::Io("no checkpoint directory".into()))?;
        let world = self.spec.stage.world();
        let mut ckpts = Vec::with_capacity(world);
        for r in 0..world {
            let bytes =
                std::fs::read(ckpt_path(&dir, k, r)).map_err(|e| JobError::Io(e.to_string()))?;
            ckpts.push(decode_checkpoint_bytes(&bytes)?);
        }
        restore_engines(&mut self.engines, &ckpts)?;
        self.reset_data_stream(k);
        self.last_ckpt = Some(k);
        let _ = cfg; // engines were already built under `cfg`
        Ok(())
    }

    /// Replays the data stream to batch index `k` (batches are consumed
    /// one per step, so the stream position *is* the step count).
    fn reset_data_stream(&mut self, k: usize) {
        let mut data = BigramLm::new(
            self.spec.model.vocab,
            self.spec.data_noise,
            self.spec.data_seed,
        );
        for _ in 0..k {
            data.batch(self.spec.batch, self.spec.model.seq_len);
        }
        self.data = data;
        self.losses.truncate(k);
        self.steps_done = k;
        if self.steps_done < self.spec.steps {
            self.state = JobState::Running;
        }
    }

    /// Writes the per-rank checkpoint set for the current step.
    fn write_checkpoints(&mut self) -> Result<(), JobError> {
        let Some(dir) = self.ckpt_dir.clone() else {
            return Ok(());
        };
        let k = self.steps_done;
        for (r, ckpt) in save_engines(&self.engines).into_iter().enumerate() {
            let bytes = encode_checkpoint_bytes(&ckpt);
            std::fs::write(ckpt_path(&dir, k, r), bytes)
                .map_err(|e| JobError::Io(e.to_string()))?;
        }
        self.last_ckpt = Some(k);
        Ok(())
    }

    /// The newest step with a complete per-rank checkpoint set on disk.
    fn latest_checkpoint_step(&self) -> Option<usize> {
        let dir = self.ckpt_dir.as_ref()?;
        let world = self.spec.stage.world();
        let mut best: Option<usize> = None;
        for entry in std::fs::read_dir(dir).ok()? {
            let name = entry.ok()?.file_name();
            let name = name.to_string_lossy();
            let Some(k) = name
                .strip_prefix("step")
                .and_then(|s| s.split('.').next())
                .and_then(|s| s.parse::<usize>().ok())
            else {
                continue;
            };
            if best.is_some_and(|b| b >= k) {
                continue;
            }
            let complete = (0..world).all(|r| ckpt_path(dir, k, r).exists());
            if complete {
                best = Some(k);
            }
        }
        best
    }

    /// Elastic rank join/leave: reshards the job's state over
    /// `new_world` ranks and resumes mid-run on the same trajectory.
    ///
    /// Defined for ZeRO-2 jobs on replicated data (where the trajectory
    /// is provably world-size invariant — the mean-reduce over identical
    /// replicas is exact for power-of-two worlds).
    pub(crate) fn resize(&mut self, new_world: usize) -> Result<(), JobError> {
        let StageSpec::Zero2 { world } = self.spec.stage else {
            return Err(JobError::ResizeUnsupported(
                "elastic resize is defined for ZeRO-2 jobs".into(),
            ));
        };
        if self.spec.data != DataMode::Replicated {
            return Err(JobError::ResizeUnsupported(
                "elastic resize requires replicated data (world-invariant trajectory)".into(),
            ));
        }
        if new_world == 0 || !new_world.is_power_of_two() {
            return Err(JobError::ResizeUnsupported(format!(
                "world {new_world} is not a positive power of two"
            )));
        }
        if self.state != JobState::Running || new_world == world {
            return Ok(());
        }
        // Snapshot every rank's shard, concatenate to the full state.
        let shards = save_engines(&self.engines);
        let full = concat_checkpoints(&shards)?;
        // Rebuild the engines at the new world size and deal the full
        // state back out along the new partition.
        self.spec.stage = StageSpec::Zero2 { world: new_world };
        self.engines = build_engines(&self.spec, self.cfg);
        let parts = partition_checkpoint(&full, &self.engines)?;
        restore_engines(&mut self.engines, &parts)?;
        Ok(())
    }

    /// Final account (valid at any point; fingerprint covers steps so far).
    pub(crate) fn report(&self) -> JobReport {
        let master = full_master(&self.engines);
        JobReport {
            name: self.spec.name.clone(),
            state: self.state.clone(),
            fingerprint: fingerprint_run(&self.losses, &master),
            losses: self.losses.clone(),
            master,
            steps_done: self.steps_done,
            restarts: self.restarts,
            resumed_from: self.resumed_from,
        }
    }
}

fn ckpt_path(dir: &Path, step: usize, rank: usize) -> PathBuf {
    dir.join(format!("step{step:06}.rank{rank}.ckpt"))
}

/// Builds the engines for `spec`. Multi-rank stages construct
/// concurrently — ZeRO-2's constructor performs its initial all-gather.
fn build_engines(spec: &JobSpec, cfg: ZeroOffloadConfig) -> Engines {
    let model = |_rank: usize| GptModel::new(spec.model, spec.model_seed);
    match spec.stage {
        StageSpec::Single => Engines::Single(Box::new(ZeroOffloadEngine::new(model(0), cfg))),
        StageSpec::Zero2 { world } => Engines::Zero2(build_ranks(world, |comm| {
            Zero2OffloadEngine::new(model(comm.rank()), cfg, comm)
        })),
        StageSpec::Zero3 { world } => Engines::Zero3(build_ranks(world, |comm| {
            Zero3OffloadEngine::new(model(comm.rank()), cfg, comm)
        })),
    }
}

/// Runs one constructor per rank on its own thread (constructors may
/// contain collectives, which block until every rank arrives).
fn build_ranks<E: Send>(world: usize, make: impl Fn(Communicator) -> E + Send + Sync) -> Vec<E> {
    let comms = Communicator::group(world);
    std::thread::scope(|scope| {
        let make = &make;
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| scope.spawn(move || make(comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank constructor panicked"))
            .collect()
    })
}

/// One optimizer step across all ranks; returns rank 0's loss.
///
/// Ranks step concurrently on scoped threads (collectives synchronize
/// them). Engine fault lanes are deterministic per *session*, counting
/// draws per (lane, site) — never global time — so this job stepping in
/// any interleaving with neighbors draws the same fault sequence.
fn step_engines(
    engines: &mut Engines,
    spec: &JobSpec,
    inputs: &[usize],
    targets: &[usize],
) -> Result<f32, String> {
    let seq = spec.model.seq_len;
    match engines {
        Engines::Single(engine) => engine
            .step_streamed(|m, s| m.train_step_hooked(inputs, targets, spec.batch, seq, s))
            .map(|o| o.loss())
            .map_err(describe_step_error),
        Engines::Zero2(ranks) => step_ranks(ranks, spec, inputs, targets, |e, i, t, n| {
            e.step(|m| m.train_step(i, t, n, seq, |_| {}))
                .map(|o| o.loss())
        }),
        Engines::Zero3(ranks) => step_ranks(ranks, spec, inputs, targets, |e, i, t, n| {
            e.step(|m| m.train_step(i, t, n, seq, |_| {}))
                .map(|o| o.loss())
        }),
    }
}

/// Steps every rank concurrently, handing each its batch view (a
/// `1/world` slice or the full replica), and returns rank 0's loss.
fn step_ranks<E: Send, Err: Send>(
    ranks: &mut [E],
    spec: &JobSpec,
    inputs: &[usize],
    targets: &[usize],
    step: impl Fn(&mut E, &[usize], &[usize], usize) -> Result<f32, StepError<Err>> + Send + Sync,
) -> Result<f32, String> {
    let world = ranks.len();
    let seq = spec.model.seq_len;
    let results: Vec<Result<f32, StepError<Err>>> = std::thread::scope(|scope| {
        let step = &step;
        let handles: Vec<_> = ranks
            .iter_mut()
            .enumerate()
            .map(|(r, engine)| {
                let (i, t, n) = match spec.data {
                    DataMode::Replicated => (inputs, targets, spec.batch),
                    DataMode::Sliced => {
                        let per = spec.batch / world;
                        let span = r * per * seq..(r + 1) * per * seq;
                        (&inputs[span.clone()], &targets[span], per)
                    }
                };
                scope.spawn(move || step(engine, i, t, n))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank step panicked"))
            .collect()
    });
    // Fatal faults fire on every rank in lock-step (shared engine lane /
    // communicator session); any rank's error fails the step.
    let mut loss = None;
    for (r, res) in results.into_iter().enumerate() {
        match res {
            Ok(l) if r == 0 => loss = Some(l),
            Ok(_) => {}
            Err(e) => return Err(describe_step_error(e)),
        }
    }
    Ok(loss.expect("rank 0 result"))
}

fn describe_step_error<E>(e: StepError<E>) -> String {
    match e {
        StepError::Backward(_) => "backward pass failed".to_string(),
        StepError::Fault(f) => f.to_string(),
        StepError::OverflowStorm { consecutive } => {
            format!("overflow storm: {consecutive} consecutive skipped steps")
        }
    }
}

fn save_engines(engines: &Engines) -> Vec<TrainingCheckpoint> {
    match engines {
        Engines::Single(e) => vec![e.save_checkpoint()],
        Engines::Zero2(ranks) => ranks.iter().map(|e| e.save_checkpoint()).collect(),
        Engines::Zero3(ranks) => ranks.iter().map(|e| e.save_checkpoint()).collect(),
    }
}

/// Restores each rank from its checkpoint, concurrently — ZeRO-2's
/// restore ends in an all-gather, so ranks must restore in lock-step.
fn restore_engines(engines: &mut Engines, ckpts: &[TrainingCheckpoint]) -> Result<(), JobError> {
    match engines {
        Engines::Single(e) => Ok(e.restore_checkpoint(&ckpts[0])?),
        Engines::Zero2(ranks) => restore_ranks(ranks, ckpts, |e, c| e.restore_checkpoint(c)),
        Engines::Zero3(ranks) => restore_ranks(ranks, ckpts, |e, c| e.restore_checkpoint(c)),
    }
}

fn restore_ranks<E: Send>(
    ranks: &mut [E],
    ckpts: &[TrainingCheckpoint],
    restore: impl Fn(&mut E, &TrainingCheckpoint) -> Result<(), CheckpointError> + Send + Sync,
) -> Result<(), JobError> {
    assert_eq!(ranks.len(), ckpts.len(), "one checkpoint per rank");
    let results: Vec<Result<(), CheckpointError>> = std::thread::scope(|scope| {
        let restore = &restore;
        let handles: Vec<_> = ranks
            .iter_mut()
            .zip(ckpts)
            .map(|(engine, ckpt)| scope.spawn(move || restore(engine, ckpt)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank restore panicked"))
            .collect()
    });
    for res in results {
        res?;
    }
    Ok(())
}

/// Concatenates per-rank shard checkpoints (rank order) into one
/// full-model checkpoint, for resharding at a different world size.
fn concat_checkpoints(shards: &[TrainingCheckpoint]) -> Result<TrainingCheckpoint, JobError> {
    let mut full = TrainingCheckpoint {
        master: Vec::new(),
        optim: zo_optim::AdamState::new(0),
        loss_scale: shards[0].loss_scale,
        dpu: None,
        steps_applied: shards[0].steps_applied,
        steps_skipped: shards[0].steps_skipped,
    };
    for s in shards {
        full.master.extend_from_slice(&s.master);
        full.optim.m.extend_from_slice(&s.optim.m);
        full.optim.v.extend_from_slice(&s.optim.v);
        full.optim.step = s.optim.step;
        match &s.dpu {
            None => {}
            Some(DpuCheckpoint {
                pending: None,
                steps_seen,
            }) => {
                // A quiesced DPU clock passes through the reshard.
                full.dpu = Some(DpuCheckpoint {
                    steps_seen: *steps_seen,
                    pending: None,
                });
            }
            Some(DpuCheckpoint {
                pending: Some(_), ..
            }) => {
                return Err(JobError::ResizeUnsupported(
                    "a delayed update is in flight; resize between steps only".into(),
                ));
            }
        }
    }
    Ok(full)
}

/// Deals a full-model checkpoint back out along the new engines'
/// partition (each rank takes its shard-sized slice in rank order).
fn partition_checkpoint(
    full: &TrainingCheckpoint,
    engines: &Engines,
) -> Result<Vec<TrainingCheckpoint>, JobError> {
    let shard_lens: Vec<usize> = match engines {
        Engines::Single(e) => vec![e.master_params().len()],
        Engines::Zero2(ranks) => ranks.iter().map(|e| e.master_shard().len()).collect(),
        Engines::Zero3(ranks) => ranks.iter().map(|e| e.master_shard().len()).collect(),
    };
    let total: usize = shard_lens.iter().sum();
    if total != full.master.len() {
        return Err(JobError::Checkpoint(CheckpointError::SizeMismatch {
            checkpoint: full.master.len(),
            engine: total,
        }));
    }
    let mut parts = Vec::with_capacity(shard_lens.len());
    let mut off = 0;
    for len in shard_lens {
        let span = off..off + len;
        parts.push(TrainingCheckpoint {
            master: full.master[span.clone()].to_vec(),
            optim: zo_optim::AdamState {
                m: full.optim.m[span.clone()].to_vec(),
                v: full.optim.v[span].to_vec(),
                step: full.optim.step,
            },
            loss_scale: full.loss_scale,
            dpu: full.dpu.clone(),
            steps_applied: full.steps_applied,
            steps_skipped: full.steps_skipped,
        });
        off += len;
    }
    Ok(parts)
}

/// The full fp32 master parameters: all shards concatenated in rank order.
fn full_master(engines: &Engines) -> Vec<f32> {
    match engines {
        Engines::Single(e) => e.master_params().to_vec(),
        Engines::Zero2(ranks) => ranks
            .iter()
            .flat_map(|e| e.master_shard().iter().copied())
            .collect(),
        Engines::Zero3(ranks) => ranks
            .iter()
            .flat_map(|e| e.master_shard().iter().copied())
            .collect(),
    }
}
