//! The multi-job training service.

use std::path::PathBuf;

use zo_trace::chrome_trace_json_tagged;

use crate::job::{JobError, JobReport, JobRuntime, JobState};
use crate::scheduler::{ScheduleEntry, Scheduler};
use crate::spec::JobSpec;

/// Final account of a service run: one report per job, in submission
/// order, plus the executed schedule.
#[derive(Debug)]
pub struct ServiceReport {
    /// Per-job reports, submission order.
    pub jobs: Vec<JobReport>,
    /// Every granted step, in execution order (replayable).
    pub schedule: Vec<ScheduleEntry>,
}

impl ServiceReport {
    /// The report for `name`, if such a job ran.
    pub fn job(&self, name: &str) -> Option<&JobReport> {
        self.jobs.iter().find(|j| j.name == name)
    }
}

/// A multi-job training service: N isolated jobs time-share the process
/// (and its worker pool) under a deterministic step-granularity schedule.
pub struct Service {
    jobs: Vec<JobRuntime>,
    scheduler: Scheduler,
    schedule_log: Vec<ScheduleEntry>,
    ckpt_root: Option<PathBuf>,
}

impl Service {
    /// A service with no checkpoint storage (jobs that quarantine restart
    /// from scratch).
    pub fn new(seed: u64) -> Service {
        Service {
            jobs: Vec::new(),
            scheduler: Scheduler::new(seed),
            schedule_log: Vec::new(),
            ckpt_root: None,
        }
    }

    /// A service whose jobs checkpoint under `root/<job-name>/`.
    ///
    /// A resubmitted job finding checkpoints from a prior service run in
    /// its directory resumes from the newest complete set (crash-resume).
    pub fn with_checkpoint_root(seed: u64, root: impl Into<PathBuf>) -> Service {
        Service {
            ckpt_root: Some(root.into()),
            ..Service::new(seed)
        }
    }

    /// Registers a job. Engines are built (and any prior checkpoint
    /// restored) immediately; stepping starts at the next tick.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(), JobError> {
        if self.jobs.iter().any(|j| j.spec.name == spec.name) {
            return Err(JobError::DuplicateName(spec.name));
        }
        self.jobs
            .push(JobRuntime::new(spec, self.ckpt_root.as_deref())?);
        Ok(())
    }

    /// One scheduling turn: the next runnable job executes up to
    /// `priority` consecutive steps. Returns `false` when no job can make
    /// further progress.
    pub fn tick(&mut self) -> bool {
        let jobs = &self.jobs;
        let Some(i) = self
            .scheduler
            .next_job(jobs.len(), |i| jobs[i].state == JobState::Running)
        else {
            return false;
        };
        let quantum = self.jobs[i].spec.priority.max(1);
        for _ in 0..quantum {
            let step = self.jobs[i].steps_done;
            let running = self.jobs[i].step();
            self.schedule_log.push(ScheduleEntry {
                job: self.jobs[i].spec.name.clone(),
                step,
            });
            if !running {
                break;
            }
        }
        self.jobs.iter().any(|j| j.state == JobState::Running)
    }

    /// Drives ticks until every job is completed or failed.
    pub fn run_to_completion(&mut self) -> ServiceReport {
        while self.tick() {}
        self.report()
    }

    /// Elastic rank join/leave: reshards `name`'s state over `new_world`
    /// ranks between steps. The job's trajectory continues bitwise (see
    /// [`JobSpec::data`](crate::DataMode::Replicated) for when that is
    /// defined).
    pub fn resize_job(&mut self, name: &str, new_world: usize) -> Result<(), JobError> {
        let job = self
            .jobs
            .iter_mut()
            .find(|j| j.spec.name == name)
            .ok_or_else(|| JobError::UnknownJob(name.to_string()))?;
        job.resize(new_world)
    }

    /// Steps applied so far by `name` (0 for unknown jobs).
    pub fn steps_done(&self, name: &str) -> usize {
        self.jobs
            .iter()
            .find(|j| j.spec.name == name)
            .map_or(0, |j| j.steps_done)
    }

    /// Current per-job reports plus the executed schedule so far.
    pub fn report(&self) -> ServiceReport {
        ServiceReport {
            jobs: self.jobs.iter().map(|j| j.report()).collect(),
            schedule: self.schedule_log.clone(),
        }
    }

    /// The executed schedule so far.
    pub fn schedule_log(&self) -> &[ScheduleEntry] {
        &self.schedule_log
    }

    /// One Chrome trace over every job's stream, tracks tagged
    /// `<job>/<track>` so N jobs interleave without collisions.
    pub fn chrome_trace_json(&self) -> String {
        let streams: Vec<(&str, &zo_trace::Tracer)> = self
            .jobs
            .iter()
            .map(|j| (j.spec.name.as_str(), &j.tracer))
            .collect();
        chrome_trace_json_tagged(&streams)
    }
}

/// Runs `spec` alone to completion — the solo baseline every
/// co-scheduled fingerprint is compared against.
pub fn run_solo(spec: JobSpec) -> JobReport {
    let mut service = Service::new(0);
    service.submit(spec).expect("solo submit");
    let mut report = service.run_to_completion();
    report.jobs.remove(0)
}
