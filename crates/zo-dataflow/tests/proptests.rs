//! Property tests: the unique-optimality conclusion is robust to the exact
//! byte weights, as long as the precision ordering (fp16 < fp32) holds.

use proptest::prelude::*;
use zo_dataflow::{check_unique_optimality, min_offload_comm_m, Assignment, DataFlowGraph, Node};

/// Rebuilds the training graph with fp16 edges weighing `w16` units and
/// fp32 edges `w32` (the fused p16→FWD-BWD edge weighs `2*w16`).
fn scaled_graph(w16: u32, w32: u32) -> DataFlowGraph {
    DataFlowGraph::training_iteration().map_weights(|e| match e.from {
        Node::P16 => 2 * w16,
        Node::FwdBwd | Node::G16 | Node::Float2Half => w16,
        Node::P32 | Node::M32 | Node::V32 | Node::Update => w32,
    })
}

proptest! {
    /// For any fp16/fp32 weights with w16 <= w32, the minimum offload
    /// communication volume is exactly two fp16 edges.
    #[test]
    fn min_comm_is_two_fp16_edges(w16 in 1u32..50, extra in 0u32..50) {
        let w32 = w16 + extra;
        let g = scaled_graph(w16, w32);
        prop_assert_eq!(min_offload_comm_m(&g), 2 * w16);
    }

    /// The unique-optimality theorem holds for any such weighting.
    #[test]
    fn unique_optimality_is_weight_robust(w16 in 1u32..50, extra in 0u32..50) {
        let w32 = w16 + extra;
        let g = scaled_graph(w16, w32);
        let zo = check_unique_optimality(&g);
        prop_assert!(zo.is_ok(), "violations: {:?}", zo.err());
        let m = zo.unwrap();
        prop_assert_eq!(m.comm_volume_m, 2 * w16);
        prop_assert_eq!(m.gpu_memory_m, 2); // p16 only (sizes unscaled)
    }

    /// Communication volume is symmetric under swapping the two devices
    /// (a cut has no orientation).
    #[test]
    fn comm_volume_symmetric(mask in 0u8..=255) {
        let g = DataFlowGraph::training_iteration();
        let a = Assignment(mask);
        let flipped = Assignment(!mask);
        prop_assert_eq!(a.comm_volume_m(&g), flipped.comm_volume_m(&g));
    }

    /// GPU memory + CPU memory is conserved across every partition.
    #[test]
    fn memory_conserved(mask in 0u8..=255) {
        let g = DataFlowGraph::training_iteration();
        let a = Assignment(mask);
        let flipped = Assignment(!mask);
        prop_assert_eq!(
            a.gpu_memory_m() + flipped.gpu_memory_m(),
            g.total_state_m()
        );
    }
}
