//! First-principles offload-strategy analysis (paper Sec. 3).
//!
//! Models one training iteration of mixed-precision Adam as a weighted
//! data-flow graph ([`DataFlowGraph`]), enumerates all 256 GPU/CPU
//! partitions ([`Assignment`]), and machine-checks the paper's central
//! theorem: offloading fp16 gradients plus the fp32 "Update super-node" to
//! the CPU is the unique strategy that maximizes GPU memory savings (8×)
//! at the minimum communication volume (4M bytes/iteration) without
//! placing O(M·B) compute on the CPU.

#![warn(missing_docs)]

pub mod analysis;
pub mod graph;
pub mod partition;

pub use analysis::{
    check_unique_optimality, min_comm_strategies, min_offload_comm_m, optimal_strategy,
    render_table1, table1_rows, OptimalityViolation, StrategyMetrics,
};
pub use graph::{Complexity, DataFlowGraph, Edge, Node, NODES};
pub use partition::{Assignment, Device};
