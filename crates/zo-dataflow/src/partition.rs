//! Two-way GPU/CPU partitioning of the data-flow graph (paper Sec. 3.1).
//!
//! An offload strategy is an assignment of every graph node to GPU or CPU.
//! This module enumerates assignments and computes the three metrics of the
//! paper's first-principles analysis: CPU compute class, CPU↔GPU
//! communication volume, and GPU memory footprint.

use crate::graph::{Complexity, DataFlowGraph, Node, NODES};

/// Which device a node is placed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// The accelerator.
    Gpu,
    /// The host.
    Cpu,
}

/// An assignment of all eight graph nodes to devices, packed as a bitmask
/// (bit set = CPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Assignment(pub u8);

impl Assignment {
    /// The all-GPU baseline (no offload).
    pub const ALL_GPU: Assignment = Assignment(0);

    /// Places `node` on `device`, returning the new assignment.
    #[must_use]
    pub fn with(self, node: Node, device: Device) -> Assignment {
        let bit = 1u8 << node.index();
        match device {
            Device::Cpu => Assignment(self.0 | bit),
            Device::Gpu => Assignment(self.0 & !bit),
        }
    }

    /// The device `node` is placed on.
    pub fn device_of(self, node: Node) -> Device {
        if self.0 & (1 << node.index()) != 0 {
            Device::Cpu
        } else {
            Device::Gpu
        }
    }

    /// Iterates over every possible assignment (2^8 = 256).
    pub fn all() -> impl Iterator<Item = Assignment> {
        (0u16..256).map(|m| Assignment(m as u8))
    }

    /// Whether at least one model-state data node lives on the CPU
    /// (the paper's definition of an *offload* strategy).
    pub fn is_offload(self) -> bool {
        NODES
            .iter()
            .any(|n| n.is_data() && self.device_of(*n) == Device::Cpu)
    }

    /// Communication volume across the cut, in multiples of M bytes.
    pub fn comm_volume_m(self, graph: &DataFlowGraph) -> u32 {
        graph
            .edges()
            .iter()
            .filter(|e| self.device_of(e.from) != self.device_of(e.to))
            .map(|e| e.weight_m)
            .sum()
    }

    /// The heaviest compute class assigned to the CPU.
    pub fn cpu_compute(self) -> Complexity {
        NODES
            .iter()
            .filter(|n| self.device_of(**n) == Device::Cpu)
            .map(|n| n.complexity())
            .max()
            .unwrap_or(Complexity::None)
    }

    /// Model-state bytes resident on the GPU, in multiples of M.
    pub fn gpu_memory_m(self) -> u32 {
        NODES
            .iter()
            .filter(|n| self.device_of(**n) == Device::Gpu)
            .map(|n| n.size_m())
            .sum()
    }

    /// Memory reduction factor versus the 16M all-GPU baseline.
    pub fn memory_reduction(self, graph: &DataFlowGraph) -> f64 {
        let gpu = self.gpu_memory_m();
        if gpu == 0 {
            f64::INFINITY
        } else {
            graph.total_state_m() as f64 / gpu as f64
        }
    }

    /// The ZeRO-Offload strategy (Sec. 3.5): fp16 params + FWD-BWD on GPU;
    /// gradients, fp32 states, update, and cast on CPU.
    pub fn zero_offload() -> Assignment {
        Assignment::ALL_GPU
            .with(Node::G16, Device::Cpu)
            .with(Node::P32, Device::Cpu)
            .with(Node::M32, Device::Cpu)
            .with(Node::V32, Device::Cpu)
            .with(Node::Update, Device::Cpu)
            .with(Node::Float2Half, Device::Cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_and_device_of_roundtrip() {
        let a = Assignment::ALL_GPU.with(Node::G16, Device::Cpu);
        assert_eq!(a.device_of(Node::G16), Device::Cpu);
        assert_eq!(a.device_of(Node::P16), Device::Gpu);
        let back = a.with(Node::G16, Device::Gpu);
        assert_eq!(back, Assignment::ALL_GPU);
    }

    #[test]
    fn all_enumerates_256_distinct() {
        let v: Vec<Assignment> = Assignment::all().collect();
        assert_eq!(v.len(), 256);
        let mut sorted: Vec<u8> = v.iter().map(|a| a.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 256);
    }

    #[test]
    fn baseline_metrics() {
        let g = DataFlowGraph::training_iteration();
        let base = Assignment::ALL_GPU;
        assert!(!base.is_offload());
        assert_eq!(base.comm_volume_m(&g), 0);
        assert_eq!(base.gpu_memory_m(), 16);
        assert_eq!(base.cpu_compute(), Complexity::None);
        assert!((base.memory_reduction(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_offload_metrics_match_paper() {
        let g = DataFlowGraph::training_iteration();
        let zo = Assignment::zero_offload();
        assert!(zo.is_offload());
        // Sec. 3.3: minimum communication volume is 4M.
        assert_eq!(zo.comm_volume_m(&g), 4);
        // Sec. 3.4: 2M resident (p16 only) = 8x reduction.
        assert_eq!(zo.gpu_memory_m(), 2);
        assert!((zo.memory_reduction(&g) - 8.0).abs() < 1e-12);
        // Sec. 3.2: CPU never executes O(M·B) work.
        assert_eq!(zo.cpu_compute(), Complexity::Model);
    }

    #[test]
    fn g16_only_offload_is_row_two_of_table1() {
        let g = DataFlowGraph::training_iteration();
        let a = Assignment::ALL_GPU.with(Node::G16, Device::Cpu);
        assert_eq!(a.comm_volume_m(&g), 4);
        assert_eq!(a.gpu_memory_m(), 14);
    }

    #[test]
    fn splitting_fp32_states_raises_communication() {
        // Placing p32 on CPU but the update on GPU must cost at least 6M
        // (Sec. 3.3's fp32 super-node argument).
        let g = DataFlowGraph::training_iteration();
        let a = Assignment::ALL_GPU.with(Node::P32, Device::Cpu);
        assert!(a.comm_volume_m(&g) >= 6, "got {}", a.comm_volume_m(&g));
    }
}
