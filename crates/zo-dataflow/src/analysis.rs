//! The first-principles derivation of the unique optimal offload strategy
//! (paper Secs. 3.2–3.5) as executable analysis.
//!
//! Rather than asserting the paper's conclusions, this module *derives*
//! them by exhaustive enumeration over all 256 partitions of the data-flow
//! graph, which both regenerates Table 1 and machine-checks the
//! unique-optimality theorem.

use crate::graph::{Complexity, DataFlowGraph, Node, NODES};
use crate::partition::{Assignment, Device};

/// Metrics of one offload strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyMetrics {
    /// The assignment.
    pub assignment: Assignment,
    /// CPU↔GPU traffic per iteration, multiples of M bytes.
    pub comm_volume_m: u32,
    /// Model-state bytes on GPU, multiples of M.
    pub gpu_memory_m: u32,
    /// Memory reduction factor versus the 16M baseline.
    pub reduction: f64,
    /// Heaviest compute class placed on the CPU.
    pub cpu_compute: Complexity,
}

impl StrategyMetrics {
    /// Computes metrics for an assignment.
    pub fn of(assignment: Assignment, graph: &DataFlowGraph) -> StrategyMetrics {
        StrategyMetrics {
            assignment,
            comm_volume_m: assignment.comm_volume_m(graph),
            gpu_memory_m: assignment.gpu_memory_m(),
            reduction: assignment.memory_reduction(graph),
            cpu_compute: assignment.cpu_compute(),
        }
    }
}

/// Step 1 (Sec. 3.2): strategies that keep O(M·B) compute off the CPU.
pub fn cpu_compute_feasible(graph: &DataFlowGraph) -> Vec<StrategyMetrics> {
    Assignment::all()
        .filter(|a| a.cpu_compute() < Complexity::ModelTimesBatch)
        .map(|a| StrategyMetrics::of(a, graph))
        .collect()
}

/// The minimum communication volume over all *offload* strategies that
/// keep O(M·B) compute on the GPU (Sec. 3.3 proves this is 4M).
pub fn min_offload_comm_m(graph: &DataFlowGraph) -> u32 {
    cpu_compute_feasible(graph)
        .into_iter()
        .filter(|m| m.assignment.is_offload())
        .map(|m| m.comm_volume_m)
        .min()
        .unwrap_or(0)
}

/// Step 2 (Sec. 3.3): feasible strategies achieving minimum communication.
pub fn min_comm_strategies(graph: &DataFlowGraph) -> Vec<StrategyMetrics> {
    let min = min_offload_comm_m(graph);
    cpu_compute_feasible(graph)
        .into_iter()
        .filter(|m| m.assignment.is_offload() && m.comm_volume_m == min)
        .collect()
}

/// Step 3 (Sec. 3.4, Table 1): the minimum-communication strategies grouped
/// into the four rows of Table 1 (keyed by the g16 / Update-super
/// placement), sorted by descending GPU memory.
pub fn table1_rows(graph: &DataFlowGraph) -> Vec<StrategyMetrics> {
    let mut rows: Vec<StrategyMetrics> = min_comm_strategies(graph);
    // Include the all-GPU baseline as row 1.
    rows.push(StrategyMetrics::of(Assignment::ALL_GPU, graph));
    rows.sort_by(|a, b| {
        b.gpu_memory_m
            .cmp(&a.gpu_memory_m)
            .then(a.comm_volume_m.cmp(&b.comm_volume_m))
    });
    rows.dedup_by_key(|m| (m.gpu_memory_m, m.comm_volume_m));
    rows
}

/// Step 4 (Sec. 3.5): the unique optimal strategy.
///
/// Among feasible minimum-communication strategies, exactly one maximizes
/// memory savings; returns it (and the theorem checker verifies it equals
/// [`Assignment::zero_offload`]).
pub fn optimal_strategy(graph: &DataFlowGraph) -> StrategyMetrics {
    min_comm_strategies(graph)
        .into_iter()
        .min_by(|a, b| {
            a.gpu_memory_m
                .cmp(&b.gpu_memory_m)
                .then_with(|| a.cpu_compute.cmp(&b.cpu_compute))
        })
        .expect("graph admits at least one offload strategy")
}

/// Violations found by [`check_unique_optimality`].
#[derive(Debug, Clone, PartialEq)]
pub enum OptimalityViolation {
    /// A different strategy matched ZeRO-Offload on every metric.
    NotUnique {
        /// The other assignment achieving the same metrics.
        other: Assignment,
    },
    /// A strategy dominated ZeRO-Offload (better on some metric, no worse
    /// on the others).
    Dominated {
        /// The dominating assignment.
        by: Assignment,
    },
}

/// Machine-checks the paper's Sec. 3.5 theorem: no strategy offers more
/// memory savings than ZeRO-Offload without increasing CPU compute beyond
/// O(M) or exceeding the minimum communication volume — and among
/// strategies matching ZeRO-Offload's metrics, the placement of the model
/// states is unique.
///
/// Returns `Ok(metrics_of_zero_offload)` or the list of violations.
pub fn check_unique_optimality(
    graph: &DataFlowGraph,
) -> Result<StrategyMetrics, Vec<OptimalityViolation>> {
    let zo = StrategyMetrics::of(Assignment::zero_offload(), graph);
    let mut violations = Vec::new();
    for m in cpu_compute_feasible(graph) {
        if !m.assignment.is_offload() || m.assignment == zo.assignment {
            continue;
        }
        let better_memory = m.gpu_memory_m < zo.gpu_memory_m;
        let not_worse_comm = m.comm_volume_m <= zo.comm_volume_m;
        if better_memory && not_worse_comm {
            violations.push(OptimalityViolation::Dominated { by: m.assignment });
        }
        // Uniqueness over *data placement*: another assignment with the
        // same data placement differs only in compute placement; a truly
        // distinct strategy must place some model state differently.
        let same_metrics = m.gpu_memory_m == zo.gpu_memory_m && m.comm_volume_m == zo.comm_volume_m;
        if same_metrics && data_placement(m.assignment) != data_placement(zo.assignment) {
            violations.push(OptimalityViolation::NotUnique {
                other: m.assignment,
            });
        }
    }
    if violations.is_empty() {
        Ok(zo)
    } else {
        Err(violations)
    }
}

/// The data-node placement bits of an assignment.
fn data_placement(a: Assignment) -> u8 {
    NODES
        .iter()
        .filter(|n| n.is_data() && a.device_of(**n) == Device::Cpu)
        .fold(0u8, |acc, n| acc | (1 << n.index()))
}

/// Renders Table 1 as aligned text (the `table1` binary prints this).
pub fn render_table1(graph: &DataFlowGraph) -> String {
    let mut out = String::new();
    out.push_str("| FWD-BWD | p16 | g16 | Update | GPU Memory | Reduction |\n");
    out.push_str("|---------|-----|-----|--------|------------|-----------|\n");
    for row in table1_rows(graph) {
        let dev = |n: Node| match row.assignment.device_of(n) {
            Device::Gpu => "gpu",
            Device::Cpu => "cpu",
        };
        let reduction = if row.reduction == 1.0 {
            "1x (baseline)".to_string()
        } else if (row.reduction - row.reduction.round()).abs() < 1e-9 {
            format!("{}x", row.reduction.round() as u32)
        } else {
            format!("{:.2}x", row.reduction)
        };
        out.push_str(&format!(
            "| {:7} | {:3} | {:3} | {:6} | {:>9}M | {:9} |\n",
            dev(Node::FwdBwd),
            dev(Node::P16),
            dev(Node::G16),
            dev(Node::Update),
            row.gpu_memory_m,
            reduction
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> DataFlowGraph {
        DataFlowGraph::training_iteration()
    }

    #[test]
    fn minimum_communication_is_4m() {
        // Sec. 3.3's theorem: any offload strategy cuts at least two edges
        // of weight >= 2M each.
        assert_eq!(min_offload_comm_m(&graph()), 4);
    }

    #[test]
    fn min_comm_strategies_colocate_fp32_states() {
        // Sec. 3.3: minimum communication requires the fp32 super-node.
        for m in min_comm_strategies(&graph()) {
            let d = m.assignment.device_of(Node::Update);
            for n in [Node::P32, Node::M32, Node::V32, Node::Float2Half] {
                assert_eq!(
                    m.assignment.device_of(n),
                    d,
                    "fp32 state {} split from Update in {:?}",
                    n.name(),
                    m.assignment
                );
            }
        }
    }

    #[test]
    fn min_comm_strategies_keep_p16_on_gpu() {
        // Sec. 3.3's p16 assignment argument.
        for m in min_comm_strategies(&graph()) {
            assert_eq!(m.assignment.device_of(Node::P16), Device::Gpu);
            assert_eq!(m.assignment.device_of(Node::FwdBwd), Device::Gpu);
        }
    }

    #[test]
    fn table1_matches_paper() {
        let rows = table1_rows(&graph());
        let mem: Vec<u32> = rows.iter().map(|r| r.gpu_memory_m).collect();
        // Baseline 16M, g16-offload 14M, update-offload 4M, both 2M.
        // (The paper's Table 1 lists the final row as "4M | 8x"; 8x of 16M
        // is 2M — the memory column there is a typo, the text and the
        // reduction column agree with 2M.)
        assert_eq!(mem, vec![16, 14, 4, 2]);
        let red: Vec<f64> = rows.iter().map(|r| r.reduction).collect();
        assert!((red[0] - 1.0).abs() < 1e-9);
        assert!((red[1] - 16.0 / 14.0).abs() < 1e-9);
        assert!((red[2] - 4.0).abs() < 1e-9);
        assert!((red[3] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn derived_optimum_is_zero_offload() {
        let opt = optimal_strategy(&graph());
        assert_eq!(
            data_placement(opt.assignment),
            data_placement(Assignment::zero_offload())
        );
        assert_eq!(opt.gpu_memory_m, 2);
        assert_eq!(opt.comm_volume_m, 4);
    }

    #[test]
    fn unique_optimality_theorem_holds() {
        let zo = check_unique_optimality(&graph()).expect("theorem must hold");
        assert_eq!(zo.gpu_memory_m, 2);
        assert_eq!(zo.comm_volume_m, 4);
        assert_eq!(zo.cpu_compute, Complexity::Model);
    }

    #[test]
    fn render_table1_has_four_rows_plus_header() {
        let s = render_table1(&graph());
        assert_eq!(s.lines().count(), 6);
        assert!(s.contains("1x (baseline)"));
        assert!(s.contains("8x"));
    }
}
