//! The training-iteration data-flow graph of paper Sec. 3.1 (Fig. 2).
//!
//! Nodes are either model-state data (circles in Fig. 2) or computation
//! (rectangles); edge weights are bytes moved per iteration, in multiples
//! of the model size `M`: 2M for fp16 producers, 4M for fp32 producers.

/// The nodes of the mixed-precision Adam training graph.
///
/// Order matters: it is the bit position used by
/// [`Assignment`](crate::partition::Assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// fp16 parameters (2M bytes).
    P16,
    /// fp16 gradients (2M bytes).
    G16,
    /// fp32 master parameters (4M bytes).
    P32,
    /// fp32 momentum (4M bytes).
    M32,
    /// fp32 variance (4M bytes).
    V32,
    /// Fused forward+backward super-node — O(M·B) compute.
    FwdBwd,
    /// The Adam parameter update — O(M) compute.
    Update,
    /// The fp32→fp16 parameter cast — O(M) compute.
    Float2Half,
}

/// All nodes, in bit order.
pub const NODES: [Node; 8] = [
    Node::P16,
    Node::G16,
    Node::P32,
    Node::M32,
    Node::V32,
    Node::FwdBwd,
    Node::Update,
    Node::Float2Half,
];

impl Node {
    /// Bit index of this node in an assignment mask.
    pub fn index(self) -> usize {
        match self {
            Node::P16 => 0,
            Node::G16 => 1,
            Node::P32 => 2,
            Node::M32 => 3,
            Node::V32 => 4,
            Node::FwdBwd => 5,
            Node::Update => 6,
            Node::Float2Half => 7,
        }
    }

    /// Whether this is a model-state data node.
    pub fn is_data(self) -> bool {
        matches!(
            self,
            Node::P16 | Node::G16 | Node::P32 | Node::M32 | Node::V32
        )
    }

    /// Whether this is a computation node.
    pub fn is_compute(self) -> bool {
        !self.is_data()
    }

    /// Resident size of a data node, in multiples of M bytes (0 for
    /// compute nodes).
    pub fn size_m(self) -> u32 {
        match self {
            Node::P16 | Node::G16 => 2,
            Node::P32 | Node::M32 | Node::V32 => 4,
            _ => 0,
        }
    }

    /// Compute complexity class of a compute node.
    pub fn complexity(self) -> Complexity {
        match self {
            Node::FwdBwd => Complexity::ModelTimesBatch,
            Node::Update | Node::Float2Half => Complexity::Model,
            _ => Complexity::None,
        }
    }

    /// Short display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Node::P16 => "p16",
            Node::G16 => "g16",
            Node::P32 => "p32",
            Node::M32 => "m32",
            Node::V32 => "v32",
            Node::FwdBwd => "FWD-BWD",
            Node::Update => "Update",
            Node::Float2Half => "float2half",
        }
    }
}

/// Asymptotic compute complexity per training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Complexity {
    /// Data node: no compute.
    None,
    /// O(M): scales with model size only (updates, casts, norms).
    Model,
    /// O(M·B): scales with model size times batch size (fwd/bwd).
    ModelTimesBatch,
}

/// A directed edge with a weight in multiples of M bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producing node.
    pub from: Node,
    /// Consuming node.
    pub to: Node,
    /// Data volume per iteration, in multiples of M bytes.
    pub weight_m: u32,
}

/// The data-flow graph of one training iteration.
#[derive(Debug, Clone)]
pub struct DataFlowGraph {
    edges: Vec<Edge>,
}

impl DataFlowGraph {
    /// Builds the mixed-precision-Adam training graph of Fig. 2.
    ///
    /// Edge weights follow the paper: an fp16 state flows as 2M bytes, an
    /// fp32 state as 4M. The fp16 parameters are consumed by both halves
    /// of the fused FWD-BWD super-node, giving that edge weight 4M.
    pub fn training_iteration() -> DataFlowGraph {
        use Node::*;
        let e = |from, to, weight_m| Edge { from, to, weight_m };
        DataFlowGraph {
            edges: vec![
                // Parameters feed forward and backward (2M each, fused).
                e(P16, FwdBwd, 4),
                // Backward produces fp16 gradients.
                e(FwdBwd, G16, 2),
                // Gradients feed the optimizer.
                e(G16, Update, 2),
                // fp32 states are read and written by the update.
                e(P32, Update, 4),
                e(Update, P32, 4),
                e(M32, Update, 4),
                e(Update, M32, 4),
                e(V32, Update, 4),
                e(Update, V32, 4),
                // Updated master params are cast down to fp16.
                e(P32, Float2Half, 4),
                e(Float2Half, P16, 2),
            ],
        }
    }

    /// The edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Total fp16+fp32 model-state bytes, in multiples of M (the paper's
    /// 16M baseline).
    pub fn total_state_m(&self) -> u32 {
        NODES.iter().map(|n| n.size_m()).sum()
    }

    /// Replaces every edge weight via `f` (used by property tests to
    /// check that conclusions are robust to weight perturbations).
    pub fn map_weights(&self, f: impl Fn(&Edge) -> u32) -> DataFlowGraph {
        DataFlowGraph {
            edges: self
                .edges
                .iter()
                .map(|e| Edge {
                    weight_m: f(e),
                    ..*e
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_16m() {
        let g = DataFlowGraph::training_iteration();
        assert_eq!(g.total_state_m(), 16);
    }

    #[test]
    fn node_index_is_a_bijection() {
        let mut seen = [false; 8];
        for n in NODES {
            let i = n.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn data_vs_compute_partition() {
        let data: Vec<Node> = NODES.iter().copied().filter(|n| n.is_data()).collect();
        assert_eq!(data.len(), 5);
        let compute: Vec<Node> = NODES.iter().copied().filter(|n| n.is_compute()).collect();
        assert_eq!(compute.len(), 3);
        for n in NODES {
            assert_ne!(n.is_data(), n.is_compute());
        }
    }

    #[test]
    fn edge_weights_match_precision_rule() {
        // Every edge whose source produces fp16 data weighs 2M; fp32, 4M.
        // The p16→FWD-BWD edge is the fused double-read (4M).
        let g = DataFlowGraph::training_iteration();
        for e in g.edges() {
            match e.from {
                Node::P16 => assert_eq!(e.weight_m, 4, "fused fwd+bwd read"),
                Node::FwdBwd | Node::G16 | Node::Float2Half => assert_eq!(e.weight_m, 2),
                Node::P32 | Node::M32 | Node::V32 | Node::Update => assert_eq!(e.weight_m, 4),
            }
        }
    }

    #[test]
    fn every_node_lies_on_a_cycle() {
        // Sec. 3.3's minimum-communication argument requires it.
        let g = DataFlowGraph::training_iteration();
        // Reachability closure.
        let reachable = |from: Node| -> Vec<Node> {
            let mut seen = vec![from];
            let mut stack = vec![from];
            while let Some(n) = stack.pop() {
                for e in g.edges().iter().filter(|e| e.from == n) {
                    if !seen.contains(&e.to) {
                        seen.push(e.to);
                        stack.push(e.to);
                    }
                }
            }
            seen
        };
        for n in NODES {
            // A node is on a cycle iff some successor can reach it.
            let on_cycle = g
                .edges()
                .iter()
                .filter(|e| e.from == n)
                .any(|e| reachable(e.to).contains(&n));
            assert!(on_cycle, "{} is not on a cycle", n.name());
        }
    }
}
