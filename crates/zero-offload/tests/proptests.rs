//! Property-based tests for the PCIe wire format and gradient bucketer.
//!
//! The offload path's correctness rests on two mechanical invariants:
//! frames survive the encode/decode round-trip bit-exactly, and the
//! bucketer's scatter/gather is lossless for any parameter count and
//! bucket budget (including a ragged final bucket).

use proptest::prelude::*;
use zero_offload::bucket::{scatter_frames, GradBucketer};
use zero_offload::wire::{decode_frame, encode_frame, frame_bytes, WireError, HEADER_BYTES};
use zo_tensor::F16;

fn f16_vec(max_len: usize) -> impl Strategy<Value = Vec<F16>> {
    prop::collection::vec(0u16..=u16::MAX, 0..max_len)
        .prop_map(|bits| bits.into_iter().map(F16::from_bits).collect())
}

proptest! {
    /// Any (seq, offset, payload) round-trips bit-exactly through the
    /// wire format, and the frame is exactly `frame_bytes` long.
    #[test]
    fn frame_roundtrip_is_bit_exact(
        seq in 0u32..=u32::MAX,
        offset in 0u64..1_000_000_000_000,
        values in f16_vec(64),
    ) {
        let frame = encode_frame(seq, offset, &values);
        prop_assert_eq!(frame.len(), frame_bytes(values.len()));
        let decoded = decode_frame(frame).unwrap();
        prop_assert_eq!(decoded.seq, seq);
        prop_assert_eq!(decoded.offset, offset);
        prop_assert_eq!(decoded.values.len(), values.len());
        for (a, b) in decoded.values.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Corrupting any payload byte is caught by the checksum.
    #[test]
    fn corrupted_payload_fails_checksum(
        values in f16_vec(32),
        victim in 0usize..1024,
        flip in 1u8..=255,
    ) {
        prop_assume!(!values.is_empty());
        let frame = encode_frame(0, 0, &values);
        let mut raw = frame.to_vec();
        let victim = HEADER_BYTES + victim % (raw.len() - HEADER_BYTES);
        raw[victim] ^= flip;
        let err = decode_frame(bytes::Bytes::from(raw)).unwrap_err();
        prop_assert!(matches!(err, WireError::BadChecksum { .. }), "{err:?}");
    }

    /// A truncated buffer never decodes.
    #[test]
    fn truncated_frame_is_rejected(values in f16_vec(32), keep in 0usize..1024) {
        let frame = encode_frame(0, 0, &values);
        prop_assume!(!frame.is_empty());
        let keep = keep % frame.len();
        let raw = frame.to_vec()[..keep].to_vec();
        let err = decode_frame(bytes::Bytes::from(raw)).unwrap_err();
        prop_assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
    }

    /// Bucketing a contiguous gradient buffer into arbitrary bucket
    /// budgets and pushing it in arbitrary chunk sizes loses nothing:
    /// scatter reassembles the exact fp16 values, frames respect the
    /// bucket capacity (only the final one may be ragged), sequence
    /// numbers are monotone and byte accounting matches.
    #[test]
    fn bucketer_scatter_gather_roundtrip(
        n in 1usize..400,
        cap_elems in 1usize..48,
        chunk in 1usize..64,
    ) {
        let src: Vec<F16> = (0..n).map(|i| F16::from_f32((i % 97) as f32 * 0.25)).collect();
        let mut b = GradBucketer::new(2 * cap_elems);
        let mut off = 0usize;
        while off < n {
            let take = chunk.min(n - off);
            b.push(off as u64, &src[off..off + take]);
            off += take;
        }
        b.flush();
        let frames: Vec<_> = b
            .take_frames()
            .into_iter()
            .map(|f| decode_frame(f).unwrap())
            .collect();

        // Capacity: every frame but the last is exactly full.
        prop_assert_eq!(frames.len(), n.div_ceil(cap_elems));
        for f in &frames[..frames.len() - 1] {
            prop_assert_eq!(f.values.len(), cap_elems);
        }
        let last = &frames[frames.len() - 1];
        prop_assert_eq!(last.values.len(), n - (frames.len() - 1) * cap_elems);

        // Monotone seq, contiguous offsets.
        for (i, f) in frames.iter().enumerate() {
            prop_assert_eq!(f.seq, i as u32);
            prop_assert_eq!(f.offset, (i * cap_elems) as u64);
        }

        // Lossless reassembly.
        let mut dst = vec![f32::NAN; n];
        let written = scatter_frames(&frames, &mut dst);
        prop_assert_eq!(written, n);
        for (d, s) in dst.iter().zip(&src) {
            prop_assert_eq!(*d, s.to_f32());
        }

        // Byte accounting: payload is 2·n, wire adds one header per frame.
        prop_assert_eq!(b.payload_bytes(), 2 * n as u64);
        prop_assert_eq!(
            b.wire_bytes(),
            (2 * n + frames.len() * HEADER_BYTES) as u64
        );
        prop_assert_eq!(b.frames_emitted() as usize, frames.len());
    }

    /// A discontinuous push closes the open bucket: the emitted frames
    /// still reassemble both spans exactly.
    #[test]
    fn discontinuous_spans_reassemble(
        a_len in 1usize..40,
        gap in 1u64..100,
        b_len in 1usize..40,
        cap_elems in 1usize..32,
    ) {
        let mk = |len: usize, base: f32| -> Vec<F16> {
            (0..len).map(|i| F16::from_f32(base + i as f32)).collect()
        };
        let (a, c) = (mk(a_len, 1.0), mk(b_len, 500.0));
        let b_off = a_len as u64 + gap;
        let mut bk = GradBucketer::new(2 * cap_elems);
        bk.push(0, &a);
        bk.push(b_off, &c);
        bk.flush();
        let frames: Vec<_> =
            bk.take_frames().into_iter().map(|f| decode_frame(f).unwrap()).collect();
        let total = b_off as usize + b_len;
        let mut dst = vec![0.0f32; total];
        prop_assert_eq!(scatter_frames(&frames, &mut dst), a_len + b_len);
        for (i, v) in a.iter().enumerate() {
            prop_assert_eq!(dst[i], v.to_f32());
        }
        // The gap stays untouched.
        for v in &dst[a_len..b_off as usize] {
            prop_assert_eq!(*v, 0.0);
        }
        for (i, v) in c.iter().enumerate() {
            prop_assert_eq!(dst[b_off as usize + i], v.to_f32());
        }
    }
}
