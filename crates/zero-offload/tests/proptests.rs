//! Property-based tests for the PCIe wire format and gradient bucketer.
//!
//! The offload path's correctness rests on two mechanical invariants:
//! frames survive the encode/decode round-trip bit-exactly, and the
//! bucketer's scatter/gather is lossless for any parameter count and
//! bucket budget (including a ragged final bucket).

use proptest::prelude::*;
use zero_offload::bucket::{scatter_frames, GradBucketer};
use zero_offload::framing;
use zero_offload::wire::{decode_frame, encode_frame, frame_bytes, WireError, HEADER_BYTES};
use zero_offload::FrameError;
use zero_offload::{run_zero3_ranks, Zero3Cache, Zero3Event, Zero3Plan, ZeroOffloadConfig};
use zo_tensor::F16;

fn f16_vec(max_len: usize) -> impl Strategy<Value = Vec<F16>> {
    prop::collection::vec(0u16..=u16::MAX, 0..max_len)
        .prop_map(|bits| bits.into_iter().map(F16::from_bits).collect())
}

proptest! {
    /// Any (seq, offset, payload) round-trips bit-exactly through the
    /// wire format, and the frame is exactly `frame_bytes` long.
    #[test]
    fn frame_roundtrip_is_bit_exact(
        seq in 0u32..=u32::MAX,
        offset in 0u64..1_000_000_000_000,
        values in f16_vec(64),
    ) {
        let frame = encode_frame(seq, offset, &values);
        prop_assert_eq!(frame.len(), frame_bytes(values.len()));
        let decoded = decode_frame(frame).unwrap();
        prop_assert_eq!(decoded.seq, seq);
        prop_assert_eq!(decoded.offset, offset);
        prop_assert_eq!(decoded.values.len(), values.len());
        for (a, b) in decoded.values.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Corrupting any payload byte is caught by the checksum.
    #[test]
    fn corrupted_payload_fails_checksum(
        values in f16_vec(32),
        victim in 0usize..1024,
        flip in 1u8..=255,
    ) {
        prop_assume!(!values.is_empty());
        let frame = encode_frame(0, 0, &values);
        let mut raw = frame.to_vec();
        let victim = HEADER_BYTES + victim % (raw.len() - HEADER_BYTES);
        raw[victim] ^= flip;
        let err = decode_frame(bytes::Bytes::from(raw)).unwrap_err();
        prop_assert!(matches!(err, WireError::BadChecksum { .. }), "{err:?}");
    }

    /// A truncated buffer never decodes.
    #[test]
    fn truncated_frame_is_rejected(values in f16_vec(32), keep in 0usize..1024) {
        let frame = encode_frame(0, 0, &values);
        prop_assume!(!frame.is_empty());
        let keep = keep % frame.len();
        let raw = frame.to_vec()[..keep].to_vec();
        let err = decode_frame(bytes::Bytes::from(raw)).unwrap_err();
        prop_assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
    }

    /// Bucketing a contiguous gradient buffer into arbitrary bucket
    /// budgets and pushing it in arbitrary chunk sizes loses nothing:
    /// scatter reassembles the exact fp16 values, frames respect the
    /// bucket capacity (only the final one may be ragged), sequence
    /// numbers are monotone and byte accounting matches.
    #[test]
    fn bucketer_scatter_gather_roundtrip(
        n in 1usize..400,
        cap_elems in 1usize..48,
        chunk in 1usize..64,
    ) {
        let src: Vec<F16> = (0..n).map(|i| F16::from_f32((i % 97) as f32 * 0.25)).collect();
        let mut b = GradBucketer::new(2 * cap_elems);
        let mut off = 0usize;
        while off < n {
            let take = chunk.min(n - off);
            b.push(off as u64, &src[off..off + take]);
            off += take;
        }
        b.flush();
        let frames: Vec<_> = b
            .take_frames()
            .into_iter()
            .map(|f| decode_frame(f).unwrap())
            .collect();

        // Capacity: every frame but the last is exactly full.
        prop_assert_eq!(frames.len(), n.div_ceil(cap_elems));
        for f in &frames[..frames.len() - 1] {
            prop_assert_eq!(f.values.len(), cap_elems);
        }
        let last = &frames[frames.len() - 1];
        prop_assert_eq!(last.values.len(), n - (frames.len() - 1) * cap_elems);

        // Monotone seq, contiguous offsets.
        for (i, f) in frames.iter().enumerate() {
            prop_assert_eq!(f.seq, i as u32);
            prop_assert_eq!(f.offset, (i * cap_elems) as u64);
        }

        // Lossless reassembly.
        let mut dst = vec![f32::NAN; n];
        let written = scatter_frames(&frames, &mut dst);
        prop_assert_eq!(written, n);
        for (d, s) in dst.iter().zip(&src) {
            prop_assert_eq!(*d, s.to_f32());
        }

        // Byte accounting: payload is 2·n, wire adds one header per frame.
        prop_assert_eq!(b.payload_bytes(), 2 * n as u64);
        prop_assert_eq!(
            b.wire_bytes(),
            (2 * n + frames.len() * HEADER_BYTES) as u64
        );
        prop_assert_eq!(b.frames_emitted() as usize, frames.len());
    }

    /// A discontinuous push closes the open bucket: the emitted frames
    /// still reassemble both spans exactly.
    #[test]
    fn discontinuous_spans_reassemble(
        a_len in 1usize..40,
        gap in 1u64..100,
        b_len in 1usize..40,
        cap_elems in 1usize..32,
    ) {
        let mk = |len: usize, base: f32| -> Vec<F16> {
            (0..len).map(|i| F16::from_f32(base + i as f32)).collect()
        };
        let (a, c) = (mk(a_len, 1.0), mk(b_len, 500.0));
        let b_off = a_len as u64 + gap;
        let mut bk = GradBucketer::new(2 * cap_elems);
        bk.push(0, &a);
        bk.push(b_off, &c);
        bk.flush();
        let frames: Vec<_> =
            bk.take_frames().into_iter().map(|f| decode_frame(f).unwrap()).collect();
        let total = b_off as usize + b_len;
        let mut dst = vec![0.0f32; total];
        prop_assert_eq!(scatter_frames(&frames, &mut dst), a_len + b_len);
        for (i, v) in a.iter().enumerate() {
            prop_assert_eq!(dst[i], v.to_f32());
        }
        // The gap stays untouched.
        for v in &dst[a_len..b_off as usize] {
            prop_assert_eq!(*v, 0.0);
        }
        for (i, v) in c.iter().enumerate() {
            prop_assert_eq!(dst[b_off as usize + i], v.to_f32());
        }
    }
}

fn byte_vec(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=u8::MAX, 0..max_len)
}

proptest! {
    /// Any truncation of a framed blob — torn header or torn payload —
    /// decodes to the typed `Truncated` error, for any frame family.
    #[test]
    fn framing_truncation_is_always_typed(
        payload in byte_vec(96),
        magic in 0u32..=u32::MAX,
        version in 0u32..=u32::MAX,
        cut in 0usize..1024,
    ) {
        let spec = framing::FrameSpec { magic, version };
        let blob = framing::encode_frame(spec, &payload);
        let cut = cut % blob.len(); // blob.len() >= HEADER_BYTES > 0
        let err = framing::decode_frame(spec, &blob[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, FrameError::Truncated { .. }),
            "cut at {}: {:?}", cut, err
        );
    }

    /// Flipping any single byte of a framed blob decodes to the typed
    /// error of the region hit — never a panic, never silent success:
    /// magic bytes to `BadMagic`, version bytes to `BadVersion`, length
    /// bytes to `Truncated` (longer) or `Corrupted` (shorter), checksum
    /// and payload bytes to `Corrupted`.
    #[test]
    fn framing_single_byte_flip_is_typed_by_region(
        payload in byte_vec(64),
        magic in 0u32..=u32::MAX,
        victim in 0usize..1024,
        flip in 1u8..=255,
    ) {
        let spec = framing::FrameSpec { magic, version: 1 };
        let blob = framing::encode_frame(spec, &payload);
        let victim = victim % blob.len();
        let mut raw = blob.clone();
        raw[victim] ^= flip;
        let err = framing::decode_frame(spec, &raw).unwrap_err();
        let ok = match victim {
            0..=3 => matches!(err, FrameError::BadMagic { .. }),
            4..=7 => matches!(err, FrameError::BadVersion { .. }),
            8..=15 => matches!(
                err,
                FrameError::Truncated { .. } | FrameError::Corrupted { .. }
            ),
            _ => matches!(err, FrameError::Corrupted { .. }),
        };
        prop_assert!(ok, "flip {:#04x} at byte {}: {:?}", flip, victim, err);
    }

    /// Decoding arbitrary bytes never panics, and only succeeds when the
    /// blob really is a well-formed frame of the expected family (the
    /// returned payload then re-encodes to a decodable frame).
    #[test]
    fn framing_decode_of_arbitrary_bytes_never_panics(
        raw in byte_vec(256),
        magic in 0u32..=u32::MAX,
        version in 0u32..=u32::MAX,
    ) {
        let spec = framing::FrameSpec { magic, version };
        if let Ok(payload) = framing::decode_frame(spec, &raw) {
            prop_assert!(raw.len() >= framing::HEADER_BYTES + payload.len());
            let reframed = framing::encode_frame(spec, payload);
            prop_assert_eq!(framing::decode_frame(spec, &reframed).unwrap(), payload);
        }
    }
}

/// Cumulative layer ranges over random per-layer sizes.
fn layer_ranges(sizes: &[usize]) -> Vec<core::ops::Range<usize>> {
    let mut out = Vec::with_capacity(sizes.len());
    let mut at = 0;
    for &s in sizes {
        out.push(at..at + s);
        at += s;
    }
    out
}

proptest! {
    /// For any layer-size vector and world size, the stage-3 shard
    /// ownership is a disjoint exact cover of the parameter space: every
    /// index is owned by exactly one rank, ranges are contiguous and in
    /// rank order.
    #[test]
    fn stage3_ownership_is_a_disjoint_exact_cover(
        sizes in prop::collection::vec(1usize..60, 1..12),
        world in 1usize..6,
    ) {
        let layers = layer_ranges(&sizes);
        let total: usize = sizes.iter().sum();
        let mut at = 0;
        for rank in 0..world {
            let plan = Zero3Plan::new(layers.clone(), total, world, rank, 0, 0);
            let own = plan.owned_range();
            prop_assert_eq!(own.start, at, "rank {} starts where rank {} ended", rank, rank.max(1) - 1);
            prop_assert!(own.end >= own.start);
            at = own.end;
        }
        prop_assert_eq!(at, total, "ranks must tile the whole parameter space");
    }

    /// Replaying the gather/release schedule for any layer sizes, world,
    /// prefetch and cache budget: resident non-owned bytes never exceed
    /// cache budget + prefetch window, the LRU never admits past its
    /// budget, every transient is released by sweep end, and the cache's
    /// high-water mark equals the replayed maximum.
    #[test]
    fn stage3_schedule_never_exceeds_the_residency_budget(
        sizes in prop::collection::vec(1usize..60, 1..12),
        world in 1usize..6,
        rank_pick in 0usize..6,
        prefetch in 0usize..4,
        budget in 0usize..4000,
        steps in 1usize..4,
    ) {
        let layers = layer_ranges(&sizes);
        let total: usize = sizes.iter().sum();
        let rank = rank_pick % world;
        let plan = Zero3Plan::new(layers.clone(), total, world, rank, prefetch, budget);
        let max_layer_bytes = layers.iter().map(|r| 2 * r.len() as u64).max().unwrap();
        let window = (prefetch as u64 + 1) * max_layer_bytes;

        let mut cache = Zero3Cache::new();
        let mut running = 0u64; // non-owned fp16 bytes currently resident
        let mut replayed_peak = 0u64;
        for _ in 0..steps {
            for ev in plan.micro_batch_events(&mut cache) {
                match ev {
                    Zero3Event::Gather { layer, recv_bytes } => {
                        prop_assert_eq!(recv_bytes, plan.layer_nonowned_bytes(layer));
                        running += recv_bytes;
                    }
                    Zero3Event::Release { freed_bytes, .. } => {
                        prop_assert!(freed_bytes <= running, "released more than resident");
                        running -= freed_bytes;
                    }
                    Zero3Event::Hit { .. } | Zero3Event::Refresh { .. } => {}
                }
                prop_assert!(
                    running <= budget as u64 + window,
                    "resident non-owned {} exceeds budget {} + window {}",
                    running, budget, window
                );
                replayed_peak = replayed_peak.max(2 * plan.owned_range().len() as u64 + running);
            }
            // Sweep done: only cache-resident layers remain materialised.
            let cached_nonowned: u64 = cache
                .cached_layers()
                .iter()
                .map(|&l| plan.layer_nonowned_bytes(l))
                .sum();
            prop_assert_eq!(running, cached_nonowned, "transients leaked past the sweep");
            prop_assert!(cache.cached_full_bytes() <= budget as u64, "LRU admitted past its budget");
            // The refresh schedule touches exactly the cached layers.
            for ev in plan.publish_events(&cache) {
                match ev {
                    Zero3Event::Refresh { layer, recv_bytes } => {
                        prop_assert!(cache.cached_layers().contains(&layer));
                        prop_assert_eq!(recv_bytes, plan.layer_nonowned_bytes(layer));
                    }
                    other => prop_assert!(false, "unexpected publish event {other:?}"),
                }
            }
        }
        prop_assert_eq!(cache.peak_bytes(), replayed_peak, "high-water mark drifted from replay");
    }
}

proptest! {
    // Engine runs are costly; a handful of random seeds is plenty to pin
    // the invariant on top of the deterministic tests in
    // `tests/zero3_equivalence.rs`.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The prefetch depth is pure scheduling: for any model seed, worlds
    /// of 2 with prefetch 0, 1 and 3 produce bit-identical shards and
    /// losses.
    #[test]
    fn stage3_prefetch_depth_is_bitwise_invariant(seed in 0u64..1_000_000) {
        let gpt = zo_nn::GptConfig { vocab: 16, seq_len: 8, hidden: 8, heads: 2, layers: 1 };
        let run = |prefetch: usize| {
            let cfg = ZeroOffloadConfig {
                prefetch_layers: prefetch,
                ..ZeroOffloadConfig::default()
            };
            run_zero3_ranks(
                2,
                cfg,
                move |_| zo_nn::GptModel::new(gpt, seed),
                move |engine| {
                    let mut data = zo_models::BigramLm::new(16, 0.05, seed.wrapping_add(1));
                    let mut losses = Vec::new();
                    for _ in 0..3 {
                        let b = data.batch(2, 8);
                        let r = engine.rank();
                        let inputs = b.inputs[r * 8..(r + 1) * 8].to_vec();
                        let targets = b.targets[r * 8..(r + 1) * 8].to_vec();
                        let out = engine
                            .step(|m| m.train_step(&inputs, &targets, 1, 8, |_| {}))
                            .unwrap();
                        losses.push(out.loss().to_bits());
                    }
                    let shard: Vec<u32> =
                        engine.master_shard().iter().map(|v| v.to_bits()).collect();
                    (shard, losses)
                },
            )
        };
        let base = run(0);
        for prefetch in [1usize, 3] {
            let got = run(prefetch);
            prop_assert_eq!(&base, &got, "prefetch {} diverged", prefetch);
        }
    }
}
