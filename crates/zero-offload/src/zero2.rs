//! Multi-rank ZeRO-Offload: the symbiosis with ZeRO-2 (paper Sec. 4.2),
//! executed for real with threads as data-parallel ranks.
//!
//! Each rank holds a full fp16 model replica but owns only a `1/N`
//! contiguous shard of the optimizer state (fp32 master, momentum,
//! variance) — the ZeRO-2 partitioning. Per step: gradients are averaged
//! with reduce-scatter so each rank receives exactly its shard, the shard
//! crosses the "PCIe link" (fp16 rounding), the rank's CPU-Adam updates
//! its shard, and the updated fp16 parameters are re-assembled on every
//! rank with all-gather (the broadcast sequence of Fig. 5).
//!
//! The step state machine is the shared [`StepPipeline`] from
//! [`crate::pipeline`] — the same one behind the single-GPU engine — so
//! this module only supplies the sharded [`Placement`]: the collectives,
//! the per-rank tracks, and the lock-step bookkeeping.

use zo_collectives::{partition_range, Communicator};
use zo_fault::{lane, with_retry, FaultError, FaultSession, Site};
use zo_nn::Model;
use zo_optim::DynamicLossScaler;
use zo_tensor::{cast_f32_to_f16, F16};
use zo_trace::Tracer;

use crate::checkpoint::{CheckpointError, TrainingCheckpoint};
use crate::config::{resolve_fault_plan, resolve_tracer, ZeroOffloadConfig};
use crate::engine::{EngineStats, StepOutcome};
use crate::pipeline::{build_offload_updater, GradStream, Placement, StepError, StepPipeline};
use crate::wire::roundtrip_grads;

/// The ZeRO-2 placement: reduce-scatter in, shard-wise fp16 rounding,
/// all-gather out; overflow agreed by all-reduce so every rank skips (or
/// applies) the same step.
struct ShardPlacement {
    comm: Communicator,
    shard_start: usize,
    num_params: usize,
    track: String,
    /// Full-model gradient staging for the reduce-scatter, reused.
    full_grads: Vec<f32>,
    /// fp32 widening scratch for the all-gather, reused across steps.
    shard_f32: Vec<f32>,
    /// fp16 scratch for the shard's PCIe round trip, reused.
    wire16: Vec<F16>,
    /// fp32 scale scratch feeding the batched narrowing codec, reused.
    wire32: Vec<f32>,
}

impl ShardPlacement {
    /// All-gathers the fp16 shards and loads the full model. Gated by the
    /// `collective.allgather` fault site (the communicator's session, so
    /// every rank draws the same decision and errors in lock-step).
    fn gather_and_load<M: Model>(
        &mut self,
        model: &mut M,
        p16: &[F16],
        stats: &mut EngineStats,
        tracer: &Tracer,
    ) -> Result<(), FaultError> {
        let _gather = tracer.span(&self.track, "all_gather");
        self.shard_f32.resize(p16.len(), 0.0);
        F16::to_f32_slice(p16, &mut self.shard_f32);
        let full = self.comm.try_all_gather(&self.shard_f32, self.num_params)?;
        model.load_params_from(&full);
        stats.h2d_bytes += 2 * p16.len() as u64;
        tracer.add(&self.track, "h2d_bytes", 2 * p16.len() as u64);
        Ok(())
    }
}

impl<M: Model> Placement<M> for ShardPlacement {
    fn fwd_track(&self) -> &str {
        &self.track
    }

    fn counter_track(&self) -> &str {
        &self.track
    }

    fn transfer(
        &mut self,
        model: &mut M,
        grads: &mut [f32],
        scale: f32,
        denom: f32,
        _stream: &mut GradStream,
        stats: &mut EngineStats,
        tracer: &Tracer,
        faults: &mut FaultSession,
    ) -> Result<bool, FaultError> {
        // Reduce-scatter the averaged gradients: this rank receives its
        // owned shard only (Fig. 5, line 29).
        {
            let _rs = tracer.span(&self.track, "reduce_scatter");
            model.copy_grads_to(&mut self.full_grads);
            let shard = self.comm.try_reduce_scatter_mean(&self.full_grads)?;
            grads.copy_from_slice(&shard);
        }
        // The reduced shard crosses PCIe: the per-rank wire gate.
        with_retry(faults, Site::WireD2h, tracer, &self.track, || ())?;

        // The shard crosses PCIe as fp16, with loss scaling.
        let overflow = roundtrip_grads(grads, denom, scale, &mut self.wire32, &mut self.wire16);
        stats.d2h_bytes += 2 * grads.len() as u64;
        tracer.add(&self.track, "d2h_bytes", 2 * grads.len() as u64);
        Ok(overflow)
    }

    fn combine_overflow(&mut self, local: bool) -> bool {
        // Overflow anywhere must skip the step everywhere.
        let mut flag = vec![if local { 1.0f32 } else { 0.0 }];
        self.comm.all_reduce_sum(&mut flag);
        flag[0] > 0.0
    }

    fn clip_grads(&mut self, _grads: &mut [f32], _max_norm: f64) {
        // A faithful global-norm clip would need another collective over
        // the shards; the sharded engine does not clip.
    }

    fn update_span(&self) -> (&str, &str) {
        (&self.track, "partition_update")
    }

    fn publish(
        &mut self,
        model: &mut M,
        p16: &[F16],
        stats: &mut EngineStats,
        tracer: &Tracer,
        _faults: &mut FaultSession,
    ) -> Result<(), FaultError> {
        // The all-gather is the sharded copy-back; its gate lives on the
        // communicator's shared session, not the per-rank one.
        self.gather_and_load(model, p16, stats, tracer)
    }

    fn on_skip(
        &mut self,
        model: &mut M,
        p16: &[F16],
        stats: &mut EngineStats,
        tracer: &Tracer,
    ) -> Result<(), FaultError> {
        // Parameters unchanged, but ranks must stay in lock-step through
        // the same collective sequence.
        self.gather_and_load(model, p16, stats, tracer)
    }

    fn closes_step(&self) -> bool {
        // One rank closes the step boundary: `StepMetrics` sums counter
        // deltas over tracks, so the per-step row aggregates all ranks.
        self.comm.rank() == 0
    }
}

/// One data-parallel rank of a ZeRO-2 + offload training group.
pub struct Zero2OffloadEngine<M: Model> {
    model: M,
    pipe: StepPipeline,
    placement: ShardPlacement,
    /// Inert: the sharded path transfers via reduce-scatter, not the
    /// per-layer wire stream.
    stream: GradStream,
}

impl<M: Model> Zero2OffloadEngine<M> {
    /// Wraps one rank's model replica.
    ///
    /// All ranks must construct identically-initialized models (same seed)
    /// — exactly as data-parallel training requires.
    pub fn new(mut model: M, cfg: ZeroOffloadConfig, comm: Communicator) -> Zero2OffloadEngine<M> {
        let n = model.num_params();
        let range = partition_range(n, comm.world(), comm.rank());
        let mut full = vec![0.0f32; n];
        model.copy_params_to(&mut full);
        let master = full[range.clone()].to_vec();
        let shard_len = master.len();
        let tracer = resolve_tracer(cfg.tracer);
        let track = format!("rank{}", comm.rank());
        let updater = build_offload_updater(&cfg, &master, &tracer, &format!("{track}_optimizer"));
        let mut p16 = vec![F16::ZERO; shard_len];
        cast_f32_to_f16(&master, &mut p16);
        let plan = resolve_fault_plan(cfg.faults);
        let placement = ShardPlacement {
            comm,
            shard_start: range.start,
            num_params: n,
            track,
            full_grads: vec![0.0f32; n],
            shard_f32: Vec::new(),
            wire16: Vec::new(),
            wire32: Vec::new(),
        };
        let pipe = StepPipeline {
            master,
            p16,
            grads: vec![0.0f32; shard_len],
            updater,
            scaler: DynamicLossScaler::new(cfg.loss_scale),
            micro_in_window: 0,
            stats: EngineStats::default(),
            tracer,
            grad_accumulation: cfg.grad_accumulation,
            max_grad_norm: 0.0,
            pool_base: zo_tensor::pool::global().stats(),
            // All ranks share lane ENGINE (no rank offset): lock-step SPMD
            // execution visits every site in the same order, so identical
            // lanes make identical per-rank fault decisions — a fatal
            // `wire.d2h` or `optim.cpu_step` fault errors on *every* rank
            // before the next collective, never deadlocking a barrier.
            faults: FaultSession::new(plan.clone(), lane::ENGINE),
            overflow_storm_limit: cfg.overflow_storm_limit,
        };
        let mut engine = Zero2OffloadEngine {
            model,
            pipe,
            placement,
            stream: GradStream::inert(),
        };
        // Start from the fp16 rounding of the initial parameters, agreed
        // across ranks through the same gather path used in training. The
        // communicator's fault gate is installed only *after* this
        // initialization sync — construction itself is not a fault site.
        engine
            .placement
            .gather_and_load(
                &mut engine.model,
                &engine.pipe.p16,
                &mut engine.pipe.stats,
                &engine.pipe.tracer,
            )
            .expect("initial gather runs before fault gates are installed");
        if plan.is_enabled() {
            engine.placement.comm.install_faults(
                FaultSession::new(plan, lane::COLLECTIVE),
                engine.pipe.tracer.clone(),
                &engine.placement.track,
            );
        }
        engine
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.placement.comm.rank()
    }

    /// Group size.
    pub fn world(&self) -> usize {
        self.placement.comm.world()
    }

    /// Cumulative counters for this rank.
    pub fn stats(&self) -> &EngineStats {
        &self.pipe.stats
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// This rank's fp32 master shard.
    pub fn master_shard(&self) -> &[f32] {
        &self.pipe.master
    }

    /// Flat-parameter range owned by this rank (ZeRO-2 partition).
    pub fn shard_range(&self) -> core::ops::Range<usize> {
        self.placement.shard_start..self.placement.shard_start + self.pipe.master.len()
    }

    /// One micro-batch; at window boundaries, the partitioned update.
    ///
    /// All ranks must call `step` the same number of times (collectives
    /// synchronize them).
    pub fn step<E>(
        &mut self,
        run_backward: impl FnOnce(&mut M) -> Result<f32, E>,
    ) -> Result<StepOutcome, StepError<E>> {
        self.pipe.step(
            &mut self.model,
            &mut self.placement,
            &mut self.stream,
            |m, _| run_backward(m),
        )
    }

    /// Captures this rank's training state (shard-sized: master, moments,
    /// scaler, DPU clock, counters). Every rank checkpoints its own
    /// shard; restoring all shards restores the run.
    pub fn save_checkpoint(&self) -> TrainingCheckpoint {
        self.pipe.capture_state()
    }

    /// Restores a checkpoint saved by the same rank of an identically
    /// configured group, then all-gathers the restored shards to reload
    /// the full fp16 replica.
    ///
    /// The reload is a collective: **all ranks must restore
    /// concurrently**, like [`Zero2OffloadEngine::step`].
    pub fn restore_checkpoint(&mut self, ckpt: &TrainingCheckpoint) -> Result<(), CheckpointError> {
        self.pipe.restore_state(ckpt)?;
        self.placement
            .gather_and_load(
                &mut self.model,
                &self.pipe.p16,
                &mut self.pipe.stats,
                &self.pipe.tracer,
            )
            .map_err(CheckpointError::Fault)
    }
}

/// Runs `world` ranks on threads; `body` receives each rank's engine.
///
/// Convenience harness used by tests, examples and benches. Returns each
/// rank's output in rank order.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn run_ranks<M, T, F>(
    world: usize,
    cfg: ZeroOffloadConfig,
    make_model: impl Fn(usize) -> M + Send + Sync,
    body: F,
) -> Vec<T>
where
    M: Model + Send,
    T: Send,
    F: Fn(&mut Zero2OffloadEngine<M>) -> T + Send + Sync,
{
    let comms = Communicator::group(world);
    std::thread::scope(|scope| {
        let body = &body;
        let make_model = &make_model;
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                scope.spawn(move || {
                    let rank = comm.rank();
                    let mut engine = Zero2OffloadEngine::new(make_model(rank), cfg, comm);
                    body(&mut engine)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ZeroOffloadEngine;
    use zo_models::BigramLm;
    use zo_nn::{GptConfig, GptModel};
    use zo_optim::{AdamParams, LossScaleConfig};

    fn tiny_model(seed: u64) -> GptModel {
        GptModel::new(
            GptConfig {
                vocab: 16,
                seq_len: 8,
                hidden: 8,
                heads: 2,
                layers: 2,
            },
            seed,
        )
    }

    fn cfg() -> ZeroOffloadConfig {
        ZeroOffloadConfig {
            loss_scale: LossScaleConfig {
                init_scale: 256.0,
                ..Default::default()
            },
            adam: AdamParams {
                lr: 3e-3,
                ..AdamParams::default()
            },
            ..ZeroOffloadConfig::default()
        }
    }

    /// Global batch for a step, deterministic; rank r takes its slice.
    ///
    /// The chain (task) is fixed by one seed; `step` advances the sampling
    /// stream so every rank sees the same global batch for a given step.
    fn global_batch(step: usize, batch: usize) -> zo_models::LmBatch {
        let mut lm = BigramLm::new(16, 0.05, 1000);
        let mut b = lm.batch(batch, 8);
        for _ in 0..step {
            b = lm.batch(batch, 8);
        }
        b
    }

    #[test]
    fn ranks_stay_in_exact_sync() {
        let finals = run_ranks(
            3,
            cfg(),
            |_| tiny_model(7),
            |engine| {
                for step in 0..5 {
                    let b = global_batch(step, 3);
                    let rank = engine.rank();
                    let inputs = b.inputs[rank * 8..(rank + 1) * 8].to_vec();
                    let targets = b.targets[rank * 8..(rank + 1) * 8].to_vec();
                    engine
                        .step(|m| m.train_step(&inputs, &targets, 1, 8, |_| {}))
                        .unwrap();
                }
                let mut p = vec![0.0f32; engine.model_mut().num_params()];
                engine.model_mut().copy_params_to(&mut p);
                p
            },
        );
        assert_eq!(finals[0], finals[1]);
        assert_eq!(finals[1], finals[2]);
    }

    #[test]
    fn partitioned_update_matches_single_process() {
        // Two ranks, each on half of a 4-sequence global batch, must match
        // a single process training on the full batch (ZeRO-2 is pure
        // systems restructuring — same math).
        let steps = 4;
        let multi = run_ranks(
            2,
            cfg(),
            |_| tiny_model(21),
            |engine| {
                for step in 0..steps {
                    let b = global_batch(step, 4);
                    let rank = engine.rank();
                    let inputs = b.inputs[rank * 16..(rank + 1) * 16].to_vec();
                    let targets = b.targets[rank * 16..(rank + 1) * 16].to_vec();
                    engine
                        .step(|m| m.train_step(&inputs, &targets, 2, 8, |_| {}))
                        .unwrap();
                }
                let mut p = vec![0.0f32; engine.model_mut().num_params()];
                engine.model_mut().copy_params_to(&mut p);
                p
            },
        );

        let mut single = ZeroOffloadEngine::new(tiny_model(21), cfg());
        for step in 0..steps {
            let b = global_batch(step, 4);
            single
                .step(|m| m.train_step(&b.inputs, &b.targets, 4, 8, |_| {}))
                .unwrap();
        }
        let mut p_single = vec![0.0f32; single.model_mut().num_params()];
        single.model_mut().copy_params_to(&mut p_single);

        let max_diff = multi[0]
            .iter()
            .zip(&p_single)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // Summation order differs (per-rank partial sums vs one batch) and
        // parameters live in fp16 (ulp ~ 1e-3 near 1.0), so allow a few
        // fp16 ulps of drift over the run.
        assert!(
            max_diff < 6e-3,
            "partitioned vs replicated update diverged: max diff {max_diff}"
        );
    }

    #[test]
    fn each_rank_offloads_only_its_shard() {
        let stats = run_ranks(
            4,
            cfg(),
            |_| tiny_model(5),
            |engine| {
                for step in 0..3 {
                    let b = global_batch(step, 4);
                    let rank = engine.rank();
                    let inputs = b.inputs[rank * 8..(rank + 1) * 8].to_vec();
                    let targets = b.targets[rank * 8..(rank + 1) * 8].to_vec();
                    engine
                        .step(|m| m.train_step(&inputs, &targets, 1, 8, |_| {}))
                        .unwrap();
                }
                (
                    engine.master_shard().len(),
                    engine.stats().d2h_bytes,
                    engine.model_mut().num_params(),
                )
            },
        );
        let n = stats[0].2;
        let total_shards: usize = stats.iter().map(|s| s.0).sum();
        assert_eq!(total_shards, n, "shards must tile the parameter space");
        for (shard_len, d2h, _) in &stats {
            // 3 steps × 2 bytes × shard: aggregate PCIe volume is constant
            // (= one full model) regardless of the DP degree.
            assert_eq!(*d2h, 3 * 2 * *shard_len as u64);
        }
    }

    #[test]
    fn multi_rank_training_converges() {
        let fast = ZeroOffloadConfig {
            adam: AdamParams {
                lr: 0.01,
                ..AdamParams::default()
            },
            ..cfg()
        };
        let losses = run_ranks(
            2,
            fast,
            |_| tiny_model(2),
            |engine| {
                let mut out = Vec::new();
                for step in 0..150 {
                    let b = global_batch(step, 4);
                    let rank = engine.rank();
                    let inputs = b.inputs[rank * 16..(rank + 1) * 16].to_vec();
                    let targets = b.targets[rank * 16..(rank + 1) * 16].to_vec();
                    let o = engine
                        .step(|m| m.train_step(&inputs, &targets, 2, 8, |_| {}))
                        .unwrap();
                    out.push(o.loss());
                }
                out
            },
        );
        let head: f32 = losses[0][..10].iter().sum::<f32>() / 10.0;
        let tail: f32 = losses[0][140..].iter().sum::<f32>() / 10.0;
        assert!(tail < head * 0.9, "did not converge: {head} -> {tail}");
    }

    #[test]
    fn dpu_in_data_parallel_mode() {
        let dpu_cfg = ZeroOffloadConfig {
            dpu_warmup: Some(3),
            ..cfg()
        };
        let finals = run_ranks(
            2,
            dpu_cfg,
            |_| tiny_model(12),
            |engine| {
                for step in 0..8 {
                    let b = global_batch(step, 2);
                    let rank = engine.rank();
                    let inputs = b.inputs[rank * 8..(rank + 1) * 8].to_vec();
                    let targets = b.targets[rank * 8..(rank + 1) * 8].to_vec();
                    engine
                        .step(|m| m.train_step(&inputs, &targets, 1, 8, |_| {}))
                        .unwrap();
                }
                let mut p = vec![0.0f32; engine.model_mut().num_params()];
                engine.model_mut().copy_params_to(&mut p);
                p
            },
        );
        assert_eq!(finals[0], finals[1], "DPU ranks must stay in sync");
    }
}
