//! Training-state checkpointing: save and resume a run exactly.
//!
//! A checkpoint captures everything the host side owns under the offload
//! strategy — the fp32 master parameters, the Adam momentum/variance, the
//! step counter, loss-scaler state, and any pending DPU gradient — which
//! is by construction sufficient to resume: the fp16 device parameters are
//! a pure function of the master copy (`float2half`).
//!
//! The on-disk file format frames the JSON payload with a validated
//! header (`magic | version | payload length | FNV-1a checksum`), so a
//! write that died partway — e.g. under an injected `checkpoint.write`
//! fault — is *detected* at restore time as a typed error instead of a
//! deserializer panic or, worse, a silently-wrong resume.

use serde::{Deserialize, Serialize};
use zo_nn::Model;
use zo_optim::AdamState;

use crate::engine::ZeroOffloadEngine;
use crate::framing::{decode_frame, encode_frame, FrameError, FrameSpec};

/// Serializable snapshot of a training run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TrainingCheckpoint {
    /// fp32 master parameters.
    pub master: Vec<f32>,
    /// Optimizer state (momentum, variance, step counter).
    pub optim: AdamState,
    /// Loss-scaler state: (scale, good-step counter).
    pub loss_scale: (f32, u32),
    /// DPU bookkeeping: steps seen and stashed gradient, when enabled.
    pub dpu: Option<DpuCheckpoint>,
    /// Steps applied so far (for bookkeeping continuity).
    pub steps_applied: u64,
    /// Steps skipped so far.
    pub steps_skipped: u64,
}

/// DPU portion of a checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct DpuCheckpoint {
    /// Steps the DPU wrapper has observed.
    pub steps_seen: u64,
    /// The stashed gradient awaiting application.
    pub pending: Option<Vec<f32>>,
}

/// Errors when saving or restoring a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint covers a different parameter count.
    SizeMismatch {
        /// Parameters in the checkpoint.
        checkpoint: usize,
        /// Parameters in the engine.
        engine: usize,
    },
    /// The checkpoint has DPU state but the engine is not in DPU mode (or
    /// vice versa).
    ModeMismatch,
    /// The file could not be read or written.
    Io {
        /// The underlying I/O error, stringified (keeps this type `Eq`).
        detail: String,
    },
    /// The file ends before the framed payload does — a write died partway
    /// (torn write / crashed process).
    Truncated {
        /// Bytes present.
        have: usize,
        /// Bytes the header promised.
        need: usize,
    },
    /// The file does not start with the checkpoint magic.
    BadMagic {
        /// The value found.
        found: u32,
    },
    /// The payload checksum does not match the header.
    Corrupted {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// The framing validated but the payload does not parse.
    Malformed {
        /// Parser diagnostic.
        detail: String,
    },
    /// An injected `checkpoint.write` fault killed the save mid-write.
    Fault(zo_fault::FaultError),
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointError::SizeMismatch { checkpoint, engine } => write!(
                f,
                "checkpoint holds {checkpoint} parameters, engine expects {engine}"
            ),
            CheckpointError::ModeMismatch => {
                write!(
                    f,
                    "checkpoint DPU state does not match the engine's DPU mode"
                )
            }
            CheckpointError::Io { detail } => write!(f, "checkpoint i/o failed: {detail}"),
            CheckpointError::Truncated { have, need } => {
                write!(f, "truncated checkpoint: have {have} bytes, need {need}")
            }
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint file (magic {found:#010x})")
            }
            CheckpointError::Corrupted { expected, computed } => write!(
                f,
                "checkpoint corrupted: checksum header {expected:#010x}, payload {computed:#010x}"
            ),
            CheckpointError::Malformed { detail } => {
                write!(f, "malformed checkpoint payload: {detail}")
            }
            CheckpointError::Fault(fault) => write!(f, "checkpoint write fault: {fault}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Checkpoint file magic: "ZOck".
pub const FILE_MAGIC: u32 = 0x5A4F_636B;

/// Current checkpoint file format version.
pub const FILE_VERSION: u32 = 1;

/// The checkpoint frame family (shared codec, checkpoint identity).
const FILE_FRAME: FrameSpec = FrameSpec {
    magic: FILE_MAGIC,
    version: FILE_VERSION,
};

impl From<FrameError> for CheckpointError {
    fn from(err: FrameError) -> CheckpointError {
        match err {
            FrameError::Truncated { have, need } => CheckpointError::Truncated { have, need },
            FrameError::BadMagic { found } => CheckpointError::BadMagic { found },
            FrameError::BadVersion { found } => CheckpointError::Malformed {
                detail: format!("unsupported checkpoint version {found}"),
            },
            FrameError::Corrupted { expected, computed } => {
                CheckpointError::Corrupted { expected, computed }
            }
        }
    }
}

/// Encodes a checkpoint into the framed on-disk byte format:
/// `magic | version | payload_len | fnv1a(payload) | JSON payload`.
pub fn encode_checkpoint_bytes(ckpt: &TrainingCheckpoint) -> Vec<u8> {
    // Plain-old-data: serialization cannot fail.
    let payload = serde_json::to_string(ckpt)
        .expect("checkpoint serialization")
        .into_bytes();
    encode_frame(FILE_FRAME, &payload)
}

/// Decodes a framed checkpoint, validating magic, version, length and
/// checksum before the payload is handed to the deserializer — a torn or
/// bit-flipped file surfaces as a typed [`CheckpointError`], never a
/// panic.
pub fn decode_checkpoint_bytes(bytes: &[u8]) -> Result<TrainingCheckpoint, CheckpointError> {
    let payload = decode_frame(FILE_FRAME, bytes)?;
    let text = core::str::from_utf8(payload).map_err(|e| CheckpointError::Malformed {
        detail: e.to_string(),
    })?;
    serde_json::from_str(text).map_err(|e| CheckpointError::Malformed {
        detail: e.to_string(),
    })
}

impl<M: Model> ZeroOffloadEngine<M> {
    /// Captures the current training state.
    pub fn save_checkpoint(&self) -> TrainingCheckpoint {
        self.pipe().capture_state()
    }

    /// Restores a checkpoint saved by an engine of the same configuration.
    ///
    /// The model is reloaded with the fp16 view of the restored master
    /// parameters, so the next step continues the original trajectory
    /// exactly (verified bitwise by the resume tests).
    pub fn restore_checkpoint(&mut self, ckpt: &TrainingCheckpoint) -> Result<(), CheckpointError> {
        self.pipe_mut().restore_state(ckpt)?;
        self.sync_model_params();
        Ok(())
    }

    /// Serializes the checkpoint as JSON.
    pub fn checkpoint_json(&self) -> String {
        // Plain-old-data: serialization cannot fail.
        serde_json::to_string(&self.save_checkpoint()).expect("checkpoint serialization")
    }

    /// Restores from [`ZeroOffloadEngine::checkpoint_json`] output.
    pub fn restore_json(&mut self, json: &str) -> Result<(), Box<dyn std::error::Error>> {
        let ckpt: TrainingCheckpoint = serde_json::from_str(json)?;
        self.restore_checkpoint(&ckpt)?;
        Ok(())
    }

    /// Writes the framed checkpoint file at `path`.
    ///
    /// The write passes the `checkpoint.write` fault gate: transients are
    /// retried with bounded backoff; a fatal or retry-exhausted fault
    /// simulates a crash mid-write — a *truncated* file is left on disk
    /// and [`CheckpointError::Fault`] returned, so recovery paths can
    /// prove they detect (not deserialize) the torn file.
    pub fn save_checkpoint_file(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), CheckpointError> {
        let bytes = encode_checkpoint_bytes(&self.save_checkpoint());
        let tracer = self.tracer().clone();
        let gate = zo_fault::with_retry(
            self.faults_mut(),
            zo_fault::Site::CheckpointWrite,
            &tracer,
            "checkpoint",
            || (),
        );
        if let Err(fault) = gate {
            let torn = &bytes[..bytes.len() / 2];
            std::fs::write(path, torn).map_err(|e| CheckpointError::Io {
                detail: e.to_string(),
            })?;
            return Err(CheckpointError::Fault(fault));
        }
        std::fs::write(path, &bytes).map_err(|e| CheckpointError::Io {
            detail: e.to_string(),
        })
    }

    /// Restores from a file written by
    /// [`ZeroOffloadEngine::save_checkpoint_file`], validating the framing
    /// (magic, version, length, checksum) before any state is touched.
    pub fn restore_checkpoint_file(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), CheckpointError> {
        let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io {
            detail: e.to_string(),
        })?;
        let ckpt = decode_checkpoint_bytes(&bytes)?;
        self.restore_checkpoint(&ckpt)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::ZeroOffloadConfig;
    use crate::engine::ZeroOffloadEngine;
    use zo_models::BigramLm;
    use zo_nn::{GptConfig, GptModel, Model};
    use zo_optim::{AdamParams, LossScaleConfig};

    const GPT: GptConfig = GptConfig {
        vocab: 16,
        seq_len: 8,
        hidden: 16,
        heads: 2,
        layers: 2,
    };

    fn cfg() -> ZeroOffloadConfig {
        ZeroOffloadConfig {
            adam: AdamParams {
                lr: 3e-3,
                ..AdamParams::default()
            },
            loss_scale: LossScaleConfig {
                init_scale: 256.0,
                ..Default::default()
            },
            ..ZeroOffloadConfig::default()
        }
    }

    fn run(engine: &mut ZeroOffloadEngine<GptModel>, from: usize, steps: usize) -> Vec<f32> {
        let mut data = BigramLm::new(GPT.vocab, 0.05, 7);
        let mut batches = Vec::new();
        for _ in 0..from + steps {
            batches.push(data.batch(4, GPT.seq_len));
        }
        batches[from..]
            .iter()
            .map(|b| {
                engine
                    .step(|m| m.train_step(&b.inputs, &b.targets, 4, GPT.seq_len, |_| {}))
                    .unwrap()
                    .loss()
            })
            .collect()
    }

    #[test]
    fn resume_is_bitwise_identical() {
        // Continuous run of 20 steps...
        let mut continuous = ZeroOffloadEngine::new(GptModel::new(GPT, 42), cfg());
        let losses_all = run(&mut continuous, 0, 20);

        // ...vs 10 steps, checkpoint, restore into a FRESH engine, 10 more.
        let mut first = ZeroOffloadEngine::new(GptModel::new(GPT, 42), cfg());
        run(&mut first, 0, 10);
        let ckpt = first.save_checkpoint();

        let mut resumed = ZeroOffloadEngine::new(GptModel::new(GPT, 99), cfg());
        resumed.restore_checkpoint(&ckpt).unwrap();
        let losses_tail = run(&mut resumed, 10, 10);

        assert_eq!(&losses_all[10..], &losses_tail[..]);
        assert_eq!(continuous.master_params(), resumed.master_params());
    }

    #[test]
    fn json_roundtrip() {
        let mut engine = ZeroOffloadEngine::new(GptModel::new(GPT, 1), cfg());
        run(&mut engine, 0, 3);
        let json = engine.checkpoint_json();
        let mut other = ZeroOffloadEngine::new(GptModel::new(GPT, 2), cfg());
        other.restore_json(&json).unwrap();
        assert_eq!(engine.master_params(), other.master_params());
        assert_eq!(engine.loss_scale(), other.loss_scale());
    }

    #[test]
    fn dpu_pending_gradient_survives_checkpoint() {
        let dpu_cfg = ZeroOffloadConfig {
            dpu_warmup: Some(2),
            ..cfg()
        };
        let mut continuous = ZeroOffloadEngine::new(GptModel::new(GPT, 5), dpu_cfg);
        let all = run(&mut continuous, 0, 12);

        let mut first = ZeroOffloadEngine::new(GptModel::new(GPT, 5), dpu_cfg);
        run(&mut first, 0, 6); // Past warm-up: a gradient is stashed.
        let ckpt = first.save_checkpoint();
        assert!(ckpt.dpu.as_ref().unwrap().pending.is_some());

        let mut resumed = ZeroOffloadEngine::new(GptModel::new(GPT, 5), dpu_cfg);
        resumed.restore_checkpoint(&ckpt).unwrap();
        let tail = run(&mut resumed, 6, 6);
        assert_eq!(&all[6..], &tail[..]);
        assert_eq!(continuous.master_params(), resumed.master_params());
    }

    #[test]
    fn size_mismatch_rejected() {
        let engine = ZeroOffloadEngine::new(GptModel::new(GPT, 1), cfg());
        let ckpt = engine.save_checkpoint();
        let small = GptConfig { layers: 1, ..GPT };
        let mut other = ZeroOffloadEngine::new(GptModel::new(small, 1), cfg());
        assert!(other.restore_checkpoint(&ckpt).is_err());
    }

    #[test]
    fn mode_mismatch_rejected() {
        let mut plain = ZeroOffloadEngine::new(GptModel::new(GPT, 1), cfg());
        run(&mut plain, 0, 2);
        let ckpt = plain.save_checkpoint();
        assert!(ckpt.dpu.is_none());
        let mut dpu_engine = ZeroOffloadEngine::new(
            GptModel::new(GPT, 1),
            ZeroOffloadConfig {
                dpu_warmup: Some(0),
                ..cfg()
            },
        );
        assert!(matches!(
            dpu_engine.restore_checkpoint(&ckpt),
            Err(super::CheckpointError::ModeMismatch)
        ));
    }

    /// Unique scratch file path for a test (no timestamps needed).
    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("zo-ckpt-{}-{name}.bin", std::process::id()))
    }

    #[test]
    fn file_roundtrip_resumes_bitwise() {
        let mut engine = ZeroOffloadEngine::new(GptModel::new(GPT, 42), cfg());
        run(&mut engine, 0, 5);
        let path = scratch("roundtrip");
        engine.save_checkpoint_file(&path).unwrap();
        let mut other = ZeroOffloadEngine::new(GptModel::new(GPT, 99), cfg());
        other.restore_checkpoint_file(&path).unwrap();
        assert_eq!(engine.master_params(), other.master_params());
        assert_eq!(engine.loss_scale(), other.loss_scale());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_a_typed_error_not_a_panic() {
        let mut engine = ZeroOffloadEngine::new(GptModel::new(GPT, 7), cfg());
        run(&mut engine, 0, 3);
        let path = scratch("truncated");
        engine.save_checkpoint_file(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // A partial write at any cut point must be *detected*.
        for cut in [3usize, 19, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let mut victim = ZeroOffloadEngine::new(GptModel::new(GPT, 7), cfg());
            let before = victim.master_params().to_vec();
            let err = victim.restore_checkpoint_file(&path).unwrap_err();
            assert!(
                matches!(err, super::CheckpointError::Truncated { .. }),
                "cut at {cut}: expected Truncated, got {err:?}"
            );
            assert_eq!(
                victim.master_params(),
                &before[..],
                "failed restore must not touch engine state"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut engine = ZeroOffloadEngine::new(GptModel::new(GPT, 8), cfg());
        run(&mut engine, 0, 2);
        let path = scratch("corrupt");
        engine.save_checkpoint_file(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut victim = ZeroOffloadEngine::new(GptModel::new(GPT, 8), cfg());
        assert!(matches!(
            victim.restore_checkpoint_file(&path),
            Err(super::CheckpointError::Corrupted { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_rejected_by_magic() {
        let err = super::decode_checkpoint_bytes(b"definitely not a checkpoint").unwrap_err();
        assert!(matches!(err, super::CheckpointError::BadMagic { .. }));
    }

    #[test]
    fn checkpoint_counters_roundtrip() {
        let mut engine = ZeroOffloadEngine::new(GptModel::new(GPT, 3), cfg());
        run(&mut engine, 0, 4);
        let ckpt = engine.save_checkpoint();
        assert_eq!(ckpt.steps_applied, 4);
        let mut other = ZeroOffloadEngine::new(GptModel::new(GPT, 3), cfg());
        other.restore_checkpoint(&ckpt).unwrap();
        assert_eq!(other.stats().steps_applied, 4);
        let mut model_params = vec![0.0f32; other.model_mut().num_params()];
        other.model_mut().copy_params_to(&mut model_params);
        // Model carries the fp16 view of the restored master.
        for (mp, m) in model_params.iter().zip(other.master_params()) {
            assert_eq!(*mp, zo_tensor::F16::from_f32(*m).to_f32());
        }
    }
}
