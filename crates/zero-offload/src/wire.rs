//! The PCIe wire format for gradient offload.
//!
//! Gradients leave the device as fp16 and arrive in host memory (paper
//! Sec. 4.1). This module gives that transfer a concrete byte format so
//! the emulated link moves real framed bytes: each frame carries a header
//! (magic, sequence number, flat offset, element count, checksum) and a
//! little-endian fp16 payload. Frames are the unit the gradient bucketer
//! emits and the host-side consumer validates.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use zo_tensor::F16;

/// Frame magic: "ZOfl".
pub const MAGIC: u32 = 0x5A4F_666C;

/// Header size in bytes.
pub const HEADER_BYTES: usize = 4 + 4 + 8 + 4 + 4;

/// Errors produced when decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than a header.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes needed.
        need: usize,
    },
    /// The magic word did not match.
    BadMagic {
        /// The value found.
        found: u32,
    },
    /// The checksum did not match the payload.
    BadChecksum {
        /// Checksum in the header.
        expected: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            WireError::BadMagic { found } => write!(f, "bad magic {found:#010x}"),
            WireError::BadChecksum { expected, computed } => {
                write!(
                    f,
                    "checksum mismatch: header {expected:#010x}, payload {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded gradient frame.
#[derive(Debug, Clone, PartialEq)]
pub struct GradFrame {
    /// Monotone sequence number within a step.
    pub seq: u32,
    /// Flat offset of the first element in the parameter space.
    pub offset: u64,
    /// The fp16 gradient values.
    pub values: Vec<F16>,
}

/// FNV-1a over the payload bytes.
fn checksum(payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in payload {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Elements serialized per batch when framing/unframing fp16 payloads.
/// Copying through a fixed stack buffer amortizes the per-element
/// capacity checks of `put_u16_le`/`get_u16_le`.
const FRAME_BATCH: usize = 64;

/// Encodes one frame.
pub fn encode_frame(seq: u32, offset: u64, values: &[F16]) -> Bytes {
    let mut payload = BytesMut::with_capacity(values.len() * 2);
    let mut staged = [0u8; 2 * FRAME_BATCH];
    for chunk in values.chunks(FRAME_BATCH) {
        for (dst, v) in staged.chunks_exact_mut(2).zip(chunk) {
            dst.copy_from_slice(&v.to_bits().to_le_bytes());
        }
        payload.extend_from_slice(&staged[..2 * chunk.len()]);
    }
    let mut out = BytesMut::with_capacity(HEADER_BYTES + payload.len());
    out.put_u32_le(MAGIC);
    out.put_u32_le(seq);
    out.put_u64_le(offset);
    out.put_u32_le(values.len() as u32);
    out.put_u32_le(checksum(&payload));
    out.extend_from_slice(&payload);
    out.freeze()
}

/// Decodes one frame, validating magic and checksum.
pub fn decode_frame(mut buf: Bytes) -> Result<GradFrame, WireError> {
    if buf.len() < HEADER_BYTES {
        return Err(WireError::Truncated {
            have: buf.len(),
            need: HEADER_BYTES,
        });
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let seq = buf.get_u32_le();
    let offset = buf.get_u64_le();
    let count = buf.get_u32_le() as usize;
    let expected = buf.get_u32_le();
    if buf.len() < count * 2 {
        return Err(WireError::Truncated {
            have: buf.len(),
            need: count * 2,
        });
    }
    let payload = buf.copy_to_bytes(count * 2);
    let computed = checksum(&payload);
    if computed != expected {
        return Err(WireError::BadChecksum { expected, computed });
    }
    let mut values = Vec::with_capacity(count);
    let bytes: &[u8] = &payload;
    values.extend(
        bytes
            .chunks_exact(2)
            .map(|b| F16::from_bits(u16::from_le_bytes([b[0], b[1]]))),
    );
    Ok(GradFrame {
        seq,
        offset,
        values,
    })
}

/// Scales `grads` by `scale / denom` into `scratch` and narrows the whole
/// batch to fp16 into `wire` with the slice codec ([`F16::from_f32_slice`]).
/// Returns `true` if any narrowed value is non-finite (loss-scale overflow).
///
/// The scale loop is element-independent and the slice codec is bit-identical
/// to the scalar [`F16::from_f32`] path, so callers that replace per-element
/// quantize loops with this helper produce byte-identical wire traffic.
pub fn quantize_grads(
    grads: &[f32],
    denom: f32,
    scale: f32,
    scratch: &mut Vec<f32>,
    wire: &mut Vec<F16>,
) -> bool {
    scratch.clear();
    scratch.extend(grads.iter().map(|&g| g / denom * scale));
    wire.resize(grads.len(), F16::ZERO);
    F16::from_f32_slice(scratch, wire);
    wire.iter().any(|w| !w.is_finite())
}

/// Quantizes `grads` as [`quantize_grads`] does, then immediately widens the
/// fp16 values back and unscales in place (`g = widen(narrow(g * scale /
/// denom)) / scale`) — the post-hoc H2D/D2H round trip the non-streaming
/// engines apply to emulate gradients crossing the PCIe link. Returns the
/// overflow flag.
pub fn roundtrip_grads(
    grads: &mut [f32],
    denom: f32,
    scale: f32,
    scratch: &mut Vec<f32>,
    wire: &mut Vec<F16>,
) -> bool {
    let overflow = quantize_grads(grads, denom, scale, scratch, wire);
    F16::to_f32_slice(wire, grads);
    for g in grads.iter_mut() {
        *g /= scale;
    }
    overflow
}

/// Decodes one frame and records receive-side counters on `track`:
/// `rx_wire_bytes` (full frame size), `rx_payload_bytes` (fp16 payload)
/// and `rx_frames`. Failed frames count nothing.
pub fn decode_frame_traced(
    tracer: &zo_trace::Tracer,
    track: &str,
    buf: Bytes,
) -> Result<GradFrame, WireError> {
    let wire = buf.len() as u64;
    let frame = decode_frame(buf)?;
    tracer.add(track, "rx_wire_bytes", wire);
    tracer.add(track, "rx_payload_bytes", 2 * frame.values.len() as u64);
    tracer.add(track, "rx_frames", 1);
    Ok(frame)
}

/// Total wire bytes for `elements` fp16 values in one frame.
pub fn frame_bytes(elements: usize) -> usize {
    HEADER_BYTES + 2 * elements
}

/// Carries one staged frame across the emulated link under a fault
/// session: the frame passes the `wire.d2h` gate with bounded
/// exponential-backoff retry before delivery.
///
/// A recovered transient retransmits the *same* bytes (retries never
/// change what was staged), so transient faults cannot perturb the
/// decoded gradients. A fatal or retry-exhausted fault surfaces as a
/// typed [`zo_fault::FaultError`]; the frame is considered lost.
pub fn ship_frame(
    frame: Bytes,
    faults: &mut zo_fault::FaultSession,
    tracer: &zo_trace::Tracer,
    track: &str,
) -> Result<Bytes, zo_fault::FaultError> {
    zo_fault::with_retry(faults, zo_fault::Site::WireD2h, tracer, track, || frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(n: usize) -> Vec<F16> {
        (0..n)
            .map(|i| F16::from_f32(i as f32 * 0.25 - 4.0))
            .collect()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let v = values(37);
        let frame = encode_frame(9, 1234, &v);
        assert_eq!(frame.len(), frame_bytes(37));
        let decoded = decode_frame(frame).unwrap();
        assert_eq!(decoded.seq, 9);
        assert_eq!(decoded.offset, 1234);
        assert_eq!(decoded.values, v);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = encode_frame(0, 0, &[]);
        let decoded = decode_frame(frame).unwrap();
        assert!(decoded.values.is_empty());
    }

    #[test]
    fn truncated_header_rejected() {
        let frame = encode_frame(1, 0, &values(4));
        let short = frame.slice(0..HEADER_BYTES - 1);
        assert!(matches!(
            decode_frame(short),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let frame = encode_frame(1, 0, &values(4));
        let short = frame.slice(0..HEADER_BYTES + 3);
        assert!(matches!(
            decode_frame(short),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let frame = encode_frame(1, 0, &values(2));
        let mut raw = frame.to_vec();
        raw[0] ^= 0xFF;
        match decode_frame(Bytes::from(raw)) {
            Err(WireError::BadMagic { found }) => assert_ne!(found, MAGIC),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let frame = encode_frame(1, 0, &values(8));
        let mut raw = frame.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        assert!(matches!(
            decode_frame(Bytes::from(raw)),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn ship_frame_retries_transients_and_surfaces_fatals() {
        use zo_fault::{FaultKind, FaultPlan, FaultSession, Site, SiteSpec};
        let tracer = zo_trace::Tracer::new();
        let frame = encode_frame(1, 8, &values(4));

        let transient = std::sync::Arc::new(
            FaultPlan::builder(2)
                .site(
                    Site::WireD2h,
                    SiteSpec {
                        kind: FaultKind::Transient,
                        prob: 1.0,
                        depth: 2,
                    },
                )
                .build(),
        );
        let mut session = FaultSession::new(transient, 1);
        let shipped = ship_frame(frame.clone(), &mut session, &tracer, "pcie").unwrap();
        assert_eq!(shipped, frame, "retries must retransmit identical bytes");
        assert_eq!(tracer.counter_total(zo_trace::names::RETRY_ATTEMPTS), 2);

        let fatal = std::sync::Arc::new(
            FaultPlan::builder(2)
                .site(
                    Site::WireD2h,
                    SiteSpec {
                        kind: FaultKind::Fatal,
                        prob: 1.0,
                        depth: 1,
                    },
                )
                .build(),
        );
        let mut session = FaultSession::new(fatal, 1);
        assert_eq!(
            ship_frame(frame, &mut session, &tracer, "pcie"),
            Err(zo_fault::FaultError::Fatal {
                site: Site::WireD2h
            })
        );
    }

    #[test]
    fn error_display() {
        let e = WireError::Truncated { have: 3, need: 24 };
        assert!(e.to_string().contains("truncated"));
        let e = WireError::BadMagic { found: 0xdead };
        assert!(e.to_string().contains("magic"));
        let e = WireError::BadChecksum {
            expected: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
    }
}
