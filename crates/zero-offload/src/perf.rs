//! Iteration-time model for ZeRO-Offload, built on the stream simulator.
//!
//! Constructs the paper's exact schedule (Figs. 3–6) as a hetsim task
//! graph — per-layer backward with overlapped gradient offload,
//! reduce-scatter before offload on multi-GPU, tiled CPU-Adam with
//! overlapped fp16 copy-back, parameter all-gather, and (optionally) DPU
//! overlap of the whole update with the next iteration's compute — and
//! measures steady-state seconds/iteration and TFLOPS/GPU.

use zo_collectives::RingCost;
use zo_hetsim::{ClusterSpec, Sim, StreamId, TaskId};
use zo_models::TransformerConfig;

/// Number of Adam/copy-back tiles (Algorithm 1's tiling).
const ADAM_TILES: usize = 4;

/// Steady-state iteration statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterStats {
    /// Seconds per optimizer step (one full batch).
    pub secs: f64,
    /// Achieved useful TFLOP/s per GPU.
    pub tflops_per_gpu: f64,
    /// Device-to-host bytes per step, per GPU.
    pub d2h_bytes: u64,
    /// Host-to-device bytes per step, per GPU.
    pub h2d_bytes: u64,
    /// Micro-batches accumulated per step.
    pub grad_accum: u32,
}

/// Throughput model for ZeRO-Offload on a cluster.
#[derive(Debug, Clone, Copy)]
pub struct ZeroOffloadPerf {
    /// The hardware.
    pub cluster: ClusterSpec,
}

struct ScheduleParams {
    layers: usize,
    fwd_secs_mb: f64,
    bwd_layer_secs_mb: f64,
    mp_comm_fwd_mb: f64,
    mp_comm_bwd_mb: f64,
    rs_layer_secs: f64,
    d2h_layer_secs: f64,
    adam_tile_secs: f64,
    h2d_tile_secs: f64,
    allgather_secs: f64,
    grad_accum: u32,
}

impl ZeroOffloadPerf {
    /// Creates the model over `cluster`.
    pub fn new(cluster: ClusterSpec) -> ZeroOffloadPerf {
        ZeroOffloadPerf { cluster }
    }

    fn schedule_params(
        &self,
        cfg: &TransformerConfig,
        micro_batch: u32,
        total_batch: u32,
        world: u32,
        mp: u32,
    ) -> ScheduleParams {
        let node = self.cluster.node;
        let dp = world / mp;
        let grad_accum = (total_batch / (micro_batch * dp)).max(1);
        let params = cfg.total_params() as f64;
        let layers = cfg.num_layers as usize;

        // Compute: 2/8 of iteration FLOPs are the forward pass; 6/8 the
        // backward plus checkpoint recompute. Model parallelism divides
        // the per-GPU share.
        let flops_mb = cfg.flops_per_iter(micro_batch as u64) / mp as f64;
        // Tensor slicing thins every GEMM by the MP degree, costing kernel
        // efficiency; model it as an effective micro-batch of mb/sqrt(mp).
        let eff_batch = micro_batch as f64 / (mp as f64).sqrt();
        let fwd_secs_mb = node.gpu.compute_secs(0.25 * flops_mb, eff_batch);
        let bwd_secs_mb = node.gpu.compute_secs(0.75 * flops_mb, eff_batch);

        // Megatron-style MP: two activation all-reduces per layer in each
        // of forward and backward, over the NVLink group of `mp` ranks.
        let act_bytes = micro_batch as f64 * cfg.seq_len as f64 * cfg.hidden as f64 * 2.0;
        let mp_ring = RingCost::new(mp, node.nvlink_gbps, 5e-6);
        let mp_comm_layer = 2.0 * mp_ring.all_reduce_secs(act_bytes);
        let mp_comm_fwd_mb = mp_comm_layer * layers as f64;
        let mp_comm_bwd_mb = mp_comm_layer * layers as f64;

        // Gradients: reduce-scatter across the dp group per layer, then
        // offload only the owned 1/dp shard (Sec. 4.2).
        let grad_bytes_layer = 2.0 * params / mp as f64 / layers as f64;
        let dp_ring = RingCost::new(dp, self.cluster.collective_gbps(world), 5e-6);
        let rs_layer_secs = dp_ring.reduce_scatter_secs(grad_bytes_layer);
        let d2h_layer_secs = node.pcie.transfer_secs(grad_bytes_layer / dp as f64);

        // CPU Adam: each node's CPU jointly updates the shards of all its
        // resident GPUs; total CPU work per node shrinks as nodes grow.
        let nodes_used = world.div_ceil(node.gpus_per_node).max(1);
        let gpus_per_node_active = (world / nodes_used).max(1);
        let shard_params = params / (mp as f64 * dp as f64);
        let node_update_params = shard_params * gpus_per_node_active as f64;
        let adam_secs = node.cpu.adam_secs(node_update_params, 1.0);
        let adam_tile_secs = adam_secs / ADAM_TILES as f64;

        // Copy-back of updated fp16 shard, tiled; then all-gather.
        let h2d_bytes = 2.0 * shard_params;
        let h2d_tile_secs = node.pcie.transfer_secs(h2d_bytes / ADAM_TILES as f64);
        let allgather_secs = dp_ring.all_gather_secs(2.0 * params / mp as f64);

        ScheduleParams {
            layers,
            fwd_secs_mb,
            bwd_layer_secs_mb: bwd_secs_mb / layers as f64,
            mp_comm_fwd_mb,
            mp_comm_bwd_mb,
            rs_layer_secs,
            d2h_layer_secs,
            adam_tile_secs,
            h2d_tile_secs,
            allgather_secs,
            grad_accum,
        }
    }

    /// Builds `iters` iterations of the schedule and returns the makespan.
    fn makespan(&self, p: &ScheduleParams, dpu: bool, iters: usize) -> f64 {
        self.build_timeline(p, dpu, iters).makespan()
    }

    /// Builds the full schedule timeline for inspection (traces, Gantt).
    #[allow(clippy::too_many_arguments)]
    pub fn timeline(
        &self,
        cfg: &TransformerConfig,
        micro_batch: u32,
        total_batch: u32,
        world: u32,
        mp: u32,
        dpu: bool,
        iters: usize,
    ) -> zo_hetsim::Timeline {
        let p = self.schedule_params(cfg, micro_batch, total_batch, world, mp);
        self.build_timeline(&p, dpu, iters)
    }

    fn build_timeline(&self, p: &ScheduleParams, dpu: bool, iters: usize) -> zo_hetsim::Timeline {
        let mut sim = Sim::new();
        let gpu: StreamId = sim.stream("gpu.compute");
        let nvl = sim.stream("nvlink");
        let d2h = sim.stream("pcie.d2h");
        let cpu = sim.stream("cpu.adam");
        let h2d = sim.stream("pcie.h2d");

        // The task whose completion means "parameters are current".
        let mut params_ready: Option<TaskId> = None;
        // With DPU, the fwd of iteration i waits on the update of i-2.
        let mut prev_params_ready: Option<TaskId> = None;

        // Infallible in this context: streams and deps are constructed here.
        let t = |sim: &mut Sim, s, d, deps: &[TaskId], l: &str| -> TaskId {
            sim.task(s, d, deps, l).expect("schedule construction")
        };

        for iter in 0..iters {
            let gate = if dpu { prev_params_ready } else { params_ready };
            let mut grad_tasks: Vec<TaskId> = Vec::new();
            for mb in 0..p.grad_accum {
                let fwd_deps: Vec<TaskId> = gate.into_iter().collect();
                let fwd = t(
                    &mut sim,
                    gpu,
                    p.fwd_secs_mb + p.mp_comm_fwd_mb,
                    &fwd_deps,
                    &format!("i{iter}.mb{mb}.fwd"),
                );
                let mut prev = fwd;
                for layer in (0..p.layers).rev() {
                    let bwd = t(
                        &mut sim,
                        gpu,
                        p.bwd_layer_secs_mb + p.mp_comm_bwd_mb / p.layers as f64,
                        &[prev],
                        &format!("i{iter}.mb{mb}.bwd{layer}"),
                    );
                    let rs = t(
                        &mut sim,
                        nvl,
                        p.rs_layer_secs,
                        &[bwd],
                        &format!("i{iter}.rs{layer}"),
                    );
                    let copy = t(
                        &mut sim,
                        d2h,
                        p.d2h_layer_secs,
                        &[rs],
                        &format!("i{iter}.d2h{layer}"),
                    );
                    grad_tasks.push(copy);
                    prev = bwd;
                }
            }
            // Optimizer: tiled Adam, each tile's fp16 copy-back overlapped
            // with the next tile's compute (Algorithm 1, line 15).
            let mut tile_dep: Vec<TaskId> = grad_tasks;
            let mut last_h2d = None;
            for tile in 0..ADAM_TILES {
                let adam = t(
                    &mut sim,
                    cpu,
                    p.adam_tile_secs,
                    &tile_dep,
                    &format!("i{iter}.adam{tile}"),
                );
                let copy = t(
                    &mut sim,
                    h2d,
                    p.h2d_tile_secs,
                    &[adam],
                    &format!("i{iter}.h2d{tile}"),
                );
                tile_dep = vec![adam];
                last_h2d = Some(copy);
            }
            let ag = t(
                &mut sim,
                nvl,
                p.allgather_secs,
                &[last_h2d.expect("ADAM_TILES > 0")],
                &format!("i{iter}.allgather"),
            );
            prev_params_ready = params_ready;
            params_ready = Some(ag);
        }
        sim.run().expect("schedule execution")
    }

    /// Steady-state iteration statistics for ZeRO-Offload.
    ///
    /// `world` GPUs total, tensor-slicing model parallelism of degree `mp`
    /// (must divide `world`), data parallelism over the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `mp` does not divide `world` or batch settings are zero.
    pub fn iter_stats(
        &self,
        cfg: &TransformerConfig,
        micro_batch: u32,
        total_batch: u32,
        world: u32,
        mp: u32,
        dpu: bool,
    ) -> IterStats {
        assert!(
            micro_batch > 0 && total_batch > 0,
            "batch sizes must be positive"
        );
        assert!(
            mp > 0 && world > 0 && world.is_multiple_of(mp),
            "mp must divide world"
        );
        let p = self.schedule_params(cfg, micro_batch, total_batch, world, mp);
        // Steady state: difference between 4- and 2-iteration makespans.
        let m4 = self.makespan(&p, dpu, 4);
        let m2 = self.makespan(&p, dpu, 2);
        let secs = (m4 - m2) / 2.0;
        let dp = world / mp;
        let useful_flops_per_gpu =
            cfg.flops_per_iter(micro_batch as u64) * p.grad_accum as f64 / mp as f64;
        let params = cfg.total_params();
        let shard = params / (mp as u64 * dp as u64);
        IterStats {
            secs,
            tflops_per_gpu: useful_flops_per_gpu / secs / 1e12,
            d2h_bytes: p.grad_accum as u64 * 2 * params / (mp as u64 * dp as u64),
            h2d_bytes: 2 * shard,
            grad_accum: p.grad_accum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zo_hetsim::presets;

    fn perf() -> ZeroOffloadPerf {
        ZeroOffloadPerf::new(presets::dgx2_cluster(8))
    }

    #[test]
    fn ten_billion_single_gpu_hits_headline_tflops() {
        // Abstract: ~40 TFLOPS for a 10B model on one V100.
        let cfg = zo_models::by_label(10.0).unwrap();
        let stats = perf().iter_stats(&cfg.model, cfg.batch_per_gpu, 512, 1, 1, false);
        assert!(
            (30.0..50.0).contains(&stats.tflops_per_gpu),
            "10B single-GPU TFLOPS = {:.1}",
            stats.tflops_per_gpu
        );
    }

    #[test]
    fn dpu_helps_most_at_small_batch() {
        // Fig. 9: DPU gives 1.12–1.59x at micro-batch 8.
        let cfg = zo_models::by_label(2.0).unwrap();
        let base = perf().iter_stats(&cfg.model, 8, 8, 1, 1, false);
        let with_dpu = perf().iter_stats(&cfg.model, 8, 8, 1, 1, true);
        let speedup = base.secs / with_dpu.secs;
        assert!(
            (1.05..1.8).contains(&speedup),
            "DPU speedup at micro-batch 8 = {speedup:.2}"
        );
        // At large accumulated batch the update is already amortized.
        let big = perf().iter_stats(&cfg.model, 32, 512, 1, 1, false);
        let big_dpu = perf().iter_stats(&cfg.model, 32, 512, 1, 1, true);
        let speedup_big = big.secs / big_dpu.secs;
        assert!(speedup_big < speedup, "{speedup_big} !< {speedup}");
    }

    #[test]
    fn near_linear_scaling_to_128_gpus() {
        // Fig. 11: aggregate throughput scales near-linearly 1→128 GPUs.
        let cfg = zo_models::by_label(10.0).unwrap();
        let s1 = perf().iter_stats(&cfg.model, cfg.batch_per_gpu, 512, 1, 1, false);
        let s128 = perf().iter_stats(&cfg.model, cfg.batch_per_gpu, 512, 128, 1, false);
        let agg1 = s1.tflops_per_gpu;
        let agg128 = 128.0 * s128.tflops_per_gpu;
        let efficiency = agg128 / (128.0 * agg1);
        assert!(efficiency > 0.75, "scaling efficiency {efficiency:.2}");
        assert!(
            s128.tflops_per_gpu > 30.0,
            "per-GPU {:.1}",
            s128.tflops_per_gpu
        );
    }

    #[test]
    fn aggregate_pcie_traffic_constant_in_dp() {
        // Sec. 4.2: total CPU↔GPU volume is independent of the DP degree
        // (per optimizer step with one micro-batch each).
        let cfg = zo_models::by_label(4.0).unwrap();
        let mut last = None;
        for world in [1u32, 2, 4, 8, 16] {
            let stats = perf().iter_stats(&cfg.model, 8, 8 * world, world, 1, false);
            assert_eq!(stats.grad_accum, 1);
            let aggregate = stats.d2h_bytes * world as u64;
            if let Some(prev) = last {
                assert_eq!(aggregate, prev, "world={world}");
            }
            last = Some(aggregate);
        }
    }

    #[test]
    fn communication_volume_is_4m_per_microbatch_path() {
        // The offload strategy's 4M per iteration: 2M gradients down,
        // 2M parameters up (single GPU, no accumulation).
        let cfg = zo_models::by_label(1.0).unwrap();
        let stats = perf().iter_stats(&cfg.model, 32, 32, 1, 1, false);
        let m = cfg.model.total_params();
        assert_eq!(stats.d2h_bytes, 2 * m);
        assert_eq!(stats.h2d_bytes, 2 * m);
    }

    #[test]
    fn grad_accumulation_computed_from_batches() {
        let cfg = zo_models::by_label(1.0).unwrap();
        let s = perf().iter_stats(&cfg.model, 32, 512, 1, 1, false);
        assert_eq!(s.grad_accum, 16);
        let s2 = perf().iter_stats(&cfg.model, 32, 512, 16, 1, false);
        assert_eq!(s2.grad_accum, 1);
    }

    #[test]
    fn dpu_schedule_truly_overlaps_update_with_compute() {
        // Inspect the actual timeline: with DPU, some cpu.adam task must
        // run concurrently with a gpu.compute task of the next iteration;
        // without DPU, the update strictly separates iterations.
        let cfg = zo_models::by_label(2.0).unwrap();
        let p = perf();
        let overlap = |dpu: bool| -> bool {
            let tl = p.timeline(&cfg.model, 8, 8, 1, 1, dpu, 3);
            let adam: Vec<_> = tl
                .tasks()
                .iter()
                .filter(|t| t.label.contains("adam"))
                .map(|t| (t.start, t.finish))
                .collect();
            tl.tasks()
                .iter()
                .filter(|t| t.label.contains("fwd") || t.label.contains("bwd"))
                .any(|c| adam.iter().any(|&(s, f)| c.start < f && s < c.finish))
        };
        assert!(overlap(true), "DPU schedule shows no CPU/GPU overlap");
        assert!(!overlap(false), "non-DPU schedule overlapped the update");
    }

    #[test]
    #[should_panic(expected = "mp must divide world")]
    fn invalid_mp_rejected() {
        let cfg = zo_models::by_label(1.0).unwrap();
        perf().iter_stats(&cfg.model, 8, 512, 10, 3, false);
    }
}
