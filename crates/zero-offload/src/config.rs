//! Engine configuration (the analog of the DeepSpeed JSON config).

use serde::{Deserialize, Serialize};
use zo_optim::{AdamParams, LossScaleConfig};

use crate::tier::TierKind;

/// A `Copy` handle to an installed [`zo_trace::Tracer`].
///
/// The engine config must stay `Copy` (it is captured by value in the
/// per-rank closures of [`run_ranks`](crate::zero2::run_ranks)), so it
/// cannot hold a `Tracer` directly; instead it carries an index into the
/// process-wide tracer registry.
///
/// ```
/// use zero_offload::{TracerRef, ZeroOffloadConfig};
///
/// let tracer = zo_trace::Tracer::new();
/// let cfg = ZeroOffloadConfig {
///     tracer: Some(TracerRef::install(tracer.clone())),
///     ..ZeroOffloadConfig::default()
/// };
/// assert!(cfg.tracer.unwrap().resolve().is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracerRef(pub usize);

impl TracerRef {
    /// Pins `tracer` into the registry and returns its handle.
    pub fn install(tracer: zo_trace::Tracer) -> TracerRef {
        TracerRef(zo_trace::install(tracer))
    }

    /// Resolves the handle (`None` if the index was never installed).
    pub fn resolve(&self) -> Option<zo_trace::Tracer> {
        zo_trace::lookup(self.0)
    }
}

/// Resolves an optional handle to a concrete tracer, falling back to the
/// inert disabled tracer.
pub(crate) fn resolve_tracer(tracer: Option<TracerRef>) -> zo_trace::Tracer {
    tracer
        .and_then(|t| t.resolve())
        .unwrap_or_else(zo_trace::Tracer::disabled)
}

/// A `Copy` handle to an installed [`zo_fault::FaultPlan`], mirroring
/// [`TracerRef`]: the config stays `Copy` while referencing a shared plan
/// through the process-wide fault registry.
///
/// ```
/// use zero_offload::{FaultsRef, ZeroOffloadConfig};
///
/// let cfg = ZeroOffloadConfig {
///     faults: Some(FaultsRef::install(zo_fault::FaultPlan::transient_heavy())),
///     ..ZeroOffloadConfig::default()
/// };
/// assert!(cfg.faults.unwrap().resolve().is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultsRef(pub usize);

impl FaultsRef {
    /// Pins `plan` into the registry and returns its handle.
    pub fn install(plan: zo_fault::FaultPlan) -> FaultsRef {
        FaultsRef(zo_fault::install(plan))
    }

    /// Resolves the handle (`None` if the index was never installed).
    pub fn resolve(&self) -> Option<std::sync::Arc<zo_fault::FaultPlan>> {
        zo_fault::lookup(self.0)
    }
}

/// Resolves the engine's fault plan: an installed handle wins; otherwise
/// the `ZO_FAULTS` environment variable decides (disabled when unset) —
/// which is how the CI fault matrix drives unmodified binaries.
pub(crate) fn resolve_fault_plan(faults: Option<FaultsRef>) -> std::sync::Arc<zo_fault::FaultPlan> {
    faults
        .and_then(|f| f.resolve())
        .unwrap_or_else(|| std::sync::Arc::new(zo_fault::FaultPlan::from_env()))
}

/// Where the optimizer states and step live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OffloadDevice {
    /// No offload: everything on the accelerator (baseline behaviour).
    None,
    /// ZeRO-Offload: gradients, fp32 states and the update on the host.
    Cpu,
}

/// Configuration for [`ZeroOffloadEngine`](crate::engine::ZeroOffloadEngine).
///
/// Deserializable from JSON with every field optional (the DeepSpeed
/// `ds_config.json` usability model — paper Fig. 1):
///
/// ```
/// use zero_offload::ZeroOffloadConfig;
///
/// let cfg = ZeroOffloadConfig::from_json(r#"{"dpu_warmup": 40}"#).unwrap();
/// assert_eq!(cfg.dpu_warmup, Some(40));
/// assert_eq!(cfg.grad_accumulation, 1); // defaulted
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[serde(default)]
pub struct ZeroOffloadConfig {
    /// Offload target.
    pub offload: OffloadDevice,
    /// Adam hyper-parameters.
    pub adam: AdamParams,
    /// One-step delayed parameter update: `None` disables, `Some(n)`
    /// enables after `n` warm-up steps (the paper uses 40).
    pub dpu_warmup: Option<u64>,
    /// Dynamic fp16 loss scaling.
    pub loss_scale: LossScaleConfig,
    /// Global gradient-norm clip (0 disables).
    pub max_grad_norm: f64,
    /// Micro-batches accumulated per optimizer step.
    pub grad_accumulation: u32,
    /// CPU optimizer worker threads: the partition count CPU-Adam submits
    /// to the shared worker pool. `0` means "auto" — use the pool's size
    /// (`ZO_THREADS` or the machine's available parallelism). Results are
    /// bit-identical at every setting; this only changes scheduling.
    pub optimizer_threads: usize,
    /// Elements per copy-back tile (Algorithm 1 line 15).
    pub tile_width: usize,
    /// Byte budget per gradient wire bucket (bounds the transient device
    /// staging memory; Sec. 4.1's "small groups").
    pub bucket_bytes: usize,
    /// Step-timeline tracer handle (`None` disables tracing).
    pub tracer: Option<TracerRef>,
    /// Fault-injection plan handle. `None` defers to the `ZO_FAULTS`
    /// environment variable (disabled when unset).
    pub faults: Option<FaultsRef>,
    /// Consecutive overflow-skipped steps tolerated before the engine
    /// surfaces a typed overflow-storm error (`0` disables the detector).
    pub overflow_storm_limit: u32,
    /// Stage-3 prefetch window: how many upcoming non-resident layers the
    /// parameter-partitioned engine gathers ahead of the one it is about
    /// to run. `0` means strictly just-in-time. Only read by
    /// [`Zero3OffloadEngine`](crate::zero3::Zero3OffloadEngine);
    /// prefetching changes wall-clock overlap, never values.
    pub prefetch_layers: usize,
    /// Stage-3 persistent-parameter byte budget: gathered layers whose
    /// full fp16 footprint fits in this LRU budget stay resident across
    /// steps instead of being released after use (DeepSpeed's
    /// "persistent parameters"). `0` releases every non-owned shard
    /// immediately after each sweep.
    pub persistent_param_bytes: usize,
    /// Which memory tier holds the fp32 optimizer states (paper Sec. 3's
    /// model-state placement, generalized past DRAM). [`TierKind::Dram`]
    /// keeps them resident in host memory — the classic ZeRO-Offload
    /// placement; [`TierKind::Nvme`] spills them to framed files under
    /// `ZO_TIER_DIR` (system temp dir when unset) and streams the Adam
    /// update through a bounded DRAM scratch each step. The trajectory is
    /// bit-identical across tiers; only residency and wall-clock change.
    /// Ignored when DPU is active (`dpu_warmup`), which requires
    /// DRAM-resident states.
    pub optimizer_tier: TierKind,
    /// DRAM scratch byte budget for the tiered optimizer's streaming
    /// schedule (three tile slots of decoded fp32 state plus their encoded
    /// payloads). Smaller budgets mean more, smaller tiles; the peak is
    /// observable as the `tier_hwm_bytes` gauge. Only read when
    /// `optimizer_tier` is not DRAM-resident.
    pub tier_scratch_bytes: usize,
}

impl Default for ZeroOffloadConfig {
    fn default() -> ZeroOffloadConfig {
        ZeroOffloadConfig {
            offload: OffloadDevice::Cpu,
            adam: AdamParams::default(),
            dpu_warmup: None,
            loss_scale: LossScaleConfig::default(),
            max_grad_norm: 0.0,
            grad_accumulation: 1,
            // Auto: follow the shared pool (ZO_THREADS / machine cores).
            optimizer_threads: 0,
            tile_width: 2 * 1024 * 1024,
            bucket_bytes: crate::bucket::default_bucket_bytes(),
            tracer: None,
            faults: None,
            overflow_storm_limit: 0,
            prefetch_layers: 1,
            persistent_param_bytes: 0,
            optimizer_tier: TierKind::Dram,
            tier_scratch_bytes: 8 * 1024 * 1024,
        }
    }
}

impl ZeroOffloadConfig {
    /// Parses a JSON config; absent fields take their defaults.
    pub fn from_json(json: &str) -> Result<ZeroOffloadConfig, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serializes the full config as pretty JSON.
    pub fn to_json(&self) -> String {
        // Plain-old-data: serialization cannot fail.
        serde_json::to_string_pretty(self).expect("config serialization")
    }

    /// Enables DPU with the paper's 40-step warm-up.
    #[must_use]
    pub fn with_dpu(mut self) -> ZeroOffloadConfig {
        self.dpu_warmup = Some(40);
        self
    }

    /// Disables offload (plain mixed-precision Adam on-device).
    #[must_use]
    pub fn without_offload(mut self) -> ZeroOffloadConfig {
        self.offload = OffloadDevice::None;
        self
    }

    /// The effective optimizer partition count: `optimizer_threads`, with
    /// `0` resolved to the shared pool's thread count.
    pub fn resolved_optimizer_threads(&self) -> usize {
        if self.optimizer_threads == 0 {
            zo_tensor::pool::global().threads()
        } else {
            self.optimizer_threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_and_partial_parse() {
        let cfg = ZeroOffloadConfig::default().with_dpu();
        let back = ZeroOffloadConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(back.dpu_warmup, Some(40));
        assert_eq!(back.grad_accumulation, cfg.grad_accumulation);
        // Partial config: unknown-but-valid subset with defaults.
        let partial =
            ZeroOffloadConfig::from_json(r#"{"offload": "None", "grad_accumulation": 8}"#).unwrap();
        assert_eq!(partial.offload, OffloadDevice::None);
        assert_eq!(partial.grad_accumulation, 8);
        assert!(partial.dpu_warmup.is_none());
        // Nested structs are partially specifiable too.
        let nested = ZeroOffloadConfig::from_json(
            r#"{"adam": {"lr": 0.01}, "loss_scale": {"init_scale": 128.0}}"#,
        )
        .unwrap();
        assert_eq!(nested.adam.lr, 0.01);
        assert_eq!(nested.adam.beta1, 0.9); // defaulted
        assert_eq!(nested.loss_scale.init_scale, 128.0);
        // Malformed JSON is an error, not a default.
        assert!(ZeroOffloadConfig::from_json("{nope").is_err());
    }

    #[test]
    fn default_is_offload_without_dpu() {
        let c = ZeroOffloadConfig::default();
        assert_eq!(c.offload, OffloadDevice::Cpu);
        assert!(c.dpu_warmup.is_none());
        assert_eq!(c.grad_accumulation, 1);
    }

    #[test]
    fn builders_compose() {
        let c = ZeroOffloadConfig::default().with_dpu().without_offload();
        assert_eq!(c.dpu_warmup, Some(40));
        assert_eq!(c.offload, OffloadDevice::None);
    }
}
