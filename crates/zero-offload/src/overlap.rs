//! Real CPU/compute overlap for DPU: the optimizer on its own thread.
//!
//! The synchronous [`DelayedUpdate`](zo_optim::DelayedUpdate) reproduces
//! DPU's *semantics*; this module reproduces its *mechanism*: the CPU-Adam
//! step for step *i*'s gradients runs on a dedicated optimizer thread
//! while the caller computes step *i+1*'s forward/backward, exactly the
//! overlap of paper Fig. 6.
//!
//! Protocol per step (after warm-up):
//!
//! 1. [`AsyncDpu::submit`] hands the freshly transferred gradients to the
//!    optimizer thread and returns immediately — the caller goes on to
//!    compute the next micro-batch;
//! 2. before the *following* parameter sync, [`AsyncDpu::wait_params`]
//!    blocks until the in-flight update finishes and returns the fresh
//!    fp16 parameters.
//!
//! Correctness is pinned by tests showing bit-identical trajectories to
//! the synchronous [`DelayedUpdate`], and liveness by a test that submits
//! work and observes the caller thread making progress before collecting.

use crossbeam::channel::{bounded, Receiver, Sender};
use zo_optim::{AdamState, CpuAdam, CpuAdamConfig};
use zo_tensor::F16;

enum Job {
    /// Run one Adam step with these (unscaled fp32) gradients.
    Step(Vec<f32>),
    /// Shut down.
    Stop,
}

/// The result of one asynchronous optimizer step, snapshotted on the
/// worker thread right after the update.
///
/// Carrying the full `(p16, master, state)` triple — not just the fp16
/// view — is what lets the caller keep a checkpoint-consistent mirror of
/// the optimizer-side state without ever blocking on the worker outside
/// the pipeline's natural wait point.
pub struct DpuUpdate {
    /// fp16 snapshot of the master parameters after the update.
    pub p16: Vec<F16>,
    /// fp32 master parameters after the update.
    pub master: Vec<f32>,
    /// Adam moment state after the update.
    pub state: AdamState,
    /// Optimizer steps completed so far.
    pub steps: u64,
}

/// An optimizer thread owning the fp32 master parameters.
pub struct AsyncDpu {
    tx: Sender<Job>,
    rx: Receiver<DpuUpdate>,
    worker: Option<std::thread::JoinHandle<Vec<f32>>>,
    in_flight: bool,
}

impl AsyncDpu {
    /// Spawns the optimizer thread, transferring ownership of the master
    /// parameters to it (they live in "CPU memory").
    pub fn spawn(master: Vec<f32>, cfg: CpuAdamConfig) -> AsyncDpu {
        AsyncDpu::spawn_traced(master, cfg, zo_trace::Tracer::disabled())
    }

    /// Like [`AsyncDpu::spawn`], additionally recording each update as a
    /// `cpu_adam_step` span on the `optimizer` track (plus an
    /// `optimizer_steps` counter). Because the span is recorded from the
    /// worker thread against the tracer's shared epoch, its wall-clock
    /// overlap with caller-side spans is directly checkable — the Fig. 6
    /// overlap becomes an assertable fact rather than a diagram.
    pub fn spawn_traced(
        master: Vec<f32>,
        cfg: CpuAdamConfig,
        tracer: zo_trace::Tracer,
    ) -> AsyncDpu {
        AsyncDpu::spawn_on_track(master, cfg, None, tracer, "optimizer")
    }

    /// The general constructor: optionally restores a previous
    /// [`AdamState`] (checkpoint resume) and records worker spans on
    /// `track` so several workers (e.g. one per ZeRO-2 rank) stay apart.
    ///
    /// # Panics
    ///
    /// Panics if `state` is given with a length other than `master.len()`.
    pub fn spawn_on_track(
        master: Vec<f32>,
        cfg: CpuAdamConfig,
        state: Option<AdamState>,
        tracer: zo_trace::Tracer,
        track: &str,
    ) -> AsyncDpu {
        if let Some(s) = &state {
            assert_eq!(s.len(), master.len(), "restored state length");
        }
        let track = track.to_string();
        let (job_tx, job_rx) = bounded::<Job>(1);
        let (done_tx, done_rx) = bounded::<DpuUpdate>(1);
        let worker = std::thread::spawn(move || {
            let mut master = master;
            let mut opt = CpuAdam::new(cfg, master.len());
            if let Some(s) = state {
                opt.load_state(s).expect("state length checked above");
            }
            let mut p16 = vec![F16::ZERO; master.len()];
            while let Ok(job) = job_rx.recv() {
                match job {
                    Job::Step(grads) => {
                        {
                            let _update = tracer.span(&track, "cpu_adam_step");
                            opt.step_mixed(&mut master, &grads, &mut p16)
                                .expect("worker buffers are sized together");
                        }
                        tracer.add(&track, "optimizer_steps", 1);
                        let done = DpuUpdate {
                            p16: p16.clone(),
                            master: master.clone(),
                            state: opt.state().clone(),
                            steps: opt.step_count(),
                        };
                        if done_tx.send(done).is_err() {
                            break;
                        }
                    }
                    Job::Stop => break,
                }
            }
            master
        });
        AsyncDpu {
            tx: job_tx,
            rx: done_rx,
            worker: Some(worker),
            in_flight: false,
        }
    }

    /// Submits gradients for an asynchronous update; returns immediately.
    ///
    /// # Panics
    ///
    /// Panics if an update is already in flight (callers must
    /// [`AsyncDpu::wait_params`] first) or the worker died.
    pub fn submit(&mut self, grads: Vec<f32>) {
        assert!(!self.in_flight, "an update is already in flight");
        self.tx
            .send(Job::Step(grads))
            .expect("optimizer thread alive");
        self.in_flight = true;
    }

    /// Whether an update is currently in flight.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    /// Blocks until the in-flight update completes; returns the full
    /// update snapshot (fp16 and fp32 parameters, Adam state, step count).
    ///
    /// # Panics
    ///
    /// Panics if no update is in flight or the worker died.
    pub fn wait_update(&mut self) -> DpuUpdate {
        assert!(self.in_flight, "no update in flight");
        let done = self.rx.recv().expect("optimizer thread alive");
        self.in_flight = false;
        done
    }

    /// Blocks until the in-flight update completes; returns the fp16
    /// parameters and the optimizer step count.
    ///
    /// # Panics
    ///
    /// Panics if no update is in flight or the worker died.
    pub fn wait_params(&mut self) -> (Vec<F16>, u64) {
        let done = self.wait_update();
        (done.p16, done.steps)
    }

    /// The single shutdown path shared by [`AsyncDpu::shutdown`] and
    /// `Drop`: drain any in-flight update, stop the worker, join it.
    /// Returns `None` if the worker was already gone or panicked.
    fn shutdown_inner(&mut self) -> Option<Vec<f32>> {
        let worker = self.worker.take()?;
        if self.in_flight {
            let _ = self.rx.recv();
            self.in_flight = false;
        }
        let _ = self.tx.send(Job::Stop);
        worker.join().ok()
    }

    /// Stops the worker and returns the final master parameters.
    ///
    /// Drains any in-flight update first (its result is the final state).
    pub fn shutdown(mut self) -> Vec<f32> {
        self.shutdown_inner().expect("optimizer thread panicked")
    }
}

impl Drop for AsyncDpu {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zo_optim::DelayedUpdate;

    fn grads_for(step: usize, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| (((step * 13 + i * 7) % 19) as f32 - 9.0) * 0.02)
            .collect()
    }

    #[test]
    fn matches_synchronous_dpu_bitwise() {
        let n = 97;
        let steps = 6;
        let master: Vec<f32> = (0..n).map(|i| 0.1 * i as f32 - 4.0).collect();

        // Async pipeline: submit step i, compute "next batch", wait.
        let mut dpu = AsyncDpu::spawn(master.clone(), CpuAdamConfig::default());
        let mut last_p16 = None;
        for step in 0..steps {
            dpu.submit(grads_for(step, n));
            // (The caller would run forward/backward here, overlapped.)
            let (p16, count) = dpu.wait_params();
            assert_eq!(count, step as u64 + 1);
            last_p16 = Some(p16);
        }
        let final_master = dpu.shutdown();

        // Synchronous reference: DelayedUpdate with warm-up 0 applies the
        // same gradients one call later; emulate the same effective order
        // by applying each gradient eagerly (the async path above is
        // eager within a submit/wait pair).
        let mut opt = CpuAdam::new(CpuAdamConfig::default(), n);
        let mut p_ref = master;
        let mut p16_ref = vec![F16::ZERO; n];
        for step in 0..steps {
            opt.step_mixed(&mut p_ref, &grads_for(step, n), &mut p16_ref)
                .unwrap();
        }
        assert_eq!(final_master, p_ref);
        assert_eq!(last_p16.unwrap(), p16_ref);
    }

    #[test]
    fn pipelined_use_matches_delayed_update_semantics() {
        // True DPU pipeline: keep one update in flight across steps, so
        // the parameters used at step i+1 come from step i-1's gradients —
        // exactly DelayedUpdate with warm-up 0.
        let n = 40;
        let steps = 7;
        let master: Vec<f32> = (0..n).map(|i| 0.05 * i as f32).collect();

        let mut dpu = AsyncDpu::spawn(master.clone(), CpuAdamConfig::default());
        let mut applied_p16: Vec<Vec<F16>> = Vec::new();
        for step in 0..steps {
            if dpu.in_flight() {
                let (p16, _) = dpu.wait_params();
                applied_p16.push(p16);
            }
            dpu.submit(grads_for(step, n));
            // Caller computes step `step + 1`'s batch here, overlapped with
            // the update of step `step`'s gradients.
        }
        let final_master = dpu.shutdown();

        // Synchronous DPU reference.
        let mut sync = DelayedUpdate::new(CpuAdam::new(CpuAdamConfig::default(), n), 0);
        let mut p_ref = master;
        for step in 0..steps {
            sync.step(&mut p_ref, &grads_for(step, n)).unwrap();
        }
        sync.flush(&mut p_ref).unwrap();
        assert_eq!(final_master, p_ref);
        // The pipeline produced steps-1 parameter snapshots while running
        // (the last gradient was drained at shutdown).
        assert_eq!(applied_p16.len(), steps - 1);
    }

    #[test]
    fn caller_progresses_while_update_in_flight() {
        // Liveness: submit returns before the update completes; the caller
        // can do real work in between. Use a large buffer so the update
        // takes measurable time even on a fast machine.
        let n = 1 << 21;
        let mut dpu = AsyncDpu::spawn(vec![0.5; n], CpuAdamConfig::default());
        dpu.submit(vec![0.01; n]);
        assert!(dpu.in_flight());
        // Caller-side "forward pass" while the optimizer thread works.
        let mut acc = 0.0f64;
        for i in 0..100_000 {
            acc += (i as f64).sqrt();
        }
        assert!(acc > 0.0);
        let (p16, steps) = dpu.wait_params();
        assert_eq!(steps, 1);
        assert_eq!(p16.len(), n);
        assert!(!dpu.in_flight());
        dpu.shutdown();
    }

    #[test]
    fn traced_update_overlaps_callers_next_forward() {
        // Fig. 6 as a wall-clock fact: the optimizer span for step i's
        // gradients must run concurrently with the caller-side span that
        // stands in for step i+1's forward/backward. Spans from both
        // threads share the tracer's epoch, so overlap is checkable.
        let tracer = zo_trace::Tracer::new();
        let n = 1 << 21;
        let steps = 3;
        let mut dpu =
            AsyncDpu::spawn_traced(vec![0.5; n], CpuAdamConfig::default(), tracer.clone());
        for step in 0..steps {
            dpu.submit(grads_for(step, n));
            {
                let _fwd = tracer.span("gpu", "fwd_bwd");
                // Caller-side compute while the update is in flight; big
                // enough to take real time even on a fast machine.
                let mut acc = 0.0f64;
                for i in 0..2_000_000u64 {
                    acc += (i as f64).sqrt();
                }
                assert!(acc > 0.0);
            }
            let _ = dpu.wait_params();
        }
        dpu.shutdown();

        let updates = tracer.spans_named("cpu_adam_step");
        let forwards = tracer.spans_named("fwd_bwd");
        assert_eq!(updates.len(), steps);
        assert_eq!(forwards.len(), steps);
        assert_eq!(
            tracer.counter_on("optimizer", "optimizer_steps"),
            steps as u64
        );
        // Each step's update should overlap that step's caller-side work;
        // demand a majority so one unlucky scheduling stall cannot flake
        // the test, while genuinely serial execution still fails it.
        let overlapped = updates
            .iter()
            .zip(&forwards)
            .filter(|(u, f)| u.overlaps(f))
            .count();
        assert!(
            overlapped * 2 > steps,
            "only {overlapped}/{steps} updates overlapped the next forward"
        );
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_submit_rejected() {
        let mut dpu = AsyncDpu::spawn(vec![0.0; 4], CpuAdamConfig::default());
        dpu.submit(vec![0.1; 4]);
        dpu.submit(vec![0.1; 4]);
    }

    #[test]
    fn drop_with_in_flight_update_is_clean() {
        let mut dpu = AsyncDpu::spawn(vec![0.0; 1024], CpuAdamConfig::default());
        dpu.submit(vec![0.1; 1024]);
        drop(dpu); // Must not hang or panic.
    }
}
