//! ZeRO-3 parameter partitioning: no rank ever holds a full fp16 replica.
//!
//! ZeRO-2 ([`crate::zero2`]) partitions optimizer state and gradients but
//! leaves the `2M`-byte fp16 parameter replica on every rank. Stage 3
//! partitions the parameters too: each rank owns a contiguous `1/N` fp16
//! shard, and before each micro-batch the engine *materialises* exactly
//! the layers the forward/backward needs, just in time, with layer-sliced
//! all-gathers ([`zo_collectives::Communicator::all_gather_slice`]):
//!
//! * a **prefetch window** gathers up to `prefetch_layers` upcoming
//!   layers ahead of the one about to run (overlap knob — it reorders
//!   gathers, never changes values);
//! * non-owned shards are **released** right after a layer's use, so the
//!   transient working set is bounded by the window, not the model;
//! * small layers stay resident in an LRU **persistent-parameters cache**
//!   under `persistent_param_bytes`, skipping their re-gathers entirely
//!   (DeepSpeed's `stage3_param_persistence_threshold` idea).
//!
//! The schedule is computed by [`Zero3Plan`] as a pure, replayable event
//! sequence — tests replay the same plan to predict gather traffic and
//! peak residency analytically, then hold the live engine's tracer
//! counters to the prediction. Cache decisions use *full-layer* bytes
//! (identical on every rank) so all ranks emit the same event sequence
//! and the collectives stay in lock-step; only the per-rank byte amounts
//! (the non-owned portion each rank actually receives) differ.
//!
//! Released layers are zeroed in the model at each step boundary, so
//! between steps a rank provably holds only its own shard plus the cache
//! — the gather path is load-bearing, not decorative.

use zo_collectives::{partition_range, Communicator};
use zo_fault::{lane, with_retry, FaultError, FaultSession, Site};
use zo_nn::Model;
use zo_optim::DynamicLossScaler;
use zo_tensor::{cast_f32_to_f16, F16};
use zo_trace::{names, Tracer};

use crate::checkpoint::{CheckpointError, TrainingCheckpoint};
use crate::config::{resolve_fault_plan, resolve_tracer, ZeroOffloadConfig};
use crate::engine::{EngineStats, StepOutcome};
use crate::pipeline::{build_offload_updater, GradStream, Placement, StepError, StepPipeline};
use crate::wire::roundtrip_grads;

/// One entry in the stage-3 gather/release schedule.
///
/// `recv_bytes` / `freed_bytes` are *this rank's* fp16 byte amounts: the
/// part of the layer the rank does not own (owned elements never move).
/// The event *sequence* is identical on every rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Zero3Event {
    /// The layer is not resident: all-gather it just-in-time (or ahead,
    /// for prefetch-window entries).
    Gather {
        /// Layer bucket index.
        layer: usize,
        /// Non-owned fp16 bytes this rank receives.
        recv_bytes: u64,
    },
    /// The layer is already resident in the persistent cache; touch it
    /// (moves it to most-recently-used).
    Hit {
        /// Layer bucket index.
        layer: usize,
    },
    /// The layer's non-owned shard is dropped after use (or on LRU
    /// eviction from the persistent cache).
    Release {
        /// Layer bucket index.
        layer: usize,
        /// Non-owned fp16 bytes this rank frees.
        freed_bytes: u64,
    },
    /// Step-boundary re-gather of a cache-resident layer: the optimizer
    /// moved the parameters, so persistent layers must be refreshed from
    /// the new shards.
    Refresh {
        /// Layer bucket index.
        layer: usize,
        /// Non-owned fp16 bytes this rank receives.
        recv_bytes: u64,
    },
}

/// The persistent-parameters LRU cache plus residency accounting.
///
/// Byte accounting is split on purpose: cache admission/eviction uses
/// **full-layer** fp16 bytes (rank-agnostic, so every rank makes the same
/// decision), while `resident_bytes`/`peak_bytes` use the rank's actual
/// footprint (owned shard + materialised non-owned bytes).
#[derive(Debug, Clone, Default)]
pub struct Zero3Cache {
    /// Cached layer indices, most-recently-used first.
    lru: Vec<usize>,
    /// Full-layer fp16 bytes held by the cache (rank-agnostic).
    cached_full_bytes: u64,
    /// Non-owned fp16 bytes currently materialised on this rank
    /// (cache-resident plus in-flight transients).
    resident_nonowned: u64,
    /// Peak of owned-shard + materialised bytes over the cache's life.
    peak_bytes: u64,
}

impl Zero3Cache {
    /// An empty (cold) cache.
    pub fn new() -> Zero3Cache {
        Zero3Cache::default()
    }

    /// Layer indices currently cache-resident, most-recently-used first.
    pub fn cached_layers(&self) -> &[usize] {
        &self.lru
    }

    /// Full-layer fp16 bytes held by the cache (the budget consumer).
    pub fn cached_full_bytes(&self) -> u64 {
        self.cached_full_bytes
    }

    /// Peak fp16 parameter residency this rank has reached, in bytes
    /// (owned shard + cache + transient gathers).
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }
}

/// The stage-3 ownership + schedule model: which rank owns which
/// contiguous parameter shard, and — given a prefetch window and a cache
/// budget — the exact gather/release event sequence of a micro-batch.
///
/// The plan is pure data: replaying [`Zero3Plan::micro_batch_events`] and
/// [`Zero3Plan::publish_events`] against a [`Zero3Cache`] reproduces the
/// engine's schedule without running any training, which is how the
/// traffic tests predict counters analytically.
#[derive(Debug, Clone)]
pub struct Zero3Plan {
    layers: Vec<core::ops::Range<usize>>,
    own: core::ops::Range<usize>,
    total: usize,
    prefetch: usize,
    budget_bytes: u64,
}

impl Zero3Plan {
    /// Builds the plan for one rank.
    ///
    /// `layers` are the model's flat layer-bucket ranges (must tile
    /// `0..total`); ownership is [`partition_range`] over `total`.
    ///
    /// # Panics
    ///
    /// Panics if the layers do not exactly tile `0..total` or
    /// `rank >= world`.
    pub fn new(
        layers: Vec<core::ops::Range<usize>>,
        total: usize,
        world: usize,
        rank: usize,
        prefetch: usize,
        budget_bytes: usize,
    ) -> Zero3Plan {
        assert!(rank < world, "rank {rank} out of world {world}");
        let mut off = 0;
        for r in &layers {
            assert_eq!(r.start, off, "layers must tile 0..total contiguously");
            off = r.end;
        }
        assert_eq!(off, total, "layers must cover 0..total");
        Zero3Plan {
            layers,
            own: partition_range(total, world, rank),
            total,
            prefetch,
            budget_bytes: budget_bytes as u64,
        }
    }

    /// The flat parameter range this rank owns.
    pub fn owned_range(&self) -> core::ops::Range<usize> {
        self.own.clone()
    }

    /// The model's layer-bucket ranges.
    pub fn layers(&self) -> &[core::ops::Range<usize>] {
        &self.layers
    }

    /// Full fp16 bytes of layer `l` (rank-agnostic cache currency).
    pub fn layer_full_bytes(&self, l: usize) -> u64 {
        2 * self.layers[l].len() as u64
    }

    /// fp16 bytes of layer `l` this rank does *not* own — what a gather
    /// receives and a release frees.
    pub fn layer_nonowned_bytes(&self, l: usize) -> u64 {
        let r = &self.layers[l];
        let lo = r.start.max(self.own.start);
        let hi = r.end.min(self.own.end);
        2 * (r.len() - hi.saturating_sub(lo)) as u64
    }

    /// This rank's resident fp16 bytes for a given materialised set:
    /// owned shard + `nonowned` materialised bytes.
    fn resident(&self, nonowned: u64) -> u64 {
        2 * self.own.len() as u64 + nonowned
    }

    /// The gather/release schedule of one micro-batch: a forward sweep
    /// over all layers then a backward sweep in reverse, each with the
    /// prefetch window running in sweep direction. Updates `cache`
    /// (LRU order, residency, peak) as it goes.
    pub fn micro_batch_events(&self, cache: &mut Zero3Cache) -> Vec<Zero3Event> {
        let n = self.layers.len();
        let mut events = Vec::new();
        let fwd: Vec<usize> = (0..n).collect();
        let bwd: Vec<usize> = (0..n).rev().collect();
        for sweep in [fwd, bwd] {
            self.sweep(&sweep, cache, &mut events);
        }
        events
    }

    /// One sweep (forward or backward order) of the layer list.
    fn sweep(&self, order: &[usize], cache: &mut Zero3Cache, events: &mut Vec<Zero3Event>) {
        // Layers materialised transiently this sweep (gathered, not yet
        // used): at most `prefetch + 1` at any moment.
        let mut transient: Vec<usize> = Vec::new();
        for (pos, &layer) in order.iter().enumerate() {
            // Fill the window: the current layer plus up to `prefetch`
            // upcoming ones, in sweep order.
            for &ahead in order[pos..].iter().take(self.prefetch + 1) {
                if cache.lru.contains(&ahead) || transient.contains(&ahead) {
                    continue;
                }
                events.push(Zero3Event::Gather {
                    layer: ahead,
                    recv_bytes: self.layer_nonowned_bytes(ahead),
                });
                transient.push(ahead);
                cache.resident_nonowned += self.layer_nonowned_bytes(ahead);
                cache.peak_bytes = cache.peak_bytes.max(self.resident(cache.resident_nonowned));
            }
            // Use the layer, then decide where it lives.
            if let Some(i) = cache.lru.iter().position(|&l| l == layer) {
                cache.lru.remove(i);
                cache.lru.insert(0, layer);
                events.push(Zero3Event::Hit { layer });
                continue;
            }
            transient.retain(|&l| l != layer);
            let full = self.layer_full_bytes(layer);
            if full <= self.budget_bytes {
                // Admit at MRU, evicting least-recently-used layers until
                // the full-byte budget holds (rank-agnostic decision).
                while cache.cached_full_bytes + full > self.budget_bytes {
                    let evicted = cache.lru.pop().expect("budget admits `full` alone");
                    cache.cached_full_bytes -= self.layer_full_bytes(evicted);
                    cache.resident_nonowned -= self.layer_nonowned_bytes(evicted);
                    events.push(Zero3Event::Release {
                        layer: evicted,
                        freed_bytes: self.layer_nonowned_bytes(evicted),
                    });
                }
                cache.lru.insert(0, layer);
                cache.cached_full_bytes += full;
            } else {
                // Too big to ever cache: release right after use.
                cache.resident_nonowned -= self.layer_nonowned_bytes(layer);
                events.push(Zero3Event::Release {
                    layer,
                    freed_bytes: self.layer_nonowned_bytes(layer),
                });
            }
        }
        debug_assert!(transient.is_empty(), "sweep left unused transients");
    }

    /// The step-boundary schedule: every cache-resident layer is
    /// refreshed (re-gathered) because the optimizer moved the shards.
    /// Ascending layer order, on every rank alike.
    pub fn publish_events(&self, cache: &Zero3Cache) -> Vec<Zero3Event> {
        let mut cached: Vec<usize> = cache.lru.clone();
        cached.sort_unstable();
        cached
            .into_iter()
            .map(|layer| Zero3Event::Refresh {
                layer,
                recv_bytes: self.layer_nonowned_bytes(layer),
            })
            .collect()
    }

    /// The non-owned sub-ranges of layer `l` (the pieces a release zeroes
    /// in the model): at most two, on either side of the owned shard.
    pub fn nonowned_pieces(&self, l: usize) -> Vec<core::ops::Range<usize>> {
        let r = &self.layers[l];
        let mut out = Vec::new();
        let left = r.start..r.end.min(self.own.start);
        if !left.is_empty() {
            out.push(left);
        }
        let right = r.start.max(self.own.end)..r.end;
        if !right.is_empty() {
            out.push(right);
        }
        out
    }
}

/// The stage-3 placement: layer-granular gather/release around compute,
/// reduce-scatter gradients in, owned-shard copy-back plus cache refresh
/// out. PCIe volume stays at ZeRO-2's `4M/N` per rank (only the owned
/// shard crosses the simulated link); the parameter collectives are
/// accounted separately under `param_traffic_bytes`.
struct Zero3Placement {
    comm: Communicator,
    plan: Zero3Plan,
    cache: Zero3Cache,
    track: String,
    gauge: String,
    /// Full-model gradient staging for the reduce-scatter, reused.
    full_grads: Vec<f32>,
    /// fp32 widening of this rank's fp16 shard, rebuilt when p16 changes.
    shard_f32: Vec<f32>,
    /// fp16 scratch for the shard's PCIe round trip, reused.
    wire16: Vec<F16>,
    /// fp32 scale scratch feeding the batched narrowing codec, reused.
    wire32: Vec<f32>,
}

impl Zero3Placement {
    fn widen_shard(&mut self, p16: &[F16]) {
        self.shard_f32.resize(p16.len(), 0.0);
        F16::to_f32_slice(p16, &mut self.shard_f32);
    }

    /// Executes one gather event: the layer-sliced collective, the model
    /// write, and the traffic/residency accounting.
    fn gather_layer(
        &mut self,
        model: &mut impl Model,
        layer: usize,
        recv_bytes: u64,
        span_name: &'static str,
        tracer: &Tracer,
    ) -> Result<(), FaultError> {
        let range = self.plan.layers()[layer].clone();
        let _g = tracer.span(&self.track, span_name);
        let vals =
            self.comm
                .try_all_gather_slice(&self.shard_f32, range.clone(), self.plan.total)?;
        model.load_param_range(range, &vals);
        tracer.add(&self.track, names::PARAM_TRAFFIC_BYTES, recv_bytes);
        Ok(())
    }

    /// The step-boundary sequence shared by publish and skip: copy the
    /// owned shard back from p16 (the PCIe h2d leg), refresh the cache
    /// from the new shards, and zero every non-cached non-owned piece so
    /// the inter-step model provably holds no full replica.
    fn publish_boundary(
        &mut self,
        model: &mut impl Model,
        p16: &[F16],
        stats: &mut EngineStats,
        tracer: &Tracer,
    ) -> Result<(), FaultError> {
        self.widen_shard(p16);
        let own = self.plan.owned_range();
        model.load_param_range(own.clone(), &self.shard_f32);
        stats.h2d_bytes += 2 * p16.len() as u64;
        tracer.add(&self.track, "h2d_bytes", 2 * p16.len() as u64);
        for ev in self.plan.publish_events(&self.cache) {
            if let Zero3Event::Refresh { layer, recv_bytes } = ev {
                self.gather_layer(model, layer, recv_bytes, names::PARAM_ALLGATHER, tracer)?;
            }
        }
        // Physically drop everything the schedule released: gathers are
        // value-idempotent, so zeroing after compute (rather than at the
        // release event mid-schedule) changes no numerics — but it makes
        // "no resident replica between steps" a checkable model state.
        let cached: Vec<usize> = self.cache.cached_layers().to_vec();
        for l in 0..self.plan.layers().len() {
            if cached.contains(&l) {
                continue;
            }
            for piece in self.plan.nonowned_pieces(l) {
                model.clear_param_range(piece);
            }
        }
        Ok(())
    }
}

impl<M: Model> Placement<M> for Zero3Placement {
    fn fwd_track(&self) -> &str {
        &self.track
    }

    fn counter_track(&self) -> &str {
        &self.track
    }

    fn pre_forward(
        &mut self,
        model: &mut M,
        p16: &[F16],
        _stats: &mut EngineStats,
        tracer: &Tracer,
    ) -> Result<(), FaultError> {
        self.widen_shard(p16);
        let events = self.plan.micro_batch_events(&mut self.cache);
        // The replay above advanced the cache's high-water mark through
        // every in-flight transient; the gauge mirrors that exact peak.
        tracer.gauge_max(&self.gauge, self.cache.peak_bytes as f64);
        for ev in events {
            match ev {
                Zero3Event::Gather { layer, recv_bytes } => {
                    self.gather_layer(model, layer, recv_bytes, names::PARAM_ALLGATHER, tracer)?;
                }
                Zero3Event::Hit { .. } => {}
                Zero3Event::Release { layer, freed_bytes } => {
                    let range = self.plan.layers()[layer].clone();
                    let _r = tracer.span(&self.track, names::PARAM_RELEASE);
                    self.comm.try_release_slice(range, self.plan.total)?;
                    tracer.add(&self.track, names::PARAM_RELEASE, 1);
                    let _ = freed_bytes;
                }
                Zero3Event::Refresh { .. } => unreachable!("refresh is a publish event"),
            }
        }
        Ok(())
    }

    fn transfer(
        &mut self,
        model: &mut M,
        grads: &mut [f32],
        scale: f32,
        denom: f32,
        _stream: &mut GradStream,
        stats: &mut EngineStats,
        tracer: &Tracer,
        faults: &mut FaultSession,
    ) -> Result<bool, FaultError> {
        // Identical to ZeRO-2: reduce-scatter the averaged gradients so
        // this rank receives exactly its owned shard.
        {
            let _rs = tracer.span(&self.track, "reduce_scatter");
            model.copy_grads_to(&mut self.full_grads);
            let shard = self.comm.try_reduce_scatter_mean(&self.full_grads)?;
            grads.copy_from_slice(&shard);
        }
        with_retry(faults, Site::WireD2h, tracer, &self.track, || ())?;
        let overflow = roundtrip_grads(grads, denom, scale, &mut self.wire32, &mut self.wire16);
        stats.d2h_bytes += 2 * grads.len() as u64;
        tracer.add(&self.track, "d2h_bytes", 2 * grads.len() as u64);
        Ok(overflow)
    }

    fn combine_overflow(&mut self, local: bool) -> bool {
        let mut flag = vec![if local { 1.0f32 } else { 0.0 }];
        self.comm.all_reduce_sum(&mut flag);
        flag[0] > 0.0
    }

    fn clip_grads(&mut self, _grads: &mut [f32], _max_norm: f64) {
        // Like ZeRO-2: a faithful global-norm clip needs another
        // collective over the shards; the sharded engines do not clip.
    }

    fn update_span(&self) -> (&str, &str) {
        (&self.track, "partition_update")
    }

    fn publish(
        &mut self,
        model: &mut M,
        p16: &[F16],
        stats: &mut EngineStats,
        tracer: &Tracer,
        _faults: &mut FaultSession,
    ) -> Result<(), FaultError> {
        self.publish_boundary(model, p16, stats, tracer)
    }

    fn on_skip(
        &mut self,
        model: &mut M,
        p16: &[F16],
        stats: &mut EngineStats,
        tracer: &Tracer,
    ) -> Result<(), FaultError> {
        // Parameters unchanged, but ranks must run the same collective
        // sequence to stay in lock-step — and the boundary invariant
        // (shard + cache only) must hold after skipped steps too.
        self.publish_boundary(model, p16, stats, tracer)
    }

    fn closes_step(&self) -> bool {
        self.comm.rank() == 0
    }
}

/// One data-parallel rank of a ZeRO-3 (parameter-partitioned) + offload
/// training group.
pub struct Zero3OffloadEngine<M: Model> {
    model: M,
    pipe: StepPipeline,
    placement: Zero3Placement,
    /// Inert: the sharded path transfers via reduce-scatter.
    stream: GradStream,
}

impl<M: Model> Zero3OffloadEngine<M> {
    /// Wraps one rank's model. All ranks must construct
    /// identically-initialized models (same seed).
    ///
    /// Construction performs *no* collectives: the model is reduced to
    /// the fp16 view of the owned shard (everything else zeroed), and the
    /// first step's pre-forward schedule materialises what compute needs.
    pub fn new(mut model: M, cfg: ZeroOffloadConfig, comm: Communicator) -> Zero3OffloadEngine<M> {
        let n = model.num_params();
        let range = partition_range(n, comm.world(), comm.rank());
        let mut full = vec![0.0f32; n];
        model.copy_params_to(&mut full);
        let master = full[range.clone()].to_vec();
        let shard_len = master.len();
        let tracer = resolve_tracer(cfg.tracer);
        let track = format!("rank{}", comm.rank());
        let updater = build_offload_updater(&cfg, &master, &tracer, &format!("{track}_optimizer"));
        let mut p16 = vec![F16::ZERO; shard_len];
        cast_f32_to_f16(&master, &mut p16);
        let plan = resolve_fault_plan(cfg.faults);
        let z3 = Zero3Plan::new(
            model.layer_ranges(),
            n,
            comm.world(),
            comm.rank(),
            cfg.prefetch_layers,
            cfg.persistent_param_bytes,
        );
        let gauge = format!("{}.rank{}", names::PARAM_HWM_BYTES, comm.rank());
        if plan.is_enabled() {
            comm.install_faults(
                FaultSession::new(plan.clone(), lane::COLLECTIVE),
                tracer.clone(),
                &track,
            );
        }
        let placement = Zero3Placement {
            comm,
            plan: z3,
            cache: Zero3Cache::new(),
            track,
            gauge,
            full_grads: vec![0.0f32; n],
            shard_f32: Vec::new(),
            wire16: Vec::new(),
            wire32: Vec::new(),
        };
        let pipe = StepPipeline {
            master,
            p16,
            grads: vec![0.0f32; shard_len],
            updater,
            scaler: DynamicLossScaler::new(cfg.loss_scale),
            micro_in_window: 0,
            stats: EngineStats::default(),
            tracer,
            grad_accumulation: cfg.grad_accumulation,
            max_grad_norm: 0.0,
            pool_base: zo_tensor::pool::global().stats(),
            // Shared lane ENGINE, like ZeRO-2: lock-step SPMD execution
            // makes identical per-rank fault decisions, so fatal faults
            // error everywhere before the next barrier.
            faults: FaultSession::new(plan, lane::ENGINE),
            overflow_storm_limit: cfg.overflow_storm_limit,
        };
        let mut engine = Zero3OffloadEngine {
            model,
            pipe,
            placement,
            stream: GradStream::inert(),
        };
        engine.reset_model_to_shard();
        engine
    }

    /// Loads the fp16 view of the owned shard into the model and zeroes
    /// everything else — the cold-start (and post-restore) model state.
    fn reset_model_to_shard(&mut self) {
        self.placement.widen_shard(&self.pipe.p16);
        let own = self.placement.plan.owned_range();
        if own.start > 0 {
            self.model.clear_param_range(0..own.start);
        }
        let n = self.placement.plan.total;
        if own.end < n {
            self.model.clear_param_range(own.end..n);
        }
        let shard = self.placement.shard_f32.clone();
        self.model.load_param_range(own, &shard);
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.placement.comm.rank()
    }

    /// Group size.
    pub fn world(&self) -> usize {
        self.placement.comm.world()
    }

    /// Cumulative counters for this rank.
    pub fn stats(&self) -> &EngineStats {
        &self.pipe.stats
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// This rank's fp32 master shard.
    pub fn master_shard(&self) -> &[f32] {
        &self.pipe.master
    }

    /// Flat-parameter range owned by this rank.
    pub fn shard_range(&self) -> core::ops::Range<usize> {
        self.placement.plan.owned_range()
    }

    /// The rank's gather/release schedule model (replayable by tests).
    pub fn plan(&self) -> &Zero3Plan {
        &self.placement.plan
    }

    /// The live persistent-parameters cache state.
    pub fn cache(&self) -> &Zero3Cache {
        &self.placement.cache
    }

    /// One micro-batch; at window boundaries, the partitioned update.
    ///
    /// All ranks must call `step` the same number of times (collectives
    /// synchronize them).
    pub fn step<E>(
        &mut self,
        run_backward: impl FnOnce(&mut M) -> Result<f32, E>,
    ) -> Result<StepOutcome, StepError<E>> {
        self.pipe.step(
            &mut self.model,
            &mut self.placement,
            &mut self.stream,
            |m, _| run_backward(m),
        )
    }

    /// Captures this rank's training state (shard-sized: master, moments,
    /// scaler, DPU clock, counters). Every rank checkpoints its own
    /// shard; restoring all shards restores the run.
    pub fn save_checkpoint(&self) -> TrainingCheckpoint {
        self.pipe.capture_state()
    }

    /// Restores a checkpoint saved by the same rank of an identically
    /// configured group. The cache restarts cold — re-gathers are
    /// value-idempotent, so a cold resume continues the trajectory
    /// bit-identically.
    pub fn restore_checkpoint(&mut self, ckpt: &TrainingCheckpoint) -> Result<(), CheckpointError> {
        self.pipe.restore_state(ckpt)?;
        self.placement.cache = Zero3Cache::new();
        self.reset_model_to_shard();
        Ok(())
    }
}

/// Runs `world` stage-3 ranks on threads; `body` receives each rank's
/// engine. Returns each rank's output in rank order.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn run_zero3_ranks<M, T, F>(
    world: usize,
    cfg: ZeroOffloadConfig,
    make_model: impl Fn(usize) -> M + Send + Sync,
    body: F,
) -> Vec<T>
where
    M: Model + Send,
    T: Send,
    F: Fn(&mut Zero3OffloadEngine<M>) -> T + Send + Sync,
{
    let comms = Communicator::group(world);
    std::thread::scope(|scope| {
        let body = &body;
        let make_model = &make_model;
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                scope.spawn(move || {
                    let rank = comm.rank();
                    let mut engine = Zero3OffloadEngine::new(make_model(rank), cfg, comm);
                    body(&mut engine)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zo_models::BigramLm;
    use zo_nn::{GptConfig, GptModel};
    use zo_optim::{AdamParams, LossScaleConfig};

    fn tiny_model(seed: u64) -> GptModel {
        GptModel::new(
            GptConfig {
                vocab: 16,
                seq_len: 8,
                hidden: 8,
                heads: 2,
                layers: 2,
            },
            seed,
        )
    }

    fn cfg() -> ZeroOffloadConfig {
        ZeroOffloadConfig {
            loss_scale: LossScaleConfig {
                init_scale: 256.0,
                ..Default::default()
            },
            adam: AdamParams {
                lr: 3e-3,
                ..AdamParams::default()
            },
            ..ZeroOffloadConfig::default()
        }
    }

    fn global_batch(step: usize, batch: usize) -> zo_models::LmBatch {
        let mut lm = BigramLm::new(16, 0.05, 1000);
        let mut b = lm.batch(batch, 8);
        for _ in 0..step {
            b = lm.batch(batch, 8);
        }
        b
    }

    #[test]
    fn budget_zero_schedule_gathers_every_layer_twice_and_releases_all() {
        let layers = vec![0..10, 10..30, 30..45];
        let plan = Zero3Plan::new(layers, 45, 3, 1, 0, 0);
        let mut cache = Zero3Cache::new();
        let events = plan.micro_batch_events(&mut cache);
        let gathers = events
            .iter()
            .filter(|e| matches!(e, Zero3Event::Gather { .. }))
            .count();
        let releases = events
            .iter()
            .filter(|e| matches!(e, Zero3Event::Release { .. }))
            .count();
        // Two sweeps over 3 layers, nothing cacheable.
        assert_eq!(gathers, 6);
        assert_eq!(releases, 6);
        assert!(cache.cached_layers().is_empty());
        assert!(plan.publish_events(&cache).is_empty());
        // Gathered bytes per micro-batch: both sweeps ship each layer's
        // non-owned portion once.
        let recv: u64 = events
            .iter()
            .filter_map(|e| match e {
                Zero3Event::Gather { recv_bytes, .. } => Some(*recv_bytes),
                _ => None,
            })
            .sum();
        let expect: u64 = (0..3).map(|l| plan.layer_nonowned_bytes(l)).sum::<u64>() * 2;
        assert_eq!(recv, expect);
    }

    #[test]
    fn full_budget_caches_everything_and_only_refreshes() {
        let layers = vec![0..10, 10..30, 30..45];
        let plan = Zero3Plan::new(layers, 45, 3, 0, 1, usize::MAX);
        let mut cache = Zero3Cache::new();
        // Cold micro-batch: each layer gathered once (forward sweep),
        // then pure hits.
        let first = plan.micro_batch_events(&mut cache);
        let gathers = first
            .iter()
            .filter(|e| matches!(e, Zero3Event::Gather { .. }))
            .count();
        assert_eq!(gathers, 3);
        assert!(!first
            .iter()
            .any(|e| matches!(e, Zero3Event::Release { .. })));
        assert_eq!(cache.cached_layers().len(), 3);
        // Steady state: no gathers at all.
        let second = plan.micro_batch_events(&mut cache);
        assert!(second.iter().all(|e| matches!(e, Zero3Event::Hit { .. })));
        // The step boundary refreshes every cached layer, ascending.
        let refreshes = plan.publish_events(&cache);
        let order: Vec<usize> = refreshes
            .iter()
            .map(|e| match e {
                Zero3Event::Refresh { layer, .. } => *layer,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn lru_eviction_is_bounded_by_the_budget() {
        // Budget fits exactly one 20-element layer (40 bytes).
        let layers = vec![0..20, 20..40, 40..60];
        let plan = Zero3Plan::new(layers, 60, 2, 0, 0, 40);
        let mut cache = Zero3Cache::new();
        plan.micro_batch_events(&mut cache);
        assert!(cache.cached_full_bytes() <= 40);
        assert_eq!(cache.cached_layers().len(), 1);
        // Backward sweep ends at layer 0, so that's the resident one.
        assert_eq!(cache.cached_layers(), &[0]);
    }

    #[test]
    fn ranks_stay_in_exact_sync() {
        let finals = run_zero3_ranks(
            3,
            cfg(),
            |_| tiny_model(7),
            |engine| {
                for step in 0..5 {
                    let b = global_batch(step, 3);
                    let rank = engine.rank();
                    let inputs = b.inputs[rank * 8..(rank + 1) * 8].to_vec();
                    let targets = b.targets[rank * 8..(rank + 1) * 8].to_vec();
                    engine
                        .step(|m| m.train_step(&inputs, &targets, 1, 8, |_| {}))
                        .unwrap();
                }
                let mut p = vec![0.0f32; engine.model_mut().num_params()];
                engine.model_mut().copy_params_to(&mut p);
                (engine.shard_range(), p)
            },
        );
        // Each rank's model holds its own shard (plus cache, empty at the
        // default budget 0); the shard contents agree with what the other
        // ranks would gather.
        for (range, p) in &finals {
            for (i, &v) in p.iter().enumerate() {
                if !range.contains(&i) {
                    assert_eq!(v, 0.0, "rank holds non-owned param {i} between steps");
                }
            }
            // Owned shard matches rank-order concatenation across ranks.
            let owner = finals
                .iter()
                .find(|(r, _)| r.contains(&range.start))
                .unwrap();
            assert_eq!(&owner.1[range.clone()], &p[range.clone()]);
        }
    }

    #[test]
    fn persistent_cache_keeps_layers_resident_between_steps() {
        let big_budget = ZeroOffloadConfig {
            persistent_param_bytes: usize::MAX,
            ..cfg()
        };
        let outs = run_zero3_ranks(
            2,
            big_budget,
            |_| tiny_model(3),
            |engine| {
                for step in 0..3 {
                    let b = global_batch(step, 2);
                    let rank = engine.rank();
                    let inputs = b.inputs[rank * 8..(rank + 1) * 8].to_vec();
                    let targets = b.targets[rank * 8..(rank + 1) * 8].to_vec();
                    engine
                        .step(|m| m.train_step(&inputs, &targets, 1, 8, |_| {}))
                        .unwrap();
                }
                (
                    engine.cache().cached_layers().len(),
                    engine.model_mut().num_layer_buckets(),
                )
            },
        );
        for (cached, buckets) in outs {
            assert_eq!(cached, buckets, "unbounded budget must cache every layer");
        }
    }
}
