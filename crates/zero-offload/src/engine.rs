//! The real-execution ZeRO-Offload engine (single accelerator).
//!
//! Runs actual training with the paper's data placement faithfully
//! emulated: the model computes forward/backward on **fp16-rounded
//! parameters** (what the GPU would hold), gradients leave the "device" by
//! being **rounded through fp16** (the PCIe transfer), and the fp32 master
//! parameters, momentum and variance live in a separate host-side buffer
//! updated by [`CpuAdam`](zo_optim::CpuAdam) — optionally one step
//! delayed (DPU), in which
//! case the update runs on the [`AsyncDpu`](crate::AsyncDpu) optimizer
//! thread overlapped with the next step's forward/backward.
//!
//! The step state machine itself lives in [`crate::pipeline`]; this module
//! supplies the full-replica [`Placement`] (everything moves as one piece)
//! and the public engine type. The engine is generic over [`Model`], so
//! the same code trains the GPT LM of Fig. 12 and the classifier of
//! Fig. 13.

use zo_fault::{lane, with_retry, FaultError, FaultSession, Site};
use zo_nn::Model;
use zo_optim::{clip, AdamState, DynamicLossScaler};
use zo_tensor::{cast_f32_to_f16, F16};
use zo_trace::Tracer;

use crate::bucket::{scatter_frames, GradBucketer};
use crate::config::{resolve_fault_plan, resolve_tracer, OffloadDevice, ZeroOffloadConfig};
use crate::pipeline::{
    build_offload_updater, GradStream, Placement, StepError, StepPipeline, Updater,
};
use crate::wire::{decode_frame_traced, quantize_grads, ship_frame};

/// What a call to [`ZeroOffloadEngine::step`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// A micro-batch was accumulated; no optimizer activity yet.
    Accumulating {
        /// Micro-batch loss.
        loss: f32,
    },
    /// The optimizer step ran (possibly DPU-delayed by one step).
    Applied {
        /// Micro-batch loss.
        loss: f32,
    },
    /// fp16 gradient overflow: the loss scale backed off, step skipped.
    SkippedOverflow {
        /// Micro-batch loss.
        loss: f32,
    },
}

impl StepOutcome {
    /// The micro-batch loss regardless of outcome.
    pub fn loss(&self) -> f32 {
        match self {
            StepOutcome::Accumulating { loss }
            | StepOutcome::Applied { loss }
            | StepOutcome::SkippedOverflow { loss } => *loss,
        }
    }
}

/// Cumulative engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Optimizer steps applied.
    pub steps_applied: u64,
    /// Steps skipped due to fp16 overflow.
    pub steps_skipped: u64,
    /// Simulated device→host traffic (fp16 gradient payload), bytes.
    pub d2h_bytes: u64,
    /// Simulated host→device traffic (fp16 parameters), bytes.
    pub h2d_bytes: u64,
    /// On-the-wire gradient bytes including frame headers.
    pub wire_bytes: u64,
    /// Gradient frames shipped.
    pub frames: u64,
}

/// Ships the staged frames, reassembles them host-side, unscales, and
/// updates traffic counters and memory high-water marks — the tail of the
/// gradient offload shared by the streamed and post-hoc transfer paths.
///
/// With a fault session, every frame passes the `wire.d2h` gate (bounded
/// retry; fatal faults abort the transfer with a typed error). Pass `None`
/// when the frames already crossed a gate — the streamed path gates each
/// slice at push time, and the degraded post-hoc retransmission models
/// recovery *after* the faulty window.
fn finish_offload(
    bucketer: &mut GradBucketer,
    grads: &mut [f32],
    scale: f32,
    stats: &mut EngineStats,
    tracer: &Tracer,
    mut faults: Option<&mut FaultSession>,
) -> Result<(), FaultError> {
    bucketer.flush();
    let mut frames = Vec::new();
    for raw in bucketer.take_frames() {
        let raw = match faults.as_deref_mut() {
            Some(session) => ship_frame(raw, session, tracer, "pcie")?,
            None => raw,
        };
        frames.push(
            decode_frame_traced(tracer, "pcie", raw).expect("loopback frames are well-formed"),
        );
    }
    scatter_frames(&frames, grads);
    zo_tensor::ops::scale(grads, 1.0 / scale);
    stats.d2h_bytes += bucketer.payload_bytes();
    stats.wire_bytes += bucketer.wire_bytes();
    stats.frames += u64::from(bucketer.frames_emitted());
    tracer.add("pcie", "d2h_bytes", bucketer.payload_bytes());
    // Memory high-water marks: fp16 parameters + the transient staging
    // bucket on the device; master + Adam moments + fp32 gradient buffer
    // on the host.
    let n = grads.len() as f64;
    tracer.gauge_max("gpu_hwm_bytes", 2.0 * n + bucketer.wire_bytes() as f64);
    tracer.gauge_max("cpu_hwm_bytes", 16.0 * n);
    Ok(())
}

/// The single-accelerator placement: one full fp16 replica on the device,
/// the whole fp32 state on the host, gradients crossing "PCIe" in layer
/// buckets (streamed from backward when armed, post hoc otherwise).
pub(crate) struct ReplicaPlacement {
    /// Flat offset ranges of each layer bucket, in canonical order.
    layer_ranges: Vec<core::ops::Range<usize>>,
    bucket_bytes: usize,
    /// fp16 cast scratch for the post-hoc transfer, reused across steps.
    wire: Vec<F16>,
    /// fp32 scale scratch feeding the batched narrowing codec, reused.
    wire32: Vec<f32>,
    /// fp32 widening scratch for the h2d parameter copy, reused.
    widened: Vec<f32>,
}

impl ReplicaPlacement {
    /// Loads the fp16 view into the model through the reusable widening
    /// scratch (no per-step allocation).
    fn load_model<M: Model>(&mut self, model: &mut M, p16: &[F16]) {
        self.widened.resize(p16.len(), 0.0);
        F16::to_f32_slice(p16, &mut self.widened);
        model.load_params_from(&self.widened);
    }
}

impl<M: Model> Placement<M> for ReplicaPlacement {
    fn fwd_track(&self) -> &str {
        "gpu"
    }

    fn counter_track(&self) -> &str {
        "engine"
    }

    fn transfer(
        &mut self,
        model: &mut M,
        grads: &mut [f32],
        scale: f32,
        denom: f32,
        stream: &mut GradStream,
        stats: &mut EngineStats,
        tracer: &Tracer,
        faults: &mut FaultSession,
    ) -> Result<bool, FaultError> {
        if let Some(start) = stream.take_streamed() {
            // The gradients already crossed the wire from inside backward
            // (each slice passed the gate at push time); only the tail
            // (final flush, reassembly, unscale) remains.
            let mut bucketer = core::mem::replace(&mut stream.bucketer, GradBucketer::new(2));
            finish_offload(&mut bucketer, grads, scale, stats, tracer, None)?;
            let end = tracer.now_us();
            tracer.record_span("pcie", "grad_offload", start, end.saturating_sub(start));
            return Ok(stream.overflow);
        }
        // A poisoned stream means the mid-backward transfer died; this
        // post-hoc pass is the *recovery* retransmission after backward
        // completed, so it bypasses the wire gate.
        let degraded = stream.take_poisoned();
        // Post-hoc transfer: scale, cast to fp16, pack the layer spans into
        // wire frames in backward order (head bucket first, blocks
        // reversed, embeddings last — the order they become ready in
        // Sec. 4.1), ship, validate, scatter into host memory.
        let _transfer = tracer.span("pcie", "grad_offload");
        model.copy_grads_to(grads);
        let mut overflow = false;
        let mut bucketer = GradBucketer::traced(self.bucket_bytes, tracer.clone(), "pcie");
        for range in self.layer_ranges.iter().rev() {
            let quantized = quantize_grads(
                &grads[range.clone()],
                denom,
                scale,
                &mut self.wire32,
                &mut self.wire,
            );
            overflow |= quantized;
            bucketer.push(range.start as u64, &self.wire);
        }
        let gate = if degraded { None } else { Some(faults) };
        finish_offload(&mut bucketer, grads, scale, stats, tracer, gate)?;
        Ok(overflow)
    }

    fn clip_grads(&mut self, grads: &mut [f32], max_norm: f64) {
        clip::clip_global_norm(&mut [grads], max_norm);
    }

    fn update_span(&self) -> (&str, &str) {
        ("cpu", "cpu_adam")
    }

    fn publish(
        &mut self,
        model: &mut M,
        p16: &[F16],
        stats: &mut EngineStats,
        tracer: &Tracer,
        faults: &mut FaultSession,
    ) -> Result<(), FaultError> {
        let _copy = tracer.span("pcie", "param_copy_back");
        // The h2d gate sits *before* the model sees the new parameters: a
        // fatal fault here is the "killed between DPU update and copy-back"
        // crash point the recovery tests exercise.
        with_retry(faults, Site::WireH2d, tracer, "pcie", || ())?;
        stats.h2d_bytes += 2 * p16.len() as u64;
        tracer.add("pcie", "h2d_bytes", 2 * p16.len() as u64);
        self.load_model(model, p16);
        Ok(())
    }

    fn on_skip(
        &mut self,
        _model: &mut M,
        _p16: &[F16],
        _stats: &mut EngineStats,
        _tracer: &Tracer,
    ) -> Result<(), FaultError> {
        // Parameters unchanged; nothing to publish.
        Ok(())
    }
}

/// A training engine applying the ZeRO-Offload single-GPU schedule.
pub struct ZeroOffloadEngine<M: Model> {
    model: M,
    pipe: StepPipeline,
    placement: ReplicaPlacement,
    stream: GradStream,
}

impl<M: Model> ZeroOffloadEngine<M> {
    /// Wraps `model` for training under `cfg`.
    ///
    /// The model's initial parameters become the fp32 master copy; the
    /// model itself is immediately switched to their fp16 rounding, as a
    /// GPU would hold them.
    pub fn new(mut model: M, cfg: ZeroOffloadConfig) -> ZeroOffloadEngine<M> {
        let n = model.num_params();
        let layer_ranges = model.layer_ranges();
        let mut master = vec![0.0f32; n];
        model.copy_params_to(&mut master);
        let mut p16 = vec![F16::ZERO; n];
        cast_f32_to_f16(&master, &mut p16);
        let tracer = resolve_tracer(cfg.tracer);

        let updater = match cfg.offload {
            OffloadDevice::None => Updater::Reference(AdamState::new(n), cfg.adam),
            OffloadDevice::Cpu => build_offload_updater(&cfg, &master, &tracer, "optimizer"),
        };
        let placement = ReplicaPlacement {
            layer_ranges: layer_ranges.clone(),
            bucket_bytes: cfg.bucket_bytes,
            wire: Vec::new(),
            wire32: Vec::new(),
            widened: Vec::new(),
        };
        let plan = resolve_fault_plan(cfg.faults);
        let mut stream = GradStream::new(tracer.clone(), layer_ranges, cfg.bucket_bytes);
        stream.set_faults(FaultSession::new(plan.clone(), lane::STREAM));
        let pipe = StepPipeline {
            master,
            p16,
            grads: vec![0.0f32; n],
            updater,
            scaler: DynamicLossScaler::new(cfg.loss_scale),
            micro_in_window: 0,
            stats: EngineStats::default(),
            tracer,
            grad_accumulation: cfg.grad_accumulation,
            max_grad_norm: cfg.max_grad_norm,
            pool_base: zo_tensor::pool::global().stats(),
            faults: FaultSession::new(plan, lane::ENGINE),
            overflow_storm_limit: cfg.overflow_storm_limit,
        };
        let mut engine = ZeroOffloadEngine {
            model,
            pipe,
            placement,
            stream,
        };
        engine.sync_model_params();
        engine
    }

    /// The engine's tracer (disabled unless the config installed one).
    pub fn tracer(&self) -> &zo_trace::Tracer {
        &self.pipe.tracer
    }

    /// The wrapped model (parameters are the fp16 view).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model (for evaluation passes).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &EngineStats {
        &self.pipe.stats
    }

    /// Current loss scale.
    pub fn loss_scale(&self) -> f32 {
        self.pipe.scaler.scale()
    }

    /// The fp32 master parameters (host side).
    pub fn master_params(&self) -> &[f32] {
        &self.pipe.master
    }

    /// The shared step pipeline (checkpoint state lives there).
    pub(crate) fn pipe(&self) -> &StepPipeline {
        &self.pipe
    }

    /// Mutable access to the shared step pipeline (checkpointing).
    pub(crate) fn pipe_mut(&mut self) -> &mut StepPipeline {
        &mut self.pipe
    }

    /// The step-level fault session (checkpoint-write gating).
    pub(crate) fn faults_mut(&mut self) -> &mut FaultSession {
        &mut self.pipe.faults
    }

    /// Loads the fp16 view of the master parameters into the model.
    pub(crate) fn sync_model_params(&mut self) {
        self.placement.load_model(&mut self.model, &self.pipe.p16);
    }

    /// Runs one micro-batch and, at window boundaries, the offloaded
    /// optimizer step, transferring gradients post hoc (after backward
    /// completes).
    ///
    /// `run_backward` must perform forward + backward on the model,
    /// accumulating gradients, and return the loss. The engine zeroes
    /// gradients at the start of each accumulation window.
    ///
    /// Errors are typed ([`StepError`]): the model's own backward error,
    /// a non-recoverable fault at one of the offload path's injection
    /// sites, or an overflow storm. Transient faults are retried inside
    /// the step and never surface here.
    pub fn step<E>(
        &mut self,
        run_backward: impl FnOnce(&mut M) -> Result<f32, E>,
    ) -> Result<StepOutcome, StepError<E>> {
        self.pipe.step(
            &mut self.model,
            &mut self.placement,
            &mut self.stream,
            |m, _| run_backward(m),
        )
    }

    /// Like [`ZeroOffloadEngine::step`], but streams gradients through the
    /// wire path from *inside* backward — paper Sec. 4.1's overlapped
    /// gradient offload.
    ///
    /// `run_backward` receives the armed [`GradStream`] and must hand it to
    /// the model's hooked backward (e.g.
    /// [`GptModel::train_step_hooked`](zo_nn::GptModel::train_step_hooked)),
    /// which feeds each layer's gradients to the stream as soon as that
    /// layer's backward completes. The `grad_offload` span then overlaps
    /// the same step's `fwd_bwd` span. Numerics are bit-identical to the
    /// post-hoc path: the same values cross the wire in the same order
    /// with the same frame boundaries, only earlier.
    ///
    /// The stream is armed only for the window-closing micro-batch (with
    /// gradient accumulation, earlier micro-batches hold incomplete sums);
    /// if `run_backward` never feeds the stream, the engine falls back to
    /// the post-hoc transfer.
    pub fn step_streamed<E>(
        &mut self,
        run_backward: impl FnOnce(&mut M, &mut GradStream) -> Result<f32, E>,
    ) -> Result<StepOutcome, StepError<E>> {
        if self.pipe.micro_in_window + 1 >= self.pipe.grad_accumulation {
            let scale = self.pipe.scaler.scale();
            let denom = self.pipe.grad_accumulation as f32;
            self.stream.arm(scale, denom);
        }
        self.pipe.step(
            &mut self.model,
            &mut self.placement,
            &mut self.stream,
            |m, s| run_backward(m, s),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zo_nn::{GptConfig, GptModel};
    use zo_optim::{AdamParams, LossScaleConfig};

    fn tiny_model(seed: u64) -> GptModel {
        GptModel::new(
            GptConfig {
                vocab: 16,
                seq_len: 8,
                hidden: 8,
                heads: 2,
                layers: 2,
            },
            seed,
        )
    }

    fn small_scale_cfg() -> ZeroOffloadConfig {
        ZeroOffloadConfig {
            loss_scale: LossScaleConfig {
                init_scale: 256.0,
                ..Default::default()
            },
            adam: AdamParams {
                lr: 3e-3,
                ..AdamParams::default()
            },
            ..ZeroOffloadConfig::default()
        }
    }

    fn run_steps(engine: &mut ZeroOffloadEngine<GptModel>, steps: usize, seed: u64) -> Vec<f32> {
        let mut data = zo_models::BigramLm::new(16, 0.05, seed);
        let mut losses = Vec::new();
        for _ in 0..steps {
            let b = data.batch(4, 8);
            let out = engine
                .step(|m| m.train_step(&b.inputs, &b.targets, 4, 8, |_| {}))
                .unwrap();
            losses.push(out.loss());
        }
        losses
    }

    fn run_steps_streamed(
        engine: &mut ZeroOffloadEngine<GptModel>,
        steps: usize,
        seed: u64,
    ) -> Vec<f32> {
        let mut data = zo_models::BigramLm::new(16, 0.05, seed);
        let mut losses = Vec::new();
        for _ in 0..steps {
            let b = data.batch(4, 8);
            let out = engine
                .step_streamed(|m, s| m.train_step_hooked(&b.inputs, &b.targets, 4, 8, s))
                .unwrap();
            losses.push(out.loss());
        }
        losses
    }

    #[test]
    fn training_reduces_loss() {
        let mut engine = ZeroOffloadEngine::new(tiny_model(1), small_scale_cfg());
        let losses = run_steps(&mut engine, 120, 7);
        let head: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let tail: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(tail < head * 0.9, "loss did not fall: {head} -> {tail}");
        assert!(engine.stats().steps_applied > 100);
    }

    #[test]
    fn offload_path_matches_reference_path_exactly() {
        // The offload strategy performs only system optimizations: the
        // training dynamics must be bit-identical to the non-offload
        // reference (the paper's exactly-overlapping curves in Fig. 12).
        let mut offload = ZeroOffloadEngine::new(tiny_model(5), small_scale_cfg());
        let mut reference =
            ZeroOffloadEngine::new(tiny_model(5), small_scale_cfg().without_offload());
        let l1 = run_steps(&mut offload, 40, 9);
        let l2 = run_steps(&mut reference, 40, 9);
        assert_eq!(l1, l2);
        assert_eq!(offload.master_params(), reference.master_params());
    }

    #[test]
    fn streamed_offload_matches_post_hoc_exactly() {
        // Streaming only reschedules the transfer; the trajectory must be
        // bit-identical to the post-hoc path.
        let mut streamed = ZeroOffloadEngine::new(tiny_model(5), small_scale_cfg());
        let mut post_hoc = ZeroOffloadEngine::new(tiny_model(5), small_scale_cfg());
        let l1 = run_steps_streamed(&mut streamed, 40, 9);
        let l2 = run_steps(&mut post_hoc, 40, 9);
        assert_eq!(l1, l2);
        assert_eq!(streamed.master_params(), post_hoc.master_params());
        assert_eq!(streamed.stats(), post_hoc.stats());
    }

    #[test]
    fn streamed_offload_with_accumulation_matches_post_hoc() {
        let cfg = ZeroOffloadConfig {
            grad_accumulation: 3,
            ..small_scale_cfg()
        };
        let mut streamed = ZeroOffloadEngine::new(tiny_model(6), cfg);
        let mut post_hoc = ZeroOffloadEngine::new(tiny_model(6), cfg);
        let l1 = run_steps_streamed(&mut streamed, 12, 17);
        let l2 = run_steps(&mut post_hoc, 12, 17);
        assert_eq!(l1, l2);
        assert_eq!(streamed.master_params(), post_hoc.master_params());
        assert_eq!(streamed.stats(), post_hoc.stats());
    }

    #[test]
    fn dpu_trails_by_one_step_then_converges() {
        let cfg = ZeroOffloadConfig {
            dpu_warmup: Some(5),
            ..small_scale_cfg()
        };
        let mut dpu = ZeroOffloadEngine::new(tiny_model(3), cfg);
        let losses = run_steps(&mut dpu, 150, 11);
        let head: f32 = losses[..10].iter().sum::<f32>() / 10.0;
        let tail: f32 = losses[losses.len() - 10..].iter().sum::<f32>() / 10.0;
        assert!(
            tail < head * 0.9,
            "DPU run did not converge: {head} -> {tail}"
        );
    }

    #[test]
    fn dpu_matches_plain_during_warmup() {
        let cfg = ZeroOffloadConfig {
            dpu_warmup: Some(20),
            ..small_scale_cfg()
        };
        let mut dpu = ZeroOffloadEngine::new(tiny_model(4), cfg);
        let mut plain = ZeroOffloadEngine::new(tiny_model(4), small_scale_cfg());
        let l1 = run_steps(&mut dpu, 20, 13);
        let l2 = run_steps(&mut plain, 20, 13);
        assert_eq!(l1, l2, "warm-up steps must be identical");
        // Past the warm-up the parameter trajectories diverge (staleness).
        run_steps(&mut dpu, 5, 14);
        run_steps(&mut plain, 5, 14);
        assert_ne!(dpu.master_params(), plain.master_params());
    }

    #[test]
    fn communication_is_4m_bytes_per_step() {
        let mut engine = ZeroOffloadEngine::new(tiny_model(2), small_scale_cfg());
        run_steps(&mut engine, 10, 15);
        let n = engine.model_mut().num_params() as u64;
        let s = engine.stats();
        // 2 bytes/param down + 2 bytes/param up, per applied+skipped step.
        let total_steps = s.steps_applied + s.steps_skipped;
        assert_eq!(s.d2h_bytes, 2 * n * total_steps);
        assert_eq!(s.h2d_bytes, 2 * n * s.steps_applied);
    }

    #[test]
    fn gradient_accumulation_windows() {
        let cfg = ZeroOffloadConfig {
            grad_accumulation: 4,
            ..small_scale_cfg()
        };
        let mut engine = ZeroOffloadEngine::new(tiny_model(6), cfg);
        let mut data = zo_models::BigramLm::new(16, 0.05, 20);
        let mut outcomes = Vec::new();
        for _ in 0..8 {
            let b = data.batch(2, 8);
            let out = engine
                .step(|m| m.train_step(&b.inputs, &b.targets, 2, 8, |_| {}))
                .unwrap();
            outcomes.push(matches!(out, StepOutcome::Applied { .. }));
        }
        assert_eq!(
            outcomes,
            vec![false, false, false, true, false, false, false, true]
        );
        assert_eq!(engine.stats().steps_applied, 2);
    }

    #[test]
    fn overflow_backs_off_scale_and_skips() {
        // A huge init scale forces immediate fp16 overflow.
        let cfg = ZeroOffloadConfig {
            loss_scale: LossScaleConfig {
                init_scale: 3.4e38,
                ..Default::default()
            },
            ..ZeroOffloadConfig::default()
        };
        let mut engine = ZeroOffloadEngine::new(tiny_model(8), cfg);
        let mut data = zo_models::BigramLm::new(16, 0.05, 21);
        let b = data.batch(2, 8);
        let before = engine.loss_scale();
        let out = engine
            .step(|m| m.train_step(&b.inputs, &b.targets, 2, 8, |_| {}))
            .unwrap();
        assert!(matches!(out, StepOutcome::SkippedOverflow { .. }));
        assert!(engine.loss_scale() < before);
        assert_eq!(engine.stats().steps_applied, 0);
        assert_eq!(engine.stats().steps_skipped, 1);
    }

    #[test]
    fn model_holds_fp16_rounded_params() {
        let mut engine = ZeroOffloadEngine::new(tiny_model(9), small_scale_cfg());
        run_steps(&mut engine, 3, 22);
        let n = engine.model_mut().num_params();
        let mut current = vec![0.0f32; n];
        engine.model_mut().copy_params_to(&mut current);
        for (c, m) in current.iter().zip(engine.master_params()) {
            assert_eq!(*c, F16::from_f32(*m).to_f32());
        }
    }
}
