//! The memory-tier stack: optimizer-state partitions addressed through an
//! explicit [`MemoryTier`], including a file-backed NVMe tier.
//!
//! The paper's thesis is that model state belongs on the cheapest memory
//! that bandwidth allows; ZeRO-Infinity pushes that one tier further, past
//! CPU DRAM onto NVMe. This module generalizes the engine's implicit
//! two-tier (GPU/CPU) placement into a tier abstraction:
//!
//! * [`MemoryTier`] — put/get of framed optimizer-state partitions. Every
//!   blob reuses the checkpoint `magic | version | length | checksum`
//!   framing (see [`crate::framing`]), so a torn tier-write decodes to a
//!   typed [`TierError`], never a silently-wrong resume.
//! * [`DramTier`] — partitions held in host memory (the reference
//!   backend, and the degenerate case of the stack).
//! * [`NvmeTier`] — partitions spilled to files under `ZO_TIER_DIR` (or
//!   the system temp dir), emulating an NVMe device the way the rest of
//!   this crate emulates a GPU: real bytes, real syscalls, real torn-write
//!   failure modes.
//! * `TieredAdam` — the memory-centric tiled Adam update: the full
//!   fp32 master/momentum/variance state lives on the tier as fixed-size
//!   partitions, and each optimizer step streams them through a bounded
//!   DRAM scratch of three tile slots (read-ahead / compute / write-back)
//!   double-buffered on a dedicated I/O worker pool, so tier reads and
//!   writes overlap the Adam arithmetic (proven on wall-clock spans by
//!   `tests/tier_offload.rs`).
//!
//! Determinism: the tiled schedule runs the exact [`zo_optim::adam_range`]
//! kernel over the same element recurrences in the same order as the
//! resident [`zo_optim::CpuAdam`], and fp32 state round-trips through the
//! tier losslessly (LE byte images) — so a spilled run's trajectory is
//! bit-identical to the DRAM-resident run, under fault injection included
//! (`tier.read`/`tier.write` gates fire before any tile mutates).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};
use zo_fault::{with_retry, FaultError, FaultSession, Site};
use zo_optim::{adam_range, AdamParams, AdamState};
use zo_tensor::pool::Pool;
use zo_tensor::{cast_f32_to_f16, F16};
use zo_trace::{names, Tracer};

use crate::framing::{decode_frame, encode_frame, FrameError, FrameSpec};

/// Tier partition-blob magic: "ZOtr".
pub const TIER_MAGIC: u32 = 0x5A4F_7472;

/// Current tier partition-blob format version.
pub const TIER_VERSION: u32 = 1;

/// The tier frame family (shared codec, tier identity).
const TIER_FRAME: FrameSpec = FrameSpec {
    magic: TIER_MAGIC,
    version: TIER_VERSION,
};

/// Which memory tier holds the fp32 optimizer states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierKind {
    /// Host DRAM, resident (the classic ZeRO-Offload placement).
    Dram,
    /// File-backed NVMe emulation: states spilled to framed blobs and
    /// streamed through a bounded DRAM scratch each step.
    Nvme,
}

/// Errors from tier reads/writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierError {
    /// The backing store could not be read or written.
    Io {
        /// The underlying I/O error, stringified (keeps this type `Eq`).
        detail: String,
    },
    /// The partition was never written (or its file disappeared).
    Missing {
        /// Partition index.
        part: usize,
    },
    /// The blob's framing failed validation — torn write, bit rot, or a
    /// foreign file.
    Frame(FrameError),
    /// The framing validated but the payload has the wrong shape.
    Malformed {
        /// Diagnostic.
        detail: String,
    },
}

impl From<FrameError> for TierError {
    fn from(err: FrameError) -> TierError {
        TierError::Frame(err)
    }
}

impl core::fmt::Display for TierError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TierError::Io { detail } => write!(f, "tier i/o failed: {detail}"),
            TierError::Missing { part } => write!(f, "tier partition {part} missing"),
            TierError::Frame(e) => write!(f, "tier partition frame invalid: {e}"),
            TierError::Malformed { detail } => write!(f, "tier payload malformed: {detail}"),
        }
    }
}

impl std::error::Error for TierError {}

/// A memory tier holding framed optimizer-state partitions.
///
/// Methods take `&self` so one I/O batch can read and write different
/// partitions concurrently (implementations synchronize internally);
/// partitions are independent blobs, written whole and read whole.
pub trait MemoryTier: Send + Sync {
    /// Which tier this is.
    fn kind(&self) -> TierKind;

    /// Frames `payload` and stores it as partition `part`, replacing any
    /// previous blob.
    fn write_part(&self, part: usize, payload: &[u8]) -> Result<(), TierError>;

    /// Reads partition `part`, validates its framing, and appends the
    /// payload to `out` (cleared first).
    fn read_part(&self, part: usize, out: &mut Vec<u8>) -> Result<(), TierError>;

    /// Truncates partition `part`'s stored blob to half its length —
    /// the torn-write a fatal `tier.write` fault leaves behind (the tier
    /// analog of the torn checkpoint half-file). A later read decodes to
    /// [`FrameError::Truncated`].
    fn tear_part(&self, part: usize) -> Result<(), TierError>;
}

/// Partitions resident in host DRAM (framed exactly like every tier, so
/// the torn/corrupt machinery is testable without touching a filesystem).
#[derive(Debug, Default)]
pub struct DramTier {
    parts: Mutex<Vec<Option<Vec<u8>>>>,
}

impl DramTier {
    /// An empty DRAM tier.
    pub fn new() -> DramTier {
        DramTier::default()
    }
}

impl MemoryTier for DramTier {
    fn kind(&self) -> TierKind {
        TierKind::Dram
    }

    fn write_part(&self, part: usize, payload: &[u8]) -> Result<(), TierError> {
        let mut parts = self.parts.lock().expect("dram tier lock");
        if parts.len() <= part {
            parts.resize(part + 1, None);
        }
        parts[part] = Some(encode_frame(TIER_FRAME, payload));
        Ok(())
    }

    fn read_part(&self, part: usize, out: &mut Vec<u8>) -> Result<(), TierError> {
        let parts = self.parts.lock().expect("dram tier lock");
        let blob = parts
            .get(part)
            .and_then(|b| b.as_ref())
            .ok_or(TierError::Missing { part })?;
        let payload = decode_frame(TIER_FRAME, blob)?;
        out.clear();
        out.extend_from_slice(payload);
        Ok(())
    }

    fn tear_part(&self, part: usize) -> Result<(), TierError> {
        let mut parts = self.parts.lock().expect("dram tier lock");
        let blob = parts
            .get_mut(part)
            .and_then(|b| b.as_mut())
            .ok_or(TierError::Missing { part })?;
        blob.truncate(blob.len() / 2);
        Ok(())
    }
}

/// Monotonic suffix so concurrent engines (and test runs sharing a
/// process) never collide on a spill directory.
static NVME_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// Partitions spilled to framed files — the NVMe emulation.
///
/// Files live under a unique directory below `ZO_TIER_DIR` (falling back
/// to the system temp dir) and are removed on drop. One file per
/// partition, written whole; the framing makes a torn write detectable.
#[derive(Debug)]
pub struct NvmeTier {
    dir: PathBuf,
}

impl NvmeTier {
    /// Creates a fresh spill directory and an empty tier over it.
    pub fn new() -> Result<NvmeTier, TierError> {
        let base = std::env::var_os("ZO_TIER_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!(
            "zo-tier-{}-{}",
            std::process::id(),
            NVME_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(|e| TierError::Io {
            detail: e.to_string(),
        })?;
        Ok(NvmeTier { dir })
    }

    /// The spill directory backing this tier.
    pub fn spill_dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn part_path(&self, part: usize) -> PathBuf {
        self.dir.join(format!("part-{part}.zot"))
    }
}

impl Drop for NvmeTier {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

impl MemoryTier for NvmeTier {
    fn kind(&self) -> TierKind {
        TierKind::Nvme
    }

    fn write_part(&self, part: usize, payload: &[u8]) -> Result<(), TierError> {
        std::fs::write(self.part_path(part), encode_frame(TIER_FRAME, payload)).map_err(|e| {
            TierError::Io {
                detail: e.to_string(),
            }
        })
    }

    fn read_part(&self, part: usize, out: &mut Vec<u8>) -> Result<(), TierError> {
        let blob = match std::fs::read(self.part_path(part)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(TierError::Missing { part })
            }
            Err(e) => {
                return Err(TierError::Io {
                    detail: e.to_string(),
                })
            }
        };
        let payload = decode_frame(TIER_FRAME, &blob)?;
        out.clear();
        out.extend_from_slice(payload);
        Ok(())
    }

    fn tear_part(&self, part: usize) -> Result<(), TierError> {
        let path = self.part_path(part);
        let blob = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(TierError::Missing { part })
            }
            Err(e) => {
                return Err(TierError::Io {
                    detail: e.to_string(),
                })
            }
        };
        std::fs::write(&path, &blob[..blob.len() / 2]).map_err(|e| TierError::Io {
            detail: e.to_string(),
        })
    }
}

/// Slots in the double-buffer schedule: write-back of tile `k-1`, compute
/// on tile `k`, read-ahead of tile `k+1`.
const TILE_SLOTS: usize = 3;

/// Workers on the dedicated tier I/O pool — one per schedule role, so the
/// read-ahead, the write-back and the tile's Adam kernel genuinely run
/// concurrently even when `ZO_THREADS=1` serializes the *compute* pool
/// (thread count must never change numerics, only scheduling).
///
/// A separate pool also removes the nested-submission hazard: a tier I/O
/// task never submits to the shared compute pool, and the compute pool's
/// workers never block on tier I/O.
const TIER_IO_THREADS: usize = 3;

/// The process-wide tier I/O pool (lazily spawned on first tiered step).
fn io_pool() -> &'static Arc<Pool> {
    static POOL: OnceLock<Arc<Pool>> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(TIER_IO_THREADS))
}

/// Payload bytes per element: fp32 master, momentum and variance.
const PAYLOAD_BYTES_PER_ELEM: usize = 12;

/// DRAM scratch bytes one element costs across the whole schedule: three
/// slots, each holding the decoded fp32 triple plus its encoded payload.
const SCRATCH_BYTES_PER_ELEM: usize = TILE_SLOTS * (12 + PAYLOAD_BYTES_PER_ELEM);

/// Floor on tile size — below this the per-tile framing overhead dwarfs
/// the state itself.
const MIN_TILE_ELEMS: usize = 64;

/// One DRAM scratch slot of the tiled schedule.
struct TileSlot {
    /// Decoded fp32 master for the held tile.
    master: Vec<f32>,
    /// Decoded momentum.
    m: Vec<f32>,
    /// Decoded variance.
    v: Vec<f32>,
    /// Encoded payload scratch (read target / write source).
    payload: Vec<u8>,
}

impl TileSlot {
    fn new(tile_elems: usize) -> TileSlot {
        TileSlot {
            master: vec![0.0; tile_elems],
            m: vec![0.0; tile_elems],
            v: vec![0.0; tile_elems],
            payload: Vec::with_capacity(PAYLOAD_BYTES_PER_ELEM * tile_elems),
        }
    }
}

/// Serializes a tile's fp32 triple into the partition payload layout:
/// `master ‖ m ‖ v`, little-endian — a lossless byte image, which is what
/// makes the spilled trajectory bit-identical to the resident one.
fn encode_payload(master: &[f32], m: &[f32], v: &[f32], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(PAYLOAD_BYTES_PER_ELEM * master.len());
    for series in [master, m, v] {
        for &x in series {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// Inverse of [`encode_payload`] for a tile of `len` elements.
fn decode_payload(
    payload: &[u8],
    len: usize,
    master: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
) -> Result<(), TierError> {
    if payload.len() != PAYLOAD_BYTES_PER_ELEM * len {
        return Err(TierError::Malformed {
            detail: format!(
                "partition payload holds {} bytes, tile of {len} elements needs {}",
                payload.len(),
                PAYLOAD_BYTES_PER_ELEM * len
            ),
        });
    }
    for (series, at) in [(master, 0usize), (m, 1), (v, 2)] {
        let base = at * 4 * len;
        for (i, x) in series.iter_mut().enumerate().take(len) {
            let b = base + 4 * i;
            *x = f32::from_le_bytes(payload[b..b + 4].try_into().expect("4 bytes"));
        }
    }
    Ok(())
}

/// The memory-centric tiled Adam update over a [`MemoryTier`].
///
/// The full fp32 master/momentum/variance state lives on the tier as
/// framed fixed-size partitions; each step streams them through
/// [`TILE_SLOTS`] bounded DRAM scratch slots. At steady state iteration
/// `k` runs three concurrent tasks on the tier I/O pool: write back tile
/// `k-1`, run [`adam_range`] on tile `k` (then refresh the engine's
/// master mirror and fp16 view for that range), and read ahead tile
/// `k+1`. The engine-side `master` mirror stays allocated — it is the
/// checkpoint/publication view — but the Adam inputs are re-read from the
/// tier every step, so the tier genuinely holds the optimizer state.
pub(crate) struct TieredAdam {
    tier: Box<dyn MemoryTier>,
    hp: AdamParams,
    step: u64,
    n: usize,
    tile_elems: usize,
    parts: usize,
    slots: Vec<TileSlot>,
    tracer: Tracer,
    track: String,
}

impl TieredAdam {
    /// Partitions `master` (with zeroed moments) onto `tier`, sizing tiles
    /// so the schedule's total DRAM scratch stays within `scratch_bytes`
    /// (subject to a [`MIN_TILE_ELEMS`] floor).
    pub(crate) fn new(
        tier: Box<dyn MemoryTier>,
        hp: AdamParams,
        master: &[f32],
        scratch_bytes: usize,
        tracer: Tracer,
        track: &str,
    ) -> TieredAdam {
        let n = master.len();
        let tile_elems = (scratch_bytes / SCRATCH_BYTES_PER_ELEM)
            .max(MIN_TILE_ELEMS)
            .min(n.max(1));
        let parts = n.div_ceil(tile_elems).max(1);
        let mut this = TieredAdam {
            tier,
            hp,
            step: 0,
            n,
            tile_elems,
            parts,
            slots: (0..TILE_SLOTS).map(|_| TileSlot::new(tile_elems)).collect(),
            tracer,
            track: track.to_string(),
        };
        let zeros = vec![0.0f32; n];
        this.rewrite_partitions(master, &zeros, &zeros);
        this
    }

    /// The element range of partition `part`.
    fn range_of(&self, part: usize) -> core::ops::Range<usize> {
        let start = part * self.tile_elems;
        start..(start + self.tile_elems).min(self.n)
    }

    /// Partition count the state is spread over.
    #[cfg(test)]
    pub(crate) fn parts(&self) -> usize {
        self.parts
    }

    /// Total DRAM scratch the tiled schedule holds, bytes.
    fn scratch_bytes(&self) -> usize {
        SCRATCH_BYTES_PER_ELEM * self.tile_elems
    }

    /// (Re)writes every partition from full-length state slices —
    /// construction and checkpoint restore.
    fn rewrite_partitions(&mut self, master: &[f32], m: &[f32], v: &[f32]) {
        let mut payload = Vec::new();
        for part in 0..self.parts {
            let r = self.range_of(part);
            encode_payload(&master[r.clone()], &m[r.clone()], &v[r], &mut payload);
            self.tier
                .write_part(part, &payload)
                .expect("tier partition write");
        }
    }

    /// Reads partition `part` into `slot`, recording the `tier.read` span
    /// and traffic.
    fn read_into(
        tier: &dyn MemoryTier,
        tracer: &Tracer,
        part: usize,
        len: usize,
        slot: &mut TileSlot,
    ) {
        let start = tracer.now_us();
        tier.read_part(part, &mut slot.payload)
            .expect("tier partition read");
        decode_payload(
            &slot.payload,
            len,
            &mut slot.master[..len],
            &mut slot.m[..len],
            &mut slot.v[..len],
        )
        .expect("tier partition payload shape");
        let now = tracer.now_us();
        tracer.record_span("tier", names::TIER_READ, start, now.saturating_sub(start));
        tracer.add("tier", names::TIER_TRAFFIC_BYTES, slot.payload.len() as u64);
    }

    /// Writes `slot`'s encoded payload as partition `part`, recording the
    /// `tier.write` span and traffic.
    fn write_from(tier: &dyn MemoryTier, tracer: &Tracer, part: usize, slot: &TileSlot) {
        let start = tracer.now_us();
        tier.write_part(part, &slot.payload)
            .expect("tier partition write");
        let now = tracer.now_us();
        tracer.record_span("tier", names::TIER_WRITE, start, now.saturating_sub(start));
        tracer.add("tier", names::TIER_TRAFFIC_BYTES, slot.payload.len() as u64);
    }

    /// One tiled Adam step.
    ///
    /// The `tier.read` and `tier.write` fault gates fire first, before any
    /// tile mutates: a transient retries invisibly (trajectory unchanged);
    /// a fatal read fault aborts with engine state untouched; a fatal
    /// write fault additionally tears partition 0 on the tier — the torn
    /// frame a crashed write leaves — so recovery must detect it (typed
    /// [`FrameError::Truncated`]) and restore from a checkpoint.
    pub(crate) fn step(
        &mut self,
        grads: &[f32],
        master: &mut [f32],
        p16: &mut [F16],
        faults: &mut FaultSession,
    ) -> Result<(), FaultError> {
        with_retry(faults, Site::TierRead, &self.tracer, &self.track, || ())?;
        if let Err(f) = with_retry(faults, Site::TierWrite, &self.tracer, &self.track, || ()) {
            self.tier.tear_part(0).ok();
            return Err(f);
        }
        self.step += 1;
        let (bc1, bc2) = self.hp.bias_corrections(self.step);
        let hp = self.hp;
        let parts = self.parts;
        let tier = &*self.tier;
        let tracer = &self.tracer;
        let track = self.track.as_str();
        let pool = io_pool();

        // Prime: load tile 0 into the compute slot.
        let [pending, current, ahead] = &mut self.slots[..] else {
            unreachable!("tiered Adam always holds {TILE_SLOTS} slots");
        };
        Self::read_into(tier, tracer, 0, self.tile_elems.min(self.n), current);

        let mut slots = [pending, current, ahead];
        for k in 0..parts {
            let range = {
                let start = k * self.tile_elems;
                start..(start + self.tile_elems).min(self.n)
            };
            let next_range = if k + 1 < parts {
                let start = (k + 1) * self.tile_elems;
                Some(start..(start + self.tile_elems).min(self.n))
            } else {
                None
            };
            {
                let [pending, current, ahead] = &mut slots;
                let len = range.len();
                let g = &grads[range.clone()];
                let master_out = &mut master[range.clone()];
                let p16_out = &mut p16[range.clone()];
                let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(TILE_SLOTS);
                let current: &mut TileSlot = current;
                tasks.push(Box::new(move || {
                    let start = tracer.now_us();
                    adam_range(
                        &hp,
                        bc1,
                        bc2,
                        &mut current.master[..len],
                        g,
                        &mut current.m[..len],
                        &mut current.v[..len],
                    );
                    master_out.copy_from_slice(&current.master[..len]);
                    cast_f32_to_f16(&current.master[..len], p16_out);
                    encode_payload(
                        &current.master[..len],
                        &current.m[..len],
                        &current.v[..len],
                        &mut current.payload,
                    );
                    let now = tracer.now_us();
                    tracer.record_span(track, names::TIER_UPDATE, start, now.saturating_sub(start));
                }));
                if k > 0 {
                    let pending: &TileSlot = pending;
                    tasks.push(Box::new(move || {
                        Self::write_from(tier, tracer, k - 1, pending);
                    }));
                }
                if let Some(nr) = next_range {
                    let ahead: &mut TileSlot = ahead;
                    let nlen = nr.len();
                    tasks.push(Box::new(move || {
                        Self::read_into(tier, tracer, k + 1, nlen, ahead);
                    }));
                }
                pool.run(tasks);
            }
            // Roles advance: computed tile becomes write-pending, the
            // read-ahead tile becomes current, the written-out slot is
            // free to read into.
            slots.rotate_left(1);
        }
        // The last computed tile (now in the pending role) writes back.
        Self::write_from(tier, tracer, parts - 1, slots[0]);
        self.tracer
            .gauge_max(names::TIER_HWM_BYTES, self.scratch_bytes() as f64);
        Ok(())
    }

    /// Materializes the full Adam state from the tier (checkpointing).
    pub(crate) fn state(&self) -> AdamState {
        let mut state = AdamState::new(self.n);
        state.step = self.step;
        let mut payload = Vec::new();
        let mut master = vec![0.0f32; self.tile_elems];
        for part in 0..self.parts {
            let r = self.range_of(part);
            let len = r.len();
            self.tier
                .read_part(part, &mut payload)
                .expect("tier partition read for checkpoint");
            decode_payload(
                &payload,
                len,
                &mut master[..len],
                &mut state.m[r.start..r.end],
                &mut state.v[r.start..r.end],
            )
            .expect("tier partition payload shape");
        }
        state
    }

    /// Restores state from a checkpoint: rewrites every partition from
    /// the restored master and moments (also the recovery path after a
    /// fatal `tier.write` left a torn partition behind).
    pub(crate) fn restore(&mut self, master: &[f32], state: &AdamState) {
        self.step = state.step;
        let (m, v) = (state.m.clone(), state.v.clone());
        self.rewrite_partitions(master, &m, &v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload_of(len: usize, seed: f32) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let master: Vec<f32> = (0..len).map(|i| seed + i as f32).collect();
        let m: Vec<f32> = (0..len).map(|i| 0.5 * i as f32).collect();
        let v: Vec<f32> = (0..len).map(|i| 0.25 * i as f32).collect();
        (master, m, v)
    }

    fn tiers() -> Vec<Box<dyn MemoryTier>> {
        vec![
            Box::new(DramTier::new()),
            Box::new(NvmeTier::new().expect("spill dir")),
        ]
    }

    #[test]
    fn roundtrip_on_both_tiers() {
        for tier in tiers() {
            let (master, m, v) = payload_of(37, 1.0);
            let mut payload = Vec::new();
            encode_payload(&master, &m, &v, &mut payload);
            tier.write_part(0, &payload).unwrap();
            let mut back = Vec::new();
            tier.read_part(0, &mut back).unwrap();
            assert_eq!(back, payload, "{:?}", tier.kind());
            let (mut m2, mut mm2, mut v2) = (vec![0.0; 37], vec![0.0; 37], vec![0.0; 37]);
            decode_payload(&back, 37, &mut m2, &mut mm2, &mut v2).unwrap();
            assert_eq!(m2, master);
            assert_eq!(mm2, m);
            assert_eq!(v2, v);
        }
    }

    #[test]
    fn missing_part_is_typed() {
        for tier in tiers() {
            let mut out = Vec::new();
            assert_eq!(
                tier.read_part(3, &mut out),
                Err(TierError::Missing { part: 3 }),
                "{:?}",
                tier.kind()
            );
        }
    }

    #[test]
    fn torn_write_decodes_to_truncated() {
        for tier in tiers() {
            let (master, m, v) = payload_of(64, 2.0);
            let mut payload = Vec::new();
            encode_payload(&master, &m, &v, &mut payload);
            tier.write_part(0, &payload).unwrap();
            tier.tear_part(0).unwrap();
            let mut out = Vec::new();
            let err = tier.read_part(0, &mut out).unwrap_err();
            assert!(
                matches!(err, TierError::Frame(FrameError::Truncated { .. })),
                "{:?}: {err:?}",
                tier.kind()
            );
        }
    }

    #[test]
    fn nvme_files_are_framed_and_cleaned_up() {
        let tier = NvmeTier::new().expect("spill dir");
        let dir = tier.spill_dir().to_path_buf();
        let (master, m, v) = payload_of(16, 3.0);
        let mut payload = Vec::new();
        encode_payload(&master, &m, &v, &mut payload);
        tier.write_part(5, &payload).unwrap();
        let blob = std::fs::read(dir.join("part-5.zot")).unwrap();
        assert_eq!(&blob[..4], &TIER_MAGIC.to_le_bytes());
        // A flipped payload byte is detected by the checksum.
        let mut flipped = blob.clone();
        let mid = crate::framing::HEADER_BYTES + flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(dir.join("part-5.zot"), &flipped).unwrap();
        let mut out = Vec::new();
        assert!(matches!(
            tier.read_part(5, &mut out),
            Err(TierError::Frame(FrameError::Corrupted { .. }))
        ));
        drop(tier);
        assert!(!dir.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn tiered_adam_matches_resident_cpu_adam_bitwise() {
        use zo_optim::{CpuAdam, CpuAdamConfig};
        let n = 1000;
        let hp = AdamParams {
            lr: 0.01,
            weight_decay: 0.01,
            ..AdamParams::default()
        };
        let init: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();

        let mut resident = CpuAdam::new(
            CpuAdamConfig {
                hp,
                num_threads: 2,
                tile_width: 128,
            },
            n,
        );
        let mut master_a = init.clone();
        let mut p16_a = vec![F16::ZERO; n];

        // Small scratch: forces several partitions on both backends.
        for tier in tiers() {
            let tracer = Tracer::new();
            let mut tiered = TieredAdam::new(tier, hp, &init, 64 * 72, tracer.clone(), "cpu");
            assert!(tiered.parts() > 1, "tile budget must force tiling");
            let mut master_b = init.clone();
            let mut p16_b = vec![F16::ZERO; n];
            let mut faults = FaultSession::disabled();

            master_a.copy_from_slice(&init);
            resident.load_state(AdamState::new(n)).unwrap();

            for step in 0..5 {
                let grads: Vec<f32> = (0..n).map(|i| ((i + step) as f32 * 0.11).cos()).collect();
                resident
                    .step_mixed(&mut master_a, &grads, &mut p16_a)
                    .unwrap();
                tiered
                    .step(&grads, &mut master_b, &mut p16_b, &mut faults)
                    .unwrap();
                assert_eq!(master_a, master_b, "step {step} master diverged");
                assert_eq!(p16_a, p16_b, "step {step} fp16 view diverged");
            }
            // The tier round-trips the moments losslessly.
            let snap = tiered.state();
            assert_eq!(snap.m, resident.state().m);
            assert_eq!(snap.v, resident.state().v);
            assert_eq!(snap.step, resident.state().step);
            // Traffic flowed and the scratch high-water mark was recorded.
            assert!(tracer.counter_total(names::TIER_TRAFFIC_BYTES) > 0);
            assert!(tracer.high_water(names::TIER_HWM_BYTES).is_some());
        }
    }

    #[test]
    fn tiered_restore_resumes_bitwise() {
        let n = 500;
        let hp = AdamParams::default();
        let init: Vec<f32> = (0..n).map(|i| (i as f32 * 0.13).cos()).collect();
        let grads_at =
            |s: usize| -> Vec<f32> { (0..n).map(|i| ((i * 7 + s) as f32 * 0.19).sin()).collect() };
        let run = |steps: core::ops::Range<usize>,
                   t: &mut TieredAdam,
                   master: &mut Vec<f32>,
                   p16: &mut Vec<F16>| {
            let mut faults = FaultSession::disabled();
            for s in steps {
                t.step(&grads_at(s), master, p16, &mut faults).unwrap();
            }
        };

        let tracer = Tracer::disabled();
        let mut cont = TieredAdam::new(
            Box::new(DramTier::new()),
            hp,
            &init,
            4096,
            tracer.clone(),
            "cpu",
        );
        let mut master_c = init.clone();
        let mut p16_c = vec![F16::ZERO; n];
        run(0..8, &mut cont, &mut master_c, &mut p16_c);

        let mut fst = TieredAdam::new(
            Box::new(NvmeTier::new().unwrap()),
            hp,
            &init,
            4096,
            tracer.clone(),
            "cpu",
        );
        let mut master_f = init.clone();
        let mut p16_f = vec![F16::ZERO; n];
        run(0..4, &mut fst, &mut master_f, &mut p16_f);
        let snap = fst.state();

        // Restore into a fresh tiered optimizer on the other backend.
        let mut resumed = TieredAdam::new(
            Box::new(DramTier::new()),
            hp,
            &master_f,
            4096,
            tracer,
            "cpu",
        );
        resumed.restore(&master_f, &snap);
        let mut master_r = master_f.clone();
        let mut p16_r = p16_f.clone();
        run(4..8, &mut resumed, &mut master_r, &mut p16_r);

        assert_eq!(master_c, master_r);
        assert_eq!(p16_c, p16_r);
    }
}
