//! # ZeRO-Offload (reproduction)
//!
//! A Rust reproduction of *ZeRO-Offload: Democratizing Billion-Scale Model
//! Training* (Ren et al., USENIX ATC 2021): heterogeneous CPU+GPU training
//! that keeps fp16 parameters and forward/backward on the accelerator
//! while offloading fp16 gradients, fp32 optimizer states, and the Adam
//! update to the host — enabling ~10× larger models per GPU at comparable
//! efficiency.
//!
//! The crate has two execution modes:
//!
//! * **Real execution** — [`ZeroOffloadEngine`] trains actual models
//!   (from `zo-nn`) with the offload data placement faithfully emulated
//!   (fp16 device parameters, fp16 gradient wire format, host-side fp32
//!   master + [`CpuAdam`](zo_optim::CpuAdam), optional DPU);
//!   [`Zero2OffloadEngine`] adds real ZeRO-2 partitioned data parallelism
//!   with threads as ranks. Used for the convergence experiments.
//! * **Simulated hardware** — [`ZeroOffloadPerf`] builds the paper's
//!   schedule on the `zo-hetsim` stream simulator to project iteration
//!   time, TFLOPS and scalability on the paper's V100/DGX-2 testbed; the
//!   [`memory`] module computes trainable-model-scale limits.
//!
//! ```
//! use zero_offload::{ZeroOffloadConfig, ZeroOffloadEngine};
//! use zo_nn::{GptConfig, GptModel};
//!
//! let model = GptModel::new(
//!     GptConfig { vocab: 16, seq_len: 8, hidden: 8, heads: 2, layers: 2 },
//!     42,
//! );
//! let mut engine = ZeroOffloadEngine::new(model, ZeroOffloadConfig::default());
//! let mut data = zo_models::BigramLm::new(16, 0.1, 7);
//! let batch = data.batch(2, 8);
//! let out = engine
//!     .step(|m| m.train_step(&batch.inputs, &batch.targets, 2, 8, |_| {}))
//!     .unwrap();
//! println!("loss = {}", out.loss());
//! ```

#![warn(missing_docs)]

pub mod bucket;
pub mod checkpoint;
mod config;
mod engine;
pub mod framing;
pub mod memory;
mod overlap;
mod perf;
mod pipeline;
pub mod tier;
pub mod wire;
mod zero2;
mod zero3;

pub use checkpoint::{
    decode_checkpoint_bytes, encode_checkpoint_bytes, CheckpointError, DpuCheckpoint,
    TrainingCheckpoint,
};
pub use config::{FaultsRef, OffloadDevice, TracerRef, ZeroOffloadConfig};
pub use engine::{EngineStats, StepOutcome, ZeroOffloadEngine};
pub use framing::{FrameError, FrameSpec};
pub use overlap::{AsyncDpu, DpuUpdate};
pub use perf::{IterStats, ZeroOffloadPerf};
pub use pipeline::{GradStream, StepError};
pub use tier::{DramTier, MemoryTier, NvmeTier, TierError, TierKind};
pub use zero2::{run_ranks, Zero2OffloadEngine};
pub use zero3::{run_zero3_ranks, Zero3Cache, Zero3Event, Zero3OffloadEngine, Zero3Plan};
