//! Shared `magic | version | length | checksum` frame codec.
//!
//! Checkpoint files and memory-tier partition blobs carry the same
//! failure mode: a write that dies partway (crash, injected fault, torn
//! page) must be *detected* at read time as a typed error, never handed
//! to a deserializer or — worse — silently accepted. Both paths frame
//! their payload with this 20-byte header:
//!
//! ```text
//! magic (u32 LE) | version (u32 LE) | payload_len (u64 LE) | fnv1a (u32 LE)
//! ```
//!
//! The codec is parameterized by a [`FrameSpec`] (magic + version), so
//! each consumer keeps its own file identity while sharing one decoder —
//! and one proptest suite — for the torn/corrupt/foreign cases.

/// Frame header size: magic, version, payload length, checksum.
pub const HEADER_BYTES: usize = 4 + 4 + 8 + 4;

/// A frame family: the magic and version a consumer stamps its blobs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpec {
    /// Four-byte file magic (little-endian u32).
    pub magic: u32,
    /// Format version the consumer currently writes.
    pub version: u32,
}

/// Typed decode failures; every malformed input maps to exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The blob ends before the framed payload does — a torn write.
    Truncated {
        /// Bytes present.
        have: usize,
        /// Bytes the header (or the fixed header size) promised.
        need: usize,
    },
    /// The blob does not start with the expected magic.
    BadMagic {
        /// The value found.
        found: u32,
    },
    /// The magic matched but the version is not one this build reads.
    BadVersion {
        /// The value found.
        found: u32,
    },
    /// The payload checksum does not match the header.
    Corrupted {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            FrameError::BadMagic { found } => {
                write!(f, "bad frame magic {found:#010x}")
            }
            FrameError::BadVersion { found } => {
                write!(f, "unsupported frame version {found}")
            }
            FrameError::Corrupted { expected, computed } => write!(
                f,
                "frame corrupted: checksum header {expected:#010x}, payload {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a over the payload bytes (same recurrence as the wire frames).
pub fn fnv1a(payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in payload {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Encodes `payload` into a framed blob under `spec`.
pub fn encode_frame(spec: FrameSpec, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&spec.magic.to_le_bytes());
    out.extend_from_slice(&spec.version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a framed blob, validating magic, version, length and checksum
/// before returning a view of the payload. Trailing bytes beyond the
/// framed length are ignored (a frame knows its own extent).
pub fn decode_frame(spec: FrameSpec, bytes: &[u8]) -> Result<&[u8], FrameError> {
    if bytes.len() < HEADER_BYTES {
        return Err(FrameError::Truncated {
            have: bytes.len(),
            need: HEADER_BYTES,
        });
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
    let magic = word(0);
    if magic != spec.magic {
        return Err(FrameError::BadMagic { found: magic });
    }
    let version = word(4);
    if version != spec.version {
        return Err(FrameError::BadVersion { found: version });
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let expected = word(16);
    let payload = &bytes[HEADER_BYTES..];
    if payload.len() < len {
        return Err(FrameError::Truncated {
            have: payload.len(),
            need: len,
        });
    }
    let payload = &payload[..len];
    let computed = fnv1a(payload);
    if computed != expected {
        return Err(FrameError::Corrupted { expected, computed });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: FrameSpec = FrameSpec {
        magic: 0x5A4F_7465,
        version: 1,
    };

    #[test]
    fn roundtrip() {
        let payload = b"twelve bytes";
        let blob = encode_frame(SPEC, payload);
        assert_eq!(blob.len(), HEADER_BYTES + payload.len());
        assert_eq!(decode_frame(SPEC, &blob).unwrap(), payload);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let blob = encode_frame(SPEC, b"");
        assert_eq!(decode_frame(SPEC, &blob).unwrap(), b"");
    }

    #[test]
    fn trailing_bytes_are_ignored() {
        let mut blob = encode_frame(SPEC, b"payload");
        blob.extend_from_slice(b"junk after the frame");
        assert_eq!(decode_frame(SPEC, &blob).unwrap(), b"payload");
    }

    #[test]
    fn every_truncation_is_typed() {
        let blob = encode_frame(SPEC, b"some payload bytes");
        for cut in 0..blob.len() {
            let err = decode_frame(SPEC, &blob[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let blob = encode_frame(SPEC, b"payload");
        let other = FrameSpec {
            magic: 0x1111_2222,
            ..SPEC
        };
        assert!(matches!(
            decode_frame(other, &blob),
            Err(FrameError::BadMagic { .. })
        ));
        let vnext = FrameSpec { version: 2, ..SPEC };
        assert!(matches!(
            decode_frame(vnext, &blob),
            Err(FrameError::BadVersion { found: 1 })
        ));
    }

    #[test]
    fn payload_bit_flip_fails_checksum() {
        let mut blob = encode_frame(SPEC, b"payload under test");
        let at = HEADER_BYTES + 3;
        blob[at] ^= 0x01;
        assert!(matches!(
            decode_frame(SPEC, &blob),
            Err(FrameError::Corrupted { .. })
        ));
    }
}
