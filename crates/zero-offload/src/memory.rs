//! GPU/CPU memory accounting for ZeRO-Offload training.
//!
//! Implements the paper's memory math: of the `16M` bytes of model states,
//! only the `2M` fp16 parameters stay on the GPU; fp16 gradients, fp32
//! master parameters, momentum and variance (`14M`) live in host memory,
//! held once regardless of the data-parallel degree thanks to ZeRO-2
//! partitioning (Sec. 4.2, Fig. 4). Activations (with checkpointing) and a
//! small gradient staging bucket complete the GPU footprint.

use zo_models::TransformerConfig;

/// Bytes of the transient GPU gradient-staging bucket.
///
/// "Only a small amount of memory is required to temporarily hold the
/// gradients on the GPU memory before they are transferred" (Sec. 4.1) —
/// two in-flight buckets of 32 MB.
pub const GRAD_BUCKET_BYTES: u64 = 2 * 32 * 1024 * 1024;

/// GPU bytes required to train `cfg` with ZeRO-Offload.
///
/// `mp_degree` splits parameters and per-layer working activations
/// (tensor-slicing model parallelism); layer-boundary checkpoints stay
/// replicated.
pub fn gpu_bytes(cfg: &TransformerConfig, micro_batch: u64, mp_degree: u64) -> u64 {
    let params = cfg.total_params();
    let p16 = 2 * params / mp_degree;
    p16 + GRAD_BUCKET_BYTES + activation_bytes_mp(cfg, micro_batch, mp_degree)
}

/// Host bytes required on the node, aggregated over all its resident
/// ranks: a single partitioned copy across data-parallel ranks (each owns
/// `1/N`, so the sum is constant), and model-parallel shards co-resident
/// on the same host also sum back to the whole model.
///
/// Per parameter: fp16 wire gradients (2) + fp32 gradient accumulation
/// buffer (4) + fp32 master (4) + momentum (4) + variance (4) = 18 bytes
/// (DeepSpeed's ZeRO-Offload keeps the fp32 accumulation buffer host-side;
/// this is what bounds the 70B DGX-2 maximum).
pub fn cpu_bytes(cfg: &TransformerConfig, _mp_degree: u64) -> u64 {
    18 * cfg.total_params()
}

/// GPU bytes per rank to train `cfg` under stage-3 parameter
/// partitioning with `world` data-parallel ranks.
///
/// Where ZeRO-2 keeps the full `2M` fp16 replica resident, stage 3 holds
/// only this rank's owned shard (`2M/N`) plus a bounded transient working
/// set:
///
/// * the persistent-parameter LRU budget (`persistent_param_bytes`) of
///   small layers pinned across steps,
/// * at most `prefetch_layers + 1` in-flight gathered layers (the one
///   running plus the prefetch window), each bounded by the largest
///   layer's fp16 footprint,
/// * the same gradient staging bucket and activations as the other
///   stages.
///
/// This is the residency bound `tests/zero3_traffic.rs` checks against
/// the live engine's `param_hwm_bytes` gauge.
pub fn gpu_bytes_stage3(
    cfg: &TransformerConfig,
    micro_batch: u64,
    world: u64,
    persistent_param_bytes: u64,
    prefetch_layers: u64,
) -> u64 {
    let params = cfg.total_params();
    let shard16 = 2 * params.div_ceil(world);
    let per_layer = TransformerConfig::gpt2_like(1, cfg.hidden).params_per_layer();
    let emb = TransformerConfig::gpt2_like(0, cfg.hidden).total_params();
    let max_layer16 = 2 * per_layer.max(emb);
    shard16
        + persistent_param_bytes
        + (prefetch_layers + 1) * max_layer16
        + GRAD_BUCKET_BYTES
        + activation_bytes_mp(cfg, micro_batch, 1)
}

/// Usable fraction of host memory after pinned-buffer and OS reserves.
pub const USABLE_CPU_FRACTION: f64 = 0.85;

/// Activation bytes under model parallelism: per-layer working tensors and
/// attention scores divide by `mp`, layer-boundary checkpoints replicate.
pub fn activation_bytes_mp(cfg: &TransformerConfig, micro_batch: u64, mp: u64) -> u64 {
    let full = cfg.activation_bytes(micro_batch);
    let b = micro_batch;
    let s = cfg.seq_len as u64;
    let h = cfg.hidden as u64;
    let checkpoints = (cfg.num_layers as u64 + 1) * b * s * h * 2;
    let split = full - checkpoints;
    checkpoints + split / mp
}

/// Usable fraction of device memory after allocator fragmentation, CUDA
/// context, and workspace reserves.
pub const USABLE_GPU_FRACTION: f64 = 0.94;

/// Usable fraction of NVMe capacity after filesystem and framing
/// overheads.
pub const USABLE_NVME_FRACTION: f64 = 0.90;

/// Host bytes per parameter when the fp32 optimizer states (master,
/// momentum, variance — `12M`) spill to a lower tier: only the fp16 wire
/// gradients (2) and the fp32 accumulation buffer (4) stay DRAM-resident.
pub const TIERED_CPU_BYTES_PER_PARAM: u64 = 6;

/// Tier bytes per parameter held by the spilled optimizer partitions:
/// fp32 master + momentum + variance.
pub const TIER_BYTES_PER_PARAM: u64 = 12;

/// Where the fp32 optimizer states live and how parameters are placed —
/// the placement half of a fit query (the hardware half is the capacity
/// arguments of [`fits_spec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitSpec {
    /// Micro-batch per GPU.
    pub micro_batch: u64,
    /// Tensor-slicing model-parallel degree.
    pub mp_degree: u64,
    /// Stage-3 parameter partitioning over `world` ranks (`None` = the
    /// default ZeRO-2 full fp16 replica per GPU).
    pub stage3_world: Option<u64>,
    /// Whether the `12M` of fp32 optimizer states spill to the NVMe tier
    /// (streamed through [`tier_scratch_bytes`](FitSpec::tier_scratch_bytes)
    /// of DRAM) instead of residing in host memory.
    pub nvme_optimizer: bool,
    /// DRAM scratch held by the tiered optimizer's streaming schedule.
    pub tier_scratch_bytes: u64,
}

impl Default for FitSpec {
    fn default() -> FitSpec {
        FitSpec {
            micro_batch: 1,
            mp_degree: 1,
            stage3_world: None,
            nvme_optimizer: false,
            tier_scratch_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Host bytes when `spec` places the optimizer states (aggregated over
/// the node as in [`cpu_bytes`]).
pub fn cpu_bytes_spec(cfg: &TransformerConfig, spec: FitSpec) -> u64 {
    if spec.nvme_optimizer {
        let ranks = spec.stage3_world.unwrap_or(1).max(spec.mp_degree);
        TIERED_CPU_BYTES_PER_PARAM * cfg.total_params() + ranks * spec.tier_scratch_bytes
    } else {
        cpu_bytes(cfg, spec.mp_degree)
    }
}

/// NVMe bytes `spec` puts on the flash tier (zero when the optimizer is
/// DRAM-resident).
pub fn nvme_bytes_spec(cfg: &TransformerConfig, spec: FitSpec) -> u64 {
    if spec.nvme_optimizer {
        TIER_BYTES_PER_PARAM * cfg.total_params()
    } else {
        0
    }
}

/// Per-GPU device bytes under `spec` (stage 3 partitions the fp16
/// replica; otherwise the ZeRO-2 placement of [`gpu_bytes`]).
pub fn gpu_bytes_spec(cfg: &TransformerConfig, spec: FitSpec) -> u64 {
    match spec.stage3_world {
        Some(world) => gpu_bytes_stage3(cfg, spec.micro_batch, world, 0, 1),
        None => gpu_bytes(cfg, spec.micro_batch, spec.mp_degree),
    }
}

/// Whether ZeRO-Offload can train `cfg` with the placement `spec` on the
/// given budgets — the stage- and tier-aware memory equation. An
/// `nvme_capacity` of 0 means the node has no flash tier (any spilling
/// spec then fails to fit).
pub fn fits_spec(
    cfg: &TransformerConfig,
    spec: FitSpec,
    gpu_capacity: u64,
    cpu_capacity: u64,
    nvme_capacity: u64,
) -> bool {
    let gpu_usable = (gpu_capacity as f64 * USABLE_GPU_FRACTION) as u64;
    let cpu_usable = (cpu_capacity as f64 * USABLE_CPU_FRACTION) as u64;
    let nvme_usable = (nvme_capacity as f64 * USABLE_NVME_FRACTION) as u64;
    gpu_bytes_spec(cfg, spec) <= gpu_usable
        && cpu_bytes_spec(cfg, spec) <= cpu_usable
        && nvme_bytes_spec(cfg, spec) <= nvme_usable
}

/// Whether ZeRO-Offload can train `cfg` on the given budgets (the classic
/// two-tier placement: fp16 on the GPU, everything else DRAM-resident).
pub fn fits(
    cfg: &TransformerConfig,
    micro_batch: u64,
    mp_degree: u64,
    gpu_capacity: u64,
    cpu_capacity: u64,
) -> bool {
    fits_spec(
        cfg,
        FitSpec {
            micro_batch,
            mp_degree,
            ..FitSpec::default()
        },
        gpu_capacity,
        cpu_capacity,
        0,
    )
}

/// The model-size family used for scale searches: hidden width by size
/// class (mirroring Table 3), depth solved to hit the target count.
pub fn config_for_params(target: u64) -> TransformerConfig {
    let hidden = match target {
        t if t < 3_000_000_000 => 2048,
        t if t < 5_000_000_000 => 2304,
        t if t < 9_000_000_000 => 3072,
        t if t < 18_000_000_000 => 4096,
        t if t < 65_000_000_000 => 8192,
        _ => 9216,
    };
    let per_layer = TransformerConfig::gpt2_like(1, hidden).params_per_layer();
    let emb = TransformerConfig::gpt2_like(0, hidden).total_params();
    let layers = ((target.saturating_sub(emb)) as f64 / per_layer as f64)
        .round()
        .max(1.0) as u32;
    TransformerConfig::gpt2_like(layers, hidden)
}

/// Largest trainable parameter count under a fit predicate, by bisection
/// over the [`config_for_params`] family (any micro-batch ≥ 1 counts as
/// trainable, matching how model-scale experiments are run).
pub fn max_trainable_params(fits: impl Fn(&TransformerConfig) -> bool) -> u64 {
    let mut lo: u64 = 0;
    let mut hi: u64 = 200_000_000_000;
    if fits(&config_for_params(hi)) {
        return hi;
    }
    while hi - lo > 50_000_000 {
        let mid = lo + (hi - lo) / 2;
        if mid == 0 || fits(&config_for_params(mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use zo_hetsim::presets;

    #[test]
    fn gpu_footprint_is_2m_plus_activations() {
        let cfg = TransformerConfig::gpt2_like(50, 4096); // ~10B
        let params = cfg.total_params();
        let g = gpu_bytes(&cfg, 1, 1);
        assert!(g > 2 * params);
        assert!(
            g < 2 * params + 4 * 1024 * 1024 * 1024,
            "activations too large: {g}"
        );
    }

    #[test]
    fn cpu_footprint_is_18m_aggregate() {
        let cfg = TransformerConfig::gpt2_like(20, 2048);
        assert_eq!(cpu_bytes(&cfg, 1), 18 * cfg.total_params());
        // Model-parallel shards co-resident on one host sum to the whole
        // model: the aggregate does not shrink with the MP degree.
        assert_eq!(cpu_bytes(&cfg, 2), cpu_bytes(&cfg, 1));
    }

    #[test]
    fn stage3_shrinks_the_per_rank_parameter_footprint() {
        let cfg = TransformerConfig::gpt2_like(50, 4096); // ~10B
        let params = cfg.total_params();
        let z2 = gpu_bytes(&cfg, 1, 1);
        for world in [2u64, 4, 16] {
            let z3 = gpu_bytes_stage3(&cfg, 1, world, 0, 1);
            assert!(z3 < z2, "world {world}: stage3 {z3} not below zero2 {z2}");
            // The saving is the replica minus the shard, up to the bounded
            // transient working set.
            let saved = z2 - z3;
            let replica_minus_shard = 2 * params - 2 * params.div_ceil(world);
            assert!(saved <= replica_minus_shard);
            let per_layer = TransformerConfig::gpt2_like(1, cfg.hidden).params_per_layer();
            let emb = TransformerConfig::gpt2_like(0, cfg.hidden).total_params();
            let working = 2 * 2 * per_layer.max(emb); // (prefetch 1 + 1) layers
            assert!(saved + working >= replica_minus_shard);
        }
        // Cache budget and prefetch window are additive and monotone.
        let base = gpu_bytes_stage3(&cfg, 1, 4, 0, 0);
        assert_eq!(gpu_bytes_stage3(&cfg, 1, 4, 1 << 20, 0), base + (1 << 20));
        assert!(gpu_bytes_stage3(&cfg, 1, 4, 0, 3) > base);
        // At world 1 with no cache, stage 3 still bounds its working set:
        // the full replica plus at most the in-flight layers.
        let z3_single = gpu_bytes_stage3(&cfg, 1, 1, 0, 0);
        assert!(z3_single >= z2);
    }

    #[test]
    fn thirteen_billion_fits_on_one_v100() {
        // The headline claim: 13B trains on a single V100-32GB (Fig. 7).
        let node = presets::single_v100_node();
        let cfg = zo_models::by_label(13.0).unwrap();
        assert!(fits(
            &cfg.model,
            cfg.batch_per_gpu as u64,
            1,
            node.gpu.mem_bytes,
            node.cpu.mem_bytes
        ));
    }

    #[test]
    fn twenty_billion_does_not_fit_without_mp() {
        let node = presets::single_v100_node();
        let cfg = config_for_params(20_000_000_000);
        assert!(!fits(&cfg, 1, 1, node.gpu.mem_bytes, node.cpu.mem_bytes));
    }

    #[test]
    fn seventy_billion_fits_with_mp8() {
        // Fig. 7 / Fig. 10: 70B trains on a DGX-2 with MP degree 8.
        let node = presets::dgx2();
        let cfg = zo_models::by_label(70.0).unwrap();
        assert!(fits(
            &cfg.model,
            cfg.batch_per_gpu as u64,
            8,
            node.gpu.mem_bytes,
            node.cpu.mem_bytes
        ));
    }

    #[test]
    fn config_family_hits_targets() {
        for &t in &[
            1_000_000_000u64,
            10_000_000_000,
            40_000_000_000,
            70_000_000_000,
        ] {
            let cfg = config_for_params(t);
            let got = cfg.total_params() as f64;
            let rel = (got - t as f64).abs() / t as f64;
            assert!(rel < 0.1, "target {t} got {got}");
        }
    }

    #[test]
    fn workstation_is_dram_bound_without_the_flash_tier() {
        // One V100 + 64 GiB host DRAM: the classic two-tier placement
        // needs 18 bytes/param of host memory, so DRAM (not the 32 GB
        // GPU) caps the model near 3B.
        let node = presets::workstation();
        let max =
            max_trainable_params(|cfg| fits(cfg, 1, 1, node.gpu.mem_bytes, node.cpu.mem_bytes));
        assert!(
            (2.5e9..3.5e9).contains(&(max as f64)),
            "workstation DRAM-bound max = {:.1}B",
            max as f64 / 1e9
        );
    }

    #[test]
    fn nvme_spill_triples_the_workstation_maximum() {
        // Spilling the 12M of fp32 optimizer states to the 1 TB NVMe
        // drive leaves only 6 bytes/param in DRAM: the same workstation
        // now trains ~3x the model, approaching the GPU-bound 13B.
        let node = presets::workstation();
        let nvme = node.nvme.expect("workstation carries an NVMe drive");
        let dram_max =
            max_trainable_params(|cfg| fits(cfg, 1, 1, node.gpu.mem_bytes, node.cpu.mem_bytes));
        let spilled = FitSpec {
            nvme_optimizer: true,
            ..FitSpec::default()
        };
        let nvme_max = max_trainable_params(|cfg| {
            fits_spec(
                cfg,
                spilled,
                node.gpu.mem_bytes,
                node.cpu.mem_bytes,
                nvme.capacity_bytes,
            )
        });
        assert!(
            (8e9..11e9).contains(&(nvme_max as f64)),
            "workstation NVMe-spilled max = {:.1}B",
            nvme_max as f64 / 1e9
        );
        assert!(nvme_max as f64 > 2.5 * dram_max as f64);
        // Without a flash tier the spilling spec cannot fit at all.
        assert!(!fits_spec(
            &config_for_params(1_000_000_000),
            spilled,
            node.gpu.mem_bytes,
            node.cpu.mem_bytes,
            0,
        ));
        // The drive itself is nowhere near binding: 12 bytes/param of a
        // 10B model is ~12% of the usable terabyte.
        let cfg = config_for_params(10_000_000_000);
        assert!(
            (nvme_bytes_spec(&cfg, spilled) as f64)
                < 0.2 * nvme.capacity_bytes as f64 * USABLE_NVME_FRACTION
        );
    }

    #[test]
    fn stage3_partitioning_extends_the_fit_past_the_replica_limit() {
        // 20B's full fp16 replica (40 GB) overflows one V100, but the
        // stage-3 shard across a DGX-2's 16 ranks fits; host DRAM on the
        // DGX-2 holds the 18M aggregate either way.
        let node = presets::dgx2();
        let cfg = config_for_params(20_000_000_000);
        let z2 = FitSpec::default();
        let z3 = FitSpec {
            stage3_world: Some(16),
            ..FitSpec::default()
        };
        assert!(!fits_spec(
            &cfg,
            z2,
            node.gpu.mem_bytes,
            node.cpu.mem_bytes,
            0
        ));
        assert!(fits_spec(
            &cfg,
            z3,
            node.gpu.mem_bytes,
            node.cpu.mem_bytes,
            0
        ));
        // Tiering composes with stage 3: spilling shrinks host bytes and
        // books the drive instead.
        let z3_spill = FitSpec {
            nvme_optimizer: true,
            ..z3
        };
        assert!(cpu_bytes_spec(&cfg, z3_spill) < cpu_bytes_spec(&cfg, z3));
        assert_eq!(nvme_bytes_spec(&cfg, z3_spill), 12 * cfg.total_params());
    }

    #[test]
    fn tiered_host_bytes_account_for_per_rank_scratch() {
        let cfg = config_for_params(1_000_000_000);
        let spec = FitSpec {
            nvme_optimizer: true,
            tier_scratch_bytes: 32 * 1024 * 1024,
            ..FitSpec::default()
        };
        assert_eq!(
            cpu_bytes_spec(&cfg, spec),
            6 * cfg.total_params() + 32 * 1024 * 1024
        );
        // Each stage-3 rank streams through its own scratch window.
        let spec4 = FitSpec {
            stage3_world: Some(4),
            ..spec
        };
        assert_eq!(
            cpu_bytes_spec(&cfg, spec4),
            6 * cfg.total_params() + 4 * 32 * 1024 * 1024
        );
    }

    #[test]
    fn max_trainable_search_matches_direct_check() {
        let node = presets::single_v100_node();
        let max =
            max_trainable_params(|cfg| fits(cfg, 1, 1, node.gpu.mem_bytes, node.cpu.mem_bytes));
        // Should land in the paper's 13B ballpark (9x over PyTorch).
        assert!(
            (11e9..16e9).contains(&(max as f64)),
            "single-GPU ZeRO-Offload max = {:.1}B",
            max as f64 / 1e9
        );
        // And the found maximum actually fits while max+20% does not.
        assert!(fits(
            &config_for_params(max),
            1,
            1,
            node.gpu.mem_bytes,
            node.cpu.mem_bytes
        ));
        let over = (max as f64 * 1.2) as u64;
        assert!(!fits(
            &config_for_params(over),
            1,
            1,
            node.gpu.mem_bytes,
            node.cpu.mem_bytes
        ));
    }
}
