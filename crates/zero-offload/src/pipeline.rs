//! The shared pipelined step executor behind both training engines.
//!
//! [`ZeroOffloadEngine`](crate::ZeroOffloadEngine) (single accelerator,
//! full replica) and [`Zero2OffloadEngine`](crate::Zero2OffloadEngine)
//! (ZeRO-2 shards) run the *same* step state machine — accumulation
//! window, loss scaling, gradient transfer, overflow skip, clipping,
//! optimizer update, fp16 copy-back. This module owns that machine once,
//! as [`StepPipeline`], parameterized by a [`Placement`] strategy that
//! supplies only the parts that genuinely differ: how gradients leave the
//! device, how overflow is agreed on, and how updated parameters get back
//! into the model.
//!
//! The executor also realizes the paper's two overlaps (Sec. 4.1, Fig. 6):
//!
//! * **Streamed gradient offload** — [`GradStream`] is a
//!   [`BackwardHook`] that pushes each layer bucket through the
//!   [`GradBucketer`](crate::bucket::GradBucketer) wire path from *inside*
//!   backward, so the `grad_offload` span interleaves with `fwd_bwd`
//!   instead of following it.
//! * **Asynchronous DPU** — [`PipelinedDpu`] drives the
//!   [`AsyncDpu`](crate::AsyncDpu) optimizer thread: after the transfer of
//!   step *i*'s gradients it submits them and returns immediately, so the
//!   CPU Adam step runs while the caller computes step *i+1*'s
//!   forward/backward; the result is collected at step *i+1*'s update
//!   stage. The observable arithmetic is bit-identical to the synchronous
//!   [`DelayedUpdate`](zo_optim::DelayedUpdate).

use zo_fault::{with_retry, FaultError, FaultSession, Site};
use zo_nn::{BackwardHook, Model};
use zo_optim::{adam_reference_step, AdamParams, AdamState, CpuAdamConfig, DynamicLossScaler};
use zo_tensor::{cast_f32_to_f16, F16};
use zo_trace::{names, Tracer};

use crate::bucket::GradBucketer;
use crate::config::ZeroOffloadConfig;
use crate::engine::{EngineStats, StepOutcome};
use crate::overlap::AsyncDpu;
use crate::tier::{NvmeTier, TierKind, TieredAdam};
use crate::wire::quantize_grads;

/// Why a training step failed.
///
/// Every failure mode of the offload schedule is typed: the model's own
/// backward error, a non-recoverable injected (or real) transport fault,
/// and the overflow-storm degradation signal. Transient faults never show
/// up here — they are retried inside the step and the step succeeds.
#[derive(Debug, Clone, PartialEq)]
pub enum StepError<E> {
    /// The model's forward/backward pass failed.
    Backward(E),
    /// A transfer, collective, optimizer or checkpoint site surfaced a
    /// fatal or retry-exhausted fault.
    Fault(FaultError),
    /// The loss scaler skipped too many consecutive steps — the run is
    /// no longer making progress (see
    /// [`ZeroOffloadConfig::overflow_storm_limit`](crate::ZeroOffloadConfig::overflow_storm_limit)).
    OverflowStorm {
        /// Consecutive overflow-skipped steps observed.
        consecutive: u32,
    },
}

impl<E> StepError<E> {
    /// The fault behind this error, if it came from an injection site.
    pub fn fault(&self) -> Option<FaultError> {
        match self {
            StepError::Fault(f) => Some(*f),
            _ => None,
        }
    }
}

impl<E> From<FaultError> for StepError<E> {
    fn from(f: FaultError) -> StepError<E> {
        StepError::Fault(f)
    }
}

impl<E: core::fmt::Display> core::fmt::Display for StepError<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StepError::Backward(e) => write!(f, "backward pass failed: {e}"),
            StepError::Fault(fault) => write!(f, "step fault: {fault}"),
            StepError::OverflowStorm { consecutive } => {
                write!(f, "overflow storm: {consecutive} consecutive skipped steps")
            }
        }
    }
}

impl<E: core::fmt::Display + core::fmt::Debug> std::error::Error for StepError<E> {}

/// The stages of the step state machine that differ between the
/// full-replica and the ZeRO-2 sharded placements.
///
/// [`StepPipeline::step`] calls these in a fixed order; implementations
/// must not change step semantics, only *where* data lives and moves.
pub(crate) trait Placement<M: Model> {
    /// Track carrying the `fwd_bwd` span.
    fn fwd_track(&self) -> &str;

    /// Track carrying the `steps_applied` / `steps_skipped` counters.
    fn counter_track(&self) -> &str;

    /// Materialises whatever parameters the upcoming forward/backward
    /// needs. A no-op for placements that keep a full replica; the stage-3
    /// placement runs its gather/release schedule here (gated by the
    /// `collective.param_allgather` / `param.release` fault sites).
    fn pre_forward(
        &mut self,
        _model: &mut M,
        _p16: &[F16],
        _stats: &mut EngineStats,
        _tracer: &Tracer,
    ) -> Result<(), FaultError> {
        Ok(())
    }

    /// Moves this member's gradients off the device into `grads` (sized
    /// for the optimizer input: full model or shard), applying loss-scale
    /// fp16 rounding. Returns the *local* overflow flag. Transfer-layer
    /// fault sites (`wire.d2h`, `collective.reduce_scatter`) are consulted
    /// through `faults`; transients are retried internally, so an `Err`
    /// is always fatal or retry-exhausted.
    #[allow(clippy::too_many_arguments)]
    fn transfer(
        &mut self,
        model: &mut M,
        grads: &mut [f32],
        scale: f32,
        denom: f32,
        stream: &mut GradStream,
        stats: &mut EngineStats,
        tracer: &Tracer,
        faults: &mut FaultSession,
    ) -> Result<bool, FaultError>;

    /// Folds the local overflow flag across the group (collective for
    /// multi-rank placements; identity for a single replica).
    fn combine_overflow(&mut self, local: bool) -> bool {
        local
    }

    /// Gradient clipping. The replica clips the full gradient; shards
    /// skip it (a faithful global norm would need another collective).
    fn clip_grads(&mut self, grads: &mut [f32], max_norm: f64);

    /// `(track, name)` of the optimizer-update span.
    fn update_span(&self) -> (&str, &str);

    /// Publishes the fp16 parameters back into the model — the h2d
    /// parameter copy for a replica, all-gather for a shard. Gated by the
    /// `wire.h2d` / `collective.allgather` fault sites.
    fn publish(
        &mut self,
        model: &mut M,
        p16: &[F16],
        stats: &mut EngineStats,
        tracer: &Tracer,
        faults: &mut FaultSession,
    ) -> Result<(), FaultError>;

    /// Runs on an overflow-skipped step, after counters. Shard placements
    /// must still execute their collectives to keep ranks in lock-step
    /// (which is also why this can fault).
    fn on_skip(
        &mut self,
        model: &mut M,
        p16: &[F16],
        stats: &mut EngineStats,
        tracer: &Tracer,
    ) -> Result<(), FaultError>;

    /// Whether this member closes the tracer step boundary (rank 0 or
    /// the single replica).
    fn closes_step(&self) -> bool {
        true
    }
}

/// The optimizer behind the update stage.
pub(crate) enum Updater {
    /// Non-offload reference path (scalar Adam, same recurrence).
    Reference(AdamState, AdamParams),
    /// The offloaded CPU-Adam, synchronous.
    Cpu(zo_optim::CpuAdam),
    /// CPU-Adam on the optimizer thread, one step delayed (async DPU).
    Async(PipelinedDpu),
    /// The memory-tier streaming optimizer: fp32 states live on a
    /// [`MemoryTier`](crate::tier::MemoryTier) and the Adam update is
    /// tiled through a bounded DRAM scratch. Bit-identical to [`Cpu`].
    ///
    /// [`Cpu`]: Updater::Cpu
    Tiered(TieredAdam),
}

/// Builds the host-side optimizer for an offloaded engine (single
/// replica, ZeRO-2 shard or ZeRO-3 shard) from the config's offload
/// knobs.
///
/// Precedence: `dpu_warmup` wins over `optimizer_tier` — the DPU's
/// optimizer thread owns a DRAM-resident copy of the states by design,
/// so a tier setting is ignored while DPU is on. Otherwise
/// [`TierKind::Dram`] is the classic resident [`CpuAdam`], and
/// [`TierKind::Nvme`] streams the states through a file-backed
/// [`NvmeTier`] under the configured DRAM scratch budget.
///
/// [`CpuAdam`]: zo_optim::CpuAdam
pub(crate) fn build_offload_updater(
    cfg: &ZeroOffloadConfig,
    master: &[f32],
    tracer: &Tracer,
    track: &str,
) -> Updater {
    let opt_cfg = CpuAdamConfig {
        hp: cfg.adam,
        num_threads: cfg.resolved_optimizer_threads(),
        tile_width: cfg.tile_width,
    };
    if let Some(warmup) = cfg.dpu_warmup {
        return Updater::Async(PipelinedDpu::spawn(
            master.to_vec(),
            opt_cfg,
            warmup,
            tracer.clone(),
            track,
        ));
    }
    match cfg.optimizer_tier {
        TierKind::Dram => Updater::Cpu(zo_optim::CpuAdam::new(opt_cfg, master.len())),
        TierKind::Nvme => Updater::Tiered(TieredAdam::new(
            Box::new(NvmeTier::new().expect("create NVMe spill directory")),
            cfg.adam,
            master,
            cfg.tier_scratch_bytes,
            tracer.clone(),
            track,
        )),
    }
}

/// Drives the [`AsyncDpu`] optimizer thread with the delayed-parameter-
/// update schedule, bit-identical to the synchronous
/// [`DelayedUpdate`](zo_optim::DelayedUpdate):
///
/// * steps `1..=warmup`: submit and wait inline (no delay, no staleness);
/// * first post-warmup step: stash the gradients, leave them in flight,
///   and *do not* touch the parameters (the transition step);
/// * every later step: collect the in-flight update (computed during this
///   step's forward/backward — the Fig. 6 overlap), then put the current
///   gradients in flight.
///
/// The struct keeps caller-side mirrors of the worker's Adam state that
/// exclude any in-flight update, so a checkpoint taken mid-flight is
/// identical to one taken by the synchronous path: master and moments as
/// of the last *collected* update, plus the pending gradient.
pub(crate) struct PipelinedDpu {
    dpu: AsyncDpu,
    cfg: CpuAdamConfig,
    tracer: Tracer,
    track: String,
    warmup: u64,
    steps_seen: u64,
    pending: Option<Vec<f32>>,
    /// Mirror of the worker's Adam state excluding in-flight work.
    state: AdamState,
}

impl PipelinedDpu {
    /// Spawns the optimizer thread owning a copy of `master`; the caller
    /// keeps its own copy as the checkpoint-consistent mirror.
    pub(crate) fn spawn(
        master: Vec<f32>,
        cfg: CpuAdamConfig,
        warmup: u64,
        tracer: Tracer,
        track: &str,
    ) -> PipelinedDpu {
        let n = master.len();
        PipelinedDpu {
            dpu: AsyncDpu::spawn_on_track(master, cfg, None, tracer.clone(), track),
            cfg,
            tracer,
            track: track.to_string(),
            warmup,
            steps_seen: 0,
            pending: None,
            state: AdamState::new(n),
        }
    }

    /// One DPU step at the pipeline's update stage. `master` and `p16`
    /// are the engine-side mirrors; on steps that apply an update they
    /// are replaced with the worker's result.
    pub(crate) fn step(&mut self, grads: &[f32], master: &mut Vec<f32>, p16: &mut Vec<F16>) {
        self.steps_seen += 1;
        if self.steps_seen <= self.warmup {
            // Warm-up: synchronous semantics — submit and wait inline.
            self.dpu.submit(grads.to_vec());
            self.collect(master, p16);
            return;
        }
        if self.pending.is_some() {
            // Steady state: the previous step's update ran on the worker
            // while this step's forward/backward executed; collect it now.
            self.collect(master, p16);
        }
        // Put this step's gradients in flight; they apply one step later.
        self.pending = Some(grads.to_vec());
        self.dpu.submit(grads.to_vec());
    }

    /// Blocks on the in-flight update and installs it into the mirrors.
    fn collect(&mut self, master: &mut Vec<f32>, p16: &mut Vec<F16>) {
        let done = self.dpu.wait_update();
        *master = done.master;
        *p16 = done.p16;
        self.state = done.state;
        self.pending = None;
    }

    /// Adam-state mirror (excludes in-flight work) for checkpointing.
    pub(crate) fn state(&self) -> &AdamState {
        &self.state
    }

    /// Steps observed so far (the DPU schedule's clock).
    pub(crate) fn steps_seen(&self) -> u64 {
        self.steps_seen
    }

    /// The stashed in-flight gradient, if any.
    pub(crate) fn pending(&self) -> Option<&[f32]> {
        self.pending.as_deref()
    }

    /// Restores from a checkpoint: tears down the old worker (draining
    /// any in-flight update) and spawns a fresh one owning the restored
    /// master and moments; a restored pending gradient is re-submitted so
    /// the schedule resumes exactly where it left off.
    pub(crate) fn restore(
        &mut self,
        master: &[f32],
        state: &AdamState,
        steps_seen: u64,
        pending: Option<Vec<f32>>,
    ) {
        self.dpu = AsyncDpu::spawn_on_track(
            master.to_vec(),
            self.cfg,
            Some(state.clone()),
            self.tracer.clone(),
            &self.track,
        );
        self.state = state.clone();
        self.steps_seen = steps_seen;
        self.pending = pending;
        if let Some(p) = &self.pending {
            self.dpu.submit(p.clone());
        }
    }
}

/// A [`BackwardHook`] that ships gradients through the bucketer/wire path
/// *during* backward — the paper's overlapped gradient offload.
///
/// The hook is inert until armed by the engine for a window-final
/// micro-batch; a plain [`ZeroOffloadEngine::step`](crate::ZeroOffloadEngine::step)
/// never arms it and transfers post hoc instead. Streaming applies the
/// same loss-scale fp16 rounding, pushes slices at the same flat offsets
/// in the same backward order (head first, blocks reversed, embeddings
/// last), and therefore produces byte-identical wire frames — scheduling
/// changes, numerics never do.
pub struct GradStream {
    pub(crate) tracer: Tracer,
    pub(crate) ranges: Vec<core::ops::Range<usize>>,
    pub(crate) bucket_bytes: usize,
    pub(crate) armed: bool,
    pub(crate) scale: f32,
    pub(crate) denom: f32,
    pub(crate) overflow: bool,
    /// Elements streamed so far within each bucket.
    pub(crate) written: Vec<usize>,
    /// Total elements streamed this window.
    pub(crate) streamed: usize,
    pub(crate) bucketer: GradBucketer,
    /// fp16 cast scratch, reused across slices.
    wire: Vec<F16>,
    /// fp32 scale scratch feeding the batched narrowing codec, reused.
    wire32: Vec<f32>,
    /// Timestamp of the first streamed slice (span start).
    pub(crate) start_us: Option<u64>,
    /// Mid-backward transfer fault session (lane `STREAM`): every pushed
    /// slice passes the `wire.d2h` gate.
    pub(crate) faults: FaultSession,
    /// Set when a non-recoverable fault hit mid-backward: staged frames
    /// were dropped and the window must fall back to the post-hoc path.
    poisoned: bool,
}

impl GradStream {
    /// A stream that never fires (placements that cannot stream).
    pub(crate) fn inert() -> GradStream {
        GradStream::new(Tracer::disabled(), Vec::new(), 2)
    }

    /// A disarmed stream for a model with the given layer ranges.
    pub(crate) fn new(
        tracer: Tracer,
        ranges: Vec<core::ops::Range<usize>>,
        bucket_bytes: usize,
    ) -> GradStream {
        let buckets = ranges.len();
        GradStream {
            tracer,
            ranges,
            bucket_bytes,
            armed: false,
            scale: 1.0,
            denom: 1.0,
            overflow: false,
            written: vec![0; buckets],
            streamed: 0,
            bucketer: GradBucketer::new(2),
            wire: Vec::new(),
            wire32: Vec::new(),
            start_us: None,
            faults: FaultSession::disabled(),
            poisoned: false,
        }
    }

    /// Installs the stream's fault session (lane `STREAM`).
    pub(crate) fn set_faults(&mut self, faults: FaultSession) {
        self.faults = faults;
    }

    /// Arms the stream for the closing micro-batch of a window: slices
    /// arriving from backward will be rounded and framed immediately.
    pub(crate) fn arm(&mut self, scale: f32, denom: f32) {
        self.armed = true;
        self.scale = scale;
        self.denom = denom;
        self.overflow = false;
        self.written.clear();
        self.written.resize(self.ranges.len(), 0);
        self.streamed = 0;
        self.bucketer = GradBucketer::traced(self.bucket_bytes, self.tracer.clone(), "pcie");
        self.start_us = None;
        self.poisoned = false;
    }

    /// Consumes the poisoned flag: `true` means the streamed window was
    /// abandoned mid-backward and the caller must retransmit post hoc.
    pub(crate) fn take_poisoned(&mut self) -> bool {
        core::mem::take(&mut self.poisoned)
    }

    /// Disarms; returns the `grad_offload` span start if the window was
    /// actually streamed (`None` means: fall back to the post-hoc path).
    ///
    /// # Panics
    ///
    /// Panics if only part of the model was streamed — the transfer would
    /// silently use stale gradients for the rest.
    pub(crate) fn take_streamed(&mut self) -> Option<u64> {
        if !self.armed {
            return None;
        }
        self.armed = false;
        if self.poisoned {
            // Degraded window: partial frames were dropped mid-backward;
            // the gradients themselves are intact on the device, so the
            // caller retransmits them post hoc.
            self.streamed = 0;
            return None;
        }
        if self.streamed == 0 {
            return None;
        }
        let expected = self.ranges.last().map_or(0, |r| r.end);
        assert_eq!(
            self.streamed, expected,
            "streamed gradient slices must cover the whole model"
        );
        Some(self.start_us.unwrap_or_else(|| self.tracer.now_us()))
    }
}

impl BackwardHook for GradStream {
    fn on_grads(&mut self, bucket: usize, grads: &[f32]) {
        if !self.armed || self.poisoned {
            return;
        }
        if self.start_us.is_none() {
            self.start_us = Some(self.tracer.now_us());
        }
        if self.faults.enabled() {
            // Each mid-backward slice crosses the wire gate. A transient
            // retries invisibly; a non-recoverable fault poisons the
            // window — staged frames are dropped and the step falls back
            // to the post-hoc transfer (graceful degradation, not abort).
            let gate = with_retry(&mut self.faults, Site::WireD2h, &self.tracer, "pcie", || ());
            if gate.is_err() {
                self.poisoned = true;
                self.bucketer = GradBucketer::new(2);
                self.tracer.add("pcie", names::FAULT_STREAM_FALLBACK, 1);
                return;
            }
        }
        let offset = self.ranges[bucket].start + self.written[bucket];
        let quantized = quantize_grads(
            grads,
            self.denom,
            self.scale,
            &mut self.wire32,
            &mut self.wire,
        );
        self.overflow |= quantized;
        self.bucketer.push(offset as u64, &self.wire);
        self.written[bucket] += grads.len();
        self.streamed += grads.len();
    }

    fn on_bucket(&mut self, _bucket: usize) {}
}

/// The step state machine shared by both engines.
///
/// Owns everything placement-independent: the fp32 master copy (full or
/// shard), its fp16 mirror, the optimizer-input gradient buffer, the
/// updater, the dynamic loss scaler, the accumulation window and the
/// cumulative stats.
pub(crate) struct StepPipeline {
    pub(crate) master: Vec<f32>,
    pub(crate) p16: Vec<F16>,
    pub(crate) grads: Vec<f32>,
    pub(crate) updater: Updater,
    pub(crate) scaler: DynamicLossScaler,
    pub(crate) micro_in_window: u32,
    pub(crate) stats: EngineStats,
    pub(crate) tracer: Tracer,
    pub(crate) grad_accumulation: u32,
    pub(crate) max_grad_norm: f64,
    /// Shared-pool counters at the last emitted step boundary; the delta
    /// becomes the step's `pool.tasks` / `pool.busy_ns` counters.
    pub(crate) pool_base: zo_tensor::PoolStats,
    /// Step-level fault session (lane `ENGINE` + rank): gates the
    /// transfer, optimizer and publish stages.
    pub(crate) faults: FaultSession,
    /// Consecutive overflow skips tolerated before
    /// [`StepError::OverflowStorm`] (0 disables).
    pub(crate) overflow_storm_limit: u32,
}

impl StepPipeline {
    /// Captures the pipeline-owned training state (master copy, optimizer
    /// moments, loss scaler, DPU bookkeeping, step counters) as a
    /// [`TrainingCheckpoint`]. Shared by every engine stage: for the
    /// single-GPU engine the master spans the full model, for the sharded
    /// engines it is this rank's partition — the checkpoint is shard-sized
    /// either way, and the engine wrapper decides what "whole run" means.
    ///
    /// For the async DPU this reads the caller-side mirrors, which exclude
    /// any in-flight update — the snapshot is identical to one taken by a
    /// synchronous delayed update, without draining the worker.
    pub(crate) fn capture_state(&self) -> crate::checkpoint::TrainingCheckpoint {
        let (optim, dpu) = self.updater_state();
        crate::checkpoint::TrainingCheckpoint {
            master: self.master.clone(),
            optim,
            loss_scale: self.scaler.snapshot(),
            dpu,
            steps_applied: self.stats.steps_applied,
            steps_skipped: self.stats.steps_skipped,
        }
    }

    /// Restores the pipeline-owned state from a checkpoint of the same
    /// shard size: master, optimizer, scaler, counters, and the fp16
    /// mirror (recomputed from the master — it is a pure function of it).
    ///
    /// Does NOT reload the wrapped model: every placement materializes its
    /// device view differently (full replica gather, stage-3 shard reset),
    /// so the engine wrapper finishes the job.
    pub(crate) fn restore_state(
        &mut self,
        ckpt: &crate::checkpoint::TrainingCheckpoint,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        let n = self.master.len();
        if ckpt.master.len() != n || ckpt.optim.len() != n {
            return Err(crate::checkpoint::CheckpointError::SizeMismatch {
                checkpoint: ckpt.master.len(),
                engine: n,
            });
        }
        self.master.copy_from_slice(&ckpt.master);
        // Order matters: the Async/Tiered updaters re-mirror from the
        // pipeline master, so it must already hold the checkpointed copy.
        self.set_updater_state(&ckpt.optim, ckpt.dpu.as_ref())?;
        self.scaler.restore(ckpt.loss_scale);
        self.stats.steps_applied = ckpt.steps_applied;
        self.stats.steps_skipped = ckpt.steps_skipped;
        let mut p16 = vec![F16::ZERO; ckpt.master.len()];
        cast_f32_to_f16(&ckpt.master, &mut p16);
        self.p16 = p16;
        Ok(())
    }

    /// Snapshot of optimizer state + DPU bookkeeping (checkpointing).
    pub(crate) fn updater_state(&self) -> (AdamState, Option<crate::checkpoint::DpuCheckpoint>) {
        match &self.updater {
            Updater::Reference(state, _) => (state.clone(), None),
            Updater::Cpu(opt) => (opt.state().clone(), None),
            Updater::Async(dpu) => (
                dpu.state().clone(),
                Some(crate::checkpoint::DpuCheckpoint {
                    steps_seen: dpu.steps_seen(),
                    pending: dpu.pending().map(|p| p.to_vec()),
                }),
            ),
            Updater::Tiered(tiered) => (tiered.state(), None),
        }
    }

    /// Restores optimizer + DPU state (checkpointing). The pipeline master
    /// must already hold the restored parameters.
    pub(crate) fn set_updater_state(
        &mut self,
        optim: &AdamState,
        dpu: Option<&crate::checkpoint::DpuCheckpoint>,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        let mismatch =
            |have: usize, want: usize| crate::checkpoint::CheckpointError::SizeMismatch {
                checkpoint: have,
                engine: want,
            };
        match (&mut self.updater, dpu) {
            (Updater::Reference(state, _), None) => {
                *state = optim.clone();
                Ok(())
            }
            (Updater::Cpu(opt), None) => opt
                .load_state(optim.clone())
                .map_err(|_| mismatch(optim.len(), self.master.len())),
            (Updater::Async(pipelined), Some(d)) => {
                if optim.len() != self.master.len() {
                    return Err(mismatch(optim.len(), self.master.len()));
                }
                pipelined.restore(&self.master, optim, d.steps_seen, d.pending.clone());
                Ok(())
            }
            (Updater::Tiered(tiered), None) => {
                if optim.len() != self.master.len() {
                    return Err(mismatch(optim.len(), self.master.len()));
                }
                // Rewriting the tier partitions from the restored master
                // also heals any torn partition a fatal write left behind.
                tiered.restore(&self.master, optim);
                Ok(())
            }
            _ => Err(crate::checkpoint::CheckpointError::ModeMismatch),
        }
    }

    /// Emits the shared worker pool's activity since the last boundary as
    /// `pool.tasks` / `pool.busy_ns` counters on the `pool` track, so the
    /// step-timeline shows how much kernel work ran on pool workers.
    ///
    /// Only the step-closing member calls this (the pool counters are
    /// process-global; per-rank emission would double-count).
    fn emit_pool_counters(&mut self) {
        let now = zo_tensor::pool::global().stats();
        let tasks = now.tasks.saturating_sub(self.pool_base.tasks);
        let busy_ns = now.busy_ns.saturating_sub(self.pool_base.busy_ns);
        if tasks > 0 {
            self.tracer.add("pool", "pool.tasks", tasks);
            self.tracer.add("pool", "pool.busy_ns", busy_ns);
        }
        self.pool_base = now;
    }

    /// Closes the tracer step boundary if this member owns it. Called on
    /// *every* terminal path — applied, skipped, backward error, fault —
    /// so partial spans never leak into the next step's record.
    fn close_boundary(&mut self, closes: bool) {
        if closes {
            self.emit_pool_counters();
            self.tracer.finish_step();
        }
    }

    /// One micro-batch through the state machine; at window boundaries,
    /// the full transfer → overflow → clip → update → publish sequence.
    pub(crate) fn step<M, P, E, F>(
        &mut self,
        model: &mut M,
        placement: &mut P,
        stream: &mut GradStream,
        run_backward: F,
    ) -> Result<StepOutcome, StepError<E>>
    where
        M: Model,
        P: Placement<M>,
        F: FnOnce(&mut M, &mut GradStream) -> Result<f32, E>,
    {
        if self.micro_in_window == 0 {
            model.zero_grads();
        }
        // Stage-3 placements gather the layers this micro-batch needs
        // before compute starts; a fatal gather fault surfaces before any
        // state mutates, on every rank together (shared collective lane).
        if let Err(f) = placement.pre_forward(model, &self.p16, &mut self.stats, &self.tracer) {
            let closes = placement.closes_step();
            self.close_boundary(closes);
            return Err(StepError::Fault(f));
        }
        let loss = {
            let _fwd = self.tracer.span(placement.fwd_track(), "fwd_bwd");
            match run_backward(model, stream) {
                Ok(loss) => loss,
                Err(e) => {
                    // A failed backward leaves partial streamed state;
                    // disarm so the next window starts clean.
                    stream.armed = false;
                    let closes = placement.closes_step();
                    drop(_fwd);
                    self.close_boundary(closes);
                    return Err(StepError::Backward(e));
                }
            }
        };
        self.micro_in_window += 1;
        if self.micro_in_window < self.grad_accumulation {
            return Ok(StepOutcome::Accumulating { loss });
        }
        self.micro_in_window = 0;

        let scale = self.scaler.scale();
        let denom = self.grad_accumulation as f32;
        let mut local_overflow = match placement.transfer(
            model,
            &mut self.grads,
            scale,
            denom,
            stream,
            &mut self.stats,
            &self.tracer,
            &mut self.faults,
        ) {
            Ok(flag) => flag,
            Err(f) => {
                let closes = placement.closes_step();
                self.close_boundary(closes);
                return Err(StepError::Fault(f));
            }
        };
        // Injected NaN gradient bucket: corrupt the host-side copy and let
        // the standard skip-and-rescale machinery absorb it — the fault
        // model's claim is that a flipped payload is *survivable*.
        if self.faults.grad_nan(Site::WireD2h) {
            if let Some(g) = self.grads.first_mut() {
                *g = f32::NAN;
            }
            local_overflow = true;
            self.tracer
                .add(placement.counter_track(), names::FAULT_GRAD_NAN, 1);
        }
        let overflow = placement.combine_overflow(local_overflow);

        if !self.scaler.update(overflow) {
            self.stats.steps_skipped += 1;
            self.tracer
                .add(placement.counter_track(), "steps_skipped", 1);
            self.tracer
                .add(placement.counter_track(), names::OPTIM_OVERFLOW, 1);
            // The optimizer never runs on a skipped step, but the step
            // record must still carry its update phase: a zero-length
            // span keeps the row's schema identical to an applied step.
            let (utrack, uname) = placement.update_span();
            let now = self.tracer.now_us();
            self.tracer.record_span(utrack, uname, now, 0);
            if let Err(f) = placement.on_skip(model, &self.p16, &mut self.stats, &self.tracer) {
                let closes = placement.closes_step();
                self.close_boundary(closes);
                return Err(StepError::Fault(f));
            }
            let closes = placement.closes_step();
            self.close_boundary(closes);
            if self.overflow_storm_limit > 0
                && self.scaler.consecutive_skips() >= self.overflow_storm_limit
            {
                return Err(StepError::OverflowStorm {
                    consecutive: self.scaler.consecutive_skips(),
                });
            }
            return Ok(StepOutcome::SkippedOverflow { loss });
        }

        if self.max_grad_norm > 0.0 {
            placement.clip_grads(&mut self.grads, self.max_grad_norm);
        }

        let update_result = {
            let (track, name) = placement.update_span();
            // The optimizer gate fires *before* any updater state mutates:
            // a fatal `optim.cpu_step` fault leaves master, moments and
            // the scaler exactly as checkpointed. The tiered updater adds
            // its own `tier.read`/`tier.write` gates, also before any
            // tile mutates.
            if let Err(f) = with_retry(
                &mut self.faults,
                Site::OptimCpuStep,
                &self.tracer,
                track,
                || (),
            ) {
                let closes = placement.closes_step();
                self.close_boundary(closes);
                return Err(StepError::Fault(f));
            }
            let _update = self.tracer.span(track, name);
            match &mut self.updater {
                Updater::Reference(state, hp) => {
                    // The recurrence is identical to CpuAdam's, bit for bit.
                    adam_reference_step(hp, state, &mut self.master, &self.grads)
                        .expect("pipeline buffers are sized together");
                    cast_f32_to_f16(&self.master, &mut self.p16);
                    Ok(())
                }
                Updater::Cpu(opt) => {
                    opt.step_mixed(&mut self.master, &self.grads, &mut self.p16)
                        .expect("pipeline buffers are sized together");
                    Ok(())
                }
                Updater::Async(dpu) => {
                    dpu.step(&self.grads, &mut self.master, &mut self.p16);
                    Ok(())
                }
                Updater::Tiered(tiered) => tiered.step(
                    &self.grads,
                    &mut self.master,
                    &mut self.p16,
                    &mut self.faults,
                ),
            }
        };
        if let Err(f) = update_result {
            let closes = placement.closes_step();
            self.close_boundary(closes);
            return Err(StepError::Fault(f));
        }
        if let Err(f) = placement.publish(
            model,
            &self.p16,
            &mut self.stats,
            &self.tracer,
            &mut self.faults,
        ) {
            let closes = placement.closes_step();
            self.close_boundary(closes);
            return Err(StepError::Fault(f));
        }
        self.stats.steps_applied += 1;
        self.tracer
            .add(placement.counter_track(), "steps_applied", 1);
        let closes = placement.closes_step();
        self.close_boundary(closes);
        Ok(StepOutcome::Applied { loss })
    }
}
