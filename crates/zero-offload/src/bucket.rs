//! Gradient bucketing for the overlapped device→host offload.
//!
//! "ZeRO-Offload can transfer these gradients for each parameter
//! individually or in small groups to the CPU memory immediately after
//! they are computed" (Sec. 4.1). The bucketer is that grouping: gradient
//! spans arrive in backward order, are packed into buckets of a fixed byte
//! budget, and each full bucket is emitted as a wire frame that the
//! transfer path can ship while backward continues.
//!
//! Buckets bound the transient GPU staging memory (the `GRAD_BUCKET_BYTES`
//! of the memory model): only the open bucket lives on the device.

use bytes::Bytes;
use zo_tensor::F16;

use crate::wire::encode_frame;

/// Packs gradient spans into fixed-size wire frames.
pub struct GradBucketer {
    capacity_elems: usize,
    seq: u32,
    /// Flat offset of the first staged element, if any.
    open_offset: Option<u64>,
    staged: Vec<F16>,
    emitted: Vec<Bytes>,
    total_payload_bytes: u64,
    total_wire_bytes: u64,
    tracer: zo_trace::Tracer,
    track: String,
}

impl GradBucketer {
    /// Creates a bucketer with a byte budget per bucket.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes < 2` (smaller than one fp16 element).
    pub fn new(capacity_bytes: usize) -> GradBucketer {
        GradBucketer::traced(capacity_bytes, zo_trace::Tracer::disabled(), "pcie")
    }

    /// Like [`GradBucketer::new`], additionally recording send-side
    /// counters on `track` as each frame is emitted: `tx_wire_bytes`,
    /// `tx_payload_bytes` and `tx_frames`.
    pub fn traced(
        capacity_bytes: usize,
        tracer: zo_trace::Tracer,
        track: impl Into<String>,
    ) -> GradBucketer {
        assert!(capacity_bytes >= 2, "bucket must hold at least one element");
        GradBucketer {
            capacity_elems: capacity_bytes / 2,
            seq: 0,
            open_offset: None,
            staged: Vec::new(),
            emitted: Vec::new(),
            total_payload_bytes: 0,
            total_wire_bytes: 0,
            tracer,
            track: track.into(),
        }
    }

    /// Elements the open bucket can still take.
    pub fn remaining(&self) -> usize {
        self.capacity_elems - self.staged.len()
    }

    /// Stages a gradient span starting at flat `offset`.
    ///
    /// Spans must arrive with offsets that are contiguous within a bucket;
    /// a non-contiguous span closes the open bucket first.
    pub fn push(&mut self, offset: u64, values: &[F16]) {
        let mut offset = offset;
        let mut values = values;
        // Close the bucket on discontinuity.
        if let Some(open) = self.open_offset {
            if open + self.staged.len() as u64 != offset {
                self.flush();
            }
        }
        while !values.is_empty() {
            if self.open_offset.is_none() {
                self.open_offset = Some(offset);
            }
            let take = self.remaining().min(values.len());
            self.staged.extend_from_slice(&values[..take]);
            values = &values[take..];
            offset += take as u64;
            if self.remaining() == 0 {
                self.flush();
            }
        }
    }

    /// Closes the open bucket (if non-empty), emitting its frame.
    pub fn flush(&mut self) {
        if self.staged.is_empty() {
            self.open_offset = None;
            return;
        }
        let offset = self.open_offset.take().expect("staged implies open");
        let frame = encode_frame(self.seq, offset, &self.staged);
        self.total_payload_bytes += 2 * self.staged.len() as u64;
        self.total_wire_bytes += frame.len() as u64;
        self.tracer
            .add(&self.track, "tx_wire_bytes", frame.len() as u64);
        self.tracer.add(
            &self.track,
            "tx_payload_bytes",
            2 * self.staged.len() as u64,
        );
        self.tracer.add(&self.track, "tx_frames", 1);
        self.emitted.push(frame);
        self.seq += 1;
        self.staged.clear();
    }

    /// Takes all frames emitted so far.
    pub fn take_frames(&mut self) -> Vec<Bytes> {
        core::mem::take(&mut self.emitted)
    }

    /// fp16 payload bytes emitted (2 per element).
    pub fn payload_bytes(&self) -> u64 {
        self.total_payload_bytes
    }

    /// Total on-the-wire bytes including frame headers.
    pub fn wire_bytes(&self) -> u64 {
        self.total_wire_bytes
    }

    /// Frames emitted so far.
    pub fn frames_emitted(&self) -> u32 {
        self.seq
    }
}

/// Reassembles decoded frames into a flat fp32 gradient buffer.
///
/// Returns the number of elements written. Overlapping frames overwrite —
/// callers send disjoint spans.
///
/// # Panics
///
/// Panics if a frame extends past `dst.len()`.
pub fn scatter_frames(frames: &[crate::wire::GradFrame], dst: &mut [f32]) -> usize {
    let mut written = 0;
    for f in frames {
        let start = f.offset as usize;
        let end = start + f.values.len();
        assert!(
            end <= dst.len(),
            "frame [{start}, {end}) exceeds buffer {}",
            dst.len()
        );
        F16::to_f32_slice(&f.values, &mut dst[start..end]);
        written += f.values.len();
    }
    written
}

/// Picks a bucket byte budget: large enough that headers are negligible,
/// small enough that at most two buckets bound the staging memory.
pub fn default_bucket_bytes() -> usize {
    32 * 1024 * 1024
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_frame, frame_bytes};

    fn vals(range: core::ops::Range<usize>) -> Vec<F16> {
        range.map(|i| F16::from_f32(i as f32 * 0.5)).collect()
    }

    #[test]
    fn contiguous_spans_merge_into_buckets() {
        // Capacity 8 elements (16 bytes): 20 contiguous elements emit
        // frames of 8 + 8, with 4 left staged until flush.
        let mut b = GradBucketer::new(16);
        b.push(0, &vals(0..10));
        b.push(10, &vals(10..20));
        assert_eq!(b.frames_emitted(), 2);
        b.flush();
        let frames: Vec<_> = b
            .take_frames()
            .into_iter()
            .map(|f| decode_frame(f).unwrap())
            .collect();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].offset, 0);
        assert_eq!(frames[0].values.len(), 8);
        assert_eq!(frames[1].offset, 8);
        assert_eq!(frames[2].offset, 16);
        assert_eq!(frames[2].values.len(), 4);
        // Sequence numbers are monotone.
        assert_eq!(
            frames.iter().map(|f| f.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn discontinuity_closes_bucket() {
        let mut b = GradBucketer::new(1024);
        b.push(0, &vals(0..3));
        b.push(100, &vals(0..3)); // Gap: first bucket must close.
        b.flush();
        let frames: Vec<_> = b
            .take_frames()
            .into_iter()
            .map(|f| decode_frame(f).unwrap())
            .collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].offset, 0);
        assert_eq!(frames[1].offset, 100);
    }

    #[test]
    fn byte_accounting() {
        let mut b = GradBucketer::new(8); // 4 elements per bucket
        b.push(0, &vals(0..4));
        assert_eq!(b.payload_bytes(), 8);
        assert_eq!(b.wire_bytes(), (crate::wire::frame_bytes(4)) as u64);
        assert_eq!(frame_bytes(4), 24 + 8);
    }

    #[test]
    fn scatter_reassembles_exactly() {
        let mut b = GradBucketer::new(10); // 5 elements
        let src: Vec<F16> = (0..13).map(|i| F16::from_f32(i as f32)).collect();
        b.push(7, &src);
        b.flush();
        let frames: Vec<_> = b
            .take_frames()
            .into_iter()
            .map(|f| decode_frame(f).unwrap())
            .collect();
        let mut dst = vec![0.0f32; 32];
        let written = scatter_frames(&frames, &mut dst);
        assert_eq!(written, 13);
        for i in 0..13 {
            assert_eq!(dst[7 + i], i as f32);
        }
        assert_eq!(dst[6], 0.0);
        assert_eq!(dst[20], 0.0);
    }

    #[test]
    fn empty_flush_is_noop() {
        let mut b = GradBucketer::new(64);
        b.flush();
        assert!(b.take_frames().is_empty());
        assert_eq!(b.frames_emitted(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn scatter_bounds_checked() {
        let frames = vec![crate::wire::GradFrame {
            seq: 0,
            offset: 30,
            values: vec![F16::ONE; 5],
        }];
        let mut dst = vec![0.0f32; 32];
        scatter_frames(&frames, &mut dst);
    }
}
