//! Property-based tests for optimizer invariants.

use proptest::prelude::*;
use zo_optim::{
    adam_reference_step, AdamParams, AdamState, CpuAdam, CpuAdamConfig, DelayedUpdate, DpuAction,
    NaiveAdam,
};

fn grads_strategy(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0f32..1.0, n..=n)
}

proptest! {
    /// CpuAdam equals the scalar reference bit-for-bit under arbitrary
    /// gradients, thread counts, and tile widths.
    #[test]
    fn cpu_adam_bitwise_reference(
        g1 in grads_strategy(67),
        g2 in grads_strategy(67),
        threads in 1usize..5,
        tile in 1usize..100,
    ) {
        let hp = AdamParams::default();
        let cfg = CpuAdamConfig { hp, num_threads: threads, tile_width: tile };
        let mut fast = CpuAdam::new(cfg, 67);
        let mut st = AdamState::new(67);
        let mut p_fast = vec![0.3f32; 67];
        let mut p_ref = vec![0.3f32; 67];
        for g in [&g1, &g2] {
            fast.step(&mut p_fast, g).unwrap();
            adam_reference_step(&hp, &mut st, &mut p_ref, g).unwrap();
        }
        prop_assert_eq!(p_fast, p_ref);
    }

    /// The pool-parallel Adam path is bit-identical to single-threaded for
    /// a problem large enough that every thread count in {1,2,3,7} actually
    /// partitions (n >= 4·UNROLL·threads engages the parallel path).
    #[test]
    fn parallel_adam_bit_identical_to_serial(
        seed in 0u64..500,
        steps in 1usize..4,
    ) {
        let n = 4 * zo_optim::UNROLL * 7 + 13; // past the widest threshold
        let hp = AdamParams::default();
        let grads: Vec<Vec<f32>> = (0..steps)
            .map(|s| {
                (0..n)
                    .map(|i| {
                        let x = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(((s * n + i) as u64).wrapping_mul(1442695040888963407));
                        ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
                    })
                    .collect()
            })
            .collect();
        let run = |threads: usize| {
            let cfg = CpuAdamConfig { hp, num_threads: threads, tile_width: 1000 };
            let mut opt = CpuAdam::new(cfg, n);
            let mut p = vec![0.25f32; n];
            for g in &grads {
                opt.step(&mut p, g).unwrap();
            }
            p
        };
        let serial = run(1);
        for threads in [2usize, 3, 7] {
            prop_assert_eq!(&run(threads), &serial, "threads={}", threads);
        }
    }

    /// Naive (op-by-op) Adam tracks the reference within a tight bound.
    #[test]
    fn naive_adam_close_to_reference(g in grads_strategy(33)) {
        let hp = AdamParams::default();
        let mut naive = NaiveAdam::new(hp, 33);
        let mut st = AdamState::new(33);
        let mut p_naive = vec![-0.2f32; 33];
        let mut p_ref = vec![-0.2f32; 33];
        naive.step(&mut p_naive, &g).unwrap();
        adam_reference_step(&hp, &mut st, &mut p_ref, &g).unwrap();
        for (a, b) in p_naive.iter().zip(&p_ref) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// An Adam step never moves a parameter by more than ~lr (bias
    /// correction keeps the per-step displacement bounded, eps aside).
    #[test]
    fn adam_step_size_bounded(g in grads_strategy(16), lr in 1e-4f32..0.1) {
        let hp = AdamParams { lr, ..AdamParams::default() };
        let mut st = AdamState::new(16);
        let mut p = vec![0.0f32; 16];
        let before = p.clone();
        adam_reference_step(&hp, &mut st, &mut p, &g).unwrap();
        for (a, b) in p.iter().zip(&before) {
            // First-step |update| <= lr * |m-hat| / (|v-hat|^0.5) ~= lr.
            prop_assert!((a - b).abs() <= lr * 1.01 + 1e-7);
        }
    }

    /// DPU total gradient mass is conserved: after flush, the sequence of
    /// applied updates equals the eager sequence applied one step later.
    #[test]
    fn dpu_applies_every_gradient_exactly_once(
        steps in 1usize..8,
        warmup in 0u64..4,
        seed in 0u32..100,
    ) {
        let n = 5;
        let make = || CpuAdam::new(CpuAdamConfig::default(), n);
        let grads: Vec<Vec<f32>> = (0..steps)
            .map(|s| {
                (0..n)
                    .map(|i| (((seed as usize + s * 7 + i * 13) % 19) as f32 - 9.0) * 0.05)
                    .collect()
            })
            .collect();
        // DPU run + flush.
        let mut dpu = DelayedUpdate::new(make(), warmup);
        let mut p_dpu = vec![1.0f32; n];
        for g in &grads {
            dpu.step(&mut p_dpu, g).unwrap();
        }
        dpu.flush(&mut p_dpu).unwrap();
        // Eager run.
        let mut plain = make();
        let mut p_plain = vec![1.0f32; n];
        for g in &grads {
            plain.step(&mut p_plain, g).unwrap();
        }
        prop_assert_eq!(p_dpu, p_plain);
    }

    /// The DPU action sequence is Immediate^warmup, Skipped, Delayed*.
    #[test]
    fn dpu_action_grammar(steps in 1usize..10, warmup in 0u64..5) {
        let mut dpu = DelayedUpdate::new(CpuAdam::new(CpuAdamConfig::default(), 1), warmup);
        let mut p = vec![0.0f32];
        for i in 0..steps {
            let action = dpu.step(&mut p, &[0.1]).unwrap();
            let expected = if (i as u64) < warmup {
                DpuAction::Immediate
            } else if i as u64 == warmup {
                DpuAction::Skipped
            } else {
                DpuAction::Delayed
            };
            prop_assert_eq!(action, expected, "step {}", i);
        }
    }

    /// Momentum/variance stay finite and variance non-negative for any
    /// bounded gradient stream.
    #[test]
    fn state_stays_well_formed(gs in prop::collection::vec(grads_strategy(8), 1..6)) {
        let mut opt = CpuAdam::new(CpuAdamConfig::default(), 8);
        let mut p = vec![0.5f32; 8];
        for g in &gs {
            opt.step(&mut p, g).unwrap();
        }
        for (&m, &v) in opt.state().m.iter().zip(&opt.state().v) {
            prop_assert!(m.is_finite());
            prop_assert!(v.is_finite() && v >= 0.0);
        }
        prop_assert!(p.iter().all(|x| x.is_finite()));
    }
}
