//! SGD with momentum — a secondary optimizer used by tests and ablations.

use crate::error::OptimError;

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdParams {
    /// Learning rate.
    pub lr: f32,
    /// Momentum factor (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f32,
}

impl Default for SgdParams {
    fn default() -> SgdParams {
        SgdParams {
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
        }
    }
}

/// Stochastic gradient descent with classical momentum.
///
/// # Examples
///
/// ```
/// use zo_optim::{Sgd, SgdParams};
///
/// let mut opt = Sgd::new(SgdParams { lr: 0.1, momentum: 0.0, weight_decay: 0.0 }, 1);
/// let mut p = vec![1.0f32];
/// opt.step(&mut p, &[0.5]).unwrap();
/// assert_eq!(p[0], 0.95);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    hp: SgdParams,
    velocity: Vec<f32>,
    step: u64,
}

impl Sgd {
    /// Creates an SGD optimizer for `n` parameters.
    pub fn new(hp: SgdParams, n: usize) -> Sgd {
        Sgd {
            hp,
            velocity: vec![0.0; n],
            step: 0,
        }
    }

    /// Completed step count.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Performs one update: `v = mu*v + g; p -= lr*v`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) -> Result<(), OptimError> {
        if params.len() != grads.len() {
            return Err(OptimError::LengthMismatch {
                params: params.len(),
                grads: grads.len(),
            });
        }
        if params.len() != self.velocity.len() {
            return Err(OptimError::StateMismatch {
                state: self.velocity.len(),
                given: params.len(),
            });
        }
        self.step += 1;
        for i in 0..params.len() {
            let g = grads[i] + self.hp.weight_decay * params[i];
            self.velocity[i] = self.hp.momentum * self.velocity[i] + g;
            params[i] -= self.hp.lr * self.velocity[i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new(
            SgdParams {
                lr: 0.5,
                momentum: 0.0,
                weight_decay: 0.0,
            },
            2,
        );
        let mut p = vec![1.0f32, -2.0];
        opt.step(&mut p, &[1.0, -1.0]).unwrap();
        assert_eq!(p, vec![0.5, -1.5]);
        assert_eq!(opt.step_count(), 1);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(
            SgdParams {
                lr: 1.0,
                momentum: 0.5,
                weight_decay: 0.0,
            },
            1,
        );
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]).unwrap(); // v = 1, p = -1
        assert_eq!(p[0], -1.0);
        opt.step(&mut p, &[1.0]).unwrap(); // v = 1.5, p = -2.5
        assert_eq!(p[0], -2.5);
    }

    #[test]
    fn weight_decay_applies() {
        let mut opt = Sgd::new(
            SgdParams {
                lr: 0.1,
                momentum: 0.0,
                weight_decay: 1.0,
            },
            1,
        );
        let mut p = vec![2.0f32];
        opt.step(&mut p, &[0.0]).unwrap();
        assert!((p[0] - 1.8).abs() < 1e-6);
    }

    #[test]
    fn length_validation() {
        let mut opt = Sgd::new(SgdParams::default(), 2);
        let mut p = vec![0.0; 2];
        assert!(opt.step(&mut p, &[0.0; 3]).is_err());
        let mut p3 = vec![0.0; 3];
        assert!(opt.step(&mut p3, &[0.0; 3]).is_err());
    }

    #[test]
    fn converges_on_quadratic() {
        let mut opt = Sgd::new(
            SgdParams {
                lr: 0.1,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            1,
        );
        let mut p = vec![5.0f32];
        for _ in 0..200 {
            let g = vec![p[0]];
            opt.step(&mut p, &g).unwrap();
        }
        assert!(p[0].abs() < 1e-3);
    }
}
