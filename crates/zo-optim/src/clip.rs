//! Global gradient-norm clipping.
//!
//! Norm computation is an O(M) reduction, which is exactly the class of
//! computation the paper's Sec. 3.2 assigns to the CPU ("norm calculations,
//! weight updates etc that have a complexity of O(M)").

/// Computes the global L2 norm over several gradient shards.
///
/// Accepts shards so that per-layer (or per-partition) gradient buffers can
/// be clipped jointly without concatenation.
pub fn global_norm(shards: &[&[f32]]) -> f64 {
    shards
        .iter()
        .map(|s| s.iter().map(|g| (*g as f64) * (*g as f64)).sum::<f64>())
        .sum::<f64>()
        .sqrt()
}

/// Clips gradient shards to a maximum global L2 norm.
///
/// Returns the pre-clip norm. If the norm exceeds `max_norm`, every shard
/// is scaled by `max_norm / norm`; otherwise gradients are untouched.
pub fn clip_global_norm(shards: &mut [&mut [f32]], max_norm: f64) -> f64 {
    let norm = {
        let views: Vec<&[f32]> = shards.iter().map(|s| &**s).collect();
        global_norm(&views)
    };
    if norm > max_norm && norm > 0.0 {
        let factor = (max_norm / norm) as f32;
        for shard in shards.iter_mut() {
            zo_tensor::ops::scale(shard, factor);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_over_shards() {
        let a = [3.0f32];
        let b = [4.0f32];
        assert!((global_norm(&[&a, &b]) - 5.0).abs() < 1e-12);
        assert_eq!(global_norm(&[]), 0.0);
    }

    #[test]
    fn clip_scales_when_above() {
        let mut a = vec![3.0f32];
        let mut b = vec![4.0f32];
        let pre = clip_global_norm(&mut [&mut a, &mut b], 1.0);
        assert!((pre - 5.0).abs() < 1e-12);
        assert!((a[0] - 0.6).abs() < 1e-6);
        assert!((b[0] - 0.8).abs() < 1e-6);
        let post = global_norm(&[&a, &b]);
        assert!((post - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clip_noop_when_below() {
        let mut a = vec![0.3f32, 0.4];
        let pre = clip_global_norm(&mut [&mut a], 1.0);
        assert!((pre - 0.5).abs() < 1e-6);
        assert_eq!(a, vec![0.3, 0.4]);
    }

    #[test]
    fn zero_gradients_untouched() {
        let mut a = vec![0.0f32; 4];
        clip_global_norm(&mut [&mut a], 1.0);
        assert_eq!(a, vec![0.0; 4]);
    }
}
