//! Error types for optimizers.

use core::fmt;

/// Errors produced by optimizer steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimError {
    /// Parameter and gradient buffers had different lengths.
    LengthMismatch {
        /// Parameter buffer length.
        params: usize,
        /// Gradient buffer length.
        grads: usize,
    },
    /// The optimizer state was built for a different parameter count.
    StateMismatch {
        /// Length the optimizer state was created with.
        state: usize,
        /// Length of the buffers passed to `step`.
        given: usize,
    },
    /// An output (e.g. fp16 parameter mirror) had the wrong length.
    OutputMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::LengthMismatch { params, grads } => {
                write!(f, "parameter/gradient length mismatch: {params} vs {grads}")
            }
            OptimError::StateMismatch { state, given } => {
                write!(f, "optimizer state sized for {state} params, got {given}")
            }
            OptimError::OutputMismatch { expected, actual } => {
                write!(
                    f,
                    "output buffer length mismatch: expected {expected}, got {actual}"
                )
            }
        }
    }
}

impl std::error::Error for OptimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = OptimError::LengthMismatch {
            params: 4,
            grads: 5,
        };
        assert_eq!(e.to_string(), "parameter/gradient length mismatch: 4 vs 5");
        let e = OptimError::StateMismatch { state: 8, given: 9 };
        assert!(e.to_string().contains("sized for 8"));
        let e = OptimError::OutputMismatch {
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 2"));
    }
}
