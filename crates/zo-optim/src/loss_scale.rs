//! Dynamic loss scaling for fp16 mixed-precision training.
//!
//! The paper's recipe ("mixed precision training with Adam optimizer", Sec.
//! 3) stores gradients in fp16, whose narrow exponent range underflows for
//! small gradient values. Loss scaling multiplies the loss by a large
//! factor before backward (shifting gradients up into the representable
//! range) and divides it back out before the optimizer step. The dynamic
//! variant grows the scale while gradients stay finite and shrinks it on
//! overflow, skipping the affected step.

/// Configuration for [`DynamicLossScaler`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(default)]
pub struct LossScaleConfig {
    /// Initial scale (power of two).
    pub init_scale: f32,
    /// Multiplier applied after `growth_interval` clean steps.
    pub growth_factor: f32,
    /// Divisor applied on overflow.
    pub backoff_factor: f32,
    /// Number of consecutive overflow-free steps before growing.
    pub growth_interval: u32,
    /// Smallest allowed scale.
    pub min_scale: f32,
}

impl Default for LossScaleConfig {
    fn default() -> LossScaleConfig {
        LossScaleConfig {
            init_scale: 65536.0,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 2000,
            min_scale: 1.0,
        }
    }
}

/// Dynamic loss scaler state machine.
///
/// # Examples
///
/// ```
/// use zo_optim::DynamicLossScaler;
///
/// let mut scaler = DynamicLossScaler::default();
/// let s0 = scaler.scale();
/// scaler.update(true); // overflow detected: halve and skip
/// assert_eq!(scaler.scale(), s0 / 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicLossScaler {
    cfg: LossScaleConfig,
    scale: f32,
    good_steps: u32,
    overflow_count: u64,
    skipped_steps: u64,
    consecutive_skips: u32,
}

impl Default for DynamicLossScaler {
    fn default() -> DynamicLossScaler {
        DynamicLossScaler::new(LossScaleConfig::default())
    }
}

impl DynamicLossScaler {
    /// Creates a scaler with the given configuration.
    pub fn new(cfg: LossScaleConfig) -> DynamicLossScaler {
        DynamicLossScaler {
            cfg,
            scale: cfg.init_scale,
            good_steps: 0,
            overflow_count: 0,
            skipped_steps: 0,
            consecutive_skips: 0,
        }
    }

    /// The current loss scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Inverse scale, for unscaling gradients.
    pub fn inv_scale(&self) -> f32 {
        1.0 / self.scale
    }

    /// Total overflows observed.
    pub fn overflow_count(&self) -> u64 {
        self.overflow_count
    }

    /// Total steps skipped due to overflow.
    pub fn skipped_steps(&self) -> u64 {
        self.skipped_steps
    }

    /// Consecutive overflow-skipped steps since the last applied step —
    /// the "overflow storm" detector. A healthy run occasionally skips
    /// one step while the scale backs off; a run whose gradients are
    /// genuinely non-finite skips every step, and this counter lets the
    /// engine surface that as a typed error instead of silently training
    /// nothing (resets to zero when an update applies, and on restore).
    pub fn consecutive_skips(&self) -> u32 {
        self.consecutive_skips
    }

    /// Checks a gradient buffer for overflow (NaN/Inf after unscaling).
    pub fn check_overflow(&self, grads: &[f32]) -> bool {
        zo_tensor::ops::has_non_finite(grads)
    }

    /// Advances the state machine after a step.
    ///
    /// Returns `true` if the optimizer step should be applied, `false` if
    /// it must be skipped because this step overflowed.
    pub fn update(&mut self, overflow: bool) -> bool {
        if overflow {
            self.overflow_count += 1;
            self.skipped_steps += 1;
            self.consecutive_skips += 1;
            self.good_steps = 0;
            self.scale = (self.scale * self.cfg.backoff_factor).max(self.cfg.min_scale);
            false
        } else {
            self.consecutive_skips = 0;
            self.good_steps += 1;
            if self.good_steps >= self.cfg.growth_interval {
                self.good_steps = 0;
                self.scale *= self.cfg.growth_factor;
            }
            true
        }
    }

    /// Unscales gradients in place (`g *= 1/scale`).
    pub fn unscale(&self, grads: &mut [f32]) {
        zo_tensor::ops::scale(grads, self.inv_scale());
    }

    /// Snapshot of the mutable state, for checkpointing.
    pub fn snapshot(&self) -> (f32, u32) {
        (self.scale, self.good_steps)
    }

    /// Restores a [`DynamicLossScaler::snapshot`]. The storm detector
    /// restarts from zero: a resume is a fresh chance to make progress.
    pub fn restore(&mut self, snapshot: (f32, u32)) {
        self.scale = snapshot.0.max(self.cfg.min_scale);
        self.good_steps = snapshot.1;
        self.consecutive_skips = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_halves_and_skips() {
        let mut s = DynamicLossScaler::default();
        assert_eq!(s.scale(), 65536.0);
        assert!(!s.update(true));
        assert_eq!(s.scale(), 32768.0);
        assert_eq!(s.overflow_count(), 1);
        assert_eq!(s.skipped_steps(), 1);
    }

    #[test]
    fn growth_after_interval() {
        let cfg = LossScaleConfig {
            growth_interval: 3,
            init_scale: 4.0,
            ..Default::default()
        };
        let mut s = DynamicLossScaler::new(cfg);
        assert!(s.update(false));
        assert!(s.update(false));
        assert_eq!(s.scale(), 4.0);
        assert!(s.update(false));
        assert_eq!(s.scale(), 8.0);
    }

    #[test]
    fn overflow_resets_growth_counter() {
        let cfg = LossScaleConfig {
            growth_interval: 2,
            init_scale: 4.0,
            ..Default::default()
        };
        let mut s = DynamicLossScaler::new(cfg);
        s.update(false);
        s.update(true); // Back to 2.0, counter reset.
        assert_eq!(s.scale(), 2.0);
        s.update(false);
        assert_eq!(s.scale(), 2.0); // One good step is not enough yet.
        s.update(false);
        assert_eq!(s.scale(), 4.0);
    }

    #[test]
    fn consecutive_skips_track_storms_and_reset() {
        let mut s = DynamicLossScaler::default();
        assert_eq!(s.consecutive_skips(), 0);
        s.update(true);
        s.update(true);
        s.update(true);
        assert_eq!(s.consecutive_skips(), 3);
        assert_eq!(s.skipped_steps(), 3);
        s.update(false); // A good step breaks the storm...
        assert_eq!(s.consecutive_skips(), 0);
        assert_eq!(s.skipped_steps(), 3); // ...but the total persists.
        s.update(true);
        assert_eq!(s.consecutive_skips(), 1);
        let snap = s.snapshot();
        s.restore(snap); // A resume restarts the detector.
        assert_eq!(s.consecutive_skips(), 0);
    }

    #[test]
    fn scale_floor() {
        let cfg = LossScaleConfig {
            init_scale: 2.0,
            min_scale: 1.0,
            ..Default::default()
        };
        let mut s = DynamicLossScaler::new(cfg);
        for _ in 0..10 {
            s.update(true);
        }
        assert_eq!(s.scale(), 1.0);
    }

    #[test]
    fn unscale_and_overflow_check() {
        let s = DynamicLossScaler::new(LossScaleConfig {
            init_scale: 4.0,
            ..Default::default()
        });
        let mut g = vec![4.0f32, 8.0];
        s.unscale(&mut g);
        assert_eq!(g, vec![1.0, 2.0]);
        assert!(!s.check_overflow(&g));
        assert!(s.check_overflow(&[f32::NAN]));
    }
}
