//! Shared Adam hyper-parameters, state, and the scalar reference update.
//!
//! Every Adam implementation in this crate (the naive PT-CPU analog and the
//! optimized CPU-Adam) computes the exact same recurrence, written in the
//! form of the paper's Algorithm 1 so that implementations can be compared
//! against each other:
//!
//! ```text
//! bc1 = -alpha / (1 - beta1^t)
//! bc2 = 1 / sqrt(1 - beta2^t)
//! m   = beta1 * m + (1 - beta1) * g
//! v   = beta2 * v + (1 - beta2) * g^2
//! d   = sqrt(v) * bc2 + eps
//! p   = p + bc1 * (m / d)
//! ```

use serde::{Deserialize, Serialize};

use crate::error::OptimError;

/// Adam hyper-parameters.
///
/// # Examples
///
/// ```
/// let hp = zo_optim::AdamParams::default();
/// assert_eq!(hp.beta1, 0.9);
/// assert_eq!(hp.beta2, 0.999);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct AdamParams {
    /// Learning rate (alpha).
    pub lr: f32,
    /// Exponential decay rate for the first moment.
    pub beta1: f32,
    /// Exponential decay rate for the second moment.
    pub beta2: f32,
    /// Denominator fuzz term.
    pub eps: f32,
    /// Weight decay strength (0 disables).
    pub weight_decay: f32,
    /// Decoupled (AdamW) decay: subtract `lr·wd·p` directly from the
    /// parameter instead of folding the decay into the gradient.
    pub decoupled_weight_decay: bool,
}

impl Default for AdamParams {
    fn default() -> AdamParams {
        AdamParams {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            decoupled_weight_decay: false,
        }
    }
}

impl AdamParams {
    /// AdamW defaults: decoupled decay of 0.01 (the BERT recipe).
    pub fn adamw(lr: f32) -> AdamParams {
        AdamParams {
            lr,
            weight_decay: 0.01,
            decoupled_weight_decay: true,
            ..AdamParams::default()
        }
    }
}

impl AdamParams {
    /// Returns the step-dependent bias corrections `(bc1, bc2)` of
    /// Algorithm 1 for 1-based step `t`.
    #[inline]
    pub fn bias_corrections(&self, t: u64) -> (f32, f32) {
        let b1t = (self.beta1 as f64).powi(t as i32);
        let b2t = (self.beta2 as f64).powi(t as i32);
        let bc1 = (-(self.lr as f64) / (1.0 - b1t)) as f32;
        let bc2 = (1.0 / (1.0 - b2t).sqrt()) as f32;
        (bc1, bc2)
    }
}

/// Per-parameter Adam state: first and second moment vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamState {
    /// First moment (momentum), fp32.
    pub m: Vec<f32>,
    /// Second moment (variance), fp32.
    pub v: Vec<f32>,
    /// Number of completed steps.
    pub step: u64,
}

impl AdamState {
    /// Creates zeroed state for `n` parameters.
    pub fn new(n: usize) -> AdamState {
        AdamState {
            m: vec![0.0; n],
            v: vec![0.0; n],
            step: 0,
        }
    }

    /// Number of parameters this state covers.
    pub fn len(&self) -> usize {
        self.m.len()
    }

    /// Returns `true` if the state covers zero parameters.
    pub fn is_empty(&self) -> bool {
        self.m.is_empty()
    }

    /// Bytes of optimizer state held (momentum + variance, fp32).
    ///
    /// This is the `8M` portion of the paper's `16M` model-state budget.
    pub fn bytes(&self) -> usize {
        (self.m.len() + self.v.len()) * core::mem::size_of::<f32>()
    }

    /// Validates buffer lengths against this state.
    pub fn check(&self, params: &[f32], grads: &[f32]) -> Result<(), OptimError> {
        if params.len() != grads.len() {
            return Err(OptimError::LengthMismatch {
                params: params.len(),
                grads: grads.len(),
            });
        }
        if params.len() != self.m.len() {
            return Err(OptimError::StateMismatch {
                state: self.m.len(),
                given: params.len(),
            });
        }
        Ok(())
    }
}

/// The scalar reference update for one element, in FMA form.
///
/// Both `CpuAdam` and the property tests use this exact sequence, so the
/// optimized implementation can be compared bit-for-bit.
#[inline(always)]
pub fn adam_element(
    hp: &AdamParams,
    bc1: f32,
    bc2: f32,
    p: &mut f32,
    g: f32,
    m: &mut f32,
    v: &mut f32,
) {
    let g = if hp.weight_decay != 0.0 && !hp.decoupled_weight_decay {
        g + hp.weight_decay * *p
    } else {
        g
    };
    *m = g.mul_add(1.0 - hp.beta1, hp.beta1 * *m);
    *v = (g * g).mul_add(1.0 - hp.beta2, hp.beta2 * *v);
    let d = v.sqrt().mul_add(bc2, hp.eps);
    *p = (*m / d).mul_add(bc1, *p);
    if hp.decoupled_weight_decay && hp.weight_decay != 0.0 {
        // AdamW: decay applied outside the adaptive rescaling.
        *p -= hp.lr * hp.weight_decay * *p;
    }
}

/// Applies the reference update to whole slices (used by tests and as the
/// golden model for equivalence checks).
pub fn adam_reference_step(
    hp: &AdamParams,
    state: &mut AdamState,
    params: &mut [f32],
    grads: &[f32],
) -> Result<(), OptimError> {
    state.check(params, grads)?;
    state.step += 1;
    let (bc1, bc2) = hp.bias_corrections(state.step);
    for i in 0..params.len() {
        adam_element(
            hp,
            bc1,
            bc2,
            &mut params[i],
            grads[i],
            &mut state.m[i],
            &mut state.v[i],
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_corrections_match_closed_form() {
        let hp = AdamParams {
            lr: 0.1,
            ..AdamParams::default()
        };
        let (bc1, bc2) = hp.bias_corrections(1);
        // t=1: 1-beta1^1 = 0.1, so bc1 = -0.1/0.1 = -1.
        assert!((bc1 + 1.0).abs() < 1e-6);
        // 1-beta2 = 0.001; bc2 = 1/sqrt(0.001).
        assert!((bc2 - (1.0f32 / 0.001f32.sqrt())).abs() < 1e-3);
        // Corrections decay toward (-lr, 1) as t grows.
        let (bc1_inf, bc2_inf) = hp.bias_corrections(100_000);
        assert!((bc1_inf + 0.1).abs() < 1e-6);
        assert!((bc2_inf - 1.0).abs() < 1e-6);
    }

    #[test]
    fn reference_step_moves_against_gradient() {
        let hp = AdamParams::default();
        let mut st = AdamState::new(2);
        let mut p = vec![1.0f32, -1.0];
        // Positive gradient on p[0] must decrease it; negative on p[1]
        // must increase it.
        adam_reference_step(&hp, &mut st, &mut p, &[0.5, -0.5]).unwrap();
        assert!(p[0] < 1.0);
        assert!(p[1] > -1.0);
        assert_eq!(st.step, 1);
    }

    #[test]
    fn first_step_is_close_to_lr_sized() {
        // With bias correction, the very first Adam step has magnitude
        // ~lr (for eps << sqrt(v-hat)).
        let hp = AdamParams {
            lr: 0.01,
            ..AdamParams::default()
        };
        let mut st = AdamState::new(1);
        let mut p = vec![0.0f32];
        adam_reference_step(&hp, &mut st, &mut p, &[3.0]).unwrap();
        assert!((p[0] + 0.01).abs() < 1e-4, "step was {}", p[0]);
    }

    #[test]
    fn zero_gradient_is_fixed_point_from_zero_state() {
        let hp = AdamParams::default();
        let mut st = AdamState::new(3);
        let mut p = vec![1.0f32, 2.0, 3.0];
        let before = p.clone();
        adam_reference_step(&hp, &mut st, &mut p, &[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(p, before);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let hp = AdamParams {
            weight_decay: 0.1,
            ..AdamParams::default()
        };
        let mut st = AdamState::new(1);
        let mut p = vec![5.0f32];
        adam_reference_step(&hp, &mut st, &mut p, &[0.0]).unwrap();
        assert!(p[0] < 5.0);
    }

    #[test]
    fn adamw_decay_is_decoupled() {
        // With zero gradients, AdamW still shrinks parameters by exactly
        // lr*wd*p per step; coupled L2 moves them through the adaptive
        // denominator instead (different magnitude).
        let hp = AdamParams::adamw(0.1);
        let mut st = AdamState::new(1);
        let mut p = vec![10.0f32];
        adam_reference_step(&hp, &mut st, &mut p, &[0.0]).unwrap();
        assert!((p[0] - 10.0 * (1.0 - 0.1 * 0.01)).abs() < 1e-5, "{}", p[0]);
        // Coupled decay with the same strength takes a different path.
        let hp2 = AdamParams {
            decoupled_weight_decay: false,
            ..hp
        };
        let mut st2 = AdamState::new(1);
        let mut p2 = vec![10.0f32];
        adam_reference_step(&hp2, &mut st2, &mut p2, &[0.0]).unwrap();
        assert!(p2[0] < 10.0);
        assert_ne!(p[0], p2[0]);
    }

    #[test]
    fn state_checks() {
        let st = AdamState::new(4);
        assert_eq!(st.len(), 4);
        assert!(!st.is_empty());
        assert_eq!(st.bytes(), 32);
        assert!(st.check(&[0.0; 4], &[0.0; 4]).is_ok());
        assert!(matches!(
            st.check(&[0.0; 4], &[0.0; 3]),
            Err(OptimError::LengthMismatch { .. })
        ));
        assert!(matches!(
            st.check(&[0.0; 5], &[0.0; 5]),
            Err(OptimError::StateMismatch { .. })
        ));
    }
}
