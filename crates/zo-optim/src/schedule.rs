//! Learning-rate schedules used by the paper's training recipes.
//!
//! GPT-2 pretraining and BERT fine-tuning both use linear warm-up followed
//! by decay ("we follow the same training procedure and hyperparameter
//! settings", Sec. 6.1); cosine decay is included because GPT-2's original
//! recipe uses it.

/// A learning-rate schedule: maps the (1-based) step to a multiplier of
/// the base learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant base learning rate.
    Constant,
    /// Linear warm-up over `warmup_steps`, then constant.
    WarmupConstant {
        /// Steps to ramp from 0 to the base rate.
        warmup_steps: u64,
    },
    /// Linear warm-up then linear decay to zero at `total_steps`.
    WarmupLinearDecay {
        /// Steps to ramp from 0 to the base rate.
        warmup_steps: u64,
        /// Step at which the rate reaches zero.
        total_steps: u64,
    },
    /// Linear warm-up then cosine decay to `min_factor` at `total_steps`.
    WarmupCosine {
        /// Steps to ramp from 0 to the base rate.
        warmup_steps: u64,
        /// Step at which the rate reaches `min_factor`.
        total_steps: u64,
        /// Final multiplier (e.g. 0.1).
        min_factor: f32,
    },
}

impl LrSchedule {
    /// The multiplier for (1-based) `step`.
    pub fn factor(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::WarmupConstant { warmup_steps } => warmup(step, warmup_steps),
            LrSchedule::WarmupLinearDecay {
                warmup_steps,
                total_steps,
            } => {
                if step <= warmup_steps {
                    warmup(step, warmup_steps)
                } else if step >= total_steps {
                    0.0
                } else {
                    let span = (total_steps - warmup_steps) as f32;
                    (total_steps - step) as f32 / span
                }
            }
            LrSchedule::WarmupCosine {
                warmup_steps,
                total_steps,
                min_factor,
            } => {
                if step <= warmup_steps {
                    warmup(step, warmup_steps)
                } else if step >= total_steps {
                    min_factor
                } else {
                    let span = (total_steps - warmup_steps) as f32;
                    let t = (step - warmup_steps) as f32 / span;
                    let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                    min_factor + (1.0 - min_factor) * cos
                }
            }
        }
    }

    /// The absolute learning rate for `step` given a base rate.
    pub fn lr(&self, base_lr: f32, step: u64) -> f32 {
        base_lr * self.factor(step)
    }
}

fn warmup(step: u64, warmup_steps: u64) -> f32 {
    if warmup_steps == 0 {
        1.0
    } else {
        (step as f32 / warmup_steps as f32).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        let s = LrSchedule::Constant;
        assert_eq!(s.factor(1), 1.0);
        assert_eq!(s.factor(1_000_000), 1.0);
        assert_eq!(s.lr(3e-4, 10), 3e-4);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::WarmupConstant { warmup_steps: 10 };
        assert!((s.factor(1) - 0.1).abs() < 1e-6);
        assert!((s.factor(5) - 0.5).abs() < 1e-6);
        assert_eq!(s.factor(10), 1.0);
        assert_eq!(s.factor(100), 1.0);
        // Degenerate warm-up of zero steps starts at full rate.
        assert_eq!(
            LrSchedule::WarmupConstant { warmup_steps: 0 }.factor(1),
            1.0
        );
    }

    #[test]
    fn linear_decay_hits_zero() {
        let s = LrSchedule::WarmupLinearDecay {
            warmup_steps: 10,
            total_steps: 110,
        };
        assert_eq!(s.factor(10), 1.0);
        assert!((s.factor(60) - 0.5).abs() < 1e-6);
        assert_eq!(s.factor(110), 0.0);
        assert_eq!(s.factor(200), 0.0);
    }

    #[test]
    fn cosine_decay_shape() {
        let s = LrSchedule::WarmupCosine {
            warmup_steps: 0,
            total_steps: 100,
            min_factor: 0.1,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-5);
        // Midpoint of cosine = (1 + min)/2.
        assert!((s.factor(50) - 0.55).abs() < 1e-3);
        assert!((s.factor(100) - 0.1).abs() < 1e-6);
        assert_eq!(s.factor(500), 0.1);
        // Monotone decreasing after warm-up.
        let mut last = f32::INFINITY;
        for step in 0..=100 {
            let f = s.factor(step);
            assert!(f <= last + 1e-6);
            last = f;
        }
    }
}
