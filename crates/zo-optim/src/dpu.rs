//! One-step Delayed Parameter Update (DPU) bookkeeping (paper Sec. 5.2).
//!
//! DPU lets the CPU optimizer step for step *i*'s gradients run
//! concurrently with step *i+1*'s GPU forward/backward, at the cost of one
//! step of parameter staleness: step *i+1* trains on parameters updated
//! with gradients from step *i−1*.
//!
//! This module provides the *semantic* state machine, executed
//! synchronously, so convergence experiments reproduce DPU's exact staleness
//! without needing real concurrency. The engine crate layers actual
//! CPU/GPU overlap on top (and its schedule tests assert the same ordering
//! this state machine defines).
//!
//! Schedule (Fig. 6): steps `1..warmup_steps` update normally (training is
//! unstable early, so staleness is deferred); the first DPU step stashes
//! its gradients and applies nothing; every later step applies the stashed
//! gradients from the previous step and stashes its own.

use crate::cpu_adam::CpuAdam;
use crate::error::OptimError;

/// What a DPU step did to the parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpuAction {
    /// Warm-up phase: gradients were applied immediately (no staleness).
    Immediate,
    /// Transition step: gradients were stashed; no update applied.
    Skipped,
    /// Steady state: the previous step's stashed gradients were applied and
    /// this step's gradients stashed.
    Delayed,
}

/// One-step delayed parameter update wrapper around [`CpuAdam`].
///
/// # Examples
///
/// ```
/// use zo_optim::{CpuAdam, CpuAdamConfig, DelayedUpdate, DpuAction};
///
/// let opt = CpuAdam::new(CpuAdamConfig::default(), 2);
/// let mut dpu = DelayedUpdate::new(opt, 1);
/// let mut p = vec![1.0f32, 1.0];
/// // warmup_steps = 1: the first step is immediate, the second skipped.
/// assert_eq!(dpu.step(&mut p, &[0.1, 0.1]).unwrap(), DpuAction::Immediate);
/// assert_eq!(dpu.step(&mut p, &[0.1, 0.1]).unwrap(), DpuAction::Skipped);
/// assert_eq!(dpu.step(&mut p, &[0.1, 0.1]).unwrap(), DpuAction::Delayed);
/// ```
#[derive(Debug, Clone)]
pub struct DelayedUpdate {
    inner: CpuAdam,
    warmup_steps: u64,
    steps_seen: u64,
    pending: Option<Vec<f32>>,
}

impl DelayedUpdate {
    /// Wraps `inner`, enabling DPU after `warmup_steps` immediate steps.
    ///
    /// The paper enables DPU "after a few dozen iterations"; its
    /// convergence experiments use 40.
    pub fn new(inner: CpuAdam, warmup_steps: u64) -> DelayedUpdate {
        DelayedUpdate {
            inner,
            warmup_steps,
            steps_seen: 0,
            pending: None,
        }
    }

    /// Steps observed so far (including the skipped transition step).
    pub fn steps_seen(&self) -> u64 {
        self.steps_seen
    }

    /// Whether a gradient is currently stashed awaiting application.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Returns the wrapped optimizer.
    pub fn inner(&self) -> &CpuAdam {
        &self.inner
    }

    /// Mutable access to the wrapped optimizer (checkpoint restore).
    pub fn inner_mut(&mut self) -> &mut CpuAdam {
        &mut self.inner
    }

    /// The stashed gradient awaiting application, if any.
    pub fn pending(&self) -> Option<&[f32]> {
        self.pending.as_deref()
    }

    /// Restores DPU bookkeeping from a checkpoint.
    pub fn restore(&mut self, steps_seen: u64, pending: Option<Vec<f32>>) {
        self.steps_seen = steps_seen;
        self.pending = pending;
    }

    /// Feeds the gradients of the step that just finished.
    ///
    /// Returns which action was taken. After this call the parameters are
    /// exactly what the *next* forward pass should use under DPU semantics.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) -> Result<DpuAction, OptimError> {
        self.steps_seen += 1;
        if self.steps_seen <= self.warmup_steps {
            self.inner.step(params, grads)?;
            return Ok(DpuAction::Immediate);
        }
        match self.pending.take() {
            None => {
                // Transition step N: stash, skip the update.
                self.pending = Some(grads.to_vec());
                Ok(DpuAction::Skipped)
            }
            Some(prev) => {
                // Steady state: apply gradients from the previous step.
                self.inner.step(params, &prev)?;
                self.pending = Some(grads.to_vec());
                Ok(DpuAction::Delayed)
            }
        }
    }

    /// Applies any stashed gradient immediately (end-of-training flush).
    pub fn flush(&mut self, params: &mut [f32]) -> Result<bool, OptimError> {
        match self.pending.take() {
            Some(prev) => {
                self.inner.step(params, &prev)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Drops the stashed gradient without applying it, returning it.
    ///
    /// Crash-recovery hook: when a step dies after the delayed update but
    /// before its result is published, resuming replays the step from the
    /// last checkpoint — the in-flight gradient of the *dead* attempt must
    /// be discarded, not applied on top of the restored state.
    pub fn discard_pending(&mut self) -> Option<Vec<f32>> {
        self.pending.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::AdamParams;
    use crate::cpu_adam::CpuAdamConfig;

    fn opt(n: usize) -> CpuAdam {
        CpuAdam::new(
            CpuAdamConfig {
                hp: AdamParams {
                    lr: 0.1,
                    ..AdamParams::default()
                },
                ..CpuAdamConfig::default()
            },
            n,
        )
    }

    #[test]
    fn schedule_matches_paper_figure6() {
        // warmup 2: steps 1-2 immediate, step 3 skipped, 4+ delayed.
        let mut dpu = DelayedUpdate::new(opt(1), 2);
        let mut p = vec![0.0f32];
        assert_eq!(dpu.step(&mut p, &[1.0]).unwrap(), DpuAction::Immediate);
        assert_eq!(dpu.step(&mut p, &[1.0]).unwrap(), DpuAction::Immediate);
        assert_eq!(dpu.step(&mut p, &[1.0]).unwrap(), DpuAction::Skipped);
        assert!(dpu.has_pending());
        assert_eq!(dpu.step(&mut p, &[1.0]).unwrap(), DpuAction::Delayed);
        assert_eq!(dpu.steps_seen(), 4);
    }

    #[test]
    fn delayed_params_lag_by_one_step() {
        // With distinguishable gradients, after feeding g1..g4 (warmup 0),
        // the applied sequence must be g1, g2, g3 (g4 still pending) —
        // i.e. the parameters lag exactly one gradient behind.
        let mut dpu = DelayedUpdate::new(opt(1), 0);
        let mut p_dpu = vec![0.0f32];
        let grads = [[0.3f32], [-0.7], [0.2], [0.9]];
        for g in &grads {
            dpu.step(&mut p_dpu, g).unwrap();
        }
        // Reference: apply only the first three gradients immediately.
        let mut plain = opt(1);
        let mut p_ref = vec![0.0f32];
        for g in &grads[..3] {
            plain.step(&mut p_ref, g).unwrap();
        }
        assert_eq!(p_dpu, p_ref);
        // Flushing applies the final pending gradient.
        assert!(dpu.flush(&mut p_dpu).unwrap());
        plain.step(&mut p_ref, &grads[3]).unwrap();
        assert_eq!(p_dpu, p_ref);
        assert!(!dpu.flush(&mut p_dpu).unwrap());
    }

    #[test]
    fn warmup_only_behaves_like_plain_adam() {
        let mut dpu = DelayedUpdate::new(opt(2), 100);
        let mut plain = opt(2);
        let mut p1 = vec![1.0f32, -1.0];
        let mut p2 = p1.clone();
        for i in 0..20 {
            let g = vec![0.01 * i as f32, -0.02 * i as f32];
            assert_eq!(dpu.step(&mut p1, &g).unwrap(), DpuAction::Immediate);
            plain.step(&mut p2, &g).unwrap();
        }
        assert_eq!(p1, p2);
    }

    #[test]
    fn length_errors_propagate() {
        let mut dpu = DelayedUpdate::new(opt(2), 0);
        let mut p = vec![0.0f32; 2];
        // Transition stashes without touching the optimizer, so feed twice.
        dpu.step(&mut p, &[1.0, 1.0]).unwrap();
        let mut p3 = vec![0.0f32; 3];
        assert!(dpu.step(&mut p3, &[1.0; 3]).is_err());
    }

    #[test]
    fn discard_pending_drops_in_flight_work_untouched() {
        let mut dpu = DelayedUpdate::new(opt(2), 0);
        let mut p = vec![1.0f32, -1.0];
        dpu.step(&mut p, &[0.5, 0.5]).unwrap(); // Transition: stashes.
        assert!(dpu.has_pending());
        let before = p.clone();
        let dropped = dpu.discard_pending();
        assert_eq!(dropped.as_deref(), Some(&[0.5f32, 0.5][..]));
        assert!(!dpu.has_pending());
        assert_eq!(p, before, "discard must not apply the gradient");
        assert!(!dpu.flush(&mut p).unwrap(), "nothing left to flush");
    }
}
