//! Optimizers for the ZeRO-Offload reproduction (paper Sec. 5).
//!
//! The centerpiece is [`CpuAdam`], the optimized CPU Adam of the paper's
//! Algorithm 1 — fused, unrolled, multithreaded, with tiled fp16 copy-back
//! — alongside [`NaiveAdam`], the op-by-op "PT-CPU" baseline it is measured
//! against in Table 4. [`DelayedUpdate`] implements the one-step delayed
//! parameter update (DPU) schedule of Sec. 5.2, and [`DynamicLossScaler`]
//! the fp16 loss-scaling recipe mixed-precision training requires.

#![warn(missing_docs)]

mod adam;
pub mod clip;
mod cpu_adam;
mod dpu;
mod error;
mod loss_scale;
mod naive;
mod schedule;
mod sgd;

pub use adam::{adam_element, adam_reference_step, AdamParams, AdamState};
pub use cpu_adam::{adam_range, CpuAdam, CpuAdamConfig, UNROLL};
pub use dpu::{DelayedUpdate, DpuAction};
pub use error::OptimError;
pub use loss_scale::{DynamicLossScaler, LossScaleConfig};
pub use naive::NaiveAdam;
pub use schedule::LrSchedule;
pub use sgd::{Sgd, SgdParams};
